"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``characterize Nx Nf Nc Fx [--stride S] [--sparsity P]`` -- AIT figures
  and Fig. 1 region for a convolution.
* ``plan <netdef file> [--cores N] [--batch B] [--sparsity P]`` -- run the
  autotuner over every conv layer of a network description.
* ``figure <name>`` -- regenerate one of the paper's exhibits
  (``table1``, ``table2``, ``fig3a``, ``fig4a`` ... ``fig4f``, ``fig9``).
* ``trace [--net cifar|mnist] [--epochs N] ...`` -- run a real training
  job with spg-CNN retuning under the telemetry collector, print the
  span/counter/event tables and write a JSON trace (profiling command).
* ``check [--analyzer A ...] [--json PATH]`` -- statically verify the
  generated kernels, network graphs and parallel runtime; exits 1 when
  any error-severity finding is reported (CI gate).
* ``chaos [--plan P] [--seed N] ...`` -- train a small job under a named
  fault plan with the resilient policy active and report survival;
  exits 1 when the run dies, stops improving, or fails the kill/resume
  bit-identity check (CI chaos gate).
* ``engines`` -- list the registered convolution engines.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis import figures as figure_module
from repro.analysis.reporting import format_series, format_table
from repro.core.autotuner import Autotuner, ModelCostBackend
from repro.core.characterization import characterize
from repro.core.convspec import ConvSpec
from repro.machine.spec import xeon_e5_2650
from repro.nn.netdef import network_from_text
from repro.ops.engine import engine_names

_FIGURES = {
    "table1": figure_module.table1,
    "table2": figure_module.table2,
    "fig3a": figure_module.figure3a,
    "fig4a": figure_module.figure4a,
    "fig4b": figure_module.figure4b,
    "fig4c": figure_module.figure4c,
    "fig4d": figure_module.figure4d,
    "fig4e": figure_module.figure4e,
    "fig4f": figure_module.figure4f,
    "fig9": figure_module.figure9,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="spg-CNN reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    chz = sub.add_parser("characterize", help="characterize a convolution")
    chz.add_argument("dims", type=int, nargs=4, metavar=("Nx", "Nf", "Nc", "Fx"))
    chz.add_argument("--stride", type=int, default=1)
    chz.add_argument("--sparsity", type=float, default=0.0)

    plan = sub.add_parser("plan", help="autotune a network description")
    plan.add_argument("netdef", type=Path)
    plan.add_argument("--cores", type=int, default=16)
    plan.add_argument("--batch", type=int, default=64)
    plan.add_argument("--sparsity", type=float, default=0.85)

    fig = sub.add_parser("figure", help="regenerate a paper exhibit")
    fig.add_argument("name", choices=sorted(_FIGURES))

    explain = sub.add_parser(
        "explain", help="per-lane time breakdown of each technique"
    )
    explain.add_argument("dims", type=int, nargs=4,
                         metavar=("Nx", "Nf", "Nc", "Fx"))
    explain.add_argument("--phase", choices=("fp", "bp"), default="fp")
    explain.add_argument("--stride", type=int, default=1)
    explain.add_argument("--cores", type=int, default=16)
    explain.add_argument("--batch", type=int, default=16)
    explain.add_argument("--sparsity", type=float, default=0.85)

    repro_cmd = sub.add_parser(
        "reproduce", help="write every paper exhibit to an output directory"
    )
    repro_cmd.add_argument("--out", type=Path, default=Path("results"))

    trace = sub.add_parser(
        "trace",
        help="profile a training run with telemetry; writes a JSON trace",
    )
    trace.add_argument("--net", choices=("mnist", "cifar"), default="cifar")
    trace.add_argument("--epochs", type=int, default=2)
    trace.add_argument("--batch", type=int, default=8)
    trace.add_argument("--samples", type=int, default=32)
    trace.add_argument("--scale", type=float, default=0.25,
                       help="feature-count scale of the zoo network")
    trace.add_argument("--threads", type=int, default=2,
                       help="worker threads per conv layer (1 = inline)")
    trace.add_argument("--cores", type=int, default=16,
                       help="cores assumed by the autotuner's cost model")
    trace.add_argument("--recheck", type=int, default=1,
                       help="re-check the BP choice every N epochs")
    trace.add_argument("--out", type=Path, default=Path("results/trace.json"))

    check = sub.add_parser(
        "check",
        help="statically verify generated kernels, graphs and runtime",
    )
    check.add_argument(
        "--analyzer", action="append", dest="analyzers", default=None,
        choices=("kernel-ir", "gen-source", "graph", "concurrency"),
        help="run only the named analyzer (repeatable; default: all four)",
    )
    check.add_argument("--json", type=Path, default=None,
                       help="also write the findings report as JSON")
    check.add_argument("--quiet", action="store_true",
                       help="print only the summary line, not the table")

    from repro.resilience import plan_names

    chaos = sub.add_parser(
        "chaos",
        help="train a small job under a fault plan and report survival",
    )
    chaos.add_argument("--plan", choices=plan_names(), default="smoke")
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--epochs", type=int, default=3)
    chaos.add_argument("--batch", type=int, default=8)
    chaos.add_argument("--samples", type=int, default=48)
    chaos.add_argument("--threads", type=int, default=2,
                       help="worker threads per conv layer (1 = inline)")
    chaos.add_argument("--no-resume-check", action="store_true",
                       help="skip the kill-and-resume bit-identity replay")

    sub.add_parser("engines", help="list registered engines")
    return parser


def _render_exhibit(name: str) -> str:
    data = _FIGURES[name]()
    if "rows" in data:
        rows = data["rows"]
        headers = list(rows[0].keys())
        return format_table(
            headers, [[row[h] for h in headers] for row in rows], title=name
        )
    x_label = "cores" if "cores" in data else "sparsity"
    return format_series(x_label, data[x_label], data["series"], title=name)


def _cmd_reproduce(args, out) -> int:
    args.out.mkdir(parents=True, exist_ok=True)
    for name in sorted(_FIGURES):
        text = _render_exhibit(name)
        path = args.out / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"wrote {path}", file=out)
    from repro.machine.calibration import calibration_report

    calibration_path = args.out / "calibration.txt"
    calibration_path.write_text(calibration_report() + "\n")
    print(f"wrote {calibration_path}", file=out)
    return 0


def _cmd_explain(args, out) -> int:
    from repro.machine.explain import explain_conv, explain_report

    n, nf, nc, f = args.dims
    spec = ConvSpec(nc=nc, ny=n, nx=n, nf=nf, fy=f, fx=f,
                    sy=args.stride, sx=args.stride, name="cli-conv")
    breakdowns = explain_conv(
        spec, args.phase, args.batch, xeon_e5_2650(), args.cores,
        sparsity=args.sparsity,
    )
    print(spec.describe(), file=out)
    print(explain_report(breakdowns), file=out)
    return 0


def _cmd_characterize(args, out) -> int:
    n, nf, nc, f = args.dims
    spec = ConvSpec(nc=nc, ny=n, nx=n, nf=nf, fy=f, fx=f,
                    sy=args.stride, sx=args.stride, name="cli-conv")
    ch = characterize(spec, sparsity=args.sparsity)
    print(spec.describe(), file=out)
    print(f"intrinsic AIT:   {ch.intrinsic_ait:.1f}", file=out)
    print(f"Unfold+GEMM AIT: {ch.unfold_ait:.1f}", file=out)
    print(f"region:          {int(ch.region)} ({ch.region.ait_band} AIT, "
          f"{'sparse' if ch.region.is_sparse else 'dense'})", file=out)
    print(f"recommended FP:  {ch.recommended_fp()}", file=out)
    print(f"recommended BP:  {ch.recommended_bp()}", file=out)
    return 0


def _cmd_plan(args, out) -> int:
    text = args.netdef.read_text()
    network = network_from_text(text)
    tuner = Autotuner(
        ModelCostBackend(xeon_e5_2650(), cores=args.cores, batch=args.batch)
    )
    rows = []
    for layer in network.conv_layers():
        plan = tuner.plan_layer(layer.padded_spec, layer_name=layer.name,
                                sparsity=args.sparsity)
        rows.append([
            plan.layer_name, plan.fp_engine, plan.bp_engine,
            f"{plan.fp_speedup_over_baseline:.1f}x",
            f"{plan.bp_speedup_over_baseline:.1f}x",
        ])
    print(format_table(
        ["layer", "FP engine", "BP engine", "FP speedup", "BP speedup"],
        rows,
        title=f"{network.name}: spg-CNN plan ({args.cores} cores, "
              f"sparsity {args.sparsity})",
    ), file=out)
    return 0


def _cmd_figure(args, out) -> int:
    print(_render_exhibit(args.name), file=out)
    return 0


def _cmd_trace(args, out) -> int:
    import numpy as np

    from repro import telemetry
    from repro.core.framework import SpgCNN
    from repro.data.synthetic import cifar10_like, mnist_like
    from repro.nn.training_loop import TrainingLoop
    from repro.nn.zoo import cifar10_net, mnist_net

    threads = args.threads if args.threads and args.threads > 1 else None
    rng = np.random.default_rng(0)
    if args.net == "cifar":
        network = cifar10_net(scale=args.scale, rng=rng, threads=threads)
        data = cifar10_like(args.samples, seed=0)
    else:
        network = mnist_net(scale=args.scale, rng=rng, threads=threads)
        data = mnist_like(args.samples, seed=0)
    backend = ModelCostBackend(xeon_e5_2650(), cores=args.cores,
                               batch=args.batch)
    spg = SpgCNN(network, backend, recheck_epochs=args.recheck)
    try:
        with telemetry.collect() as tel:
            spg.optimize()
            loop = TrainingLoop(
                network, data, batch_size=args.batch,
                epoch_end_hook=lambda epoch, _net: spg.after_epoch(epoch),
            )
            history = loop.run(args.epochs)
    finally:
        for layer in network.conv_layers():
            layer.close()
    print(network.describe(), file=out)
    print(telemetry.spans_table(tel, title=f"trace: {network.name}"), file=out)
    print(telemetry.counters_table(tel), file=out)
    if tel.events:
        print(telemetry.events_table(tel), file=out)
    print(f"final train loss: {history.final.train_loss:.4f}  "
          f"mean error sparsity: {history.final.mean_error_sparsity:.2f}",
          file=out)
    path = telemetry.write_json(tel, args.out)
    print(f"wrote {path}", file=out)
    return 0


def _cmd_chaos(args, out) -> int:
    from repro.resilience.chaos import run_chaos

    report = run_chaos(
        plan_name=args.plan,
        seed=args.seed,
        epochs=args.epochs,
        batch=args.batch,
        samples=args.samples,
        threads=args.threads,
        check_resume=not args.no_resume_check,
    )
    for line in report.lines():
        print(line, file=out)
    print("chaos: OK" if report.ok else "chaos: FAILED", file=out)
    return 0 if report.ok else 1


def _cmd_check(args, out) -> int:
    from repro.check.runner import run_all

    report = run_all(
        analyzers=tuple(args.analyzers) if args.analyzers else None
    )
    if report.findings and not args.quiet:
        print(report.table(), file=out)
    print(report.summary(), file=out)
    if args.json is not None:
        path = report.write_json(args.json)
        print(f"wrote {path}", file=out)
    return 0 if report.ok else 1


def main(argv: list[str] | None = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out or sys.stdout
    args = _build_parser().parse_args(argv)
    if args.command == "characterize":
        return _cmd_characterize(args, out)
    if args.command == "plan":
        return _cmd_plan(args, out)
    if args.command == "figure":
        return _cmd_figure(args, out)
    if args.command == "explain":
        return _cmd_explain(args, out)
    if args.command == "reproduce":
        return _cmd_reproduce(args, out)
    if args.command == "trace":
        return _cmd_trace(args, out)
    if args.command == "check":
        return _cmd_check(args, out)
    if args.command == "chaos":
        return _cmd_chaos(args, out)
    if args.command == "engines":
        for name in engine_names():
            print(name, file=out)
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
