"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``characterize Nx Nf Nc Fx [--stride S] [--sparsity P]`` -- AIT figures
  and Fig. 1 region for a convolution.
* ``plan <netdef file> [--cores N] [--batch B] [--sparsity P]`` -- run the
  autotuner over every conv layer of a network description.
* ``figure <name>`` -- regenerate one of the paper's exhibits
  (``table1``, ``table2``, ``fig3a``, ``fig4a`` ... ``fig4f``, ``fig9``).
* ``trace [--net cifar|mnist] [--epochs N] ...`` -- run a real training
  job with spg-CNN retuning under the telemetry collector, print the
  span/counter/event tables and write a JSON trace (profiling command).
* ``check [--only A,B] [--analyzer A ...] [--json PATH]`` -- statically
  verify the generated kernels, network graphs, task-graph effects,
  shm buffer lifecycles and parallel runtime; ``--only`` takes a
  comma-separated analyzer list, ``--format sarif`` emits SARIF 2.1.0
  for code-host upload; exits 1 when any error-severity finding is
  reported (CI gate).
* ``chaos [--plan P] [--seed N] [--scheduler barrier|dag] ...`` -- train
  a small job under a named fault plan with the resilient policy active
  and report survival; exits 1 when the run dies, stops improving, or
  fails the kill/resume bit-identity check (CI chaos gate).
* ``train [--net cifar|mnist] ...`` (alias: ``monitor``) -- run a
  training job under the live :class:`repro.obs.monitor.TrainingMonitor`
  and write the final run report.
* ``bench [--repeats N] ...`` -- run the microbenchmark suite, write
  schema-versioned ``BENCH_<name>.json`` files and compare against the
  committed baseline; exits 1 on regression (perf gate).
* ``engines`` -- list the registered convolution engines.

Reporting commands (``trace``, ``check``, ``chaos``, ``train``,
``bench``) share one I/O contract: ``--format table|json`` selects the
stdout rendering (human tables vs. machine JSON) and ``--out PATH``
writes the durable JSON artifact -- ``trace`` additionally accepts
``--format chrome`` for Chrome trace-event JSON, ``check`` accepts
``--format sarif`` (stdout and ``--out`` both become SARIF 2.1.0), and
``bench``'s ``--out`` is a directory (one ``BENCH_<name>.json`` per
benchmark).

Exit codes, uniformly: **0** success; **1** gate failure (error-severity
check findings, a failed chaos run, a benchmark regression); **2** usage
error (bad flags, unknown names -- raised by argparse).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis import figures as figure_module
from repro.analysis.reporting import format_series, format_table
from repro.check.runner import ANALYZER_ALIASES as _ANALYZER_ALIASES
from repro.check.runner import ANALYZERS as _ANALYZERS
from repro.core.autotuner import Autotuner, ModelCostBackend
from repro.core.characterization import characterize
from repro.core.convspec import ConvSpec
from repro.machine.spec import xeon_e5_2650
from repro.nn.netdef import network_from_text
from repro.ops.engine import engine_names
from repro.runtime.backends import BACKEND_NAMES as _BACKENDS

_FIGURES = {
    "table1": figure_module.table1,
    "table2": figure_module.table2,
    "fig3a": figure_module.figure3a,
    "fig4a": figure_module.figure4a,
    "fig4b": figure_module.figure4b,
    "fig4c": figure_module.figure4c,
    "fig4d": figure_module.figure4d,
    "fig4e": figure_module.figure4e,
    "fig4f": figure_module.figure4f,
    "fig9": figure_module.figure9,
}


def _analyzer_list(text: str) -> tuple[str, ...]:
    """``--only`` type: comma-separated analyzer names, validated.

    Accepts the short aliases too (``--only ir,source``)."""
    names = tuple(
        _ANALYZER_ALIASES.get(name.strip(), name.strip())
        for name in text.split(",") if name.strip()
    )
    unknown = [name for name in names if name not in _ANALYZERS]
    if unknown:
        raise argparse.ArgumentTypeError(
            f"unknown analyzer(s) {', '.join(sorted(unknown))}; "
            f"known: {', '.join(_ANALYZERS)}"
        )
    return names


def _add_output_args(
    parser: argparse.ArgumentParser,
    formats: tuple[str, ...] = ("table", "json"),
    out_default: Path | None = None,
    out_help: str = "write the JSON artifact to PATH",
) -> None:
    """The shared ``--out`` / ``--format`` contract of reporting commands."""
    parser.add_argument("--out", type=Path, default=out_default,
                        metavar="PATH", help=out_help)
    parser.add_argument("--format", choices=formats, default=formats[0],
                        help="stdout rendering (default: %(default)s)")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="spg-CNN reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    chz = sub.add_parser("characterize", help="characterize a convolution")
    chz.add_argument("dims", type=int, nargs=4, metavar=("Nx", "Nf", "Nc", "Fx"))
    chz.add_argument("--stride", type=int, default=1)
    chz.add_argument("--sparsity", type=float, default=0.0)

    sched = sub.add_parser(
        "schedule",
        help="search loop-IR schedule pipelines for one convolution",
    )
    sched.add_argument("dims", type=int, nargs=4,
                       metavar=("Nx", "Nf", "Nc", "Fx"))
    sched.add_argument("--stride", type=int, default=1)
    sched.add_argument("--pool", type=int, default=0, metavar="K",
                       help="fuse a KxK max-pool into the forward phase")
    sched.add_argument("--seed", type=int, default=0,
                       help="seed for the random schedule samples")
    sched.add_argument("--cores", type=int, default=1)
    sched.add_argument("--batch", type=int, default=1)

    plan = sub.add_parser("plan", help="autotune a network description")
    plan.add_argument("netdef", type=Path)
    plan.add_argument("--cores", type=int, default=16)
    plan.add_argument("--batch", type=int, default=64)
    plan.add_argument("--sparsity", type=float, default=0.85)

    fig = sub.add_parser("figure", help="regenerate a paper exhibit")
    fig.add_argument("name", choices=sorted(_FIGURES))

    explain = sub.add_parser(
        "explain", help="per-lane time breakdown of each technique"
    )
    explain.add_argument("dims", type=int, nargs=4,
                         metavar=("Nx", "Nf", "Nc", "Fx"))
    explain.add_argument("--phase", choices=("fp", "bp"), default="fp")
    explain.add_argument("--stride", type=int, default=1)
    explain.add_argument("--cores", type=int, default=16)
    explain.add_argument("--batch", type=int, default=16)
    explain.add_argument("--sparsity", type=float, default=0.85)

    repro_cmd = sub.add_parser(
        "reproduce", help="write every paper exhibit to an output directory"
    )
    repro_cmd.add_argument("--out", type=Path, default=Path("results"))

    trace = sub.add_parser(
        "trace",
        help="profile a training run with telemetry; writes a JSON trace",
    )
    trace.add_argument("--net", choices=("mnist", "cifar"), default="cifar")
    trace.add_argument("--epochs", type=int, default=2)
    trace.add_argument("--batch", type=int, default=8)
    trace.add_argument("--samples", type=int, default=32)
    trace.add_argument("--scale", type=float, default=0.25,
                       help="feature-count scale of the zoo network")
    trace.add_argument("--threads", type=int, default=2,
                       help="worker threads per conv layer (1 = inline)")
    trace.add_argument("--backend", choices=_BACKENDS, default="thread",
                       help="execution backend of the conv worker pools")
    trace.add_argument("--scheduler", choices=("barrier", "dag"),
                       default="barrier",
                       help="per-layer barriers or the task-graph runtime")
    trace.add_argument("--cores", type=int, default=16,
                       help="cores assumed by the autotuner's cost model")
    trace.add_argument("--critical-path", action="store_true",
                       help="print the DAG critical-path / goodput "
                            "attribution table (needs --scheduler dag)")
    trace.add_argument("--recheck", type=int, default=1,
                       help="re-check the BP choice every N epochs")
    _add_output_args(trace, formats=("table", "json", "chrome"),
                     out_default=Path("results/trace.json"),
                     out_help="trace file to write (JSON, or Chrome "
                              "trace-event JSON with --format chrome)")

    check = sub.add_parser(
        "check",
        help="statically verify generated kernels, graphs and runtime",
    )
    check.add_argument(
        "--analyzer", action="append", dest="analyzers", default=None,
        choices=_ANALYZERS,
        help="run only the named analyzer (repeatable; default: all six)",
    )
    check.add_argument(
        "--only", type=_analyzer_list, default=None, metavar="A[,B...]",
        help="comma-separated analyzer list (combined with --analyzer)",
    )
    check.add_argument("--json", type=Path, default=None, dest="json_alias",
                       help="alias for --out (kept for compatibility)")
    check.add_argument("--quiet", action="store_true",
                       help="print only the summary line, not the table")
    _add_output_args(check, formats=("table", "json", "sarif"),
                     out_help="write the findings report (JSON, or SARIF "
                              "with --format sarif)")

    from repro.resilience import plan_names
    from repro.resilience.faults import REAL_KILL_PLANS

    chaos = sub.add_parser(
        "chaos",
        help="train a small job under a fault plan and report survival",
    )
    chaos.add_argument("--plan",
                       choices=plan_names() + tuple(REAL_KILL_PLANS),
                       default="smoke")
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--epochs", type=int, default=3)
    chaos.add_argument("--batch", type=int, default=8)
    chaos.add_argument("--samples", type=int, default=48)
    chaos.add_argument("--threads", type=int, default=2,
                       help="worker threads per conv layer (1 = inline)")
    chaos.add_argument("--backend", choices=_BACKENDS, default="thread",
                       help="execution backend of the conv worker pools")
    chaos.add_argument("--scheduler", choices=("barrier", "dag"),
                       default="barrier",
                       help="per-layer barriers or the task-graph runtime")
    chaos.add_argument("--no-resume-check", action="store_true",
                       help="skip the kill-and-resume bit-identity replay")
    _add_output_args(chaos, out_help="write the chaos + monitor report "
                                     "as JSON")

    train = sub.add_parser(
        "train", aliases=["monitor"],
        help="train under the live monitor; writes the run report",
    )
    train.add_argument("--net", choices=("mnist", "cifar"), default="mnist")
    train.add_argument("--epochs", type=int, default=2)
    train.add_argument("--batch", type=int, default=8)
    train.add_argument("--samples", type=int, default=32)
    train.add_argument("--scale", type=float, default=0.25,
                       help="feature-count scale of the zoo network")
    train.add_argument("--threads", type=int, default=1,
                       help="worker threads per conv layer (1 = inline)")
    train.add_argument("--backend", choices=_BACKENDS, default="thread",
                       help="execution backend of the conv worker pools")
    train.add_argument("--scheduler", choices=("barrier", "dag"),
                       default="barrier",
                       help="per-layer barriers or the task-graph runtime")
    train.add_argument("--cores", type=int, default=16,
                       help="cores assumed by the autotuner's cost model")
    train.add_argument("--recheck", type=int, default=1,
                       help="re-check the BP choice every N epochs")
    train.add_argument("--every", type=int, default=0, metavar="N",
                       help="also render the live table every N batches")
    _add_output_args(train, out_help="write the run report (JSON, or "
                                     "markdown when PATH ends in .md)")

    from repro.obs.bench import suite_names

    bench = sub.add_parser(
        "bench",
        help="run the microbenchmark suite and compare against baseline",
    )
    bench.add_argument("--repeats", type=int, default=3,
                       help="timed repeats per benchmark (median wins)")
    bench.add_argument("--backend", choices=_BACKENDS, default="thread",
                       help="execution backend for the parallel benchmarks")
    bench.add_argument("--filter", action="append", dest="filters",
                       default=None, choices=suite_names(),
                       help="run only the named benchmark (repeatable)")
    bench.add_argument("--baseline", type=Path,
                       default=Path("benchmarks/baseline.json"),
                       help="baseline to compare against "
                            "(default: %(default)s)")
    bench.add_argument("--update-baseline", action="store_true",
                       help="record these results as the new baseline "
                            "instead of comparing")
    bench.add_argument("--soft", action="store_true",
                       help="report regressions but still exit 0 "
                            "(noisy-runner CI smoke)")
    bench.add_argument("--slowdown", action="append", default=None,
                       metavar="NAME=FACTOR",
                       help="test hook: scale a benchmark's measured time")
    _add_output_args(bench, out_default=Path("results/bench"),
                     out_help="directory for the BENCH_<name>.json files")

    shm_cmd = sub.add_parser(
        "shm",
        help="inspect or reap this host's repro shared-memory segments",
    )
    shm_cmd.add_argument("action", choices=("list", "reap"),
                         help="list manifest entries, or unlink segments "
                              "whose owning process died")
    _add_output_args(shm_cmd, out_help="write the segment report as JSON")

    workers = sub.add_parser(
        "workers",
        help="spin up the process backend and report worker diagnostics",
    )
    workers.add_argument("--workers", type=int, default=2,
                         help="worker processes to spawn (default: 2)")
    _add_output_args(workers, out_help="write the worker report as JSON")

    sub.add_parser("engines", help="list registered engines")
    return parser


def _render_exhibit(name: str) -> str:
    data = _FIGURES[name]()
    if "rows" in data:
        rows = data["rows"]
        headers = list(rows[0].keys())
        return format_table(
            headers, [[row[h] for h in headers] for row in rows], title=name
        )
    x_label = "cores" if "cores" in data else "sparsity"
    return format_series(x_label, data[x_label], data["series"], title=name)


def _cmd_reproduce(args, out) -> int:
    args.out.mkdir(parents=True, exist_ok=True)
    for name in sorted(_FIGURES):
        text = _render_exhibit(name)
        path = args.out / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"wrote {path}", file=out)
    from repro.machine.calibration import calibration_report

    calibration_path = args.out / "calibration.txt"
    calibration_path.write_text(calibration_report() + "\n")
    print(f"wrote {calibration_path}", file=out)
    return 0


def _cmd_explain(args, out) -> int:
    from repro.machine.explain import explain_conv, explain_report

    n, nf, nc, f = args.dims
    spec = ConvSpec(nc=nc, ny=n, nx=n, nf=nf, fy=f, fx=f,
                    sy=args.stride, sx=args.stride, name="cli-conv")
    breakdowns = explain_conv(
        spec, args.phase, args.batch, xeon_e5_2650(), args.cores,
        sparsity=args.sparsity,
    )
    print(spec.describe(), file=out)
    print(explain_report(breakdowns), file=out)
    return 0


def _cmd_characterize(args, out) -> int:
    n, nf, nc, f = args.dims
    spec = ConvSpec(nc=nc, ny=n, nx=n, nf=nf, fy=f, fx=f,
                    sy=args.stride, sx=args.stride, name="cli-conv")
    ch = characterize(spec, sparsity=args.sparsity)
    print(spec.describe(), file=out)
    print(f"intrinsic AIT:   {ch.intrinsic_ait:.1f}", file=out)
    print(f"Unfold+GEMM AIT: {ch.unfold_ait:.1f}", file=out)
    print(f"region:          {int(ch.region)} ({ch.region.ait_band} AIT, "
          f"{'sparse' if ch.region.is_sparse else 'dense'})", file=out)
    print(f"recommended FP:  {ch.recommended_fp()}", file=out)
    print(f"recommended BP:  {ch.recommended_bp()}", file=out)
    return 0


def _cmd_schedule(args, out) -> int:
    from repro.nn.schedule import ScheduleSearch

    n, nf, nc, f = args.dims
    spec = ConvSpec(nc=nc, ny=n, nx=n, nf=nf, fy=f, fx=f,
                    sy=args.stride, sx=args.stride, name="cli-conv")
    search = ScheduleSearch(cores=args.cores, batch=args.batch,
                            seed=args.seed)
    choices = search.search_layer(spec, pool_kernel=args.pool)
    rows = []
    for phase, choice in choices.items():
        rows.append([
            phase, choice.family, choice.pipeline.describe(),
            str(choice.num_candidates),
            f"{choice.seconds * 1e6:.2f}",
            f"{choice.speedup_over_default():.2f}x",
            "yes" if choice.verified else "model-only",
        ])
    print(format_table(
        ["phase", "family", "chosen schedule", "cands", "model us",
         "vs default", "verified"],
        rows,
        title=f"{spec.describe()}: schedule search "
              f"(seed {args.seed}, {args.cores} cores, batch {args.batch})",
    ), file=out)
    return 0


def _cmd_plan(args, out) -> int:
    text = args.netdef.read_text()
    network = network_from_text(text)
    tuner = Autotuner(
        ModelCostBackend(xeon_e5_2650(), cores=args.cores, batch=args.batch)
    )
    rows = []
    for layer in network.conv_layers():
        plan = tuner.plan_layer(layer.padded_spec, layer_name=layer.name,
                                sparsity=args.sparsity)
        rows.append([
            plan.layer_name, plan.fp_engine, plan.bp_engine,
            f"{plan.fp_speedup_over_baseline:.1f}x",
            f"{plan.bp_speedup_over_baseline:.1f}x",
        ])
    print(format_table(
        ["layer", "FP engine", "BP engine", "FP speedup", "BP speedup"],
        rows,
        title=f"{network.name}: spg-CNN plan ({args.cores} cores, "
              f"sparsity {args.sparsity})",
    ), file=out)
    return 0


def _cmd_figure(args, out) -> int:
    print(_render_exhibit(args.name), file=out)
    return 0


def _build_training_job(args):
    """Network + data + spg-CNN + loop shared by ``trace`` and ``train``."""
    import numpy as np

    from repro.core.framework import SpgCNN
    from repro.data.synthetic import cifar10_like, mnist_like
    from repro.nn.training_loop import TrainingLoop
    from repro.nn.zoo import cifar10_net, mnist_net

    threads = args.threads if args.threads and args.threads > 1 else None
    backend = getattr(args, "backend", "thread")
    rng = np.random.default_rng(0)
    if args.net == "cifar":
        network = cifar10_net(scale=args.scale, rng=rng, threads=threads,
                              backend=backend)
        data = cifar10_like(args.samples, seed=0)
    else:
        network = mnist_net(scale=args.scale, rng=rng, threads=threads,
                            backend=backend)
        data = mnist_like(args.samples, seed=0)
    backend = ModelCostBackend(xeon_e5_2650(), cores=args.cores,
                               batch=args.batch)
    spg = SpgCNN(network, backend, recheck_epochs=args.recheck)
    loop = TrainingLoop(
        network, data, batch_size=args.batch,
        scheduler=getattr(args, "scheduler", None),
        epoch_end_hook=lambda epoch, _net: spg.after_epoch(epoch),
    )
    return network, spg, loop


def _close_network(network) -> None:
    for layer in network.conv_layers():
        layer.close()


def _cmd_trace(args, out) -> int:
    import json as json_module

    from repro import telemetry

    network, spg, loop = _build_training_job(args)
    try:
        with telemetry.collect() as tel:
            spg.optimize()
            history = loop.run(args.epochs)
    finally:
        _close_network(network)
    if args.format == "json":
        print(json_module.dumps(telemetry.collector_to_dict(tel)), file=out)
    else:
        print(network.describe(), file=out)
        print(telemetry.spans_table(tel, title=f"trace: {network.name}"),
              file=out)
        print(telemetry.histograms_table(tel), file=out)
        print(telemetry.counters_table(tel), file=out)
        if tel.events:
            print(telemetry.events_table(tel), file=out)
        print(f"final train loss: {history.final.train_loss:.4f}  "
              f"mean error sparsity: {history.final.mean_error_sparsity:.2f}",
              file=out)
    if getattr(args, "critical_path", False):
        from repro.obs.critical import critical_path_report

        report = critical_path_report(tel)
        if report is None:
            print("no dag graphs recorded (run with --scheduler dag)",
                  file=out)
        else:
            print(report.table(), file=out)
    if args.out is not None:
        if args.format == "chrome":
            from repro.obs.chrome_trace import write_chrome_trace

            path = write_chrome_trace(tel, args.out)
        else:
            path = telemetry.write_json(tel, args.out)
        print(f"wrote {path}", file=out)
    return 0


def _cmd_train(args, out) -> int:
    import json as json_module

    from repro.obs.monitor import TrainingMonitor

    network, spg, loop = _build_training_job(args)
    live_out = out if args.format == "table" else None
    monitor = TrainingMonitor(every_batches=args.every, out=live_out)
    monitor.attach(loop)
    try:
        with monitor:
            spg.optimize()
            loop.run(args.epochs)
    finally:
        _close_network(network)
    report = monitor.report()
    if args.format == "json":
        print(json_module.dumps(report.to_dict()), file=out)
    else:
        print(monitor.render(title=f"run report: {network.name}"), file=out)
        totals = report.totals
        print(f"epochs: {totals['epochs']}  batches: {totals['batches']}  "
              f"final loss: {totals['final_loss']:.4f}  "
              f"retunes: {totals['retunes']}", file=out)
    if args.out is not None:
        if str(args.out).endswith(".md"):
            path = report.write_markdown(args.out)
        else:
            path = report.write_json(args.out)
        print(f"wrote {path}", file=out)
    return 0


def _cmd_bench(args, out) -> int:
    import json as json_module

    from repro.obs import bench as bench_module

    slowdown = {}
    for item in args.slowdown or ():
        name, _, factor = item.partition("=")
        try:
            slowdown[name] = float(factor)
        except ValueError:
            raise SystemExit(
                f"--slowdown expects NAME=FACTOR, got {item!r}"
            ) from None
    results = bench_module.run_suite(
        names=tuple(args.filters) if args.filters else None,
        repeats=args.repeats,
        slowdown=slowdown,
        backend=args.backend,
    )
    paths = bench_module.write_results(results, args.out)

    if args.update_baseline:
        baseline_path = bench_module.write_baseline(results, args.baseline)
        if args.format == "json":
            print(json_module.dumps(
                {"results": [r.to_dict() for r in results],
                 "baseline": str(baseline_path)}), file=out)
        else:
            print(_bench_results_table(results), file=out)
            print(f"recorded baseline {baseline_path}", file=out)
        return 0

    comparison = None
    if args.baseline.exists():
        baseline = bench_module.load_baseline(args.baseline)
        comparison = bench_module.compare_to_baseline(
            results, baseline, baseline_path=str(args.baseline)
        )
    if args.format == "json":
        payload = {
            "results": [r.to_dict() for r in results],
            "comparison": comparison.to_dict() if comparison else None,
        }
        print(json_module.dumps(payload), file=out)
    else:
        print(_bench_results_table(results), file=out)
        for path in paths:
            print(f"wrote {path}", file=out)
        if comparison is None:
            print(f"no baseline at {args.baseline}; comparison skipped "
                  f"(record one with --update-baseline)", file=out)
        else:
            print(comparison.table(), file=out)
    if comparison is None or comparison.ok:
        print("bench: OK", file=out)
        return 0
    names = ", ".join(c.name for c in comparison.regressions)
    print(f"bench: REGRESSED ({names})", file=out)
    return 0 if args.soft else 1


def _bench_results_table(results) -> str:
    rows = [
        [r.name, r.repeats, f"{r.seconds * 1e3:.3f}", f"{r.mflops:.1f}"]
        for r in results
    ]
    return format_table(
        ["benchmark", "repeats", "median (ms)", "MFLOP/s"], rows,
        title="microbenchmarks",
    )


def _cmd_chaos(args, out) -> int:
    import json as json_module

    from repro.resilience.chaos import run_chaos

    report = run_chaos(
        plan_name=args.plan,
        seed=args.seed,
        epochs=args.epochs,
        batch=args.batch,
        samples=args.samples,
        threads=args.threads,
        backend=args.backend,
        scheduler=args.scheduler,
        check_resume=not args.no_resume_check,
    )
    if args.format == "json":
        print(json_module.dumps(report.to_dict()), file=out)
    else:
        for line in report.lines():
            print(line, file=out)
        print("chaos: OK" if report.ok else "chaos: FAILED", file=out)
    if args.out is not None:
        path = report.write_json(args.out)
        print(f"wrote {path}", file=out)
    return 0 if report.ok else 1


def _cmd_shm(args, out) -> int:
    import json as json_module

    from repro.runtime import shm as shm_module

    reaped = shm_module.reap_orphans() if args.action == "reap" else ()
    entries = shm_module.manifest_entries()
    payload = {
        "action": args.action,
        "reaped": list(reaped),
        "entries": [
            {
                "name": e.name,
                "pid": e.pid,
                "role": e.role,
                "created": e.created,
                "owner_alive": e.owner_alive,
                "segment_exists": e.segment_exists,
                "orphaned": e.orphaned,
            }
            for e in entries
        ],
    }
    if args.format == "json":
        print(json_module.dumps(payload), file=out)
    else:
        if entries:
            rows = [
                [e.name, e.pid, e.role or "-",
                 "yes" if e.owner_alive else "no",
                 "yes" if e.segment_exists else "no",
                 "YES" if e.orphaned else "no"]
                for e in entries
            ]
            print(format_table(
                ["segment", "owner pid", "role", "owner alive", "on host",
                 "orphaned"],
                rows, title="shm manifest",
            ), file=out)
        else:
            print("shm manifest: no segments", file=out)
        if args.action == "reap":
            print(f"reaped {len(reaped)} orphaned segment(s)"
                  + (": " + ", ".join(reaped) if reaped else ""), file=out)
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json_module.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.out}", file=out)
    # Leak gate: orphaned segments surviving a list (or worse, a reap)
    # mean crashed owners are still pinning host memory.
    return 1 if any(e.orphaned for e in entries) else 0


def _cmd_workers(args, out) -> int:
    import json as json_module

    from repro.runtime import shm as shm_module
    from repro.runtime.backends import ProcessBackend, worker_diagnostics

    backend = ProcessBackend(args.workers)
    try:
        backend.start()
        diagnostics = backend.broadcast(worker_diagnostics)
        state = backend.supervisor_state()
    except Exception as exc:  # noqa: BLE001 - report, don't traceback
        print(f"workers: backend failed: {type(exc).__name__}: {exc}",
              file=out)
        return 1
    finally:
        backend.shutdown()
    ok = (len(diagnostics) == args.workers
          and all(w["alive"] for w in state["workers"])
          and state["supervisor_alive"])
    payload = {"ok": ok, "state": state, "diagnostics": diagnostics}
    if args.format == "json":
        print(json_module.dumps(payload), file=out)
    else:
        diag_by_pid = {d["pid"]: d for d in diagnostics}
        rows = []
        for worker in state["workers"]:
            diag = diag_by_pid.get(worker["pid"], {})
            rows.append([
                worker["pid"], worker["slot"],
                "alive" if worker["alive"] else "dead",
                worker["state"], int(worker["beats"]),
                worker["outstanding"],
                diag.get("engines_cached", "-"),
                diag.get("segments_attached", "-"),
            ])
        print(format_table(
            ["pid", "slot", "status", "state", "beats", "outstanding",
             "engines", "segments"],
            rows, title="process-backend workers",
        ), file=out)
        deadline = state["task_deadline"]
        print(f"supervisor: {'alive' if state['supervisor_alive'] else 'dead'}"
              f", deadline "
              f"{'none' if deadline is None else f'{deadline:.1f}s'}"
              f", respawns {state['respawns']}"
              f", redispatches {state['redispatches']}"
              f", hung {state['hung_workers']}", file=out)
        print(f"manifest segments: {len(shm_module.manifest_entries())}",
              file=out)
        print("workers: OK" if ok else "workers: DEGRADED", file=out)
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json_module.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.out}", file=out)
    return 0 if ok else 1


def _cmd_check(args, out) -> int:
    import json as json_module

    from repro.check.runner import run_all
    from repro.check.sarif import to_sarif, write_sarif

    selected = list(args.analyzers or ())
    for name in args.only or ():
        if name not in selected:
            selected.append(name)
    report = run_all(analyzers=tuple(selected) if selected else None)
    if args.format == "json":
        print(json_module.dumps(report.to_dict()), file=out)
    elif args.format == "sarif":
        print(json_module.dumps(to_sarif(report)), file=out)
    else:
        if report.findings and not args.quiet:
            print(report.table(), file=out)
        print(report.summary(), file=out)
    out_path = args.out if args.out is not None else args.json_alias
    if out_path is not None:
        if args.format == "sarif":
            path = write_sarif(report, out_path)
        else:
            path = report.write_json(out_path)
        print(f"wrote {path}", file=out)
    return 0 if report.ok else 1


def main(argv: list[str] | None = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out or sys.stdout
    args = _build_parser().parse_args(argv)
    if args.command == "characterize":
        return _cmd_characterize(args, out)
    if args.command == "schedule":
        return _cmd_schedule(args, out)
    if args.command == "plan":
        return _cmd_plan(args, out)
    if args.command == "figure":
        return _cmd_figure(args, out)
    if args.command == "explain":
        return _cmd_explain(args, out)
    if args.command == "reproduce":
        return _cmd_reproduce(args, out)
    if args.command == "trace":
        return _cmd_trace(args, out)
    if args.command == "check":
        return _cmd_check(args, out)
    if args.command == "chaos":
        return _cmd_chaos(args, out)
    if args.command in ("train", "monitor"):
        return _cmd_train(args, out)
    if args.command == "bench":
        return _cmd_bench(args, out)
    if args.command == "shm":
        return _cmd_shm(args, out)
    if args.command == "workers":
        return _cmd_workers(args, out)
    if args.command == "engines":
        for name in engine_names():
            print(name, file=out)
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
