"""Image preprocessing and augmentation.

Table 2's note — "the disparity in Nx values of Layer 0 is due to image
padding/cropping" — reflects the standard training-time preprocessing of
the paper's benchmarks: images are padded/cropped to the network's input
extent and randomly flipped.  These transforms implement that pipeline
for the synthetic datasets.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError


def pad_images(images: np.ndarray, pad: int) -> np.ndarray:
    """Zero-pad a ``[B, C, Y, X]`` batch on both spatial sides."""
    if images.ndim != 4:
        raise ShapeError(f"expected [B, C, Y, X], got {images.shape}")
    if pad < 0:
        raise ShapeError(f"pad must be non-negative, got {pad}")
    if pad == 0:
        return images
    return np.pad(images, ((0, 0), (0, 0), (pad, pad), (pad, pad)))


def random_crop(images: np.ndarray, size: int,
                rng: np.random.Generator) -> np.ndarray:
    """Random ``size x size`` crops, one offset per image."""
    if images.ndim != 4:
        raise ShapeError(f"expected [B, C, Y, X], got {images.shape}")
    b, c, y, x = images.shape
    if size <= 0 or size > y or size > x:
        raise ShapeError(f"crop size {size} invalid for {y}x{x} images")
    out = np.empty((b, c, size, size), dtype=images.dtype)
    offs_y = rng.integers(0, y - size + 1, size=b)
    offs_x = rng.integers(0, x - size + 1, size=b)
    for i in range(b):
        out[i] = images[i, :, offs_y[i] : offs_y[i] + size,
                        offs_x[i] : offs_x[i] + size]
    return out


def center_crop(images: np.ndarray, size: int) -> np.ndarray:
    """Deterministic central crops (the evaluation-time counterpart)."""
    if images.ndim != 4:
        raise ShapeError(f"expected [B, C, Y, X], got {images.shape}")
    _, _, y, x = images.shape
    if size <= 0 or size > y or size > x:
        raise ShapeError(f"crop size {size} invalid for {y}x{x} images")
    oy = (y - size) // 2
    ox = (x - size) // 2
    return images[:, :, oy : oy + size, ox : ox + size]


def random_horizontal_flip(images: np.ndarray, rng: np.random.Generator,
                           probability: float = 0.5) -> np.ndarray:
    """Flip each image left-right with the given probability."""
    if images.ndim != 4:
        raise ShapeError(f"expected [B, C, Y, X], got {images.shape}")
    if not 0.0 <= probability <= 1.0:
        raise ShapeError(f"probability must be in [0, 1], got {probability}")
    out = images.copy()
    flips = rng.random(images.shape[0]) < probability
    out[flips] = out[flips, :, :, ::-1]
    return out


def standardize(images: np.ndarray, epsilon: float = 1e-6) -> np.ndarray:
    """Per-channel zero-mean unit-variance normalization over the batch."""
    if images.ndim != 4:
        raise ShapeError(f"expected [B, C, Y, X], got {images.shape}")
    mean = images.mean(axis=(0, 2, 3), keepdims=True)
    std = images.std(axis=(0, 2, 3), keepdims=True)
    return ((images - mean) / (std + epsilon)).astype(images.dtype, copy=False)


class AugmentationPipeline:
    """Composable training-time preprocessing: pad -> crop -> flip."""

    def __init__(self, pad: int = 0, crop: int | None = None,
                 flip_probability: float = 0.5, seed: int = 0):
        self.pad = pad
        self.crop = crop
        self.flip_probability = flip_probability
        self._rng = np.random.default_rng(seed)

    def __call__(self, images: np.ndarray, training: bool = True) -> np.ndarray:
        out = pad_images(images, self.pad)
        if self.crop is not None:
            if training:
                out = random_crop(out, self.crop, self._rng)
            else:
                out = center_crop(out, self.crop)
        if training and self.flip_probability > 0:
            out = random_horizontal_flip(out, self._rng, self.flip_probability)
        return out
