"""The paper's benchmark convolutions (Table 1) and network layers (Table 2).

Table 1 lists six synthetic convolutions chosen to span the design space of
Fig. 1 (high / moderate / low arithmetic intensity).  Table 2 lists the
convolutional layer specifications of the four real-world image-recognition
benchmarks: ImageNet-22K (Adam-ImageNet), ImageNet-1K (AlexNet), CIFAR-10
and MNIST.
"""

from __future__ import annotations

from repro.core.convspec import ConvSpec, square_conv

#: Table 1 convolutions, indexed by the paper's ID 0-5.  Order of the
#: parameters in the paper is ``Nx(=Ny), Nf, Nc, Fx(=Fy)``.
TABLE1_CONVS: tuple[ConvSpec, ...] = (
    square_conv(32, 32, 32, 4, name="ID0"),
    square_conv(64, 1024, 512, 2, name="ID1"),
    square_conv(256, 256, 128, 3, name="ID2"),
    square_conv(128, 128, 64, 7, name="ID3"),
    square_conv(128, 512, 256, 5, name="ID4"),
    square_conv(64, 64, 16, 11, name="ID5"),
)

#: Intrinsic AIT values as printed in Table 1, used as a regression oracle.
TABLE1_INTRINSIC_AIT: tuple[int, ...] = (362, 2015, 1510, 3561, 6567, 1921)

#: Unfold+GEMM AIT values as printed in Table 1.
TABLE1_UNFOLD_AIT: tuple[int, ...] = (25, 725, 226, 113, 456, 44)

#: Fig. 1 regions each Table 1 convolution occupies, as printed in Table 1.
TABLE1_REGIONS: tuple[tuple[int, int], ...] = (
    (4, 5),
    (0, 1),
    (2, 3),
    (2, 3),
    (2, 3),
    (4, 5),
)


def _layers(name: str, specs: list[tuple[int, int, int, int, int]]) -> tuple[ConvSpec, ...]:
    return tuple(
        square_conv(n, nf, nc, f, stride=s, name=f"{name}-L{i}")
        for i, (n, nf, nc, f, s) in enumerate(specs)
    )


#: Table 2: convolution specifications ``Nx(=Ny), Nf, Nc, Fx(=Fy), sx(=sy)``
#: for each benchmark network.  The Nx of layer 0 reflects the paper's
#: image padding/cropping.
TABLE2_LAYERS: dict[str, tuple[ConvSpec, ...]] = {
    "imagenet-22k": _layers(
        "imagenet-22k",
        [
            (262, 120, 3, 7, 2),
            (64, 250, 120, 5, 2),
            (15, 400, 250, 3, 1),
            (13, 400, 400, 3, 1),
            (11, 600, 400, 3, 1),
        ],
    ),
    "imagenet-1k": _layers(
        "imagenet-1k",
        [
            (224, 96, 3, 11, 4),
            (55, 256, 96, 5, 1),
            (27, 384, 256, 3, 1),
            (13, 256, 192, 3, 1),
        ],
    ),
    "cifar-10": _layers(
        "cifar-10",
        [
            (36, 64, 3, 5, 1),
            (8, 64, 64, 5, 1),
        ],
    ),
    "mnist": _layers(
        "mnist",
        [
            (28, 20, 1, 5, 1),
        ],
    ),
}

#: Display names used in figures, in the order of Fig. 8's x-axis.
BENCHMARK_ORDER: tuple[str, ...] = ("imagenet-22k", "imagenet-1k", "cifar-10", "mnist")

BENCHMARK_TITLES: dict[str, str] = {
    "imagenet-22k": "ADAM-ImageNet",
    "imagenet-1k": "AlexNet",
    "cifar-10": "CIFAR-10",
    "mnist": "MNIST",
}


def table1_conv(conv_id: int) -> ConvSpec:
    """Return the Table 1 convolution with the given paper ID (0-5)."""
    return TABLE1_CONVS[conv_id]


def benchmark_layers(benchmark: str) -> tuple[ConvSpec, ...]:
    """Return the Table 2 convolution layers for ``benchmark``.

    Raises ``KeyError`` with the list of known benchmarks when unknown.
    """
    try:
        return TABLE2_LAYERS[benchmark]
    except KeyError:
        known = ", ".join(sorted(TABLE2_LAYERS))
        raise KeyError(f"unknown benchmark {benchmark!r}; known: {known}") from None
