"""Error-gradient sparsity measurement and trajectories (paper Fig. 3b).

The paper measures the sparsity of back-propagated activation errors
across training epochs for MNIST, CIFAR and ImageNet-100, finding > 85%
sparsity after the second epoch and a rising trend as the model improves.
The sparsity arises mechanically: max pooling routes each window's
gradient to one element (>= 75% zeros for 2x2 windows) and ReLU zeroes
the gradient wherever activations were clamped.

:func:`measure_sparsity_trajectory` reproduces the measurement by
actually training the small zoo networks on synthetic data and recording
the mean conv-layer error sparsity per epoch.
:func:`analytic_sparsity_trajectory` provides the closed-form expectation
used by fast tests and as a cross-check.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.synthetic import Dataset
from repro.nn.network import Network
from repro.nn.sgd import SGDTrainer


@dataclass(frozen=True)
class SparsityTrajectory:
    """Per-epoch mean error sparsity of a benchmark's conv layers."""

    benchmark: str
    epochs: tuple[int, ...]
    sparsity: tuple[float, ...]

    def after_epoch(self, epoch: int) -> float:
        """Sparsity recorded after the given 1-based epoch."""
        return self.sparsity[self.epochs.index(epoch)]


def measure_sparsity_trajectory(
    network: Network,
    dataset: Dataset,
    num_epochs: int = 10,
    batch_size: int = 16,
    learning_rate: float = 0.05,
    benchmark: str = "",
) -> SparsityTrajectory:
    """Train ``network`` and record mean conv error sparsity per epoch."""
    trainer = SGDTrainer(network, learning_rate=learning_rate)
    epochs, values = [], []
    for epoch in range(1, num_epochs + 1):
        results = trainer.train_epoch(dataset.images, dataset.labels, batch_size)
        per_step = [
            float(np.mean(list(r.error_sparsities.values())))
            for r in results
            if r.error_sparsities
        ]
        epochs.append(epoch)
        values.append(float(np.mean(per_step)) if per_step else 0.0)
    return SparsityTrajectory(
        benchmark=benchmark or network.name,
        epochs=tuple(epochs),
        sparsity=tuple(values),
    )


def expected_pool_relu_sparsity(pool_kernel: int, relu_dead_fraction: float) -> float:
    """Expected error sparsity after a ReLU feeding a pooling layer.

    A ``k x k`` max-pool window passes gradient to one of ``k^2``
    positions; of those survivors, a ``relu_dead_fraction`` are zeroed by
    the ReLU mask.  Zero patterns compose multiplicatively because the
    pool winner and the ReLU mask are (approximately) independent.
    """
    if pool_kernel <= 0:
        raise ValueError(f"pool_kernel must be positive, got {pool_kernel}")
    if not 0 <= relu_dead_fraction <= 1:
        raise ValueError(f"relu_dead_fraction must be in [0,1], got {relu_dead_fraction}")
    survive = (1.0 / (pool_kernel * pool_kernel)) * (1.0 - relu_dead_fraction)
    return 1.0 - survive


def analytic_sparsity_trajectory(
    benchmark: str,
    num_epochs: int = 10,
    initial: float = 0.82,
    asymptote: float = 0.97,
    rate: float = 0.45,
) -> SparsityTrajectory:
    """Closed-form rising trajectory matching the Fig. 3b shape.

    Sparsity starts above the pool+ReLU floor and saturates towards the
    asymptote as the model's predictions sharpen; the defaults land above
    85% from epoch 2 onward, as the paper reports.
    """
    if num_epochs <= 0:
        raise ValueError(f"num_epochs must be positive, got {num_epochs}")
    epochs = tuple(range(1, num_epochs + 1))
    values = tuple(
        asymptote - (asymptote - initial) * float(np.exp(-rate * (e - 1)))
        for e in epochs
    )
    return SparsityTrajectory(benchmark=benchmark, epochs=epochs, sparsity=values)
