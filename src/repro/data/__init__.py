"""Benchmark tables, synthetic datasets and sparsity measurement."""

from repro.data.synthetic import Dataset, make_dataset
from repro.data.tables import (
    BENCHMARK_ORDER,
    TABLE1_CONVS,
    TABLE2_LAYERS,
    benchmark_layers,
    table1_conv,
)

__all__ = [
    "TABLE1_CONVS",
    "TABLE2_LAYERS",
    "BENCHMARK_ORDER",
    "table1_conv",
    "benchmark_layers",
    "Dataset",
    "make_dataset",
]
