"""Synthetic classification datasets.

The paper trains on MNIST, CIFAR-10 and ImageNet; those datasets are not
available offline, and nothing in the kernels or the performance model
depends on pixel content -- only on tensor shapes and the value sparsity
that training dynamics produce.  These generators produce learnable
class-structured images (a smooth per-class template plus noise) so that
end-to-end training genuinely converges and develops the error-gradient
sparsity measured in Fig. 3b.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError


@dataclass(frozen=True)
class Dataset:
    """A labelled image set: ``images [N, C, Y, X]``, ``labels [N]``."""

    images: np.ndarray
    labels: np.ndarray
    num_classes: int

    def __post_init__(self) -> None:
        if self.images.ndim != 4:
            raise ShapeError(f"images must be [N, C, Y, X], got {self.images.shape}")
        if self.labels.shape != (self.images.shape[0],):
            raise ShapeError(
                f"labels shape {self.labels.shape} != ({self.images.shape[0]},)"
            )
        if self.num_classes <= 0:
            raise ShapeError(f"num_classes must be positive, got {self.num_classes}")

    def __len__(self) -> int:
        return self.images.shape[0]

    def batches(self, batch_size: int):
        """Yield ``(images, labels)`` minibatches in order."""
        if batch_size <= 0:
            raise ShapeError(f"batch_size must be positive, got {batch_size}")
        for lo in range(0, len(self), batch_size):
            yield self.images[lo : lo + batch_size], self.labels[lo : lo + batch_size]


def _class_templates(
    num_classes: int, shape: tuple[int, int, int], rng: np.random.Generator
) -> np.ndarray:
    """Smooth, well-separated per-class image templates.

    Each class gets a distinct low-frequency sinusoidal pattern; smoothness
    matters because convolutional features pick up spatially coherent
    structure, making the task learnable by small CNNs.
    """
    c, y, x = shape
    yy, xx = np.meshgrid(np.linspace(0, 1, y), np.linspace(0, 1, x), indexing="ij")
    templates = np.empty((num_classes, c, y, x), dtype=np.float32)
    for k in range(num_classes):
        fy_, fx_ = rng.uniform(1.0, 4.0, size=2)
        phase_y, phase_x = rng.uniform(0, 2 * np.pi, size=2)
        base = np.sin(2 * np.pi * fy_ * yy + phase_y) * np.cos(
            2 * np.pi * fx_ * xx + phase_x
        )
        channel_gains = rng.uniform(0.5, 1.5, size=(c, 1, 1))
        templates[k] = (base[None] * channel_gains).astype(np.float32)
    return templates


def make_dataset(
    num_samples: int,
    num_classes: int,
    image_shape: tuple[int, int, int],
    noise: float = 0.5,
    seed: int = 0,
) -> Dataset:
    """Generate a learnable synthetic dataset.

    ``noise`` controls difficulty: 0 makes every example its class
    template; larger values mix in Gaussian noise.
    """
    if num_samples <= 0:
        raise ShapeError(f"num_samples must be positive, got {num_samples}")
    if noise < 0:
        raise ShapeError(f"noise must be non-negative, got {noise}")
    rng = np.random.default_rng(seed)
    templates = _class_templates(num_classes, image_shape, rng)
    labels = rng.integers(0, num_classes, size=num_samples)
    images = templates[labels] + noise * rng.standard_normal(
        (num_samples,) + tuple(image_shape)
    ).astype(np.float32)
    return Dataset(images=images.astype(np.float32), labels=labels, num_classes=num_classes)


def mnist_like(num_samples: int = 256, seed: int = 0) -> Dataset:
    """28x28 single-channel, 10 classes (MNIST-shaped)."""
    return make_dataset(num_samples, 10, (1, 28, 28), noise=0.4, seed=seed)


def cifar10_like(num_samples: int = 256, seed: int = 0) -> Dataset:
    """32x32 RGB, 10 classes (CIFAR-10-shaped)."""
    return make_dataset(num_samples, 10, (3, 32, 32), noise=0.5, seed=seed)


def imagenet100_like(num_samples: int = 256, seed: int = 0) -> Dataset:
    """48x48 RGB, 100 classes (reduced ImageNet-100 canvas)."""
    return make_dataset(num_samples, 100, (3, 48, 48), noise=0.5, seed=seed)
