"""spg-CNN: optimizing CNN training on multicores (ASPLOS'17 reproduction).

Public API highlights:

* :class:`repro.ConvSpec` -- convolution shape algebra and AIT formulas.
* :func:`repro.characterize` -- place a convolution in the Fig. 1
  design space.
* :func:`repro.make_engine` -- instantiate any of the execution engines
  (``parallel-gemm``, ``gemm-in-parallel``, ``stencil``, ``sparse``).
* :class:`repro.SpgCNN` -- the optimization framework: plans, deploys and
  re-tunes the fastest engine per layer and phase of a network.
* :func:`repro.xeon_e5_2650` -- the paper's machine for the performance
  model; :mod:`repro.analysis.figures` regenerates every table/figure.
"""

from repro.check import CheckReport, Finding
from repro.core.autotuner import Autotuner, MeasuredCostBackend, ModelCostBackend
from repro.core.characterization import Region, characterize, classify
from repro.core.convspec import ConvSpec, square_conv
from repro.core.framework import SpgCNN
from repro.core.scheduler import WorkItem, schedule
from repro.core.workload import TrainingWorkload, estimate_training_time
from repro.core.goodput import GoodputReport, dense_goodput_bound, measure_sparsity
from repro.core.plan import ExecutionPlan, LayerPlan
from repro.machine.spec import MachineSpec, xeon_e5_2650
from repro.nn.netdef import build_network, network_from_text
from repro.nn.network import Network
from repro.nn.sgd import SGDTrainer
from repro.nn.training_loop import TrainingLoop
from repro.runtime.parallel import ParallelExecutor
from repro.runtime.pool import WorkerPool
from repro.ops.engine import ConvEngine, engine_names, make_engine
from repro.telemetry import TelemetryCollector

# Importing the engine modules registers them with make_engine.
import repro.nn.layers.conv  # noqa: F401
import repro.ops.fft_conv  # noqa: F401

__version__ = "1.0.0"

__all__ = [
    "CheckReport",
    "Finding",
    "ConvSpec",
    "square_conv",
    "Region",
    "characterize",
    "classify",
    "GoodputReport",
    "dense_goodput_bound",
    "measure_sparsity",
    "ConvEngine",
    "engine_names",
    "make_engine",
    "Autotuner",
    "ModelCostBackend",
    "MeasuredCostBackend",
    "ExecutionPlan",
    "LayerPlan",
    "SpgCNN",
    "MachineSpec",
    "xeon_e5_2650",
    "Network",
    "build_network",
    "network_from_text",
    "SGDTrainer",
    "TrainingLoop",
    "WorkItem",
    "schedule",
    "TrainingWorkload",
    "estimate_training_time",
    "ParallelExecutor",
    "WorkerPool",
    "TelemetryCollector",
    "__version__",
]
