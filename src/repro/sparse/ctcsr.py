"""Column-Tiled Compressed Sparse Row (CT-CSR) format (paper Sec. 4.2).

CT-CSR adapts CSR for locality: the sparse matrix is first tiled along its
columns and each tile is stored in CSR (Fig. 5a).  Within a tile, the
non-zeros of two adjacent rows are adjacent in memory, so a tile's working
set spans far fewer pages than full-width CSR rows would -- the paper's
TLB-miss argument.

For the sparse BP kernels the matrix being compressed is the output error
``EO`` viewed as ``[out_Ny*out_Nx, Nf]`` (one row per output position, one
column per output feature, ``f`` fastest in memory per the Sec. 4.2 layout
transformation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.blas.sparse import CSRMatrix, csr_from_dense, csr_matmul_dense
from repro.errors import ShapeError

#: Default column-tile width: 64 columns x 4 B = one 256 B stretch per row,
#: keeping a tile's rows dense in memory without fragmenting small feature
#: counts into many tiles.
DEFAULT_TILE_COLS = 64


@dataclass(frozen=True)
class CTCSRMatrix:
    """A column-tiled CSR sparse matrix."""

    shape: tuple[int, int]
    tile_cols: int
    tiles: tuple[CSRMatrix, ...]

    def __post_init__(self) -> None:
        rows, cols = self.shape
        if self.tile_cols <= 0:
            raise ShapeError(f"tile_cols must be positive, got {self.tile_cols}")
        expected_tiles = max(1, math.ceil(cols / self.tile_cols))
        if len(self.tiles) != expected_tiles:
            raise ShapeError(
                f"expected {expected_tiles} column tiles for shape {self.shape} "
                f"with tile_cols={self.tile_cols}, got {len(self.tiles)}"
            )
        for t, tile in enumerate(self.tiles):
            width = min(self.tile_cols, cols - t * self.tile_cols) if cols else 0
            if tile.shape != (rows, max(width, 0)):
                raise ShapeError(
                    f"tile {t} has shape {tile.shape}, expected ({rows}, {width})"
                )

    @property
    def nnz(self) -> int:
        """Total stored non-zeros across all tiles."""
        return sum(tile.nnz for tile in self.tiles)

    @property
    def sparsity(self) -> float:
        """Fraction of zero elements in the dense view."""
        total = self.shape[0] * self.shape[1]
        if total == 0:
            return 0.0
        return 1.0 - self.nnz / total

    @property
    def num_tiles(self) -> int:
        """Number of column tiles."""
        return len(self.tiles)

    def to_dense(self) -> np.ndarray:
        """Materialize the dense ``[rows, cols]`` array."""
        rows, cols = self.shape
        dense = np.zeros((rows, cols), dtype=self.tiles[0].values.dtype)
        for t, tile in enumerate(self.tiles):
            lo = t * self.tile_cols
            dense[:, lo : lo + tile.shape[1]] = tile.to_dense()
        return dense

    def matmul_dense(self, dense: np.ndarray) -> np.ndarray:
        """``self . dense`` accumulated tile by tile.

        Each column tile multiplies the matching row band of ``dense``;
        iterating tiles in order is what gives the format its reuse of the
        dense operand's rows (Fig. 5b).
        """
        rows, cols = self.shape
        if dense.ndim != 2 or dense.shape[0] != cols:
            raise ShapeError(
                f"dense shape {dense.shape} incompatible with CT-CSR {self.shape}"
            )
        out = np.zeros((rows, dense.shape[1]), dtype=dense.dtype)
        for t, tile in enumerate(self.tiles):
            lo = t * self.tile_cols
            band = dense[lo : lo + tile.shape[1]]
            if tile.nnz:
                out += csr_matmul_dense(tile, band)
        return out

    def t_matmul_dense(self, dense: np.ndarray) -> np.ndarray:
        """``self^T . dense`` -- used by the sparse dW kernel (Eq. 4)."""
        rows, cols = self.shape
        if dense.ndim != 2 or dense.shape[0] != rows:
            raise ShapeError(
                f"dense shape {dense.shape} incompatible with CT-CSR^T {self.shape}"
            )
        out = np.zeros((cols, dense.shape[1]), dtype=dense.dtype)
        for t, tile in enumerate(self.tiles):
            if not tile.nnz:
                continue
            lo = t * self.tile_cols
            row_of_value = np.repeat(
                np.arange(rows), np.diff(tile.row_ptr).astype(np.int64)
            )
            contrib = dense[row_of_value] * tile.values[:, None]
            np.add.at(out, lo + tile.col_indices, contrib)
        return out


def ctcsr_from_dense(dense: np.ndarray, tile_cols: int = DEFAULT_TILE_COLS) -> CTCSRMatrix:
    """Compress a dense 2-d array into CT-CSR with the given tile width."""
    if dense.ndim != 2:
        raise ShapeError(f"expected a 2-d array, got shape {dense.shape}")
    rows, cols = dense.shape
    num_tiles = max(1, math.ceil(cols / tile_cols))
    tiles = tuple(
        csr_from_dense(dense[:, t * tile_cols : min((t + 1) * tile_cols, cols)])
        for t in range(num_tiles)
    )
    return CTCSRMatrix(shape=dense.shape, tile_cols=tile_cols, tiles=tiles)


def build_cost_elems(shape: tuple[int, int], nnz: int) -> int:
    """Element traffic of building CT-CSR: scan the dense matrix once and
    write values + column indices + row pointers (counted in elements)."""
    rows, cols = shape
    return rows * cols + 2 * nnz + rows + 1
