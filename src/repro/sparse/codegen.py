"""Specialized sparse-kernel code generation (paper Sec. 4.2).

Like the stencil generator, the sparse generator emits Python source with
every kernel tap unrolled and every pointer-shifted destination slice a
literal -- the structure of Fig. 6, where each arrow (one tap's sparse
MM and its shifted placement) becomes one generated statement.  The
emitted kernels call the CT-CSR tile multiply as their "small dense MM"
building block.

The emitters are schedule-aware in the same way as the stencil ones: the
codegen cache is keyed on ``(spec, pipeline)`` so distinct schedules can
never collide, and the tap order is read off the scheduled loop nest.
The sparse families' only legal pass is tap ``reorder`` -- and only for
the dW kernel, where every ``dw_layout[ky, kx]`` slice is written by
exactly one tap; the EI kernel's taps accumulate into overlapping input
slices, so the loop IR marks them REDUCE_ORDERED and rejects reorders.
"""

from __future__ import annotations

import functools

from repro.core.convspec import ConvSpec
from repro.errors import CodegenError
from repro.stencil.emit import GeneratedKernel
from repro.stencil.passes import SchedulePipeline, default_pipeline
import numpy as np


def _compile(name: str, source: str) -> GeneratedKernel:
    namespace: dict = {"np": np}
    try:
        code = compile(source, filename=f"<generated:{name}>", mode="exec")
        exec(code, namespace)  # noqa: S102 - generated from trusted templates
    except SyntaxError as exc:  # pragma: no cover - template bug guard
        raise CodegenError(f"generated kernel {name} failed to compile: {exc}") from exc
    return GeneratedKernel(name=name, source=source, func=namespace[name])


def _slice_expr(start: int, count: int, stride: int) -> str:
    stop = start + (count - 1) * stride + 1
    if stride == 1:
        return f"{start}:{stop}"
    return f"{start}:{stop}:{stride}"


def _taps(spec: ConvSpec, pipeline: SchedulePipeline) -> list[tuple[int, int]]:
    """Kernel taps in the scheduled enumeration order."""
    nest = pipeline.build_nest(spec)
    stage = nest.stages[0]
    order = [li.dim.name for li in stage.loops if li.dim.name in ("ky", "kx")]
    extents = {"ky": spec.fy, "kx": spec.fx}
    taps = []
    for first in range(extents[order[0]]):
        for second in range(extents[order[1]]):
            tap = {order[0]: first, order[1]: second}
            taps.append((tap["ky"], tap["kx"]))
    return taps


def _kernel_name(base: str, pipeline: SchedulePipeline) -> str:
    if pipeline.is_default:
        return base
    return f"{base}__s{pipeline.fingerprint()}"


@functools.lru_cache(maxsize=256)
def emit_sparse_backward_data(
    spec: ConvSpec, pipeline: SchedulePipeline | None = None
) -> GeneratedKernel:
    """Generate the pointer-shifting EI kernel for ``spec``.

    Signature: ``kernel(eo, w_layout, in_error_hwc) -> in_error_hwc`` with
    ``eo`` a CT-CSR ``[Ny*Nx, Nf]`` matrix, ``w_layout [Ky, Kx, Nf, Nc]``
    and ``in_error_hwc [Ny, Nx, Nc]`` zeroed by the caller.
    """
    if spec.pad != 0:
        raise CodegenError("emit_sparse_backward_data requires a pre-padded spec")
    pipeline = pipeline or default_pipeline("sparse_bp_data")
    if pipeline.family != "sparse_bp_data":
        raise CodegenError(
            f"emit_sparse_backward_data got a {pipeline.family!r} pipeline"
        )
    base = (
        f"sparse_bp_{spec.nc}x{spec.ny}x{spec.nx}_{spec.nf}"
        f"_{spec.fy}x{spec.fx}_s{spec.sy}{spec.sx}"
    )
    name = _kernel_name(base, pipeline)
    oy, ox, nc = spec.out_ny, spec.out_nx, spec.nc
    lines = [
        f"def {name}(eo, w_layout, in_error_hwc):",
        f'    """Generated sparse EI kernel for {spec.describe()}."""',
        f"    assert eo.shape == {(oy * ox, spec.nf)!r}, eo.shape",
        f"    assert in_error_hwc.shape == {(spec.ny, spec.nx, nc)!r}, in_error_hwc.shape",
    ]
    for ky, kx in _taps(spec, pipeline):
        ys = _slice_expr(ky, oy, spec.sy)
        xs = _slice_expr(kx, ox, spec.sx)
        lines.append(
            f"    in_error_hwc[{ys}, {xs}, :] += "
            f"eo.matmul_dense(w_layout[{ky}, {kx}]).reshape({oy}, {ox}, {nc})"
        )
    lines.append("    return in_error_hwc")
    return _compile(name, "\n".join(lines) + "\n")


@functools.lru_cache(maxsize=256)
def emit_sparse_backward_weights(
    spec: ConvSpec, pipeline: SchedulePipeline | None = None
) -> GeneratedKernel:
    """Generate the pointer-shifting dW kernel for ``spec``.

    Signature: ``kernel(eo, inputs_hwc, dw_layout) -> dw_layout`` with
    ``dw_layout [Ky, Kx, Nf, Nc]`` zeroed by the caller.
    """
    if spec.pad != 0:
        raise CodegenError("emit_sparse_backward_weights requires a pre-padded spec")
    pipeline = pipeline or default_pipeline("sparse_bp_weights")
    if pipeline.family != "sparse_bp_weights":
        raise CodegenError(
            f"emit_sparse_backward_weights got a {pipeline.family!r} pipeline"
        )
    base = (
        f"sparse_dw_{spec.nc}x{spec.ny}x{spec.nx}_{spec.nf}"
        f"_{spec.fy}x{spec.fx}_s{spec.sy}{spec.sx}"
    )
    name = _kernel_name(base, pipeline)
    oy, ox, nc = spec.out_ny, spec.out_nx, spec.nc
    lines = [
        f"def {name}(eo, inputs_hwc, dw_layout):",
        f'    """Generated sparse dW kernel for {spec.describe()}."""',
        f"    assert inputs_hwc.shape == {(spec.ny, spec.nx, nc)!r}, inputs_hwc.shape",
        f"    assert dw_layout.shape == {(spec.fy, spec.fx, spec.nf, nc)!r}, dw_layout.shape",
    ]
    for ky, kx in _taps(spec, pipeline):
        ys = _slice_expr(ky, oy, spec.sy)
        xs = _slice_expr(kx, ox, spec.sx)
        lines.append(
            f"    dw_layout[{ky}, {kx}] += eo.t_matmul_dense("
            f"np.ascontiguousarray(inputs_hwc[{ys}, {xs}, :])"
            f".reshape({oy * ox}, {nc}))"
        )
    lines.append("    return dw_layout")
    return _compile(name, "\n".join(lines) + "\n")
