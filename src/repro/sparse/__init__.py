"""Sparse-Kernel code generation and CT-CSR (paper Sec. 4.2)."""

from repro.sparse.ctcsr import CTCSRMatrix, ctcsr_from_dense
from repro.sparse.engine import SparseBPEngine

__all__ = ["CTCSRMatrix", "ctcsr_from_dense", "SparseBPEngine"]
