"""Memory-access traces of sparse matrix kernels, for TLB analysis.

Generates the byte-address sequence a sparse-dense multiplication issues
against the *sparse operand's storage* under two layouts:

* plain CSR of the full-width matrix -- a row's non-zeros are contiguous,
  but the kernel walks rows within a narrow column window (the Fig. 5b
  working pattern), so consecutive touches within the window land far
  apart (one row pitch away);
* CT-CSR -- the tile containing the column window stores its rows
  adjacently, so the same walk is nearly sequential.

Replaying these traces through :class:`repro.machine.tlb.TLBSimulator`
quantifies the paper's Sec. 4.2 TLB claim.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.core.convspec import ELEMENT_BYTES
from repro.errors import ShapeError


def random_sparse_layout(
    rows: int, cols: int, density: float, seed: int = 0
) -> np.ndarray:
    """Per-row non-zero counts of a random sparse matrix."""
    if rows <= 0 or cols <= 0:
        raise ShapeError(f"rows and cols must be positive: {rows}, {cols}")
    if not 0.0 < density <= 1.0:
        raise ShapeError(f"density must be in (0, 1], got {density}")
    rng = np.random.default_rng(seed)
    return rng.binomial(cols, density, size=rows)


def csr_window_trace(
    row_nnz: np.ndarray,
    cols: int,
    window_cols: int,
    density: float,
) -> Iterator[int]:
    """Trace of walking a column window down all rows of full-width CSR.

    In full-width CSR the values of row ``r`` start at
    ``sum(row_nnz[:r]) * 4`` bytes; the kernel touches the ~``window``
    share of each row's non-zeros, then jumps a whole row of storage to
    reach the next row -- the far-apart adjacent rows of the paper's
    argument.
    """
    if window_cols <= 0 or window_cols > cols:
        raise ShapeError(f"window_cols {window_cols} invalid for {cols} columns")
    row_starts = np.concatenate([[0], np.cumsum(row_nnz)]) * ELEMENT_BYTES
    window_fraction = window_cols / cols
    for r, nnz in enumerate(row_nnz):
        in_window = max(0, int(round(nnz * window_fraction)))
        base = int(row_starts[r])
        # Window values sit somewhere inside the row's value run; take
        # the run starting at the window's column offset share.
        for v in range(in_window):
            yield base + v * ELEMENT_BYTES


def ctcsr_window_trace(
    row_nnz: np.ndarray,
    cols: int,
    window_cols: int,
    density: float,
) -> Iterator[int]:
    """Trace of the same window walk when the window is one CT-CSR tile.

    The tile's rows are stored back to back: row ``r`` of the tile starts
    right after row ``r-1``'s tile-local values, so the walk is a single
    sequential stream.
    """
    if window_cols <= 0 or window_cols > cols:
        raise ShapeError(f"window_cols {window_cols} invalid for {cols} columns")
    window_fraction = window_cols / cols
    cursor = 0
    for nnz in row_nnz:
        in_window = max(0, int(round(nnz * window_fraction)))
        for _ in range(in_window):
            yield cursor
            cursor += ELEMENT_BYTES


def compare_layout_tlb(
    rows: int,
    cols: int,
    window_cols: int,
    density: float,
    tlb_entries: int = 64,
    page_size: int = 4096,
    seed: int = 0,
) -> dict[str, float]:
    """TLB miss rates of the two layouts for the same logical kernel."""
    from repro.machine.tlb import TLBSimulator

    row_nnz = random_sparse_layout(rows, cols, density, seed=seed)
    results = {}
    for label, tracer in (("csr", csr_window_trace),
                          ("ct-csr", ctcsr_window_trace)):
        sim = TLBSimulator(entries=tlb_entries, page_size=page_size)
        stats = sim.replay(tracer(row_nnz, cols, window_cols, density))
        results[f"{label}_miss_rate"] = stats.miss_rate
        results[f"{label}_misses"] = float(stats.misses)
        results[f"{label}_accesses"] = float(stats.accesses)
    return results
