"""Weight-sparse inference kernels (paper Sec. 6, ref. [42]).

The paper contrasts its training-time sparse kernels with Liu et al.'s
*Sparse Convolutional Neural Networks*: "their algorithm is based on
knowing the position of non-zero elements in weights in advance to
generate the sparse MM code, therefore their approach is only applicable
for CNN inference but not training."  This module implements that
complementary inference path so the framework covers both sparsity
regimes:

* :func:`prune_weights` produces a magnitude-pruned weight tensor;
* :func:`emit_weight_sparse_forward` generates a forward kernel
  specialized to the *positions* of the surviving weights -- every zero
  tap is absent from the generated code, which is exactly the
  ahead-of-time specialization ref. [42] relies on (and why the approach
  cannot serve training, where the sparse operand changes every step).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.convspec import ConvSpec
from repro.errors import CodegenError, ShapeError
from repro.stencil.emit import GeneratedKernel, _compile, _slice_expr


@dataclass(frozen=True)
class PruneResult:
    """A pruned weight tensor and its sparsity statistics."""

    weights: np.ndarray
    threshold: float
    sparsity: float
    nonzero_taps: int


def prune_weights(weights: np.ndarray, sparsity: float) -> PruneResult:
    """Magnitude-prune ``weights`` to (at least) the requested sparsity.

    Zeroes the smallest-magnitude entries; the achieved sparsity can
    slightly exceed the request when values tie at the threshold.
    """
    if not 0.0 <= sparsity < 1.0:
        raise ShapeError(f"sparsity must be in [0, 1), got {sparsity}")
    flat = np.abs(weights).ravel()
    if sparsity == 0.0:
        threshold = -1.0
    else:
        k = int(np.floor(sparsity * flat.size))
        threshold = float(np.partition(flat, k - 1)[k - 1]) if k else -1.0
    pruned = np.where(np.abs(weights) > threshold, weights, 0.0).astype(
        weights.dtype
    )
    nnz = int(np.count_nonzero(pruned))
    return PruneResult(
        weights=pruned,
        threshold=threshold,
        sparsity=1.0 - nnz / weights.size,
        nonzero_taps=nnz,
    )


def _live_taps(spec: ConvSpec, weights: np.ndarray) -> list[tuple[int, int]]:
    """Kernel offsets ``(ky, kx)`` with at least one surviving weight."""
    if weights.shape != spec.weight_shape:
        raise ShapeError(f"weight shape {weights.shape} != {spec.weight_shape}")
    live = []
    for ky in range(spec.fy):
        for kx in range(spec.fx):
            if np.any(weights[:, :, ky, kx]):
                live.append((ky, kx))
    return live


def emit_weight_sparse_forward(
    spec: ConvSpec, weights: np.ndarray
) -> GeneratedKernel:
    """Generate a forward kernel containing only the non-zero weight taps.

    The generated source embeds the live tap list; taps whose entire
    ``[Nf, Nc]`` weight slice was pruned produce *no code at all*, so the
    kernel's work scales with the weights' structural density.  The
    kernel signature matches the stencil FP kernels:
    ``kernel(inputs, weights, out) -> out``.
    """
    if spec.pad != 0:
        raise CodegenError("emit_weight_sparse_forward requires a pre-padded spec")
    live = _live_taps(spec, weights)
    name = (
        f"wsparse_fp_{spec.nc}x{spec.ny}x{spec.nx}_{spec.nf}"
        f"_{spec.fy}x{spec.fx}_taps{len(live)}"
    )
    lines = [
        f"def {name}(inputs, weights, out):",
        f'    """Weight-sparse FP kernel: {len(live)}/{spec.fy * spec.fx} '
        'live taps."""',
        f"    assert inputs.shape == {spec.input_shape!r}, inputs.shape",
        f"    assert out.shape == {spec.output_shape!r}, out.shape",
    ]
    if not live:
        lines.append("    return out  # all taps pruned")
    for ky, kx in live:
        ys = _slice_expr(ky, spec.out_ny, spec.sy)
        xs = _slice_expr(kx, spec.out_nx, spec.sx)
        lines.append(
            f"    out += np.tensordot(weights[:, :, {ky}, {kx}], "
            f"inputs[:, {ys}, {xs}], axes=([1], [0]))"
        )
    if live:
        lines.append("    return out")
    return _compile(name, "\n".join(lines) + "\n")


def weight_sparse_flops(spec: ConvSpec, weights: np.ndarray) -> int:
    """Useful flops of the tap-specialized kernel (live taps only).

    Counting whole taps matches the generated code's granularity: the
    tensordot of a live tap computes its full ``[Nf, Nc]`` slice even if
    individual entries inside it are zero.
    """
    live = len(_live_taps(spec, weights))
    return 2 * spec.nf * spec.out_ny * spec.out_nx * spec.nc * live


class WeightSparseInference:
    """Inference runner over a kernel specialized to pruned weights."""

    def __init__(self, spec: ConvSpec, weights: np.ndarray,
                 sparsity: float = 0.0):
        self.spec = spec
        result = prune_weights(weights, sparsity)
        self.pruned = result
        self._kernel = emit_weight_sparse_forward(spec, result.weights)

    @property
    def kernel_source(self) -> str:
        """Source of the generated position-specialized kernel."""
        return self._kernel.source

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Run inference on a ``[B, Nc, Ny, Nx]`` batch."""
        if inputs.ndim != 4 or inputs.shape[1:] != self.spec.input_shape:
            raise ShapeError(
                f"batch input shape {inputs.shape} != (B, *{self.spec.input_shape})"
            )
        out = np.zeros((inputs.shape[0],) + self.spec.output_shape,
                       dtype=inputs.dtype)
        for image, dst in zip(inputs, out):
            self._kernel(image, self.pruned.weights, dst)
        return out
