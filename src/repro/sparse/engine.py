"""The sparse back-propagation convolution engine (paper Sec. 4.2).

Deploys the generated pointer-shifting kernels for the two BP computations.
The paper uses Sparse-Kernel for BP only; for interface completeness the
forward pass delegates to the vectorized reference convolution (spg-CNN's
autotuner never selects the sparse engine for FP, where activations rather
than error gradients flow and the paper exploits no sparsity).

Like GEMM-in-Parallel, the sparse engine parallelizes across training
inputs, one image's kernels per core.
"""

from __future__ import annotations

import numpy as np

from repro.core.convspec import ConvSpec
from repro.ops import layout, reference
from repro.ops.engine import ConvEngine, register_engine
from repro.ops.workspace import Workspace
from repro.sparse.codegen import emit_sparse_backward_data, emit_sparse_backward_weights
from repro.sparse.ctcsr import DEFAULT_TILE_COLS
from repro.sparse.kernels import compress_error


@register_engine("sparse")
class SparseBPEngine(ConvEngine):
    """CT-CSR pointer-shifting sparse kernels for backward propagation."""

    def __init__(self, spec: ConvSpec, num_cores: int = 1,
                 tile_cols: int = DEFAULT_TILE_COLS):
        super().__init__(spec)
        if num_cores <= 0:
            raise ValueError(f"num_cores must be positive, got {num_cores}")
        self.num_cores = num_cores
        self.tile_cols = tile_cols
        self._bp_kernel = emit_sparse_backward_data(spec)
        self._dw_kernel = emit_sparse_backward_weights(spec)
        #: Reusable scratch (HWC error image, sparse dW layout).
        self.workspace = Workspace()

    def release_workspace(self) -> None:
        """Drop the reusable scratch buffers."""
        self.workspace.release()

    @property
    def backward_data_source(self) -> str:
        """Source text of the generated EI kernel."""
        return self._bp_kernel.source

    def forward(self, inputs: np.ndarray, weights: np.ndarray) -> np.ndarray:
        self._check_batch_inputs(inputs)
        self._check_weights(weights)
        out = np.empty(
            (inputs.shape[0],) + self.spec.output_shape,
            dtype=np.result_type(inputs, weights),
        )
        for b, img in enumerate(inputs):
            out[b] = reference.forward(self.spec, img, weights)
        return out

    def backward_data(self, out_error: np.ndarray, weights: np.ndarray) -> np.ndarray:
        self._check_batch_out_error(out_error)
        self._check_weights(weights)
        w_layout = layout.weights_to_sparse_layout(self.spec, weights)
        batch = out_error.shape[0]
        in_err = np.empty((batch,) + self.spec.input_shape, dtype=out_error.dtype)
        for b in range(batch):
            eo = compress_error(self.spec, out_error[b], tile_cols=self.tile_cols)
            ei_hwc = self.workspace.zeros(
                "bp/ei_hwc", (self.spec.ny, self.spec.nx, self.spec.nc),
                out_error.dtype,
            )
            self._bp_kernel(eo, w_layout, ei_hwc)
            in_err[b] = layout.hwc_to_chw(ei_hwc)
        return in_err

    def backward_weights(self, out_error: np.ndarray, inputs: np.ndarray) -> np.ndarray:
        self._check_batch_out_error(out_error)
        self._check_batch_inputs(inputs)
        dw_layout = self.workspace.zeros(
            "bw/dw_layout",
            (self.spec.fy, self.spec.fx, self.spec.nf, self.spec.nc),
            out_error.dtype,
        )
        for b in range(out_error.shape[0]):
            eo = compress_error(self.spec, out_error[b], tile_cols=self.tile_cols)
            inputs_hwc = layout.chw_to_hwc(inputs[b])
            self._dw_kernel(eo, inputs_hwc, dw_layout)
        # [Ky, Kx, Nf, Nc] -> [Nf, Nc, Ky, Kx]
        return np.ascontiguousarray(np.transpose(dw_layout, (2, 3, 0, 1)))
