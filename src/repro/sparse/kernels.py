"""Pointer-shifting sparse BP kernels (paper Sec. 4.2, Eqs. 11-15, Fig. 6).

The sparse convolution is composed, in place and without unfolding, as a
series of small dense MMs -- one per kernel tap ``(ky, kx)``.  For the
error-gradient computation (Eq. 3), the tap's sparse-dense product

    ``S = EO_mat . W'[ky, kx]``             (Eq. 13)

is scattered onto the output *vector* positions given by the pointer-
shifting relation

    ``EO[y', x', f] -> EI[y'*sy + ky, x'*sx + kx, *]``   (Eq. 15)

which, over all output positions at once, is exactly the strided slice
``EI[ky::sy, kx::sx, :]``.  Channels ``c`` are the fastest dimension of
``EI`` and ``W'`` so the per-non-zero work is a contiguous vector FMA
(Fig. 5b).

The weight-gradient computation (Eq. 4) reuses the same tap structure with
the transposed sparse operand: ``dW'[ky, kx] = EO_mat^T . I[ky::sy, kx::sx, :]``.
"""

from __future__ import annotations

import numpy as np

from repro.core.convspec import ConvSpec
from repro.errors import ShapeError
from repro.sparse.ctcsr import CTCSRMatrix, DEFAULT_TILE_COLS, ctcsr_from_dense


def error_matrix(spec: ConvSpec, out_error: np.ndarray) -> np.ndarray:
    """Layout-transform EO ``[Nf, Ny, Nx]`` to the matrix ``[Ny*Nx, Nf]``.

    Rows are output positions, columns output features; ``f`` becomes the
    fastest-varying dimension as Sec. 4.2 requires.
    """
    if out_error.shape != spec.output_shape:
        raise ShapeError(f"out_error shape {out_error.shape} != {spec.output_shape}")
    return np.ascontiguousarray(
        np.moveaxis(out_error, 0, 2).reshape(spec.out_ny * spec.out_nx, spec.nf)
    )


def compress_error(
    spec: ConvSpec, out_error: np.ndarray, tile_cols: int = DEFAULT_TILE_COLS
) -> CTCSRMatrix:
    """Build the CT-CSR representation of an output-error tensor."""
    return ctcsr_from_dense(error_matrix(spec, out_error), tile_cols=tile_cols)


def _tap_slices(spec: ConvSpec, ky: int, kx: int) -> tuple[slice, slice]:
    span_y = (spec.out_ny - 1) * spec.sy + 1
    span_x = (spec.out_nx - 1) * spec.sx + 1
    return (
        slice(ky, ky + span_y, spec.sy),
        slice(kx, kx + span_x, spec.sx),
    )


def sparse_backward_data(
    spec: ConvSpec,
    eo: CTCSRMatrix,
    w_layout: np.ndarray,
    in_error_hwc: np.ndarray,
) -> np.ndarray:
    """Accumulate Eq. 3 into ``in_error_hwc`` (``[Ny, Nx, Nc]``, zeroed).

    ``w_layout`` is the ``[Ky, Kx, Nf, Nc]`` weight layout produced by
    :func:`repro.ops.layout.weights_to_sparse_layout`.  One sparse-dense
    MM per tap, placed with pointer shifting.
    """
    expected_w = (spec.fy, spec.fx, spec.nf, spec.nc)
    if w_layout.shape != expected_w:
        raise ShapeError(f"w_layout shape {w_layout.shape} != {expected_w}")
    expected_ei = (spec.padded_ny, spec.padded_nx, spec.nc)
    if in_error_hwc.shape != expected_ei:
        raise ShapeError(f"in_error shape {in_error_hwc.shape} != {expected_ei}")
    if eo.shape != (spec.out_ny * spec.out_nx, spec.nf):
        raise ShapeError(
            f"EO matrix shape {eo.shape} != {(spec.out_ny * spec.out_nx, spec.nf)}"
        )
    for ky in range(spec.fy):
        for kx in range(spec.fx):
            contrib = eo.matmul_dense(w_layout[ky, kx])  # [rows, Nc]
            ys, xs = _tap_slices(spec, ky, kx)
            in_error_hwc[ys, xs, :] += contrib.reshape(spec.out_ny, spec.out_nx, spec.nc)
    return in_error_hwc


def sparse_backward_weights(
    spec: ConvSpec,
    eo: CTCSRMatrix,
    inputs_hwc: np.ndarray,
    dw_layout: np.ndarray,
) -> np.ndarray:
    """Accumulate Eq. 4 into ``dw_layout`` (``[Ky, Kx, Nf, Nc]``, zeroed).

    For each tap, the transposed sparse operand correlates the output error
    with the tap's strided input slice: only the rows of the input matrix
    selected by non-zero errors are touched.
    """
    expected_i = (spec.padded_ny, spec.padded_nx, spec.nc)
    if inputs_hwc.shape != expected_i:
        raise ShapeError(f"inputs shape {inputs_hwc.shape} != {expected_i}")
    expected_w = (spec.fy, spec.fx, spec.nf, spec.nc)
    if dw_layout.shape != expected_w:
        raise ShapeError(f"dw_layout shape {dw_layout.shape} != {expected_w}")
    for ky in range(spec.fy):
        for kx in range(spec.fx):
            ys, xs = _tap_slices(spec, ky, kx)
            patch = np.ascontiguousarray(inputs_hwc[ys, xs, :]).reshape(
                spec.out_ny * spec.out_nx, spec.nc
            )
            dw_layout[ky, kx] += eo.t_matmul_dense(patch)
    return dw_layout


def sparse_bp_useful_flops(spec: ConvSpec, nnz: int) -> int:
    """Useful flops of one sparse BP pass (per computation, not both).

    Every non-zero error element produces ``Fy*Fx`` vector FMAs of width
    ``Nc`` -- 2 flops per channel per tap.
    """
    return 2 * nnz * spec.fy * spec.fx * spec.nc
