"""Analyzer 6: shared-memory buffer-lifecycle verification.

The shm state machine (:mod:`repro.runtime.shm`) is
``create -> attach -> close -> unlink``: owners create segments and must
eventually unlink them on every path; workers attach and only ever
close; nothing touches a handle after releasing it; and every registry
holding live handles must close what it evicts and drain when its owner
dies.  This analyzer checks those rules statically, as AST lint rules
over the runtime modules that manage segments:

* **LC-USE-AFTER-RELEASE** -- a handle is used (attribute, subscript,
  call argument) after ``close()``/``unlink()`` on a path where it was
  not rebound first; only further ``close``/``unlink`` calls are exempt
  (both are idempotent by contract).
* **LC-ATTACH-UNLINK** -- ``unlink()`` called on a handle obtained via
  ``SharedArray.attach``: attachers never own, so they never unlink.
* **LC-ORPHAN** -- an owned handle (``SharedArray.create`` /
  ``from_array``) that provably never escapes its function: not
  returned, not stored, not passed on, not unlinked, not a context
  manager.  Nothing can release such a segment.
* **LC-EVICT-CLOSE** -- a function that removes or replaces entries of
  a handle registry (a dict annotated with ``SharedArray``) without any
  ``close``/``unlink`` call: eviction without release pins the
  segment's pages for the process lifetime.
* **LC-REGISTER-PAIR** -- a module calling ``_register_owned`` without
  ever calling ``_unregister_owned``: the leak registry
  (``owned_segments()``) could then never drain.
* **LC-MANIFEST** -- a module calling ``_manifest_write`` without ever
  calling ``_manifest_remove``: the on-disk segment manifest (the crash
  janitor's ledger) would accrete an entry per segment forever, and
  every healthy unlink would leave a stale record behind.
* **LC-OWNER-RELEASE** -- a class owning a handle registry with no
  release path (no ``close``/``unlink``/``release`` call anywhere in
  the class) or no fault net (neither a ``weakref.finalize`` nor
  ``__exit__``/``__del__``); and a class storing a
  ``ShmArena`` on an attribute without ever calling ``.release()``.

The rules are scoped to the modules that own segment lifetime --
``runtime/shm.py``, ``runtime/backends.py``, ``runtime/parallel.py`` --
via :func:`lint_lifecycle`; :func:`lint_lifecycle_source` checks any
source text (the self-tests feed it seeded violations).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Sequence

from repro.check.findings import Finding

ANALYZER = "lifecycle"

#: The runtime modules whose segment handling this analyzer governs.
LIFECYCLE_MODULES = (
    "runtime/shm.py",
    "runtime/backends.py",
    "runtime/parallel.py",
)

#: Method calls that release a handle (idempotent; allowed after one
#: another -- ``unlink()`` closes too, ``close()`` after it is a no-op).
_RELEASE_METHODS = frozenset({"close", "unlink"})

#: Dotted callables producing an *owned* handle.
_OWNER_FACTORIES = frozenset({"create", "from_array"})

#: Dotted-name bases recognized as the SharedArray class.
_HANDLE_CLASSES = frozenset({"SharedArray", "cls"})


def _finding(severity: str, location: str, message: str) -> Finding:
    return Finding(severity=severity, analyzer=ANALYZER, location=location,
                   message=message)


def _dotted(node: ast.expr) -> "str | None":
    """``a.b.c`` as a string for Name/Attribute chains, else ``None``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base is not None else None
    return None


def _is_handle_factory(call: ast.Call, which: frozenset[str]) -> bool:
    """True when ``call`` is ``SharedArray.<factory>`` for ``which``."""
    dotted = _dotted(call.func)
    if dotted is None or "." not in dotted:
        return False
    base, _, method = dotted.rpartition(".")
    return method in which and base.rpartition(".")[2] in _HANDLE_CLASSES


def _assigned_names(target: ast.expr) -> list[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        names = []
        for element in target.elts:
            names.extend(_assigned_names(element))
        return names
    return []


class _FunctionLifecycle:
    """Linear-path lifecycle walk over one function body.

    Tracks, per local name, whether the last lifecycle event on any
    syntactic path was a release; branch-local releases conservatively
    persist past the branch (an ``if``-guarded ``unlink`` without a
    rebind still poisons the fall-through), while any rebinding
    assignment -- including loop targets, which rebind per iteration --
    resets the name to live.
    """

    def __init__(self, module_name: str, func: "ast.FunctionDef | ast.AsyncFunctionDef") -> None:
        self.module = module_name
        self.func = func
        self.findings: list[Finding] = []
        self.released: dict[str, int] = {}   # name -> release lineno
        self.attached: set[str] = set()      # names bound from attach()
        self.release_calls = 0
        self.registry_evictions: list[int] = []

    def location(self, lineno: int) -> str:
        return f"{self.module}:{lineno}"

    # -- statement walk ---------------------------------------------------

    def run(self, registries: set[str]) -> None:
        self.registries = registries
        for statement in self.func.body:
            self._statement(statement)

    def _statement(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # nested defs get their own walk
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            value = getattr(node, "value", None)
            if value is not None:
                self._expression(value)
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                self._bind_target(target, value)
                if not isinstance(target, ast.Name):
                    self._expression_children(target)
            self._note_registry_store(targets)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    self._note_registry_eviction(target.value, target.lineno)
                self._expression_children(target)
        elif isinstance(node, ast.For):
            self._expression(node.iter)
            self._bind_target(node.target, None)
            for statement in node.body:
                self._statement(statement)
            for statement in node.orelse:
                self._statement(statement)
        elif isinstance(node, ast.While):
            self._expression(node.test)
            for statement in node.body:
                self._statement(statement)
            for statement in node.orelse:
                self._statement(statement)
        elif isinstance(node, ast.If):
            self._expression(node.test)
            for statement in node.body:
                self._statement(statement)
            for statement in node.orelse:
                self._statement(statement)
        elif isinstance(node, ast.With):
            for item in node.items:
                self._expression(item.context_expr)
                if item.optional_vars is not None:
                    self._bind_target(item.optional_vars, item.context_expr)
            for statement in node.body:
                self._statement(statement)
        elif isinstance(node, ast.Try):
            for statement in node.body:
                self._statement(statement)
            for handler in node.handlers:
                for statement in handler.body:
                    self._statement(statement)
            for statement in node.orelse:
                self._statement(statement)
            for statement in node.finalbody:
                self._statement(statement)
        elif isinstance(node, (ast.Return, ast.Expr)):
            if node.value is not None:
                self._expression(node.value)
        elif isinstance(node, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._expression(child)
        # pass/break/continue/global/import: no lifecycle content.

    def _bind_target(self, target: ast.expr, value: "ast.expr | None") -> None:
        for name in _assigned_names(target):
            self.released.pop(name, None)
            self.attached.discard(name)
            if isinstance(value, ast.Call):
                if _is_handle_factory(value, frozenset({"attach"})):
                    self.attached.add(name)

    def _note_registry_store(self, targets: Sequence[ast.expr]) -> None:
        for target in targets:
            if isinstance(target, ast.Subscript):
                self._note_registry_eviction(target.value, target.lineno)

    def _note_registry_eviction(self, container: ast.expr,
                                lineno: int) -> None:
        dotted = _dotted(container)
        if dotted is not None and \
                dotted.rpartition(".")[2] in self.registries:
            self.registry_evictions.append(lineno)

    # -- expression walk --------------------------------------------------

    def _expression(self, node: ast.expr) -> None:
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and \
                    isinstance(func.value, ast.Name):
                name = func.value.id
                if func.attr in _RELEASE_METHODS:
                    self.release_calls += 1
                    if func.attr == "unlink" and name in self.attached:
                        self.findings.append(_finding(
                            "error", self.location(node.lineno),
                            f"unlink() on {name!r}, which was attached, "
                            f"not created; only the owner unlinks "
                            f"[LC-ATTACH-UNLINK]",
                        ))
                    for argument in node.args:
                        self._expression(argument)
                    self.released[name] = node.lineno
                    return
                if func.attr in ("pop", "popitem", "clear") and \
                        name.rpartition(".")[2] in self.registries:
                    self.registry_evictions.append(node.lineno)
            elif isinstance(func, ast.Attribute):
                dotted = _dotted(func.value)
                if func.attr in ("pop", "popitem", "clear") and \
                        dotted is not None and \
                        dotted.rpartition(".")[2] in self.registries:
                    self.registry_evictions.append(node.lineno)
                if func.attr in _RELEASE_METHODS:
                    self.release_calls += 1
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr) and child is not node.func:
                    self._expression(child)
            if isinstance(node.func, (ast.Attribute, ast.Subscript)):
                self._expression(node.func.value)
            return
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name):
                self._check_use(node.value.id, node.lineno,
                                f"attribute .{node.attr}")
                return
            self._expression(node.value)
            return
        if isinstance(node, ast.Name):
            self._check_use(node.id, node.lineno, "value")
            return
        self._expression_children(node)

    def _expression_children(self, node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._expression(child)

    def _check_use(self, name: str, lineno: int, how: str) -> None:
        released_at = self.released.get(name)
        if released_at is not None:
            self.findings.append(_finding(
                "error", self.location(lineno),
                f"{name!r} used ({how}) after being released on line "
                f"{released_at} without rebinding [LC-USE-AFTER-RELEASE]",
            ))


def _collect_registries(tree: ast.Module) -> set[str]:
    """Names of dict attributes/globals annotated as holding handles."""
    registries: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.AnnAssign):
            annotation = ast.unparse(node.annotation)
            if "SharedArray" not in annotation:
                continue
            if not annotation.lstrip("'\"").startswith(
                    ("dict", "Dict", "OrderedDict")):
                continue
            dotted = _dotted(node.target)
            if dotted is not None:
                registries.add(dotted.rpartition(".")[2])
    return registries


def _check_orphans(module_name: str,
                   func: "ast.FunctionDef | ast.AsyncFunctionDef"
                   ) -> list[Finding]:
    """LC-ORPHAN: owned handles that provably never escape ``func``."""
    owned: dict[str, int] = {}
    escaped: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            value = getattr(node, "value", None)
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            if isinstance(value, ast.Call) and \
                    _is_handle_factory(value, _OWNER_FACTORIES):
                for target in targets:
                    for name in _assigned_names(target):
                        owned[name] = node.lineno
            else:
                # Storing the handle anywhere counts as an escape.
                if isinstance(value, ast.Name) and not all(
                        isinstance(t, ast.Name) for t in targets):
                    escaped.add(value.id)
        elif isinstance(node, ast.Return) and \
                isinstance(node.value, ast.Name):
            escaped.add(node.value.id)
        elif isinstance(node, ast.Call):
            if isinstance(node.func, ast.Attribute) and \
                    isinstance(node.func.value, ast.Name) and \
                    node.func.attr == "unlink":
                escaped.add(node.func.value.id)
            for argument in list(node.args) + [k.value for k in node.keywords]:
                if isinstance(argument, ast.Name):
                    escaped.add(argument.id)
        elif isinstance(node, ast.withitem):
            context = node.context_expr
            if isinstance(context, ast.Name):
                escaped.add(context.id)
            elif isinstance(context, ast.Call) and \
                    _is_handle_factory(context, _OWNER_FACTORIES):
                escaped.add("__with__")  # managed by __exit__
    return [
        _finding(
            "error", f"{module_name}:{lineno}",
            f"owned handle {name!r} (SharedArray.create/from_array) never "
            f"escapes {func.name!r}: not returned, stored, passed on or "
            f"unlinked -- the segment can never be released [LC-ORPHAN]",
        )
        for name, lineno in sorted(owned.items(), key=lambda kv: kv[1])
        if name not in escaped
    ]


def _check_classes(module_name: str, tree: ast.Module,
                   registries: set[str]) -> list[Finding]:
    """LC-OWNER-RELEASE over every class of the module."""
    findings = []
    for cls in (n for n in tree.body if isinstance(n, ast.ClassDef)):
        source = ast.unparse(cls)
        owns_registry = any(
            isinstance(node, ast.AnnAssign)
            and _dotted(node.target) is not None
            and _dotted(node.target).rpartition(".")[2] in registries
            for node in ast.walk(cls)
        )
        arena_attrs = [
            _dotted(t).rpartition(".")[2]
            for node in ast.walk(cls) if isinstance(node, ast.Assign)
            for t in node.targets
            if isinstance(node.value, ast.Call)
            and _dotted(node.value.func) is not None
            and _dotted(node.value.func).rpartition(".")[2] == "ShmArena"
            and _dotted(t) is not None
        ]
        if owns_registry:
            if not any(f".{m}(" in source for m in
                       ("close", "unlink", "release")):
                findings.append(_finding(
                    "error", f"{module_name}:{cls.lineno}",
                    f"class {cls.name} owns a handle registry but never "
                    f"closes, unlinks or releases anything "
                    f"[LC-OWNER-RELEASE]",
                ))
            has_finalizer = "weakref.finalize" in source or any(
                isinstance(node, ast.FunctionDef)
                and node.name in ("__exit__", "__del__")
                for node in cls.body
            )
            if not has_finalizer:
                findings.append(_finding(
                    "error", f"{module_name}:{cls.lineno}",
                    f"class {cls.name} owns a handle registry but installs "
                    f"no fault net (weakref.finalize, __exit__ or __del__): "
                    f"a dropped instance leaks its segments "
                    f"[LC-OWNER-RELEASE]",
                ))
        for attr in arena_attrs:
            if f"{attr}.release(" not in source:
                findings.append(_finding(
                    "error", f"{module_name}:{cls.lineno}",
                    f"class {cls.name} stores a ShmArena on {attr!r} but "
                    f"never calls its release() [LC-OWNER-RELEASE]",
                ))
    return findings


def lint_lifecycle_source(module_name: str, source: str) -> list[Finding]:
    """Run every lifecycle rule over one module's source text."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [_finding("error", module_name,
                         f"source does not parse: {exc}")]
    findings: list[Finding] = []
    registries = _collect_registries(tree)

    registers = unregisters = False
    manifests = unmanifests = False
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if dotted is not None:
                leaf = dotted.rpartition(".")[2]
                registers = registers or leaf == "_register_owned"
                unregisters = unregisters or leaf == "_unregister_owned"
                manifests = manifests or leaf == "_manifest_write"
                unmanifests = unmanifests or leaf == "_manifest_remove"
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            walker = _FunctionLifecycle(module_name, node)
            walker.run(registries)
            findings.extend(walker.findings)
            if walker.registry_evictions and walker.release_calls == 0:
                findings.append(_finding(
                    "error",
                    f"{module_name}:{walker.registry_evictions[0]}",
                    f"{node.name!r} evicts or replaces handle-registry "
                    f"entries without any close()/unlink(): the evicted "
                    f"segment's mapping is pinned forever "
                    f"[LC-EVICT-CLOSE]",
                ))
            findings.extend(_check_orphans(module_name, node))
    if registers and not unregisters:
        findings.append(_finding(
            "error", module_name,
            "module calls _register_owned but never _unregister_owned: "
            "owned_segments() can never drain [LC-REGISTER-PAIR]",
        ))
    if manifests and not unmanifests:
        findings.append(_finding(
            "error", module_name,
            "module calls _manifest_write but never _manifest_remove: the "
            "shm crash manifest would keep a stale entry for every "
            "segment ever created [LC-MANIFEST]",
        ))
    findings.extend(_check_classes(module_name, tree, registries))
    return findings


def lint_lifecycle(root: "Path | None" = None,
                   modules: Iterable[str] = LIFECYCLE_MODULES
                   ) -> tuple[list[Finding], int]:
    """Lint the shm-owning runtime modules; ``(findings, files)``."""
    if root is None:
        import repro

        root = Path(repro.__file__).resolve().parent
    findings: list[Finding] = []
    count = 0
    for relative in modules:
        path = root / relative
        if not path.exists():
            findings.append(_finding(
                "error", relative,
                "lifecycle-governed module is missing from the package",
            ))
            continue
        module_name = f"{root.name}/{relative}"
        findings.extend(lint_lifecycle_source(module_name,
                                              path.read_text()))
        count += 1
    return findings, count
