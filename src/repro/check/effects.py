"""Analyzer 5: effect-typed happens-before verification of task graphs.

The task-graph runtime (:mod:`repro.runtime.dag`) removed the per-layer
barriers; this analyzer proves the removal never traded determinism for
speed.  Every :class:`~repro.runtime.dag.TaskNode` carries a declared
effect set -- symbolic :class:`~repro.runtime.dag.Region` reads/writes
over logical buffers -- and the verifier checks three properties over a
compiled graph:

* **race freedom** -- for every pair of nodes not ordered by a path,
  no write region of one overlaps a read or write region of the other
  (two ``atomic`` regions are exempt: the runtime serializes them via
  the engine free-list; one atomic against one plain region still
  conflicts -- that is the aliased-workspace bug);
* **deterministic reduction** -- a node carrying ``reduce_buffer`` /
  ``reduce_order`` attrs must consume every partial element in strictly
  ascending declared order, each element written by exactly one
  ancestor; any node folding several partial elements *without* a
  declared order is flagged;
* **declaration honesty** -- an AST pass over each node's callable
  infers the effects the code can perform and cross-checks them against
  the declaration in both directions, so declarations cannot drift from
  code (a node with no declared effects is an error, never race-free).

The effect vocabulary (``act:{i}``, ``err:{i}``, ``weights:{layer}``,
``grad:{layer}``, ``cache:{layer}``, ``state:{layer}``,
``plan:{layer}:{chain}``, ``partial:{layer}``, ``bdout:{layer}``,
``ws:{layer}:{phase}``, ``shm:{arena_tag}``) is documented on
:class:`~repro.runtime.dag.Region`.  Cross-checking compares buffers at
``family:qualifier`` granularity (the chain/phase suffix is a
declaration refinement the AST cannot see).

:func:`preflight_dag` is the fail-fast entry wired into
:class:`~repro.nn.training_loop.TrainingLoop` under ``scheduler="dag"``;
:func:`drop_dependency` / :func:`alias_workspace` are the seeded
mutations the self-tests use to prove the verifier is not vacuous.
"""

from __future__ import annotations

import ast
import functools
import inspect
import textwrap
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from repro import telemetry
from repro.check.findings import CheckReport, Finding
from repro.errors import ReproError
from repro.nn.network import Network
from repro.runtime.dag import (
    Region,
    TaskGraph,
    TaskNode,
    build_backward_graph,
    build_forward_graph,
)

ANALYZER = "effects"

#: Buffer families whose accesses happen inside the executor/runtime
#: (engine free-list scratch, arena publication), not in node source;
#: they participate fully in the race check but are exempt from the
#: AST cross-check.
EXEMPT_FAMILIES = frozenset({"ws", "shm"})

#: A buffer at cross-check granularity: ``(family, qualifier-or-None)``.
Token = tuple[str, "str | None"]


def _finding(severity: str, location: str, message: str) -> Finding:
    return Finding(severity=severity, analyzer=ANALYZER, location=location,
                   message=message)


def _split(buffer: str) -> Token:
    parts = buffer.split(":")
    return parts[0], (parts[1] if len(parts) > 1 else None)


def _render(token: Token) -> str:
    family, qualifier = token
    return family if qualifier is None else f"{family}:{qualifier}"


def _covers(token: Token, regions: Iterable[Region]) -> bool:
    """True when some region's buffer matches ``token``."""
    family, qualifier = token
    for region in regions:
        rfamily, rqualifier = _split(region.buffer)
        if rfamily != family:
            continue
        if qualifier is None or rqualifier is None or qualifier == rqualifier:
            return True
    return False


# -- AST effect inference ----------------------------------------------------

#: Attribute names on layer-like objects, mapped to buffer families.
_ATTR_FAMILIES = {
    "weights": "weights",
    "bias": "weights",
    "d_weights": "grad",
    "d_bias": "grad",
    "_cached_padded_input": "cache",
    "last_error_sparsity": "state",
}

#: List-valued free variables holding the activation/error chains.
_CELL_FAMILIES = {"cells": "act", "ecells": "err"}

#: Context-dict keys, mapped to the buffer family they hold.
_CTX_KEY_FAMILIES = {"begun": "state", "partials": "partial"}


@dataclass
class InferredEffects:
    """What a node callable's source says it may touch.

    ``reads``/``writes`` come from direct loads/stores in the source;
    ``possible_reads``/``possible_writes`` from the call contracts of
    runtime methods (``layer.forward`` may cache its padded input, ...)
    and only serve as witnesses, never as declaration requirements.
    """

    reads: set[Token] = field(default_factory=set)
    writes: set[Token] = field(default_factory=set)
    possible_reads: set[Token] = field(default_factory=set)
    possible_writes: set[Token] = field(default_factory=set)
    #: The code stores into a slice of a prepared output buffer
    #: (``adopt_slice`` or a nested-subscript element store).
    ranged_write: bool = False


def _unwrap(fn: Callable[[], Any]) -> "tuple[Any, dict[str, Any]] | None":
    """Peel ``functools.partial``/bound-method wrappers; build the env.

    Returns the underlying function plus a name -> value environment of
    its closure cells, keyword defaults, ``partial`` keywords and (for
    bound methods) the instance under its ``self`` parameter name --
    everything the inference needs to resolve symbolic buffer names.
    """
    env: dict[str, Any] = {}
    func: Any = fn
    while isinstance(func, functools.partial):
        env.update(func.keywords)
        func = func.func
    if inspect.ismethod(func):
        code = func.__func__.__code__
        if code.co_argcount:
            env[code.co_varnames[0]] = func.__self__
        func = func.__func__
    if not callable(func) or not hasattr(func, "__code__"):
        return None
    if func.__name__ == "<lambda>":
        return None  # getsource returns the enclosing line; unusable
    code = func.__code__
    closure = getattr(func, "__closure__", None) or ()
    for name, cell in zip(code.co_freevars, closure):
        try:
            env.setdefault(name, cell.cell_contents)
        except ValueError:  # pragma: no cover - empty cell
            pass
    defaults = getattr(func, "__defaults__", None) or ()
    if defaults:
        argnames = code.co_varnames[:code.co_argcount]
        for name, value in zip(argnames[-len(defaults):], defaults):
            env.setdefault(name, value)
    return func, env


def _eval_index(node: ast.expr, env: dict[str, Any]) -> "int | None":
    """Evaluate a simple index expression (constants, env ints, +/-)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    if isinstance(node, ast.Name):
        value = env.get(node.id)
        return value if isinstance(value, int) else None
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
        left = _eval_index(node.left, env)
        right = _eval_index(node.right, env)
        if left is None or right is None:
            return None
        return left + right if isinstance(node.op, ast.Add) else left - right
    return None


class _EffectInference(ast.NodeVisitor):
    """Collects :class:`InferredEffects` from a node callable's body."""

    def __init__(self, env: dict[str, Any], layer_name: "str | None") -> None:
        self.env = env
        self.layer = layer_name
        self.effects = InferredEffects()

    def _layer_of(self, owner: Any) -> "str | None":
        return getattr(owner, "name", None) or self.layer

    # -- buffer classification -------------------------------------------

    def _classify_subscript(self, node: ast.Subscript
                            ) -> "tuple[Token | None, bool]":
        """``(token, is_element_store)`` for a subscript expression."""
        value = node.value
        if isinstance(value, ast.Name):
            family = _CELL_FAMILIES.get(value.id)
            if family is not None:
                index = _eval_index(node.slice, self.env)
                return (family, str(index) if index is not None else None), \
                    False
            if isinstance(self.env.get(value.id), dict) and \
                    isinstance(node.slice, ast.Constant) and \
                    isinstance(node.slice.value, str):
                family = _CTX_KEY_FAMILIES.get(node.slice.value, "plan")
                return (family, self.layer), False
        if isinstance(value, ast.Subscript):
            inner, _ = self._classify_subscript(value)
            if inner is not None:
                return inner, True  # element access into a held buffer
        return None, False

    # -- visitors ---------------------------------------------------------

    def visit_Subscript(self, node: ast.Subscript) -> None:
        token, element = self._classify_subscript(node)
        if token is not None:
            if isinstance(node.ctx, ast.Store):
                self.effects.writes.add(token)
                if element:
                    self.effects.ranged_write = True
            else:
                self.effects.reads.add(token)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.value, ast.Name) and node.value.id in self.env:
            family = _ATTR_FAMILIES.get(node.attr)
            if family is not None:
                owner = self.env[node.value.id]
                token = (family, self._layer_of(owner))
                if isinstance(node.ctx, ast.Store):
                    self.effects.writes.add(token)
                else:
                    self.effects.reads.add(token)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "adopt_slice":
            self.effects.ranged_write = True
        elif isinstance(func, ast.Attribute) and \
                isinstance(func.value, ast.Name):
            owner = self.env.get(func.value.id)
            if owner is not None:
                self._apply_contract(func.attr, owner)
        self.generic_visit(node)

    def _apply_contract(self, method: str, owner: Any) -> None:
        """Known effects of runtime calls the AST cannot see into."""
        effects = self.effects
        name = self._layer_of(owner)
        if method == "forward":
            effects.reads.add(("weights", name))
            effects.writes.add(("state", name))
            effects.possible_writes.add(("cache", name))
        elif method == "backward":
            effects.reads.add(("weights", name))
            effects.reads.add(("state", name))
            effects.writes.add(("grad", name))
            effects.possible_reads.add(("cache", name))
            effects.possible_writes.add(("state", name))
            effects.possible_writes.add(("cache", name))
        elif method in ("slice_plan", "weights_plan"):
            # Prep calls publish the plan (and, under the process
            # backend, arena segments -- an exempt family).
            effects.writes.add(("plan", self.layer))


def infer_node_effects(node: TaskNode) -> "InferredEffects | None":
    """Infer a node's effects from its callable source, or ``None``.

    ``None`` means the source is unavailable (builtins, lambdas,
    dynamically generated code); such nodes skip the cross-check but
    still participate in the race check via their declarations.
    """
    unwrapped = _unwrap(node.fn)
    if unwrapped is None:
        return None
    func, env = unwrapped
    try:
        tree = ast.parse(textwrap.dedent(inspect.getsource(func)))
    except (OSError, TypeError, SyntaxError):
        return None
    if not tree.body or not isinstance(tree.body[0],
                                       (ast.FunctionDef,
                                        ast.AsyncFunctionDef)):
        return None
    visitor = _EffectInference(env, node.attrs.get("layer"))
    for statement in tree.body[0].body:
        visitor.visit(statement)
    return visitor.effects


def crosscheck_node(node: TaskNode, location: str) -> list[Finding]:
    """Both directions of declaration honesty for one node.

    *Code -> declaration*: every effect the source performs must be
    declared (reads may be covered by a declared write: read-modify-
    write nodes declare the write only).  *Declaration -> code*: every
    declared write outside the exempt families must be witnessed by the
    source, so stale declarations cannot over-constrain the race check.
    Declared reads need no witness -- over-approximating reads is safe.
    """
    effects = infer_node_effects(node)
    if effects is None:
        return []
    findings = []
    declared = tuple(node.reads) + tuple(node.writes)
    for token in sorted(effects.reads):
        if token[0] in EXEMPT_FAMILIES:
            continue
        if not _covers(token, declared):
            findings.append(_finding(
                "error", location,
                f"code reads {_render(token)} but the node declares no "
                f"matching read or write",
            ))
    for token in sorted(effects.writes):
        if token[0] in EXEMPT_FAMILIES:
            continue
        if not _covers(token, node.writes):
            findings.append(_finding(
                "error", location,
                f"code writes {_render(token)} but the node declares no "
                f"matching write",
            ))
    if effects.ranged_write and \
            not any(r.lo is not None for r in node.writes):
        findings.append(_finding(
            "error", location,
            "code stores into a slice of a prepared output buffer but "
            "the node declares no ranged write",
        ))
    witnesses = effects.writes | effects.possible_writes
    for region in node.writes:
        family, qualifier = _split(region.buffer)
        if family in EXEMPT_FAMILIES:
            continue
        if region.lo is not None and effects.ranged_write:
            continue
        if not any(family == wfam and
                   (wqual is None or qualifier is None or wqual == qualifier)
                   for wfam, wqual in witnesses):
            findings.append(_finding(
                "error", location,
                f"node declares a write to {region.buffer} the code never "
                f"performs",
            ))
    return findings


# -- happens-before race check -----------------------------------------------


def _ancestor_masks(nodes: Sequence[TaskNode]) -> list[int]:
    """Per-node bitmask of ancestor ids (edges go low id -> high id)."""
    masks = [0] * len(nodes)
    for node in nodes:
        mask = 0
        for dep in node.deps:
            mask |= masks[dep.node_id] | (1 << dep.node_id)
        masks[node.node_id] = mask
    return masks


def _first_conflict(a: TaskNode, b: TaskNode
                    ) -> "tuple[str, Region, Region] | None":
    """The first W/W or R/W overlap between two nodes' effect sets."""
    for x in a.writes:
        for y in b.writes:
            if x.overlaps(y) and not (x.atomic and y.atomic):
                return "write/write", x, y
        for y in b.reads:
            if x.overlaps(y) and not (x.atomic and y.atomic):
                return "write/read", x, y
    for x in a.reads:
        for y in b.writes:
            if x.overlaps(y) and not (x.atomic and y.atomic):
                return "read/write", x, y
    return None


def _check_reductions(graph: TaskGraph, masks: list[int]) -> list[Finding]:
    """Deterministic-reduction discipline over ``partial:`` buffers."""
    findings = []
    nodes = graph.nodes
    for node in nodes:
        location = f"{graph.name}/{node.name}"
        element_reads: dict[str, set[int]] = {}
        for region in node.reads:
            if region.buffer.startswith("partial:") and \
                    region.lo is not None and region.hi == region.lo + 1:
                element_reads.setdefault(region.buffer, set()).add(region.lo)
        buffer = node.attrs.get("reduce_buffer")
        if buffer is None:
            for name, elements in sorted(element_reads.items()):
                if len(elements) > 1:
                    findings.append(_finding(
                        "error", location,
                        f"folds {len(elements)} partial elements of {name} "
                        f"without a declared reduce order (summation order "
                        f"undefined)",
                    ))
            continue
        order = tuple(node.attrs.get("reduce_order", ()))
        if not order:
            findings.append(_finding(
                "error", location,
                f"reduce node over {buffer} declares no reduce_order",
            ))
            continue
        if list(order) != sorted(set(order)):
            findings.append(_finding(
                "error", location,
                f"reduce_order {order} is not strictly ascending",
            ))
        elements = element_reads.get(buffer, set())
        if elements != set(order):
            findings.append(_finding(
                "error", location,
                f"reduce_order covers elements {sorted(set(order))} but the "
                f"node reads elements {sorted(elements)} of {buffer}",
            ))
        for element in sorted(set(order)):
            region = Region(buffer, element, element + 1)
            writers = [
                other for other in nodes
                if other is not node and any(
                    w.buffer == buffer and w.lo is not None
                    and w.overlaps(region) for w in other.writes
                )
            ]
            if len(writers) != 1:
                findings.append(_finding(
                    "error", location,
                    f"partial element {element} of {buffer} has "
                    f"{len(writers)} range writers, expected exactly one",
                ))
            elif not (masks[node.node_id] >> writers[0].node_id) & 1:
                findings.append(_finding(
                    "error", location,
                    f"writer {writers[0].name} of partial element {element} "
                    f"is not ordered before the reduce node",
                ))
    return findings


def verify_graph(graph: TaskGraph, crosscheck: bool = True) -> list[Finding]:
    """Prove one compiled graph race-free, or report every violation."""
    findings: list[Finding] = []
    nodes = graph.nodes
    for node in nodes:
        if not node.reads and not node.writes:
            findings.append(_finding(
                "error", f"{graph.name}/{node.name}",
                "node declares no effects; it cannot be proven race-free",
            ))
    masks = _ancestor_masks(nodes)
    for j, b in enumerate(nodes):
        ancestors = masks[j]
        for i in range(j):
            if (ancestors >> i) & 1:
                continue  # ordered: i precedes j
            conflict = _first_conflict(nodes[i], b)
            if conflict is not None:
                kind, x, y = conflict
                findings.append(_finding(
                    "error", f"{graph.name}/{nodes[i].name}",
                    f"unordered {kind} conflict with {b.name}: "
                    f"{x.buffer} overlaps {y.buffer} and no path orders "
                    f"the two nodes",
                ))
    findings.extend(_check_reductions(graph, masks))
    if crosscheck:
        for node in nodes:
            if node.reads or node.writes:
                findings.extend(
                    crosscheck_node(node, f"{graph.name}/{node.name}")
                )
    return findings


# -- network / corpus entry points -------------------------------------------


def network_graphs(network: Network,
                   batch: int = 4) -> tuple[TaskGraph, TaskGraph]:
    """Compile the FP and BP graphs of a network over a zero batch.

    Graph building is pure -- no node runs, no backend spawns -- so the
    verifier can compile process-backend graphs without forking.
    """
    inputs = np.zeros((batch,) + tuple(network.input_shape),
                      dtype=np.float32)
    forward, _ = build_forward_graph(network, inputs, training=True)
    out_shape = tuple(network.layer_shapes[-1])
    out_error = np.zeros((batch,) + out_shape, dtype=np.float32)
    backward, _ = build_backward_graph(network, out_error)
    return forward, backward


def verify_network_graphs(network: Network, batch: int = 4,
                          crosscheck: bool = True) -> list[Finding]:
    """Verify a network's forward and backward graphs."""
    findings: list[Finding] = []
    for graph in network_graphs(network, batch):
        findings.extend(verify_graph(graph, crosscheck=crosscheck))
    return findings


def verify_networks(networks: Sequence[Network], batch: int = 4
                    ) -> tuple[list[Finding], dict[str, int]]:
    """Runner entry: verify every network's graphs; coverage meta."""
    findings: list[Finding] = []
    graphs = 0
    nodes = 0
    for network in networks:
        for graph in network_graphs(network, batch):
            graphs += 1
            nodes += len(graph)
            findings.extend(verify_graph(graph))
    return findings, {"effect_graphs": graphs, "effect_nodes": nodes}


def preflight_dag(network: Network, batch_size: int = 4) -> CheckReport:
    """Fail-fast effect verification for ``scheduler="dag"`` training.

    Compiles the network's FP/BP graphs over a representative batch and
    raises :class:`repro.errors.CheckError` on any race, reduction or
    declaration-drift finding before the first real batch runs.
    """
    findings = verify_network_graphs(network, batch=batch_size)
    report = CheckReport(findings=findings, meta={"effect_graphs": 2})
    telemetry.event(
        "check.preflight_dag", network=network.name,
        errors=len(report.errors), warnings=len(report.warnings),
    )
    report.raise_if_errors(
        context=f"effect verification of network {network.name!r}"
    )
    return report


# -- seeded mutations (self-test helpers) ------------------------------------


def _node_by_name(graph: TaskGraph, name: str) -> TaskNode:
    for node in graph.nodes:
        if node.name == name:
            return node
    raise ReproError(f"graph {graph.name!r} has no node {name!r}")


def drop_dependency(graph: TaskGraph, child: str, parent: str) -> None:
    """Seeded mutation: delete the ``parent -> child`` edge in place.

    Self-test helper only -- it breaks the happens-before order the
    builders established so tests can assert the verifier reports
    exactly the conflict that edge was protecting against.
    """
    child_node = _node_by_name(graph, child)
    parent_node = _node_by_name(graph, parent)
    if parent_node not in child_node.deps:
        raise ReproError(f"no edge {parent!r} -> {child!r} to drop")
    child_node.deps = tuple(
        dep for dep in child_node.deps if dep is not parent_node
    )
    parent_node.children.remove(child_node)
    child_node.pending = len(child_node.deps)


def alias_workspace(graph: TaskGraph, node: str) -> None:
    """Seeded mutation: pretend ``node`` bypasses the engine free-list.

    Strips the ``atomic`` marker from the node's workspace write, which
    models a node mutating engine scratch without checking it out --
    the verifier must then report a conflict against every sibling
    sharing that workspace.
    """
    target = _node_by_name(graph, node)
    target.writes = tuple(
        replace(region, atomic=False)
        if region.buffer.startswith("ws:") else region
        for region in target.writes
    )
