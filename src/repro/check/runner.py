"""Single entry point running every static analyzer: ``run_all``.

The default corpus is everything the framework can deploy: the built-in
zoo networks (graph checker and task-graph effects verifier), the
engine-facing ConvSpec of every conv layer in those networks plus every
Table 2 benchmark convolution (kernel-IR verifier and generated-source
verifier, covering each (ConvSpec x technique) kernel the autotuner can
emit), every module of the ``repro`` package itself (concurrency lint),
and the shm-owning runtime modules (lifecycle analyzer).
"""

from __future__ import annotations

from pathlib import Path

from repro.check.concurrency import lint_package
from repro.check.effects import verify_networks as verify_network_effects
from repro.check.findings import CheckReport
from repro.check.gen_source import verify_generated_sources
from repro.check.graph import verify_networks
from repro.check.kernel_ir import verify_kernel_ir
from repro.check.lifecycle import lint_lifecycle
from repro.core.convspec import ConvSpec
from repro.errors import CheckError
from repro.machine.spec import MachineSpec, xeon_e5_2650

#: The analyzers ``run_all`` knows, in run order.
ANALYZERS = ("kernel-ir", "gen-source", "graph", "effects", "concurrency",
             "lifecycle")

#: Short aliases accepted by ``--only`` (``repro check --only ir,source``).
ANALYZER_ALIASES = {
    "ir": "kernel-ir",
    "source": "gen-source",
}


def engine_spec(spec: ConvSpec) -> ConvSpec:
    """The engine-facing (pre-padded, ``pad == 0``) variant of a spec."""
    if spec.pad == 0:
        return spec
    return ConvSpec(
        nc=spec.nc, ny=spec.padded_ny, nx=spec.padded_nx, nf=spec.nf,
        fy=spec.fy, fx=spec.fx, sy=spec.sy, sx=spec.sx, pad=0,
        name=spec.name,
    )


def default_networks() -> list:
    """The built-in zoo networks the graph checker covers by default."""
    from repro.nn.zoo import (
        alexnet_small,
        cifar10_net,
        imagenet100_net,
        mnist_net,
    )

    return [mnist_net(), cifar10_net(), imagenet100_net(), alexnet_small()]


def default_specs(networks: list | None = None) -> list[ConvSpec]:
    """Every ConvSpec the autotuner can emit kernels for, deduplicated.

    Zoo conv layers contribute their engine-facing padded specs; the
    Table 2 benchmark tables contribute the paper's evaluation shapes.
    """
    from repro.data.tables import TABLE2_LAYERS

    specs: list[ConvSpec] = []
    seen: set[ConvSpec] = set()
    pools = [net.conv_layers() for net in (networks or default_networks())]
    candidates = [layer.padded_spec for layers in pools for layer in layers]
    for table in TABLE2_LAYERS.values():
        candidates.extend(engine_spec(spec) for spec in table)
    for spec in candidates:
        if spec not in seen:
            seen.add(spec)
            specs.append(spec)
    return specs


def run_all(
    machine: MachineSpec | None = None,
    analyzers: tuple[str, ...] | None = None,
    specs: list[ConvSpec] | None = None,
    networks: list | None = None,
    lint_root: Path | None = None,
) -> CheckReport:
    """Run the selected analyzers (all six by default) and aggregate.

    Returns a :class:`CheckReport`; never raises on findings -- use
    :meth:`CheckReport.raise_if_errors` (or the CLI's exit code) to gate.
    """
    selected = tuple(ANALYZER_ALIASES.get(a, a)
                     for a in (analyzers or ANALYZERS))
    unknown = set(selected) - set(ANALYZERS)
    if unknown:
        raise CheckError(
            f"unknown analyzer(s) {sorted(unknown)}; known: {ANALYZERS}"
        )
    machine = machine or xeon_e5_2650()
    report = CheckReport(meta={"machine": machine.name})

    needs_specs = {"kernel-ir", "gen-source"} & set(selected)
    needs_networks = (
        bool(needs_specs and specs is None)
        or bool({"graph", "effects"} & set(selected))
    )
    if needs_networks and networks is None:
        networks = default_networks()
    if needs_specs and specs is None:
        specs = default_specs(networks)
    if needs_specs:
        report.meta["specs"] = len(specs or [])

    if "kernel-ir" in selected:
        report.extend(verify_kernel_ir(specs or [], machine))
    if "gen-source" in selected:
        report.extend(verify_generated_sources(specs or []))
        # Five per-family kernels per spec, plus the fused conv+ReLU+pool
        # emission for every spec whose output plane admits a 2x2 pool.
        report.meta["kernels"] = 5 * len(specs or []) + sum(
            1 for s in (specs or []) if s.out_ny >= 2 and s.out_nx >= 2
        )
    if "graph" in selected:
        report.extend(verify_networks(networks or []))
        report.meta["networks"] = len(networks or [])
    if "effects" in selected:
        findings, meta = verify_network_effects(networks or [])
        report.extend(findings)
        report.meta.update(meta)
    if "concurrency" in selected:
        findings, files = lint_package(lint_root)
        report.extend(findings)
        report.meta["files_linted"] = files
    if "lifecycle" in selected:
        findings, files = lint_lifecycle(lint_root)
        report.extend(findings)
        report.meta["lifecycle_files"] = files
    return report
