"""``repro.check``: static verification of generated kernels, graphs
and the parallel runtime.

Six analyzers prove correctness properties *before* anything runs on
training data, so codegen drift and runtime races surface at check time
instead of as silent numerical corruption mid-training:

* :mod:`repro.check.kernel_ir` -- symbolic interpretation of stencil
  basic blocks (bounds, register pressure, tap completeness, and the
  IR <-> machine-model flop-count consistency invariant);
* :mod:`repro.check.gen_source` -- ``ast`` verification of emitted
  stencil/sparse Python (literal slice bounds, exact tap coverage,
  name whitelisting);
* :mod:`repro.check.graph` -- shape/dtype propagation over networks
  and netdefs, wired into :class:`TrainingLoop` as a fail-fast
  pre-flight;
* :mod:`repro.check.effects` -- effect-typed happens-before verifier
  over compiled task graphs: every node declares the buffer regions it
  reads/writes, an AST pass cross-checks the declarations against the
  node body, and a reachability pass proves no unordered pair of nodes
  conflicts (wired into :class:`TrainingLoop` when ``scheduler="dag"``);
* :mod:`repro.check.concurrency` -- lint for mutable defaults, shared
  mutable state under the worker pool, and telemetry misuse;
* :mod:`repro.check.lifecycle` -- shared-memory buffer lifecycle
  analyzer over the shm-owning runtime modules (use-after-release,
  orphaned owners, unlink-by-attacher, registry evictions that leak).

Usage::

    from repro import check

    report = check.run_all()        # or: python -m repro check
    if not report.ok:
        report.raise_if_errors()    # CheckError naming every violation
"""

from typing import Any

from repro.check.findings import SEVERITIES, CheckReport, Finding


def run_all(**kwargs: Any) -> CheckReport:
    """Run every analyzer over the default corpus; see ``runner.run_all``.

    Imported lazily so ``repro.check`` stays cheap to import from the
    training path's pre-flight hook.
    """
    from repro.check.runner import run_all as _run_all

    return _run_all(**kwargs)


__all__ = ["CheckReport", "Finding", "SEVERITIES", "run_all"]
