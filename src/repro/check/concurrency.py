"""Analyzer 4: concurrency lint over the package source.

The parallel runtime (:class:`repro.runtime.pool.WorkerPool`,
:class:`repro.runtime.parallel.ParallelExecutor`) runs closures on real
threads, so a small class of Python idioms become data races or silent
aliasing bugs.  This ``ast`` pass walks every module under ``repro``
and flags:

* **CHK-MUT-DEFAULT** -- mutable default arguments (``def f(x=[])``):
  shared across calls and, under the pool, across threads;
* **CHK-SHARED-MUT** -- module-level mutable state mutated inside a
  closure (a ``def``/``lambda`` nested in a function) in modules that
  use the worker pool, unless the mutation is guarded by a ``with``
  block naming a lock;
* **CHK-TEL-API** -- telemetry misuse: attribute access on the
  ``telemetry`` module outside its public API (typo'd helper names
  emit nothing, silently), and emission helpers invoked at module
  import time, which always runs outside any collector guard;
* **CHK-TEL-LEAK** -- ``telemetry.span(...)`` opened outside a ``with``
  item: the span object is a context manager, and without ``with`` it
  is never finished, leaking an open span on the thread's stack;
* **CHK-TEL-HOT** -- ``telemetry.add``/``gauge``/``observe`` called
  inside a nested (per-element) loop: each call takes the collector
  lock per active collector, so per-element emission turns a hot
  kernel loop into a lock convoy -- aggregate outside the loop instead;
* **CHK-TEL-WORKER** -- a function the module declares worker-side (via
  a module-level ``__worker_side__`` tuple of function names) calls a
  parent-only ``telemetry`` helper.  Worker processes are spawned with
  an empty collector stack, so the emission is silently lost; worker
  code must write to its shared-memory telemetry ring instead
  (:mod:`repro.telemetry.remote`);
* **CHK-FORK** -- a closure submitted to the worker pool
  (``run_tasks``/``map_batches``/``map_items``/``submit``) captures a
  fork/pickle-unsafe handle: a threading lock, a live
  ``TelemetryCollector``, an open ``SharedMemory``/``SharedArray``
  segment, or an open file.  Under ``backend="process"`` the closure is
  pickled into a spawned worker, where the lock guards nothing, the
  collector records into a dead copy, and OS-level handles either fail
  to pickle or dangle.  Ship :class:`~repro.runtime.shm.ShmDescriptor`
  values (and re-attach worker-side) instead;
* **CHK-DAG** -- a node callable added to a task graph
  (``add_node``) captures mutable engine scratch bound ahead of time: a
  ``make_engine(...)`` result, a ``Workspace(...)``, or an engine
  checked out via ``_checkout_engine()``.  DAG nodes run concurrently
  on work-stealing threads, so scratch captured at graph-build time is
  shared by every node that closes over it -- check engines out of the
  executor free-list *inside* the node body instead (see
  :mod:`repro.runtime.dag`).  The rule sees through every way a node
  callable can smuggle scratch: closures and lambdas (free names),
  ``functools.partial(fn, scratch)`` (bound arguments, positional or
  keyword), and bare bound methods (``scratch.run`` captures its
  instance);
* **CHK-SCHED-BYPASS** -- an emitter module (one defining ``emit_*``
  functions) calls a raw basic-block entry point
  (``generate_basic_block``/``optimize_register_tile``/
  ``render_intrinsics``) directly.  Emitters must lower through the
  schedule-pass pipeline (``SchedulePipeline.vector_block`` /
  ``block_for_nest``) so the codegen cache key, the legality checks
  and the work-estimate ledger all see the same schedule; a direct
  call silently pins the default schedule regardless of the pipeline.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Any

from repro.check.findings import Finding

ANALYZER = "concurrency"

#: Attribute names that constitute the telemetry module's public API.
_TELEMETRY_PUBLIC = frozenset(
    ("Event", "Span", "StreamingHistogram", "TelemetryCollector",
     "active_collectors", "add", "aggregate_spans", "collect",
     "collector_to_dict", "counters_table", "event", "events_table",
     "gauge", "histograms_table", "observe", "span", "spans_table",
     "write_json")
)

#: Telemetry helpers that emit (pointless before any collector exists).
_TELEMETRY_EMITTERS = frozenset(("add", "gauge", "observe", "event", "span"))

#: Scalar emitters whose per-element use in tight loops is a lock convoy.
_TELEMETRY_HOT_EMITTERS = frozenset(("add", "gauge", "observe"))

_POOL_NAMES = ("WorkerPool", "ParallelExecutor", "ThreadPoolExecutor")

_MUTATING_METHODS = frozenset(
    ("append", "extend", "add", "update", "insert", "pop", "popitem",
     "remove", "discard", "clear", "setdefault")
)

#: Pool methods whose callable arguments cross the backend boundary and
#: must therefore survive pickling under ``backend="process"``.
_SUBMIT_METHODS = frozenset(
    ("run_tasks", "map_batches", "map_items", "submit")
)

#: Constructors whose results must never be captured by a submitted
#: closure: what each one means when pickled into a spawned worker.
_FORK_UNSAFE_CALLS = {
    "Lock": "a threading lock (guards nothing in a spawned worker)",
    "RLock": "a threading lock (guards nothing in a spawned worker)",
    "Condition": "a threading condition (dead in a spawned worker)",
    "Semaphore": "a threading semaphore (dead in a spawned worker)",
    "TelemetryCollector":
        "a telemetry collector (the worker records into a dead copy)",
    "SharedMemory":
        "an open shared-memory handle (ship the ShmDescriptor and "
        "re-attach worker-side)",
    "SharedArray":
        "an open shared-memory handle (ship the ShmDescriptor and "
        "re-attach worker-side)",
    "open": "an open file handle (OS handles do not pickle)",
}

#: Raw basic-block entry points (CHK-SCHED-BYPASS): emitter modules must
#: reach these only through the schedule-pass pipeline.
_SCHED_BYPASS_CALLS = frozenset(
    ("generate_basic_block", "optimize_register_tile", "render_intrinsics")
)

#: Task-graph submission methods (CHK-DAG): node callables run
#: concurrently on the work-stealing scheduler.
_DAG_SUBMIT_METHODS = frozenset(("add_node",))

#: Value-producing calls that bind mutable engine scratch; a DAG node
#: capturing one shares that scratch with every concurrent node.
_DAG_UNSAFE_CALLS = {
    "make_engine":
        "an engine instance with mutable scratch (unfold workspace, "
        "GEMM panels); check one out of the executor free-list inside "
        "the node body instead",
    "_checkout_engine":
        "an engine checked out at graph-build time; check it out "
        "inside the node body so concurrent nodes never share scratch",
    "Workspace":
        "a mutable workspace buffer; allocate it inside the node body "
        "or give each node its own",
}

_FORK_MESSAGE = (
    "{label} submitted via .{method}() captures {free!r}, {description}; "
    "it cannot cross the process-backend pickle boundary"
)

_DAG_MESSAGE = (
    "DAG node callable {label} added via .{method}() captures {free!r}, "
    "{description}; concurrent nodes on the work-stealing scheduler "
    "would race on it"
)


def _finding(severity: str, location: str, message: str) -> Finding:
    return Finding(severity=severity, analyzer=ANALYZER, location=location,
                   message=message)


def _is_mutable_literal(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in ("list", "dict", "set"))


def _module_mutable_globals(tree: ast.Module) -> set[str]:
    """Names bound at module level to mutable containers."""
    names: set[str] = set()
    for node in tree.body:
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign) and _is_mutable_literal(node.value):
            targets = node.targets
        elif (isinstance(node, ast.AnnAssign) and node.value is not None
              and _is_mutable_literal(node.value)):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


def _mentions_lock(node: ast.expr) -> bool:
    for sub in ast.walk(node):
        name = None
        if isinstance(sub, ast.Name):
            name = sub.id
        elif isinstance(sub, ast.Attribute):
            name = sub.attr
        if name is not None and "lock" in name.lower():
            return True
    return False


class _ClosureMutationVisitor(ast.NodeVisitor):
    """Find mutations of module-level mutables inside nested functions."""

    def __init__(self, module_name: str, mutables: set[str]) -> None:
        self.module_name = module_name
        self.mutables = mutables
        self.findings: list[Finding] = []
        self._function_depth = 0
        self._lock_depth = 0

    # -- scope tracking ----------------------------------------------------

    def _visit_function(self, node: ast.AST) -> None:
        self._function_depth += 1
        self.generic_visit(node)
        self._function_depth -= 1

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function
    visit_Lambda = _visit_function

    def visit_With(self, node: ast.With) -> None:
        guarded = any(_mentions_lock(item.context_expr) for item in node.items)
        if guarded:
            self._lock_depth += 1
        self.generic_visit(node)
        if guarded:
            self._lock_depth -= 1

    # -- mutation detection ------------------------------------------------

    def _report(self, lineno: int, name: str, how: str) -> None:
        if self._function_depth < 2 or self._lock_depth > 0:
            return
        self.findings.append(_finding(
            "error", f"{self.module_name}:{lineno}",
            f"module-level mutable {name!r} {how} inside a closure without "
            f"a lock; worker-pool threads race on it",
        ))

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (isinstance(func, ast.Attribute)
                and func.attr in _MUTATING_METHODS
                and isinstance(func.value, ast.Name)
                and func.value.id in self.mutables):
            self._report(node.lineno, func.value.id,
                         f"mutated via .{func.attr}()")
        self.generic_visit(node)

    def _check_target(self, target: ast.expr, lineno: int, how: str) -> None:
        if (isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)
                and target.value.id in self.mutables):
            self._report(lineno, target.value.id, how)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(target, node.lineno, "item-assigned")
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node.target, node.lineno, "augmented-assigned")
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_target(target, node.lineno, "item-deleted")
        self.generic_visit(node)


class _TelemetryUseVisitor(ast.NodeVisitor):
    """Instrumentation-misuse rules: span leaks and hot-loop emission."""

    def __init__(self, module_name: str, aliases: set[str]) -> None:
        self.module_name = module_name
        self.aliases = aliases
        self.findings: list[Finding] = []
        self._loop_depth = 0
        self._with_contexts: set[int] = set()

    def _visit_loop(self, node: ast.AST) -> None:
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    visit_For = _visit_loop
    visit_AsyncFor = _visit_loop
    visit_While = _visit_loop

    def _visit_with(self, node: ast.With) -> None:
        for item in node.items:
            self._with_contexts.add(id(item.context_expr))
        self.generic_visit(node)

    visit_With = _visit_with
    visit_AsyncWith = _visit_with

    def _telemetry_attr(self, node: ast.Call) -> str | None:
        func = node.func
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in self.aliases):
            return func.attr
        return None

    def visit_Call(self, node: ast.Call) -> None:
        attr = self._telemetry_attr(node)
        if attr == "span" and id(node) not in self._with_contexts:
            self.findings.append(_finding(
                "error", f"{self.module_name}:{node.lineno}",
                "telemetry.span(...) opened outside a 'with' item; the "
                "span is never finished and leaks on the thread's stack",
            ))
        elif attr in _TELEMETRY_HOT_EMITTERS and self._loop_depth >= 2:
            self.findings.append(_finding(
                "warning", f"{self.module_name}:{node.lineno}",
                f"telemetry.{attr} called inside a nested per-element "
                f"loop; each call locks every active collector -- "
                f"aggregate locally and emit once outside the loop",
            ))
        self.generic_visit(node)


def _unsafe_call_description(node: ast.expr,
                             table: dict[str, str]) -> str | None:
    """What a value-producing expression binds, if listed in ``table``."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    name = None
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        # threading.Lock(), shared_memory.SharedMemory(...) and the
        # SharedArray classmethods (create/attach/from_array) all bind
        # a live handle, however deep the attribute chain -- so any
        # table name appearing anywhere in the chain counts.
        parts = []
        current: ast.expr = func
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if isinstance(current, ast.Name):
            parts.append(current.id)
        name = next((part for part in parts if part in table), func.attr)
    return table.get(name) if name else None


def _free_names(func_node: "ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda") -> set[str]:
    """Names a lambda/def reads without binding them itself."""
    bound: set[str] = set()
    args = func_node.args
    for arg in (list(args.posonlyargs) + list(args.args)
                + list(args.kwonlyargs)):
        bound.add(arg.arg)
    if args.vararg is not None:
        bound.add(args.vararg.arg)
    if args.kwarg is not None:
        bound.add(args.kwarg.arg)
    body = (func_node.body if isinstance(func_node.body, list)
            else [func_node.body])
    loads: set[str] = set()
    for stmt in body:
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.Name):
                if isinstance(sub.ctx, ast.Load):
                    loads.add(sub.id)
                else:
                    bound.add(sub.id)
    return loads - bound


class _CaptureSafetyVisitor(ast.NodeVisitor):
    """Unsafe-capture rules (CHK-FORK, CHK-DAG) over submitted callables.

    Tracks, per function scope, which local names are bound to unsafe
    values (per the rule's call table) and which nested functions are
    defined; every callable handed to one of the rule's submission
    methods is then checked for free names that resolve to an unsafe
    binding in any enclosing scope.
    """

    def __init__(self, module_name: str, submit_methods: frozenset[str],
                 table: dict[str, str], message: str,
                 bound_methods: bool = False) -> None:
        self.module_name = module_name
        self.submit_methods = submit_methods
        self.table = table
        self.message = message
        # Flag bare bound-method callables (``obj.method``).  Only the
        # DAG rule opts in: under CHK-FORK, attribute access on an
        # unsafe handle is how the *sanctioned* pattern extracts the
        # picklable descriptor (``seg.descriptor``), so the same shape
        # is clean there.
        self.bound_methods = bound_methods
        self.findings: list[Finding] = []
        # Innermost scope last; index 0 is the module scope.
        self._scopes: list[dict] = [{"unsafe": {}, "funcs": {}}]

    # -- scope and handle tracking -----------------------------------------

    def _visit_function(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._scopes[-1]["funcs"][node.name] = node
        self._scopes.append({"unsafe": {}, "funcs": {}})
        self.generic_visit(node)
        self._scopes.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function
    visit_Lambda = _visit_function

    def _bind(self, name: str, description: str) -> None:
        self._scopes[-1]["unsafe"][name] = description

    def visit_Assign(self, node: ast.Assign) -> None:
        description = _unsafe_call_description(node.value, self.table)
        if description is not None:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._bind(target.id, description)
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            description = _unsafe_call_description(item.context_expr,
                                                   self.table)
            if (description is not None
                    and isinstance(item.optional_vars, ast.Name)):
                self._bind(item.optional_vars.id, description)
        self.generic_visit(node)

    # -- submission checking -----------------------------------------------

    def _lookup_unsafe(self, name: str) -> str | None:
        for scope in reversed(self._scopes):
            if name in scope["unsafe"]:
                return scope["unsafe"][name]
        return None

    def _lookup_func(self, name: str) -> Any:
        for scope in reversed(self._scopes):
            if name in scope["funcs"]:
                return scope["funcs"][name]
        return None

    def _check_callable(self, func_node: Any, lineno: int, method: str,
                        label: str) -> None:
        for free in sorted(_free_names(func_node)):
            description = self._lookup_unsafe(free)
            if description is not None:
                self.findings.append(_finding(
                    "error", f"{self.module_name}:{lineno}",
                    self.message.format(label=label, method=method,
                                        free=free,
                                        description=description),
                ))

    @staticmethod
    def _is_partial_call(node: ast.expr) -> bool:
        if not isinstance(node, ast.Call):
            return False
        func = node.func
        return ((isinstance(func, ast.Name) and func.id == "partial")
                or (isinstance(func, ast.Attribute)
                    and func.attr == "partial"))

    def _check_partial(self, call: ast.Call, method: str) -> None:
        """``functools.partial(fn, x, k=y)``: x/y are captured like a
        closure's free names -- unsafe bindings among them race too."""
        for value in list(call.args) + [kw.value for kw in call.keywords]:
            if (isinstance(value, ast.Name)
                    and isinstance(value.ctx, ast.Load)):
                description = self._lookup_unsafe(value.id)
                if description is not None:
                    self.findings.append(_finding(
                        "error", f"{self.module_name}:{value.lineno}",
                        self.message.format(label="functools.partial(...)",
                                            method=method, free=value.id,
                                            description=description),
                    ))

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (isinstance(func, ast.Attribute)
                and func.attr in self.submit_methods):
            values = list(node.args) + [kw.value for kw in node.keywords]
            for value in values:
                # Bound methods handed over bare (``obj.method``, not
                # ``obj.method(...)``) capture their instance exactly
                # like a closure captures a free name; exempt call-form
                # attributes and anything inside a lambda (the lambda's
                # own free-name check already covers those).
                called = {
                    id(sub.func) for sub in ast.walk(value)
                    if isinstance(sub, ast.Call)
                }
                in_lambda = {
                    id(inner)
                    for sub in ast.walk(value)
                    if isinstance(sub, ast.Lambda)
                    for inner in ast.walk(sub.body)
                }
                for sub in ast.walk(value):
                    if isinstance(sub, ast.Lambda):
                        self._check_callable(sub, sub.lineno, func.attr,
                                             "lambda")
                    elif self._is_partial_call(sub):
                        self._check_partial(sub, func.attr)
                    elif (isinstance(sub, ast.Name)
                          and isinstance(sub.ctx, ast.Load)):
                        target = self._lookup_func(sub.id)
                        if target is not None:
                            self._check_callable(
                                target, sub.lineno, func.attr,
                                f"closure {sub.id!r}")
                    elif (self.bound_methods
                          and isinstance(sub, ast.Attribute)
                          and isinstance(sub.ctx, ast.Load)
                          and isinstance(sub.value, ast.Name)
                          and id(sub) not in called
                          and id(sub) not in in_lambda):
                        description = self._lookup_unsafe(sub.value.id)
                        if description is not None:
                            self.findings.append(_finding(
                                "error",
                                f"{self.module_name}:{sub.lineno}",
                                self.message.format(
                                    label=(f"bound method "
                                           f"'{sub.value.id}.{sub.attr}'"),
                                    method=func.attr, free=sub.value.id,
                                    description=description),
                            ))
        self.generic_visit(node)


def _worker_side_names(tree: ast.Module) -> set[str]:
    """Function names a module declares as running in worker processes.

    Reads the module-level ``__worker_side__ = ("fn", ...)`` marker
    (a tuple or list of string constants); anything else yields the
    empty set, so the CHK-TEL-WORKER rule stays opt-in per module.
    """
    for node in tree.body:
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        else:
            continue
        if not any(isinstance(t, ast.Name) and t.id == "__worker_side__"
                   for t in targets):
            continue
        if isinstance(value, (ast.Tuple, ast.List)):
            return {
                elt.value for elt in value.elts
                if isinstance(elt, ast.Constant)
                and isinstance(elt.value, str)
            }
    return set()


def _telemetry_aliases(tree: ast.Module) -> set[str]:
    """Local names under which the telemetry module is imported."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            if node.module == "repro":
                for alias in node.names:
                    if alias.name == "telemetry":
                        aliases.add(alias.asname or alias.name)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro.telemetry" and alias.asname:
                    aliases.add(alias.asname)
    return aliases


def lint_source(module_name: str, source: str) -> list[Finding]:
    """Lint one module's source text; returns all findings."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [_finding("error", module_name,
                         f"source does not parse: {exc}")]
    findings: list[Finding] = []

    # CHK-MUT-DEFAULT: mutable default arguments anywhere.
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable_literal(default):
                findings.append(_finding(
                    "error", f"{module_name}:{node.lineno}",
                    f"function {node.name!r} has a mutable default "
                    f"argument; it is shared across calls and threads",
                ))

    # CHK-SHARED-MUT: only in modules that touch the parallel runtime.
    if any(pool in source for pool in _POOL_NAMES):
        mutables = _module_mutable_globals(tree)
        if mutables:
            visitor = _ClosureMutationVisitor(module_name, mutables)
            visitor.visit(tree)
            findings.extend(visitor.findings)

    # CHK-FORK: fork/pickle-unsafe captures in pool submissions.  The
    # rule fires on the submission sites themselves, so no module gate:
    # a module without ``.run_tasks(...)``-style calls yields nothing.
    fork_visitor = _CaptureSafetyVisitor(
        module_name, _SUBMIT_METHODS, _FORK_UNSAFE_CALLS, _FORK_MESSAGE
    )
    fork_visitor.visit(tree)
    findings.extend(fork_visitor.findings)

    # CHK-DAG: node callables capturing mutable engine scratch.  Same
    # machinery, different submission methods and unsafe-call table.
    dag_visitor = _CaptureSafetyVisitor(
        module_name, _DAG_SUBMIT_METHODS, _DAG_UNSAFE_CALLS, _DAG_MESSAGE,
        bound_methods=True,
    )
    dag_visitor.visit(tree)
    findings.extend(dag_visitor.findings)

    # CHK-SCHED-BYPASS: emitter modules reaching the basic-block layer
    # without going through the schedule-pass pipeline.  Gated on the
    # module defining ``emit_*`` functions so the pipeline/model modules
    # that legitimately own these entry points stay clean.
    is_emitter_module = any(
        isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        and node.name.startswith("emit_")
        for node in tree.body
    )
    if is_emitter_module:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            if name in _SCHED_BYPASS_CALLS:
                findings.append(_finding(
                    "error", f"{module_name}:{node.lineno}",
                    f"emitter calls {name}() directly, bypassing the "
                    f"schedule pass pipeline; lower through "
                    f"SchedulePipeline.vector_block()/block_for_nest() so "
                    f"the cache key and legality checks see the schedule",
                ))

    # CHK-TEL-API: unknown telemetry attributes; import-time emission.
    aliases = _telemetry_aliases(tree)
    if aliases:
        in_function: set[int] = set()
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                for sub in ast.walk(node):
                    in_function.add(id(sub))
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id in aliases):
                continue
            if node.attr.startswith("_"):
                findings.append(_finding(
                    "error", f"{module_name}:{node.lineno}",
                    f"access to private telemetry attribute "
                    f"{node.attr!r} bypasses the collector guard",
                ))
            elif node.attr not in _TELEMETRY_PUBLIC:
                findings.append(_finding(
                    "error", f"{module_name}:{node.lineno}",
                    f"telemetry.{node.attr} is not a public telemetry "
                    f"helper; a typo here silently records nothing",
                ))
            elif (node.attr in _TELEMETRY_EMITTERS
                  and id(node) not in in_function):
                findings.append(_finding(
                    "warning", f"{module_name}:{node.lineno}",
                    f"telemetry.{node.attr} called at import time, before "
                    f"any collector guard can be active",
                ))
        # CHK-TEL-LEAK / CHK-TEL-HOT: span leaks, hot-loop emission.
        use_visitor = _TelemetryUseVisitor(module_name, aliases)
        use_visitor.visit(tree)
        findings.extend(use_visitor.findings)

        # CHK-TEL-WORKER: declared worker-side functions emitting via
        # the parent-only telemetry module.  A spawned worker's
        # collector stack is empty, so the emission silently vanishes.
        worker_names = _worker_side_names(tree)
        for node in tree.body:
            if not (isinstance(node, (ast.FunctionDef,
                                      ast.AsyncFunctionDef))
                    and node.name in worker_names):
                continue
            for sub in ast.walk(node):
                if (isinstance(sub, ast.Attribute)
                        and isinstance(sub.value, ast.Name)
                        and sub.value.id in aliases):
                    findings.append(_finding(
                        "error", f"{module_name}:{sub.lineno}",
                        f"worker-side function {node.name!r} calls "
                        f"telemetry.{sub.attr}; a spawned worker's "
                        f"collector stack is empty, so the record is "
                        f"silently lost -- write to the shm telemetry "
                        f"ring via repro.telemetry.remote instead",
                    ))
    return findings


def lint_package(root: Path | None = None) -> tuple[list[Finding], int]:
    """Lint every ``.py`` file under the package root.

    Returns ``(findings, files_linted)``.  Defaults to the installed
    ``repro`` package directory.
    """
    if root is None:
        import repro

        root = Path(repro.__file__).resolve().parent
    findings: list[Finding] = []
    files = sorted(root.rglob("*.py"))
    for path in files:
        module_name = str(path.relative_to(root.parent)).replace("\\", "/")
        findings.extend(lint_source(module_name, path.read_text()))
    return findings, len(files)
