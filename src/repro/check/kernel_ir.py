"""Analyzer 1: symbolic verification of stencil basic-block IR.

The stencil generator (paper Sec. 4.3, Fig. 7) emits vector-instruction
IR whose statistics feed the machine model; a codegen bug therefore shows
up twice -- as silent numerical corruption *and* as a mispriced kernel.
This analyzer symbolically interprets every instruction of a
:class:`repro.stencil.ir.BasicBlock` and proves, before anything runs:

* every ``VLoad`` lies within the tile's padded input extent
  (``(ry + fy - 1)`` rows by ``(rx - 1) * V + fx - 1 + V`` columns);
* every ``VStore`` targets a distinct position inside the ``ry x rx``
  output tile, and every tile position is stored exactly once;
* registers are defined before use, loads are never silently
  redefined, and the block's register demand fits the machine's
  vector register file;
* each accumulator receives exactly one FMA per kernel tap, with load
  and weight coordinates satisfying the stencil relation
  ``y_off = ty + ky`` and ``x_off = tx * V + kx``;
* the statically counted FMA flops agree with the analytical flop count
  of :mod:`repro.machine.stencil_model` / :class:`ConvSpec` (the
  IR <-> machine-model consistency invariant).
"""

from __future__ import annotations

from repro.check.findings import Finding
from repro.core.convspec import ConvSpec
from repro.errors import CheckError
from repro.machine.spec import MachineSpec
from repro.stencil.basic_block import optimize_register_tile
from repro.stencil.ir import BasicBlock, VBroadcast, VFma, VLoad, VStore

ANALYZER = "kernel-ir"


def _finding(severity: str, location: str, message: str) -> Finding:
    return Finding(severity=severity, analyzer=ANALYZER, location=location,
                   message=message)


def verify_basic_block(
    block: BasicBlock, num_registers: int | None = None, location: str = ""
) -> list[Finding]:
    """Symbolically interpret one basic block; return all violations."""
    loc = location or f"block[{block.fy}x{block.fx} tile {block.ry}x{block.rx}]"
    findings: list[Finding] = []
    ry, rx, fy, fx = block.ry, block.rx, block.fy, block.fx
    v = block.vector_width
    if min(ry, rx, fy, fx, v) <= 0:
        return [_finding("error", loc, "non-positive block parameters")]

    max_y = ry + fy - 2                    # tile halo rows are 0 .. ry+fy-2
    max_x = (rx - 1) * v + fx - 1          # last legal load column start

    loads: dict[str, tuple[int, int]] = {}
    weights: dict[str, tuple[int, int]] = {}
    #: accumulator -> list of (load coords, weight coords) it received.
    taps: dict[str, list[tuple[tuple[int, int], tuple[int, int]]]] = {}
    stored: dict[str, tuple[int, int]] = {}

    for i, instr in enumerate(block.instructions):
        where = f"{loc} @{i}"
        if isinstance(instr, VLoad):
            if not (0 <= instr.y_off <= max_y and 0 <= instr.x_off <= max_x):
                findings.append(_finding(
                    "error", where,
                    f"VLoad {instr.dst} at ({instr.y_off}, {instr.x_off}) "
                    f"outside the tile's padded input extent "
                    f"[0..{max_y}] x [0..{max_x}]",
                ))
            if instr.dst in loads:
                findings.append(_finding(
                    "error", where,
                    f"VLoad redefines register {instr.dst!r} "
                    f"(first loaded at {loads[instr.dst]})",
                ))
            loads[instr.dst] = (instr.y_off, instr.x_off)
        elif isinstance(instr, VBroadcast):
            if not (0 <= instr.ky < fy and 0 <= instr.kx < fx):
                findings.append(_finding(
                    "error", where,
                    f"VBroadcast {instr.dst} of tap ({instr.ky}, {instr.kx}) "
                    f"outside kernel support {fy}x{fx}",
                ))
            weights[instr.dst] = (instr.ky, instr.kx)
        elif isinstance(instr, VFma):
            if instr.vec not in loads:
                findings.append(_finding(
                    "error", where,
                    f"VFma reads input register {instr.vec!r} before any "
                    f"VLoad defines it",
                ))
            elif instr.wvec not in weights:
                findings.append(_finding(
                    "error", where,
                    f"VFma reads weight register {instr.wvec!r} before any "
                    f"VBroadcast defines it",
                ))
            else:
                taps.setdefault(instr.acc, []).append(
                    (loads[instr.vec], weights[instr.wvec])
                )
        elif isinstance(instr, VStore):
            if not (0 <= instr.ty < ry and 0 <= instr.tx < rx):
                findings.append(_finding(
                    "error", where,
                    f"VStore of {instr.acc} at ({instr.ty}, {instr.tx}) "
                    f"outside the {ry}x{rx} output tile",
                ))
                continue
            if instr.acc in stored:
                findings.append(_finding(
                    "error", where,
                    f"accumulator {instr.acc!r} stored twice "
                    f"(first at {stored[instr.acc]})",
                ))
                continue
            if instr.acc not in taps:
                findings.append(_finding(
                    "error", where,
                    f"VStore of accumulator {instr.acc!r} that no VFma "
                    f"ever wrote",
                ))
                continue
            stored[instr.acc] = (instr.ty, instr.tx)
        else:
            findings.append(_finding(
                "error", where, f"unknown instruction kind {type(instr).__name__}"
            ))

    # Tile coverage: every output position stored exactly once.
    positions = set(stored.values())
    if len(positions) != len(stored):
        findings.append(_finding(
            "error", loc, "two accumulators stored to the same tile position"
        ))
    missing = {(ty, tx) for ty in range(ry) for tx in range(rx)} - positions
    if missing and not findings:
        findings.append(_finding(
            "error", loc,
            f"output tile positions never stored: {sorted(missing)}",
        ))

    # Tap completeness per accumulator: exactly one FMA per kernel tap,
    # with coordinates satisfying the stencil relation.
    support = {(ky, kx) for ky in range(fy) for kx in range(fx)}
    for acc, (ty, tx) in stored.items():
        seen_taps = []
        for (y_off, x_off), (ky, kx) in taps[acc]:
            if y_off != ty + ky or x_off != tx * v + kx:
                findings.append(_finding(
                    "error", loc,
                    f"accumulator {acc!r} at ({ty}, {tx}) receives load "
                    f"({y_off}, {x_off}) via tap ({ky}, {kx}); expected load "
                    f"({ty + ky}, {tx * v + kx})",
                ))
            seen_taps.append((ky, kx))
        if sorted(seen_taps) != sorted(support):
            findings.append(_finding(
                "error", loc,
                f"accumulator {acc!r} covers taps {sorted(set(seen_taps))} "
                f"instead of the full {fy}x{fx} support exactly once",
            ))
    dangling = set(taps) - set(stored)
    if dangling:
        findings.append(_finding(
            "error", loc,
            f"accumulators written but never stored: {sorted(dangling)}",
        ))

    # Register pressure against the machine's vector register file.
    if num_registers is not None:
        if block.registers_used > num_registers:
            findings.append(_finding(
                "error", loc,
                f"register pressure {block.registers_used} exceeds the "
                f"machine's {num_registers} vector registers",
            ))
    if block.registers_used != ry * rx + 2:
        findings.append(_finding(
            "error", loc,
            f"registers_used reports {block.registers_used}, expected "
            f"{ry * rx + 2} (tile accumulators + input + weight)",
        ))
    return findings


def verify_spec_ir(
    spec: ConvSpec, machine: MachineSpec, location: str = ""
) -> list[Finding]:
    """Verify the register-tiled block the optimizer picks for ``spec``.

    Runs :func:`verify_basic_block` on the chosen tile, re-derives the
    spec-level bound that the deepest tap stays inside the padded input,
    and cross-checks the IR's statically counted FMA flops against the
    analytical flop count the machine model prices
    (:attr:`ConvSpec.flops`).
    """
    loc = location or (spec.name or spec.describe())
    try:
        tile = optimize_register_tile(
            spec.fy, spec.fx,
            num_registers=machine.num_vector_registers,
            vector_width=machine.vector_width,
        )
    except Exception as exc:  # noqa: BLE001 - analyzer must not crash the run
        raise CheckError(
            f"{loc}: register-tile optimization failed for {spec.describe()}: "
            f"{exc}"
        ) from exc
    block = tile.block
    findings = verify_basic_block(
        block, num_registers=machine.num_vector_registers,
        location=f"{loc} tile {tile.ry}x{tile.rx}",
    )

    # Spec-level bounds: the deepest tap of the last output position must
    # stay inside the padded input (re-derived, not assumed from ConvSpec).
    max_in_y = (spec.out_ny - 1) * spec.sy + spec.fy - 1
    max_in_x = (spec.out_nx - 1) * spec.sx + spec.fx - 1
    if max_in_y >= spec.padded_ny or max_in_x >= spec.padded_nx:
        findings.append(_finding(
            "error", loc,
            f"deepest tap reads input ({max_in_y}, {max_in_x}) outside the "
            f"padded extent {spec.padded_ny}x{spec.padded_nx} "
            f"for {spec.describe()}",
        ))

    # Cross-model consistency: IR FMA flops per output element (times the
    # channel passes the block is invoked for) must equal the analytical
    # count.  Exact integer identity:
    #   2 * fmas * V * Nc * |O|  ==  flops * outputs_per_block
    lhs = 2 * block.fmas * block.vector_width * spec.nc * spec.output_elems
    rhs = spec.flops * block.outputs_per_block
    if lhs != rhs:
        findings.append(_finding(
            "error", loc,
            f"IR counts {block.fmas} FMAs/block "
            f"({lhs / max(block.outputs_per_block, 1) / spec.nc:.0f} flops "
            f"per output element x channel passes) but the machine model "
            f"prices {spec.flops} flops for {spec.describe()}",
        ))
    return findings


def verify_kernel_ir(
    specs: list[ConvSpec], machine: MachineSpec
) -> list[Finding]:
    """Run the IR verifier over every spec; returns all findings."""
    findings: list[Finding] = []
    for spec in specs:
        findings.extend(verify_spec_ir(spec, machine))
    return findings
