"""SARIF 2.1.0 export of :class:`~repro.check.findings.CheckReport`.

SARIF (Static Analysis Results Interchange Format) is what code hosts
ingest to annotate pull requests inline; the CI ``check`` job uploads
the file this module writes.  The mapping is deliberately small:

* one ``run`` with one ``tool.driver`` (``repro-check``), one rule per
  analyzer that contributed a finding;
* severities map ``error -> error``, ``warning -> warning``,
  ``info -> note``;
* analyzer locations of the form ``pkg/module.py:NN`` (the source
  linters) become physical locations under ``src/``, so annotations
  land on the right line; everything else (graph nodes, kernel names)
  becomes a logical location.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.check.findings import CheckReport, Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")

_LEVELS = {"error": "error", "warning": "warning", "info": "note"}


def _split_location(location: str) -> "tuple[str, int] | None":
    """``(path, line)`` when the location is ``file.py:NN``, else None."""
    path, sep, line = location.rpartition(":")
    if sep and path.endswith(".py") and line.isdigit():
        return path, int(line)
    return None


def _result(finding: Finding) -> dict[str, Any]:
    result: dict[str, Any] = {
        "ruleId": finding.analyzer,
        "level": _LEVELS[finding.severity],
        "message": {"text": finding.message},
    }
    physical = _split_location(finding.location)
    if physical is not None:
        path, line = physical
        result["locations"] = [{
            "physicalLocation": {
                "artifactLocation": {"uri": f"src/{path}"},
                "region": {"startLine": line},
            },
        }]
    else:
        result["locations"] = [{
            "logicalLocations": [{"fullyQualifiedName": finding.location}],
        }]
    return result


def to_sarif(report: CheckReport) -> dict[str, Any]:
    """The report as a SARIF 2.1.0 log dictionary."""
    analyzers = sorted({f.analyzer for f in report.findings})
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-check",
                    "informationUri":
                        "https://example.invalid/repro/check",
                    "rules": [
                        {
                            "id": analyzer,
                            "shortDescription": {
                                "text": f"repro check analyzer "
                                        f"{analyzer!r}",
                            },
                        }
                        for analyzer in analyzers
                    ],
                },
            },
            "results": [_result(f) for f in report.sorted_findings()],
            "properties": dict(report.meta),
        }],
    }


def write_sarif(report: CheckReport, path: "str | Path") -> Path:
    """Write the report as SARIF; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_sarif(report), indent=2) + "\n")
    return path
