"""Analyzer 2: ``ast`` verification of emitted kernel source.

The stencil and sparse generators emit Python with every kernel tap
unrolled and every pointer-shifted slice a literal (paper Figs. 6-7).
This analyzer parses the emitted source -- never executes it -- and
proves, per generated kernel:

* every literal slice/index on a tensor parameter is in-range for that
  tensor's extents under the :class:`ConvSpec`, and strided slices
  select exactly the expected number of elements (an in-bounds but
  off-by-one slice is still caught);
* the union of unrolled taps covers the ``Fy x Fx`` kernel support
  exactly once -- no dropped taps, no double-accumulated taps;
* the generated function touches only whitelisted names: ``np`` plus
  its own parameters (no stray globals, no imports);
* slice bounds are literals, as the pointer-shifting transformation
  requires (a non-constant bound means the specializer regressed).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.check.findings import Finding
from repro.core.convspec import ConvSpec
from repro.sparse import codegen as sparse_codegen
from repro.stencil import emit as stencil_emit

ANALYZER = "gen-source"


def _finding(severity: str, location: str, message: str) -> Finding:
    return Finding(severity=severity, analyzer=ANALYZER, location=location,
                   message=message)


@dataclass(frozen=True)
class KernelContract:
    """What the emitted source of one kernel family must satisfy.

    ``arrays`` maps tensor parameter names to per-dimension extents
    (``None`` leaves a dimension unchecked); ``counts`` optionally pins
    the number of elements a slice along a dimension must select;
    ``tap_param``/``tap_dims`` name the tensor and index positions whose
    literal integer pairs enumerate the kernel taps.
    """

    arrays: dict[str, tuple[int | None, ...]]
    tap_param: str
    tap_dims: tuple[int, int]
    support: frozenset[tuple[int, int]]
    counts: dict[str, tuple[int | None, ...]]


def _contracts(spec: ConvSpec) -> dict[str, KernelContract]:
    """The five generated-kernel contracts for one (pre-padded) spec."""
    support = frozenset(
        (ky, kx) for ky in range(spec.fy) for kx in range(spec.fx)
    )
    oy, ox = spec.out_ny, spec.out_nx
    stencil_weights = {"weights": (spec.nf, spec.nc, spec.fy, spec.fx)}
    layout = (spec.fy, spec.fx, spec.nf, spec.nc)
    return {
        "stencil-fp": KernelContract(
            arrays={"inputs": spec.input_shape, "out": spec.output_shape,
                    **stencil_weights},
            tap_param="weights", tap_dims=(2, 3), support=support,
            counts={"inputs": (None, oy, ox)},
        ),
        "stencil-bp-data": KernelContract(
            arrays={"out_error": spec.output_shape,
                    "in_error": spec.input_shape, **stencil_weights},
            tap_param="weights", tap_dims=(2, 3), support=support,
            counts={"in_error": (None, oy, ox)},
        ),
        "stencil-bp-weights": KernelContract(
            arrays={"out_error": spec.output_shape,
                    "inputs": spec.input_shape,
                    "dw": (spec.nf, spec.nc, spec.fy, spec.fx)},
            tap_param="dw", tap_dims=(2, 3), support=support,
            counts={"inputs": (None, oy, ox)},
        ),
        "sparse-bp-data": KernelContract(
            arrays={"eo": (oy * ox, spec.nf), "w_layout": layout,
                    "in_error_hwc": (spec.ny, spec.nx, spec.nc)},
            tap_param="w_layout", tap_dims=(0, 1), support=support,
            counts={"in_error_hwc": (oy, ox, None)},
        ),
        "sparse-bp-weights": KernelContract(
            arrays={"eo": (oy * ox, spec.nf), "dw_layout": layout,
                    "inputs_hwc": (spec.ny, spec.nx, spec.nc)},
            tap_param="dw_layout", tap_dims=(0, 1), support=support,
            counts={"inputs_hwc": (oy, ox, None)},
        ),
    }


#: Emitter attribute per kernel family; resolved late so tests can
#: monkeypatch the emitter modules to seed faults.
_EMITTERS = {
    "stencil-fp": (stencil_emit, "emit_forward_kernel"),
    "stencil-bp-data": (stencil_emit, "emit_backward_data_kernel"),
    "stencil-bp-weights": (stencil_emit, "emit_backward_weights_kernel"),
    "sparse-bp-data": (sparse_codegen, "emit_sparse_backward_data"),
    "sparse-bp-weights": (sparse_codegen, "emit_sparse_backward_weights"),
}


def _index_elements(node: ast.Subscript) -> list[ast.expr]:
    index = node.slice
    if isinstance(index, ast.Tuple):
        return list(index.elts)
    return [index]


def _literal_int(node: ast.expr | None) -> int | None:
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    if (isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub)
            and isinstance(node.operand, ast.Constant)
            and isinstance(node.operand.value, int)):
        return -node.operand.value
    return None


def _check_dim(
    element: ast.expr, extent: int | None, expected_count: int | None,
    location: str, param: str, dim: int,
) -> list[Finding]:
    """Verify one subscript element against one dimension's extent."""
    if isinstance(element, ast.Slice):
        if element.lower is None and element.upper is None \
                and element.step is None:
            return []  # full-dimension slice
        start = _literal_int(element.lower)
        stop = _literal_int(element.upper)
        step = _literal_int(element.step) if element.step is not None else 1
        if start is None or stop is None or step is None:
            return [_finding(
                "error", location,
                f"{param}[dim {dim}] slice bound is not a literal int "
                f"(pointer-shifting requires literal bounds)",
            )]
        if step < 1 or start < 0 or stop <= start:
            return [_finding(
                "error", location,
                f"{param}[dim {dim}] degenerate slice {start}:{stop}:{step}",
            )]
        out = []
        if extent is not None and stop > extent:
            out.append(_finding(
                "error", location,
                f"{param}[dim {dim}] slice {start}:{stop}:{step} exceeds "
                f"extent {extent}",
            ))
        if expected_count is not None:
            selected = len(range(start, stop, step))
            if selected != expected_count:
                out.append(_finding(
                    "error", location,
                    f"{param}[dim {dim}] slice {start}:{stop}:{step} selects "
                    f"{selected} elements, expected {expected_count}",
                ))
        return out
    index = _literal_int(element)
    if index is None:
        return [_finding(
            "error", location,
            f"{param}[dim {dim}] index is not a literal int",
        )]
    if extent is not None and not 0 <= index < extent:
        return [_finding(
            "error", location,
            f"{param}[dim {dim}] index {index} out of range for "
            f"extent {extent}",
        )]
    return []


def verify_kernel_source(
    source: str, contract: KernelContract, location: str
) -> list[Finding]:
    """Statically verify one emitted kernel source against its contract."""
    findings: list[Finding] = []
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [_finding("error", location,
                         f"emitted source does not parse: {exc}")]
    functions = [n for n in tree.body if isinstance(n, ast.FunctionDef)]
    if len(functions) != 1:
        return [_finding(
            "error", location,
            f"emitted module defines {len(functions)} functions, expected 1",
        )]
    func = functions[0]
    params = {a.arg for a in func.args.args}
    missing = set(contract.arrays) - params
    if missing:
        findings.append(_finding(
            "error", location,
            f"generated function is missing tensor parameters "
            f"{sorted(missing)}",
        ))

    taps: list[tuple[int, int]] = []
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            if node.id not in params and node.id != "np":
                findings.append(_finding(
                    "error", f"{location}:{node.lineno}",
                    f"generated code references non-whitelisted name "
                    f"{node.id!r} (allowed: np + parameters)",
                ))
        if not isinstance(node, ast.Subscript):
            continue
        if not isinstance(node.value, ast.Name):
            continue
        param = node.value.id
        extents = contract.arrays.get(param)
        if extents is None:
            continue
        where = f"{location}:{node.lineno}"
        elements = _index_elements(node)
        if len(elements) > len(extents):
            findings.append(_finding(
                "error", where,
                f"{param} subscripted with {len(elements)} indices but has "
                f"{len(extents)} dimensions",
            ))
            continue
        counts = contract.counts.get(param, (None,) * len(extents))
        for dim, element in enumerate(elements):
            findings.extend(_check_dim(
                element, extents[dim], counts[dim], where, param, dim
            ))
        if param == contract.tap_param:
            pair = tuple(
                _literal_int(elements[d]) if d < len(elements) else None
                for d in contract.tap_dims
            )
            if None not in pair:
                taps.append(pair)  # type: ignore[arg-type]

    # Tap coverage: the unrolled taps must tile the support exactly once.
    duplicates = {t for t in taps if taps.count(t) > 1}
    if duplicates:
        findings.append(_finding(
            "error", location,
            f"taps emitted more than once (double accumulation): "
            f"{sorted(duplicates)}",
        ))
    uncovered = set(contract.support) - set(taps)
    if uncovered:
        findings.append(_finding(
            "error", location,
            f"kernel support not covered by the unrolled taps; missing "
            f"{sorted(uncovered)}",
        ))
    unexpected = set(taps) - set(contract.support)
    if unexpected:
        findings.append(_finding(
            "error", location,
            f"taps outside the kernel support: {sorted(unexpected)}",
        ))
    return findings


def verify_generated_sources(specs: list[ConvSpec]) -> list[Finding]:
    """Emit and statically verify every kernel family for every spec.

    Specs must be engine-facing (``pad == 0``); the emitters reject
    padded specs and that rejection is reported as a finding rather
    than raised.
    """
    findings: list[Finding] = []
    for spec in specs:
        contracts = _contracts(spec)
        for family, (module, attr) in _EMITTERS.items():
            location = f"{spec.name or spec.describe()}/{family}"
            try:
                kernel = getattr(module, attr)(spec)
            except Exception as exc:  # noqa: BLE001 - report, don't crash
                findings.append(_finding(
                    "error", location, f"emitter failed: {exc}"
                ))
                continue
            findings.extend(
                verify_kernel_source(kernel.source, contracts[family], location)
            )
    return findings
