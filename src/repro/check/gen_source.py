"""Analyzer 2: ``ast`` verification of emitted kernel source.

The stencil and sparse generators emit Python with every kernel tap
unrolled and every pointer-shifted slice a literal (paper Figs. 6-7).
This analyzer parses the emitted source -- never executes it -- and
proves, per generated kernel:

* every literal slice/index on a tensor parameter is in-range for that
  tensor's extents under the :class:`ConvSpec`, and strided slices
  select exactly the expected number of elements (an in-bounds but
  off-by-one slice is still caught);
* the union of unrolled taps covers the ``Fy x Fx`` kernel support
  exactly once -- no dropped taps, no double-accumulated taps.  For
  *scheduled* emissions (a non-default pass pipeline) taps legally
  repeat once per tile, so the check demands instead that every tap
  appears the same number of times and, per tap, that the destination
  slices tile the output domain exactly once;
* the generated function touches only whitelisted names: ``np``, its
  own parameters and names the function itself assigns (the fused
  kernel's ``act``/``win``/``flat``/``idx`` scratch);
* slice bounds are literals, as the pointer-shifting transformation
  requires (a non-constant bound means the specializer regressed);
* fused conv+ReLU+pool kernels additionally carry the pool geometry
  contract: a ``bias`` parameter, and the pool-row blocks written to
  ``out``/``argmax`` must partition the pooled rows exactly once.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.check.findings import Finding
from repro.core.convspec import ConvSpec
from repro.sparse import codegen as sparse_codegen
from repro.stencil import emit as stencil_emit
from repro.stencil.loopir import PoolWindow

if TYPE_CHECKING:  # pragma: no cover - import-cycle guard
    from repro.stencil.passes import SchedulePipeline

ANALYZER = "gen-source"


def _finding(severity: str, location: str, message: str) -> Finding:
    return Finding(severity=severity, analyzer=ANALYZER, location=location,
                   message=message)


@dataclass(frozen=True)
class KernelContract:
    """What the emitted source of one kernel family must satisfy.

    ``arrays`` maps tensor parameter names to per-dimension extents
    (``None`` leaves a dimension unchecked); ``counts`` optionally pins
    the number of elements a slice along a dimension must select;
    ``tap_param``/``tap_dims`` name the tensor and index positions whose
    literal integer pairs enumerate the kernel taps.

    The scheduled-emission extensions: ``allow_repeated_taps`` accepts
    taps appearing once per tile (all with the same multiplicity);
    ``dest_param``/``dest_dims``/``dest_positions``/``dest_shift``
    drive the per-tap destination-coverage check (the accumulation
    target's spatial slices must tile the per-tap index set exactly
    once); ``block_params``/``block_dim``/``block_extent`` require the
    fused kernel's pool-row blocks to partition the pooled rows.
    """

    arrays: dict[str, tuple[int | None, ...]]
    tap_param: str
    tap_dims: tuple[int, int]
    support: frozenset[tuple[int, int]]
    counts: dict[str, tuple[int | None, ...]]
    allow_repeated_taps: bool = False
    dest_param: str = ""
    dest_dims: tuple[int, int] = (1, 2)
    dest_positions: tuple[int, int] = (0, 0)
    dest_shift: tuple[int, int] | None = None
    block_params: tuple[str, ...] = ()
    block_dim: int = 1
    block_extent: int = 0


def _contracts(spec: ConvSpec) -> dict[str, KernelContract]:
    """The five generated-kernel contracts for one (pre-padded) spec."""
    support = frozenset(
        (ky, kx) for ky in range(spec.fy) for kx in range(spec.fx)
    )
    oy, ox = spec.out_ny, spec.out_nx
    stencil_weights = {"weights": (spec.nf, spec.nc, spec.fy, spec.fx)}
    layout = (spec.fy, spec.fx, spec.nf, spec.nc)
    return {
        "stencil-fp": KernelContract(
            arrays={"inputs": spec.input_shape, "out": spec.output_shape,
                    **stencil_weights},
            tap_param="weights", tap_dims=(2, 3), support=support,
            counts={"inputs": (None, oy, ox)},
            dest_param="out", dest_positions=(oy, ox),
        ),
        "stencil-bp-data": KernelContract(
            arrays={"out_error": spec.output_shape,
                    "in_error": spec.input_shape, **stencil_weights},
            tap_param="weights", tap_dims=(2, 3), support=support,
            counts={"in_error": (None, oy, ox)},
            dest_param="in_error", dest_positions=(oy, ox),
            dest_shift=(spec.sy, spec.sx),
        ),
        "stencil-bp-weights": KernelContract(
            arrays={"out_error": spec.output_shape,
                    "inputs": spec.input_shape,
                    "dw": (spec.nf, spec.nc, spec.fy, spec.fx)},
            tap_param="dw", tap_dims=(2, 3), support=support,
            counts={"inputs": (None, oy, ox)},
        ),
        "sparse-bp-data": KernelContract(
            arrays={"eo": (oy * ox, spec.nf), "w_layout": layout,
                    "in_error_hwc": (spec.ny, spec.nx, spec.nc)},
            tap_param="w_layout", tap_dims=(0, 1), support=support,
            counts={"in_error_hwc": (oy, ox, None)},
        ),
        "sparse-bp-weights": KernelContract(
            arrays={"eo": (oy * ox, spec.nf), "dw_layout": layout,
                    "inputs_hwc": (spec.ny, spec.nx, spec.nc)},
            tap_param="dw_layout", tap_dims=(0, 1), support=support,
            counts={"inputs_hwc": (oy, ox, None)},
        ),
    }


def fused_contract(spec: ConvSpec, pool_kernel: int,
                   pool_stride: int | None = None) -> KernelContract:
    """The extended contract of the fused conv+ReLU+pool kernel.

    Beyond the stencil-fp checks it requires the ``bias`` parameter, the
    pooled ``out``/``argmax`` extents, and that the emitted pool-row
    blocks partition the pooled rows exactly once.  Taps legally repeat
    once per pool-row block, all with equal multiplicity.
    """
    pool = PoolWindow(pool_kernel, pool_stride or pool_kernel)
    py = pool.out_extent(spec.out_ny)
    px = pool.out_extent(spec.out_nx)
    support = frozenset(
        (ky, kx) for ky in range(spec.fy) for kx in range(spec.fx)
    )
    return KernelContract(
        arrays={
            "inputs": spec.input_shape,
            "weights": (spec.nf, spec.nc, spec.fy, spec.fx),
            "bias": (spec.nf,),
            "out": (spec.nf, py, px),
            "argmax": (spec.nf, py, px),
        },
        tap_param="weights", tap_dims=(2, 3), support=support,
        counts={},
        allow_repeated_taps=True,
        block_params=("out", "argmax"),
        block_dim=1,
        block_extent=py,
    )


#: ``SchedulePipeline.family`` -> contract key in :func:`_contracts`.
_FAMILY_CONTRACTS = {
    "fp": "stencil-fp",
    "bp_data": "stencil-bp-data",
    "bp_weights": "stencil-bp-weights",
    "sparse_bp_data": "sparse-bp-data",
    "sparse_bp_weights": "sparse-bp-weights",
}


def contract_for(spec: ConvSpec,
                 pipeline: "SchedulePipeline") -> KernelContract:
    """The source contract for one spec under one schedule pipeline.

    Non-default pipelines relax the exactly-once tap rule to the
    equal-multiplicity rule (taps repeat once per tile) and drop the
    slice-count pins, which assume the untiled full-plane emission; the
    per-tap destination-coverage check remains exact either way.
    """
    if pipeline.family == "fused_fp":
        return fused_contract(spec, pipeline.pool_kernel,
                              pipeline.pool_stride or None)
    contract = _contracts(spec)[_FAMILY_CONTRACTS[pipeline.family]]
    if not pipeline.is_default:
        contract = replace(contract, counts={}, allow_repeated_taps=True)
    return contract


#: Emitter attribute per kernel family; resolved late so tests can
#: monkeypatch the emitter modules to seed faults.
_EMITTERS = {
    "stencil-fp": (stencil_emit, "emit_forward_kernel"),
    "stencil-bp-data": (stencil_emit, "emit_backward_data_kernel"),
    "stencil-bp-weights": (stencil_emit, "emit_backward_weights_kernel"),
    "sparse-bp-data": (sparse_codegen, "emit_sparse_backward_data"),
    "sparse-bp-weights": (sparse_codegen, "emit_sparse_backward_weights"),
}


def _index_elements(node: ast.Subscript) -> list[ast.expr]:
    """Subscript elements that consume a dimension (newaxis dropped)."""
    index = node.slice
    elements = list(index.elts) if isinstance(index, ast.Tuple) else [index]
    return [e for e in elements
            if not (isinstance(e, ast.Constant) and e.value is None)]


def _literal_int(node: ast.expr | None) -> int | None:
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    if (isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub)
            and isinstance(node.operand, ast.Constant)
            and isinstance(node.operand.value, int)):
        return -node.operand.value
    return None


def _check_dim(
    element: ast.expr, extent: int | None, expected_count: int | None,
    location: str, param: str, dim: int,
) -> list[Finding]:
    """Verify one subscript element against one dimension's extent."""
    if isinstance(element, ast.Slice):
        if element.lower is None and element.upper is None \
                and element.step is None:
            return []  # full-dimension slice
        start = _literal_int(element.lower)
        stop = _literal_int(element.upper)
        step = _literal_int(element.step) if element.step is not None else 1
        if start is None or stop is None or step is None:
            return [_finding(
                "error", location,
                f"{param}[dim {dim}] slice bound is not a literal int "
                f"(pointer-shifting requires literal bounds)",
            )]
        if step < 1 or start < 0 or stop <= start:
            return [_finding(
                "error", location,
                f"{param}[dim {dim}] degenerate slice {start}:{stop}:{step}",
            )]
        out = []
        if extent is not None and stop > extent:
            out.append(_finding(
                "error", location,
                f"{param}[dim {dim}] slice {start}:{stop}:{step} exceeds "
                f"extent {extent}",
            ))
        if expected_count is not None:
            selected = len(range(start, stop, step))
            if selected != expected_count:
                out.append(_finding(
                    "error", location,
                    f"{param}[dim {dim}] slice {start}:{stop}:{step} selects "
                    f"{selected} elements, expected {expected_count}",
                ))
        return out
    index = _literal_int(element)
    if index is None:
        return [_finding(
            "error", location,
            f"{param}[dim {dim}] index is not a literal int",
        )]
    if extent is not None and not 0 <= index < extent:
        return [_finding(
            "error", location,
            f"{param}[dim {dim}] index {index} out of range for "
            f"extent {extent}",
        )]
    return []


def _index_set(element: ast.expr, extent: int | None) -> set[int] | None:
    """The literal index set one subscript element selects, if literal."""
    if isinstance(element, ast.Slice):
        if element.lower is None and element.upper is None \
                and element.step is None:
            return set(range(extent)) if extent is not None else None
        start = _literal_int(element.lower)
        stop = _literal_int(element.upper)
        step = _literal_int(element.step) if element.step is not None else 1
        if start is None or stop is None or step is None:
            return None
        return set(range(start, stop, step))
    index = _literal_int(element)
    return None if index is None else {index}


def _statement_tap(value: ast.expr,
                   contract: KernelContract) -> tuple[int, int] | None:
    """The kernel tap a statement's RHS references, if any."""
    for node in ast.walk(value):
        if (isinstance(node, ast.Subscript)
                and isinstance(node.value, ast.Name)
                and node.value.id == contract.tap_param):
            elements = _index_elements(node)
            pair = tuple(
                _literal_int(elements[d]) if d < len(elements) else None
                for d in contract.tap_dims
            )
            if None not in pair:
                return pair  # type: ignore[return-value]
    return None


def _check_dest_coverage(
    func: ast.FunctionDef, contract: KernelContract, location: str
) -> list[Finding]:
    """Per tap, the accumulation destination must tile its index set.

    This is what makes tiled emissions verifiable: the union of a tap's
    destination slices (one per tile) must equal the tap's expected
    spatial positions -- no overlap (double accumulation), no hole
    (dropped tile), regardless of the tile shapes the schedule chose.
    """
    if not contract.dest_param:
        return []
    dy, dx = contract.dest_dims
    ny, nx = contract.dest_positions
    extents = contract.arrays.get(contract.dest_param)
    per_tap: dict[tuple[int, int], list[tuple[set[int], set[int]]]] = {}
    for stmt in ast.walk(func):
        if not isinstance(stmt, ast.AugAssign):
            continue
        tap = _statement_tap(stmt.value, contract)
        if tap is None:
            continue
        target = stmt.target
        if isinstance(target, ast.Name) and target.id == contract.dest_param:
            if extents is None or extents[dy] is None or extents[dx] is None:
                continue
            yset = set(range(extents[dy]))
            xset = set(range(extents[dx]))
        elif (isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)
                and target.value.id == contract.dest_param):
            elements = _index_elements(target)
            if max(dy, dx) >= len(elements):
                continue
            yset_opt = _index_set(
                elements[dy], extents[dy] if extents else None
            )
            xset_opt = _index_set(
                elements[dx], extents[dx] if extents else None
            )
            if yset_opt is None or xset_opt is None:
                continue  # non-literal bounds are flagged by _check_dim
            yset, xset = yset_opt, xset_opt
        else:
            continue
        per_tap.setdefault(tap, []).append((yset, xset))

    findings: list[Finding] = []
    for tap in sorted(per_tap):
        ky, kx = tap
        if contract.dest_shift is None:
            expected = {(y, x) for y in range(ny) for x in range(nx)}
        else:
            sy, sx = contract.dest_shift
            expected = {(ky + i * sy, kx + j * sx)
                        for i in range(ny) for j in range(nx)}
        covered: list[tuple[int, int]] = []
        for yset, xset in per_tap[tap]:
            covered.extend((y, x) for y in yset for x in xset)
        if len(covered) != len(set(covered)):
            findings.append(_finding(
                "error", location,
                f"tap {tap}: destination slices of "
                f"{contract.dest_param!r} overlap (double accumulation)",
            ))
        if set(covered) != expected:
            findings.append(_finding(
                "error", location,
                f"tap {tap}: destination slices of "
                f"{contract.dest_param!r} cover {len(set(covered))} "
                f"positions, expected {len(expected)}",
            ))
    return findings


def _check_block_coverage(
    func: ast.FunctionDef, contract: KernelContract, location: str
) -> list[Finding]:
    """Fused kernels: pool-row blocks must partition the pooled rows."""
    findings: list[Finding] = []
    for param in contract.block_params:
        rows: list[int] = []
        literal = True
        for stmt in ast.walk(func):
            if not isinstance(stmt, ast.Assign):
                continue
            for target in stmt.targets:
                if not (isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == param):
                    continue
                elements = _index_elements(target)
                if contract.block_dim >= len(elements):
                    continue
                selected = _index_set(
                    elements[contract.block_dim], contract.block_extent
                )
                if selected is None:
                    findings.append(_finding(
                        "error", location,
                        f"{param} pool-row block bound is not a literal int",
                    ))
                    literal = False
                    continue
                rows.extend(selected)
        if not literal:
            continue
        if len(rows) != len(set(rows)):
            findings.append(_finding(
                "error", location,
                f"{param} pool-row blocks overlap",
            ))
        if set(rows) != set(range(contract.block_extent)):
            findings.append(_finding(
                "error", location,
                f"{param} pool-row blocks cover {sorted(set(rows))} "
                f"instead of 0..{contract.block_extent - 1}",
            ))
    return findings


def verify_kernel_source(
    source: str, contract: KernelContract, location: str
) -> list[Finding]:
    """Statically verify one emitted kernel source against its contract."""
    findings: list[Finding] = []
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [_finding("error", location,
                         f"emitted source does not parse: {exc}")]
    functions = [n for n in tree.body if isinstance(n, ast.FunctionDef)]
    if len(functions) != 1:
        return [_finding(
            "error", location,
            f"emitted module defines {len(functions)} functions, expected 1",
        )]
    func = functions[0]
    params = {a.arg for a in func.args.args}
    missing = set(contract.arrays) - params
    if missing:
        findings.append(_finding(
            "error", location,
            f"generated function is missing tensor parameters "
            f"{sorted(missing)}",
        ))

    # Names the function itself assigns (fused-kernel scratch like
    # ``act``/``win``/``flat``/``idx``) are as trusted as parameters;
    # anything else except ``np`` is still a stray global.
    assigned = {
        node.id for node in ast.walk(func)
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store)
    }
    allowed = params | assigned | {"np"}

    taps: list[tuple[int, int]] = []
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            if node.id not in allowed:
                findings.append(_finding(
                    "error", f"{location}:{node.lineno}",
                    f"generated code references non-whitelisted name "
                    f"{node.id!r} (allowed: np + parameters)",
                ))
        if not isinstance(node, ast.Subscript):
            continue
        if not isinstance(node.value, ast.Name):
            continue
        param = node.value.id
        extents = contract.arrays.get(param)
        if extents is None:
            continue
        where = f"{location}:{node.lineno}"
        elements = _index_elements(node)
        if len(elements) > len(extents):
            findings.append(_finding(
                "error", where,
                f"{param} subscripted with {len(elements)} indices but has "
                f"{len(extents)} dimensions",
            ))
            continue
        counts = contract.counts.get(param, (None,) * len(extents))
        for dim, element in enumerate(elements):
            findings.extend(_check_dim(
                element, extents[dim], counts[dim], where, param, dim
            ))
        if param == contract.tap_param:
            pair = tuple(
                _literal_int(elements[d]) if d < len(elements) else None
                for d in contract.tap_dims
            )
            if None not in pair:
                taps.append(pair)  # type: ignore[arg-type]

    # Tap coverage: the unrolled taps must tile the support exactly once
    # -- or, for scheduled emissions, once per tile with equal
    # multiplicity (the destination-coverage check proves the tiles).
    multiplicity = {t: taps.count(t) for t in set(taps)}
    if contract.allow_repeated_taps:
        if len(set(multiplicity.values())) > 1:
            findings.append(_finding(
                "error", location,
                f"taps emitted with unequal multiplicity: {multiplicity}",
            ))
    else:
        duplicates = {t for t, n in multiplicity.items() if n > 1}
        if duplicates:
            findings.append(_finding(
                "error", location,
                f"taps emitted more than once (double accumulation): "
                f"{sorted(duplicates)}",
            ))
    uncovered = set(contract.support) - set(taps)
    if uncovered:
        findings.append(_finding(
            "error", location,
            f"kernel support not covered by the unrolled taps; missing "
            f"{sorted(uncovered)}",
        ))
    unexpected = set(taps) - set(contract.support)
    if unexpected:
        findings.append(_finding(
            "error", location,
            f"taps outside the kernel support: {sorted(unexpected)}",
        ))
    findings.extend(_check_dest_coverage(func, contract, location))
    findings.extend(_check_block_coverage(func, contract, location))
    return findings


def verify_generated_sources(specs: list[ConvSpec]) -> list[Finding]:
    """Emit and statically verify every kernel family for every spec.

    Specs must be engine-facing (``pad == 0``); the emitters reject
    padded specs and that rejection is reported as a finding rather
    than raised.  Specs whose output plane admits a 2x2 max pool also
    get their fused conv+ReLU+pool emission verified against the
    extended fused contract.
    """
    findings: list[Finding] = []
    for spec in specs:
        contracts = _contracts(spec)
        for family, (module, attr) in _EMITTERS.items():
            location = f"{spec.name or spec.describe()}/{family}"
            try:
                kernel = getattr(module, attr)(spec)
            except Exception as exc:  # noqa: BLE001 - report, don't crash
                findings.append(_finding(
                    "error", location, f"emitter failed: {exc}"
                ))
                continue
            findings.extend(
                verify_kernel_source(kernel.source, contracts[family], location)
            )
        if spec.out_ny >= 2 and spec.out_nx >= 2:
            location = f"{spec.name or spec.describe()}/stencil-fused-fp"
            try:
                kernel = stencil_emit.emit_fused_forward_kernel(spec, 2)
            except Exception as exc:  # noqa: BLE001 - report, don't crash
                findings.append(_finding(
                    "error", location, f"emitter failed: {exc}"
                ))
                continue
            findings.extend(verify_kernel_source(
                kernel.source, fused_contract(spec, 2), location
            ))
    return findings
