"""Analyzer 3: network-graph verification before training starts.

Propagates shapes and dtypes through a :class:`repro.nn.network.Network`
(or an unbuilt netdef dictionary) and reports, as structured findings:

* **shape mismatches** -- a layer whose declared geometry is
  inconsistent with the activation shape reaching it (re-derived here,
  independently of the eager checks the layers themselves run);
* **dtype drift** -- parameters that are not float32, which would
  silently up-cast every activation downstream;
* **dead layers** -- structure that provably does nothing (duplicate
  consecutive ReLUs, flatten of already-flat input, dropout with
  rate 0, 1x1/stride-1 pooling);
* **layout-transition hazards** -- pooling windows that silently drop
  input rows/columns, and strided convolutions that trigger the Eq. 21
  data-layout transform on every pass.

:func:`preflight_network` is the fail-fast entry point wired into
:class:`repro.nn.training_loop.TrainingLoop`: error findings abort
before the first batch instead of surfacing as mid-training corruption.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro import telemetry
from repro.check.findings import CheckReport, Finding
from repro.errors import ShapeError
from repro.nn.layers.activations import FlattenLayer, ReLULayer
from repro.nn.layers.conv import ConvLayer
from repro.nn.layers.dense import DenseLayer
from repro.nn.layers.extras import AvgPoolLayer, DropoutLayer
from repro.nn.layers.pool import MaxPoolLayer
from repro.nn.network import Network

ANALYZER = "graph"


def _finding(severity: str, location: str, message: str) -> Finding:
    return Finding(severity=severity, analyzer=ANALYZER, location=location,
                   message=message)


def _check_conv(layer: ConvLayer, shape: tuple[int, ...], loc: str
                ) -> list[Finding]:
    findings = []
    spec = layer.spec
    if tuple(shape) != spec.input_shape:
        findings.append(_finding(
            "error", loc,
            f"conv expects input {spec.input_shape} but receives {shape}",
        ))
    if layer.weights.shape != spec.weight_shape:
        findings.append(_finding(
            "error", loc,
            f"weight tensor {layer.weights.shape} != spec "
            f"{spec.weight_shape}",
        ))
    for pname, param in layer.params().items():
        if param.dtype != np.float32:
            findings.append(_finding(
                "warning", loc,
                f"parameter {pname!r} has dtype {param.dtype}, expected "
                f"float32 (dtype drift up-casts downstream activations)",
            ))
    padded = layer.padded_spec
    if (padded.ny, padded.nx, padded.pad) != (
            spec.padded_ny, spec.padded_nx, 0):
        findings.append(_finding(
            "error", loc,
            f"engine-facing spec {padded.ny}x{padded.nx} (pad {padded.pad}) "
            f"inconsistent with padded geometry "
            f"{spec.padded_ny}x{spec.padded_nx}",
        ))
    if spec.sx > 1 or spec.sy > 1:
        findings.append(_finding(
            "info", loc,
            f"stride {spec.sy}x{spec.sx} convolution pays the Eq. 21 "
            f"data-layout transform on every stencil pass",
        ))
    return findings


def _check_pool(layer: Any, shape: tuple[int, ...], loc: str) -> list[Finding]:
    findings = []
    if len(shape) != 3:
        return [_finding(
            "error", loc, f"pool needs [C, Y, X] input, got {shape}"
        )]
    _, y, x = shape
    if layer.kernel > y or layer.kernel > x:
        findings.append(_finding(
            "error", loc,
            f"pool kernel {layer.kernel} larger than input extent "
            f"{y}x{x}",
        ))
        return findings
    if layer.kernel == 1 and layer.stride == 1:
        findings.append(_finding(
            "warning", loc, "1x1 stride-1 pooling is an identity (dead layer)"
        ))
    for axis, extent in (("y", y), ("x", x)):
        covered = ((extent - layer.kernel) // layer.stride) * layer.stride \
            + layer.kernel
        if covered != extent:
            findings.append(_finding(
                "warning", loc,
                f"pool window drops {extent - covered} trailing input "
                f"{axis}-positions ({extent} -> {covered} covered)",
            ))
    return findings


def verify_network(network: Network) -> list[Finding]:
    """Shape/dtype propagation and structural lint over a built network."""
    findings: list[Finding] = []
    shape: tuple[int, ...] = tuple(network.input_shape)
    previous = None
    for i, layer in enumerate(network.layers):
        loc = f"{network.name}/{layer.name}"
        if isinstance(layer, ConvLayer):
            findings.extend(_check_conv(layer, shape, loc))
        elif isinstance(layer, (MaxPoolLayer, AvgPoolLayer)):
            findings.extend(_check_pool(layer, shape, loc))
        elif isinstance(layer, DenseLayer):
            if shape != (layer.in_features,):
                findings.append(_finding(
                    "error", loc,
                    f"dense expects flattened ({layer.in_features},) input "
                    f"but receives {shape}",
                ))
            if layer.weights.dtype != np.float32:
                findings.append(_finding(
                    "warning", loc,
                    f"weights dtype {layer.weights.dtype}, expected float32",
                ))
        elif isinstance(layer, ReLULayer):
            if isinstance(previous, ReLULayer):
                findings.append(_finding(
                    "warning", loc,
                    "consecutive ReLU layers; the second is a dead layer",
                ))
        elif isinstance(layer, FlattenLayer):
            if len(shape) == 1:
                findings.append(_finding(
                    "warning", loc,
                    "flatten of already-flat input is a dead layer",
                ))
        elif isinstance(layer, DropoutLayer):
            if layer.rate == 0.0:
                findings.append(_finding(
                    "warning", loc, "dropout with rate 0 is a dead layer"
                ))
        # Advance the shape chain; a layer that rejects its input is a
        # shape mismatch even if the checks above did not anticipate it.
        try:
            shape = tuple(layer.output_shape(shape))
        except ShapeError as exc:
            findings.append(_finding(
                "error", loc, f"shape propagation failed: {exc}"
            ))
            break
        previous = layer
    else:
        if len(shape) != 1:
            findings.append(_finding(
                "warning", f"{network.name}/output",
                f"network output {shape} is not a flat class-score vector; "
                f"losses expect [B, classes]",
            ))
        declared = tuple(network.layer_shapes[-1])
        if declared != shape:
            findings.append(_finding(
                "error", f"{network.name}/output",
                f"declared output shape {declared} != re-derived {shape}",
            ))
    return findings


#: netdef layer types whose geometry the dict-level checker understands.
_NETDEF_TYPES = ("conv", "relu", "pool", "avgpool", "lrn", "dropout",
                 "flatten", "dense")


def verify_netdef(definition: dict) -> list[Finding]:
    """Shape-propagate an unbuilt netdef dictionary (no allocation).

    Reports every inconsistency it can find rather than stopping at the
    first, which is what makes it more useful than just attempting
    :func:`repro.nn.netdef.build_network`.
    """
    findings: list[Finding] = []
    name = definition.get("name", "netdef")
    raw_input = definition.get("input")
    if not raw_input or len(tuple(raw_input)) != 3:
        return [_finding(
            "error", name, f"netdef input must be [C, Y, X], got {raw_input!r}"
        )]
    shape = tuple(int(v) for v in raw_input)
    if min(shape) <= 0:
        return [_finding(
            "error", name, f"netdef input extents must be positive: {shape}"
        )]
    for i, layer_def in enumerate(definition.get("layers", [])):
        layer_type = layer_def.get("type", "?")
        loc = f"{name}/{layer_def.get('name', f'{layer_type}{i}')}"
        if layer_type not in _NETDEF_TYPES:
            findings.append(_finding(
                "error", loc, f"unknown layer type {layer_type!r}"
            ))
            continue
        if layer_type == "conv":
            if len(shape) != 3:
                findings.append(_finding(
                    "error", loc, f"conv needs [C, Y, X] input, got {shape}"
                ))
                break
            kernel = int(layer_def.get("kernel", 0))
            stride = int(layer_def.get("stride", 1))
            pad = int(layer_def.get("pad", 0))
            features = int(layer_def.get("features", 0))
            if kernel <= 0 or features <= 0 or stride <= 0 or pad < 0:
                findings.append(_finding(
                    "error", loc,
                    f"conv needs positive kernel/features/stride, got "
                    f"kernel={kernel} features={features} stride={stride} "
                    f"pad={pad}",
                ))
                break
            py, px = shape[1] + 2 * pad, shape[2] + 2 * pad
            if kernel > py or kernel > px:
                findings.append(_finding(
                    "error", loc,
                    f"kernel {kernel} larger than padded input {py}x{px}",
                ))
                break
            shape = (features, (py - kernel) // stride + 1,
                     (px - kernel) // stride + 1)
        elif layer_type in ("pool", "avgpool"):
            if len(shape) != 3:
                findings.append(_finding(
                    "error", loc, f"pool needs [C, Y, X] input, got {shape}"
                ))
                break
            kernel = int(layer_def.get("kernel", 0))
            stride = int(layer_def.get("stride", kernel) or kernel)
            if kernel <= 0 or stride <= 0:
                findings.append(_finding(
                    "error", loc, f"pool needs positive kernel, got {kernel}"
                ))
                break
            if kernel > shape[1] or kernel > shape[2]:
                findings.append(_finding(
                    "error", loc,
                    f"pool kernel {kernel} larger than input "
                    f"{shape[1]}x{shape[2]}",
                ))
                break
            shape = (shape[0], (shape[1] - kernel) // stride + 1,
                     (shape[2] - kernel) // stride + 1)
        elif layer_type == "flatten":
            size = 1
            for extent in shape:
                size *= extent
            shape = (size,)
        elif layer_type == "dense":
            if len(shape) != 1:
                findings.append(_finding(
                    "error", loc,
                    f"dense needs flattened input, got {shape}; insert a "
                    f"flatten layer",
                ))
                break
            features = int(layer_def.get("features", 0))
            if features <= 0:
                findings.append(_finding(
                    "error", loc, "dense needs a positive feature count"
                ))
                break
            shape = (features,)
        # relu / lrn / dropout are shape-preserving.
    return findings


def verify_networks(networks: list[Network]) -> list[Finding]:
    """Run :func:`verify_network` over several networks."""
    findings: list[Finding] = []
    for network in networks:
        findings.extend(verify_network(network))
    return findings


def preflight_network(network: Network) -> CheckReport:
    """Fail-fast pre-flight for :class:`TrainingLoop`.

    Raises :class:`repro.errors.CheckError` when the graph checker
    reports errors; warnings are recorded as a telemetry event (no-op
    unless a collector is active) and returned for inspection.
    """
    report = CheckReport(findings=verify_network(network),
                         meta={"networks": 1})
    telemetry.event(
        "check.preflight", network=network.name,
        errors=len(report.errors), warnings=len(report.warnings),
    )
    report.raise_if_errors(context=f"preflight of network {network.name!r}")
    return report
