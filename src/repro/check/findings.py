"""Structured findings produced by the static analyzers.

Every analyzer in :mod:`repro.check` reports :class:`Finding` records --
never free-form prints -- so results can be rendered as an ASCII table,
exported as JSON (following the :mod:`repro.telemetry.export`
conventions) and gated on in CI.  A :class:`CheckReport` aggregates the
findings of one ``run_all`` invocation together with coverage metadata.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.analysis.reporting import format_table
from repro.errors import CheckError

#: Severity levels, most severe first.  ``error`` findings gate CI
#: (non-zero exit); ``warning`` and ``info`` are advisory.
SEVERITIES = ("error", "warning", "info")


@dataclass(frozen=True)
class Finding:
    """One verification result from a static analyzer."""

    severity: str
    analyzer: str
    location: str
    message: str

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise CheckError(
                f"finding severity must be one of {SEVERITIES}, got "
                f"{self.severity!r}"
            )

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly representation."""
        return {
            "severity": self.severity,
            "analyzer": self.analyzer,
            "location": self.location,
            "message": self.message,
        }


@dataclass
class CheckReport:
    """Aggregated findings of one verification run."""

    findings: list[Finding] = field(default_factory=list)
    #: Coverage metadata: what was checked (specs, kernels, files, ...).
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def errors(self) -> list[Finding]:
        """Findings that gate the exit code."""
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> list[Finding]:
        """Advisory findings."""
        return [f for f in self.findings if f.severity == "warning"]

    @property
    def ok(self) -> bool:
        """True when no error-severity finding was reported."""
        return not self.errors

    def extend(self, findings: list[Finding]) -> None:
        """Append another analyzer's findings."""
        self.findings.extend(findings)

    def by_analyzer(self) -> dict[str, list[Finding]]:
        """Findings grouped by the analyzer that produced them."""
        grouped: dict[str, list[Finding]] = {}
        for finding in self.findings:
            grouped.setdefault(finding.analyzer, []).append(finding)
        return grouped

    def raise_if_errors(self, context: str = "") -> None:
        """Raise :class:`CheckError` summarizing any error findings."""
        errors = self.errors
        if not errors:
            return
        prefix = f"{context}: " if context else ""
        lines = [
            f"{prefix}static verification found {len(errors)} error(s):"
        ]
        lines += [
            f"  [{f.analyzer}] {f.location}: {f.message}" for f in errors
        ]
        raise CheckError("\n".join(lines))

    # -- rendering --------------------------------------------------------

    def sorted_findings(self) -> list[Finding]:
        """Findings ordered most severe first, then by analyzer/location."""
        rank = {severity: i for i, severity in enumerate(SEVERITIES)}
        return sorted(
            self.findings,
            key=lambda f: (rank[f.severity], f.analyzer, f.location),
        )

    def table(self, title: str = "repro check findings") -> str:
        """ASCII table of every finding, most severe first."""
        rows = [
            [f.severity, f.analyzer, f.location, f.message]
            for f in self.sorted_findings()
        ]
        return format_table(
            ["severity", "analyzer", "location", "message"], rows, title=title
        )

    def summary(self) -> str:
        """One-line outcome summary for the CLI."""
        counts = ", ".join(
            f"{len([f for f in self.findings if f.severity == s])} {s}(s)"
            for s in SEVERITIES
        )
        return f"repro check: {counts}; {self._coverage_note()}"

    def _coverage_note(self) -> str:
        parts = [f"{key}={value}" for key, value in sorted(self.meta.items())]
        return " ".join(parts) if parts else "no coverage metadata"

    # -- export -----------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly snapshot (same conventions as telemetry traces)."""
        return {
            "findings": [f.to_dict() for f in self.sorted_findings()],
            "meta": {
                **self.meta,
                "num_findings": len(self.findings),
                "num_errors": len(self.errors),
                "num_warnings": len(self.warnings),
                "ok": self.ok,
            },
        }

    def write_json(self, path: str | Path) -> Path:
        """Write the report as JSON; returns the path written."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path
