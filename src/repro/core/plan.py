"""Execution plans: which technique serves each layer and phase.

spg-CNN "generates codes and chooses the fastest among Parallel-GEMM,
GEMM-in-Parallel, Sparse-Kernel and Stencil-Kernel for the FP and BP
phases of each layer" (Sec. 1.3).  A :class:`LayerPlan` records that
choice (and the candidate timings it was based on); an
:class:`ExecutionPlan` aggregates them for a network.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.convspec import ConvSpec
from repro.errors import PlanError

#: Techniques eligible for forward propagation (Sec. 4.4).
FP_CANDIDATES: tuple[str, ...] = ("parallel-gemm", "gemm-in-parallel", "stencil")

#: FP candidates including the FFT extension engine (Sec. 6's
#: complementary technique); opt-in via ``Autotuner(..., extended=True)``.
FP_CANDIDATES_EXTENDED: tuple[str, ...] = FP_CANDIDATES + ("fft",)

#: Techniques eligible for backward propagation (Sec. 4.4).
BP_CANDIDATES: tuple[str, ...] = ("parallel-gemm", "gemm-in-parallel", "sparse")

#: The always-available dense fallback the runtime degrades to when a
#: generated kernel is quarantined (never chosen on merit -- deployed
#: only when every candidate for a layer/phase has been benched).
FALLBACK_ENGINE = "reference"


@dataclass(frozen=True)
class LayerPlan:
    """The chosen FP/BP techniques for one convolution layer."""

    layer_name: str
    spec: ConvSpec
    fp_engine: str
    bp_engine: str
    #: Candidate -> predicted/measured seconds, for reporting.
    fp_timings: dict[str, float] = field(default_factory=dict)
    bp_timings: dict[str, float] = field(default_factory=dict)
    sparsity: float = 0.0
    #: Schedule-pipeline descriptions chosen by the loop-IR schedule
    #: search (:class:`repro.nn.schedule.ScheduleSearch`), when the
    #: technique deploys a generated kernel; empty otherwise.  The
    #: fingerprint of these strings keys the emitter codegen caches.
    fp_schedule: str = ""
    bp_schedule: str = ""

    def __post_init__(self) -> None:
        if self.fp_engine not in FP_CANDIDATES_EXTENDED + (FALLBACK_ENGINE,):
            raise PlanError(
                f"{self.fp_engine!r} is not an FP candidate "
                f"{FP_CANDIDATES_EXTENDED}"
            )
        if self.bp_engine not in BP_CANDIDATES + (FALLBACK_ENGINE,):
            raise PlanError(
                f"{self.bp_engine!r} is not a BP candidate {BP_CANDIDATES}"
            )

    @property
    def fp_speedup_over_baseline(self) -> float:
        """Chosen-FP speedup over the Parallel-GEMM baseline, if timed."""
        baseline = self.fp_timings.get("parallel-gemm")
        chosen = self.fp_timings.get(self.fp_engine)
        if not baseline or not chosen:
            return 1.0
        return baseline / chosen

    @property
    def bp_speedup_over_baseline(self) -> float:
        """Chosen-BP speedup over the Parallel-GEMM baseline, if timed."""
        baseline = self.bp_timings.get("parallel-gemm")
        chosen = self.bp_timings.get(self.bp_engine)
        if not baseline or not chosen:
            return 1.0
        return baseline / chosen


@dataclass(frozen=True)
class ExecutionPlan:
    """Per-layer plans for a whole network."""

    layers: tuple[LayerPlan, ...]

    def __post_init__(self) -> None:
        names = [p.layer_name for p in self.layers]
        if len(set(names)) != len(names):
            raise PlanError(f"duplicate layer names in plan: {names}")

    def for_layer(self, layer_name: str) -> LayerPlan:
        """The plan for the named layer."""
        for plan in self.layers:
            if plan.layer_name == layer_name:
                return plan
        raise PlanError(f"no plan for layer {layer_name!r}")

    def describe(self) -> str:
        """Tabular summary of the plan."""
        lines = [f"{'layer':<20s} {'FP engine':<18s} {'BP engine':<18s} sparsity"]
        for p in self.layers:
            lines.append(
                f"{p.layer_name:<20s} {p.fp_engine:<18s} {p.bp_engine:<18s} "
                f"{p.sparsity:.2f}"
            )
        return "\n".join(lines)
