"""The spg-CNN autotuner: pick the fastest technique per layer and phase.

Two selection backends are provided:

* :class:`ModelCostBackend` -- prices each candidate with the analytical
  machine model (:mod:`repro.machine`), reproducing the paper's selections
  for the paper's machine without running anything.
* :class:`MeasuredCostBackend` -- wall-clock micro-benchmarks of the
  actual engine implementations on the host (the paper's approach: "it
  runs each layer with [each technique] ... and based on the measured
  performance, chooses the fastest technique to deploy").

Selections follow Sec. 4.4: FP chooses among Parallel-GEMM,
GEMM-in-Parallel and Stencil-Kernel; BP among Parallel-GEMM,
GEMM-in-Parallel and Sparse-Kernel, with the BP choice depending on the
current error sparsity.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod

import numpy as np

from repro.core.convspec import ConvSpec
from repro.core.plan import (
    BP_CANDIDATES,
    FALLBACK_ENGINE,
    FP_CANDIDATES,
    FP_CANDIDATES_EXTENDED,
    LayerPlan,
)
from repro.errors import PlanError
from repro.resilience.quarantine import QuarantineRegistry, default_registry
from repro.machine.gemm_model import (
    DEFAULT_PROFILE,
    GemmProfile,
    gemm_in_parallel_conv_time,
    parallel_gemm_conv_time,
)
from repro.machine.sparse_model import sparse_bp_time
from repro.machine.spec import MachineSpec
from repro.machine.stencil_model import stencil_fp_time
from repro.ops.engine import make_engine


class CostBackend(ABC):
    """Produces a time estimate for (technique, phase) on one layer."""

    @abstractmethod
    def time(self, technique: str, phase: str, spec: ConvSpec,
             sparsity: float) -> float:
        """Seconds for one batch of the layer's phase under ``technique``."""


class ModelCostBackend(CostBackend):
    """Analytical machine-model pricing (paper's machine by default)."""

    def __init__(self, machine: MachineSpec, cores: int, batch: int,
                 profile: GemmProfile = DEFAULT_PROFILE):
        if batch <= 0 or cores <= 0:
            raise PlanError(f"batch and cores must be positive: {batch}, {cores}")
        self.machine = machine
        self.cores = cores
        self.batch = batch
        self.profile = profile

    def time(self, technique: str, phase: str, spec: ConvSpec,
             sparsity: float) -> float:
        if technique == "parallel-gemm":
            return parallel_gemm_conv_time(
                spec, phase, self.batch, self.machine, self.cores, self.profile
            )
        if technique == "gemm-in-parallel":
            return gemm_in_parallel_conv_time(
                spec, phase, self.batch, self.machine, self.cores, self.profile
            )
        if technique == "stencil":
            if phase != "fp":
                raise PlanError("stencil kernels serve forward propagation only")
            return stencil_fp_time(spec, self.batch, self.machine, self.cores)
        if technique == "sparse":
            if phase != "bp":
                raise PlanError("sparse kernels serve backward propagation only")
            return sparse_bp_time(
                spec, self.batch, sparsity, self.machine, self.cores
            )
        if technique == "fft":
            from repro.machine.fft_model import fft_conv_time

            if phase != "fp":
                raise PlanError("the fft engine serves forward propagation only")
            return fft_conv_time(spec, self.batch, self.machine, self.cores)
        raise PlanError(f"unknown technique {technique!r}")


class MeasuredCostBackend(CostBackend):
    """Wall-clock micro-benchmarks of the real engines on this host."""

    def __init__(self, batch: int = 2, repeats: int = 2, num_cores: int = 1,
                 seed: int = 0):
        if batch <= 0 or repeats <= 0:
            raise PlanError(f"batch and repeats must be positive: {batch}, {repeats}")
        self.batch = batch
        self.repeats = repeats
        self.num_cores = num_cores
        self._rng = np.random.default_rng(seed)

    def time(self, technique: str, phase: str, spec: ConvSpec,
             sparsity: float) -> float:
        if technique in ("stencil", "fft") and phase != "fp":
            raise PlanError(f"{technique} kernels serve forward propagation only")
        if technique == "sparse" and phase != "bp":
            raise PlanError("sparse kernels serve backward propagation only")
        engine = make_engine(technique, spec, num_cores=self.num_cores)
        inputs = self._rng.standard_normal(
            (self.batch,) + spec.input_shape
        ).astype(np.float32)
        weights = self._rng.standard_normal(spec.weight_shape).astype(np.float32)
        out_error = self._rng.standard_normal(
            (self.batch,) + spec.output_shape
        ).astype(np.float32)
        if sparsity > 0:
            mask = self._rng.random(out_error.shape) < sparsity
            out_error[mask] = 0.0
        best = float("inf")
        for _ in range(self.repeats):
            start = time.perf_counter()
            if phase == "fp":
                engine.forward(inputs, weights)
            else:
                engine.backward_data(out_error, weights)
                engine.backward_weights(out_error, inputs)
            best = min(best, time.perf_counter() - start)
        return best


class Autotuner:
    """Selects the fastest technique per layer/phase via a cost backend.

    With ``extended=True`` the FP candidate set additionally includes the
    FFT engine (the Sec. 6 complementary technique), which only wins on
    kernel sizes far beyond the paper's benchmarks.

    Selection is quarantine-aware: engines benched for a layer/phase by
    the runtime's numeric guards (see :mod:`repro.resilience.quarantine`)
    are excluded from that layer's candidate set, and if every candidate
    is benched the plan degrades to the dense reference fallback rather
    than re-deploying a known-bad kernel.
    """

    def __init__(self, backend: CostBackend, extended: bool = False,
                 quarantine: QuarantineRegistry | None = None,
                 schedule_search: "object | None" = None):
        self.backend = backend
        self.fp_candidates = (
            FP_CANDIDATES_EXTENDED if extended else FP_CANDIDATES
        )
        self.quarantine = quarantine or default_registry()
        #: Optional :class:`repro.nn.schedule.ScheduleSearch`.  When set,
        #: layers that deploy a generated kernel additionally get their
        #: loop-IR schedule searched, and the winning pipeline is
        #: recorded on the plan (``fp_schedule`` / ``bp_schedule``).
        self.schedule_search = schedule_search

    def _schedules(self, spec: ConvSpec, fp_engine: str,
                   bp_engine: str) -> tuple[str, str]:
        """Schedule descriptions for the chosen generated kernels."""
        search = self.schedule_search
        if search is None:
            return "", ""
        fp_schedule = ""
        bp_schedule = ""
        if fp_engine == "stencil":
            fp_schedule = search.search(spec, "fp").pipeline.describe()
        if bp_engine == "sparse":
            bp_schedule = search.search(
                spec, "sparse_bp_weights"
            ).pipeline.describe()
        return fp_schedule, bp_schedule

    def _pick(self, candidates: tuple[str, ...], phase: str, spec: ConvSpec,
              sparsity: float, layer_name: str = "") -> tuple[str, dict[str, float]]:
        eligible = self.quarantine.filter(candidates, layer_name, phase)
        if not eligible:
            # Every candidate is benched for this layer/phase; degrade to
            # the reference path (infinitely slow on paper, but correct).
            return FALLBACK_ENGINE, {FALLBACK_ENGINE: float("inf")}
        timings = {
            tech: self.backend.time(tech, phase, spec, sparsity)
            for tech in eligible
        }
        chosen = min(timings, key=timings.get)
        return chosen, timings

    def plan_layer(self, spec: ConvSpec, layer_name: str = "",
                   sparsity: float = 0.0) -> LayerPlan:
        """Plan one convolution layer at the given error sparsity.

        ``spec`` should describe the engine-facing (pre-padded) geometry.
        """
        fp_engine, fp_timings = self._pick(self.fp_candidates, "fp", spec,
                                           sparsity, layer_name)
        bp_engine, bp_timings = self._pick(BP_CANDIDATES, "bp", spec,
                                           sparsity, layer_name)
        fp_schedule, bp_schedule = self._schedules(spec, fp_engine, bp_engine)
        return LayerPlan(
            layer_name=layer_name or spec.name or "conv",
            spec=spec,
            fp_engine=fp_engine,
            bp_engine=bp_engine,
            fp_timings=fp_timings,
            bp_timings=bp_timings,
            sparsity=sparsity,
            fp_schedule=fp_schedule,
            bp_schedule=bp_schedule,
        )

    def replan_bp(self, plan: LayerPlan, sparsity: float) -> LayerPlan:
        """Re-select only the BP technique at a new sparsity level.

        This is the periodic re-check of Sec. 4.4: error-gradient sparsity
        drifts during training, so the BP choice is revisited while the FP
        choice (sparsity-independent) is kept.
        """
        bp_engine, bp_timings = self._pick(BP_CANDIDATES, "bp", plan.spec,
                                           sparsity, plan.layer_name)
        _, bp_schedule = self._schedules(plan.spec, "", bp_engine)
        return LayerPlan(
            layer_name=plan.layer_name,
            spec=plan.spec,
            fp_engine=plan.fp_engine,
            bp_engine=bp_engine,
            fp_timings=plan.fp_timings,
            bp_timings=bp_timings,
            sparsity=sparsity,
            fp_schedule=plan.fp_schedule,
            bp_schedule=bp_schedule,
        )
