"""spg-CNN: the top-level optimization framework (paper Sec. 4).

:class:`SpgCNN` attaches to a trainable :class:`repro.nn.network.Network`,
plans every convolution layer with the autotuner, deploys the chosen
engines onto the layers, and periodically re-checks the BP choice as the
measured error-gradient sparsity drifts during training (Sec. 4.4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import telemetry
from repro.core.autotuner import Autotuner, CostBackend
from repro.core.plan import ExecutionPlan, LayerPlan
from repro.errors import PlanError
from repro.nn.network import Network


@dataclass(frozen=True)
class RetuneEvent:
    """Record of one BP re-selection during training."""

    epoch: int
    layer_name: str
    old_engine: str
    new_engine: str
    sparsity: float


class SpgCNN:
    """Deploys and maintains the fastest per-layer engine configuration."""

    def __init__(
        self,
        network: Network,
        backend: CostBackend,
        recheck_epochs: int = 2,
        initial_sparsity: float = 0.0,
    ):
        if recheck_epochs <= 0:
            raise PlanError(f"recheck_epochs must be positive, got {recheck_epochs}")
        if not 0.0 <= initial_sparsity <= 1.0:
            raise PlanError(f"initial_sparsity must be in [0,1], got {initial_sparsity}")
        self.network = network
        self.autotuner = Autotuner(backend)
        self.recheck_epochs = recheck_epochs
        self.initial_sparsity = initial_sparsity
        self._plans: dict[str, LayerPlan] = {}
        self.retune_events: list[RetuneEvent] = []

    # -- planning and deployment ------------------------------------------

    def optimize(self) -> ExecutionPlan:
        """Plan every conv layer and deploy the chosen engines."""
        conv_layers = self.network.conv_layers()
        if not conv_layers:
            raise PlanError("network has no convolution layers to optimize")
        plans = []
        with telemetry.span("spg/optimize", layers=len(conv_layers)):
            for layer in conv_layers:
                plan = self.autotuner.plan_layer(
                    layer.padded_spec,
                    layer_name=layer.name,
                    sparsity=self.initial_sparsity,
                )
                layer.set_fp_engine(plan.fp_engine)
                layer.set_bp_engine(plan.bp_engine)
                self._plans[layer.name] = plan
                plans.append(plan)
        return ExecutionPlan(layers=tuple(plans))

    @property
    def plan(self) -> ExecutionPlan:
        """The currently deployed plan."""
        if not self._plans:
            raise PlanError("optimize() has not been called yet")
        return ExecutionPlan(layers=tuple(self._plans.values()))

    # -- periodic re-tuning -------------------------------------------------

    def after_epoch(self, epoch: int) -> list[RetuneEvent]:
        """Hook to call after each training epoch (1-based).

        Every ``recheck_epochs`` epochs, re-evaluates the BP technique of
        each conv layer at its *measured* error sparsity and re-deploys
        any changed choice.  Returns the changes made this call.
        """
        if epoch <= 0:
            raise PlanError(f"epoch must be positive, got {epoch}")
        if not self._plans:
            raise PlanError("optimize() has not been called yet")
        if epoch % self.recheck_epochs != 0:
            return []
        events = []
        with telemetry.span("spg/replan", epoch=epoch):
            for layer in self.network.conv_layers():
                old_plan = self._plans[layer.name]
                sparsity = layer.last_error_sparsity
                new_plan = self.autotuner.replan_bp(old_plan, sparsity)
                self._plans[layer.name] = new_plan
                if new_plan.bp_engine != old_plan.bp_engine:
                    layer.set_bp_engine(new_plan.bp_engine)
                    events.append(
                        RetuneEvent(
                            epoch=epoch,
                            layer_name=layer.name,
                            old_engine=old_plan.bp_engine,
                            new_engine=new_plan.bp_engine,
                            sparsity=sparsity,
                        )
                    )
        for ev in events:
            telemetry.event(
                "retune",
                epoch=ev.epoch,
                layer=ev.layer_name,
                old_engine=ev.old_engine,
                new_engine=ev.new_engine,
                sparsity=ev.sparsity,
            )
        telemetry.add("retune.checks", 1)
        telemetry.add("retune.count", len(events))
        self.retune_events.extend(events)
        return events
