"""Convolution shape algebra and arithmetic-intensity formulas.

This module implements the quantitative backbone of the paper's Section 3
characterization: the 5-tuple convolution kernel description
``<Nf, Fy, Fx, sy, sx>`` applied to an input of shape ``Nc x Ny x Nx``,
the operation/access counts of Eqs. 5-8, the unfolded-input size ``|U|``,
and the maximum fraction ``r`` of the intrinsic arithmetic intensity that
the Unfold+GEMM execution strategy can achieve.

All counts are in *elements* (single-precision floats) and *floating point
operations*, matching the paper's accounting.  Byte-level traffic is derived
by the machine model (:mod:`repro.machine`), not here.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ShapeError

#: Bytes per element; the paper (and this reproduction) uses float32.
ELEMENT_BYTES = 4


@dataclass(frozen=True)
class ConvSpec:
    """Fully specified 2-D convolution over a single input image.

    Attributes mirror the paper's notation:

    * ``nc`` -- number of input features (channels), :math:`N_c`
    * ``ny``, ``nx`` -- spatial input size, :math:`N_y, N_x`
    * ``nf`` -- number of output features, :math:`N_f`
    * ``fy``, ``fx`` -- kernel size, :math:`F_y, F_x`
    * ``sy``, ``sx`` -- strides
    * ``pad`` -- symmetric zero padding applied to both spatial dims
      before the (valid-mode) convolution
    * ``name`` -- optional label used in reports
    """

    nc: int
    ny: int
    nx: int
    nf: int
    fy: int
    fx: int
    sy: int = 1
    sx: int = 1
    pad: int = 0
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        for attr in ("nc", "ny", "nx", "nf", "fy", "fx", "sy", "sx"):
            value = getattr(self, attr)
            if not isinstance(value, int) or value <= 0:
                raise ShapeError(f"ConvSpec.{attr} must be a positive int, got {value!r}")
        if not isinstance(self.pad, int) or self.pad < 0:
            raise ShapeError(f"ConvSpec.pad must be a non-negative int, got {self.pad!r}")
        if self.fy > self.padded_ny or self.fx > self.padded_nx:
            raise ShapeError(
                f"kernel {self.fy}x{self.fx} larger than padded input "
                f"{self.padded_ny}x{self.padded_nx}"
            )

    # ------------------------------------------------------------------
    # Shape derivations
    # ------------------------------------------------------------------

    @property
    def padded_ny(self) -> int:
        """Spatial height after zero padding."""
        return self.ny + 2 * self.pad

    @property
    def padded_nx(self) -> int:
        """Spatial width after zero padding."""
        return self.nx + 2 * self.pad

    @property
    def out_ny(self) -> int:
        """Output spatial height of the valid-mode strided convolution."""
        return (self.padded_ny - self.fy) // self.sy + 1

    @property
    def out_nx(self) -> int:
        """Output spatial width of the valid-mode strided convolution."""
        return (self.padded_nx - self.fx) // self.sx + 1

    @property
    def input_shape(self) -> tuple[int, int, int]:
        """Unpadded input activation shape ``(Nc, Ny, Nx)``."""
        return (self.nc, self.ny, self.nx)

    @property
    def padded_input_shape(self) -> tuple[int, int, int]:
        """Padded input activation shape."""
        return (self.nc, self.padded_ny, self.padded_nx)

    @property
    def weight_shape(self) -> tuple[int, int, int, int]:
        """Weight tensor shape ``(Nf, Nc, Fy, Fx)``."""
        return (self.nf, self.nc, self.fy, self.fx)

    @property
    def output_shape(self) -> tuple[int, int, int]:
        """Output activation shape ``(Nf, out_Ny, out_Nx)``."""
        return (self.nf, self.out_ny, self.out_nx)

    # ------------------------------------------------------------------
    # Operation and access counts (paper Eqs. 5-8)
    # ------------------------------------------------------------------

    @property
    def flops(self) -> int:
        """|A| of Eq. 5: multiply-add pairs counted as 2 flops each."""
        return 2 * self.nf * self.out_ny * self.out_nx * self.nc * self.fy * self.fx

    @property
    def input_elems(self) -> int:
        """|I| of Eq. 6 (padded, since that is what the kernels touch)."""
        return self.nc * self.padded_ny * self.padded_nx

    @property
    def weight_elems(self) -> int:
        """|W| of Eq. 7."""
        return self.nf * self.nc * self.fy * self.fx

    @property
    def output_elems(self) -> int:
        """|O| of Eq. 8, generalized to strided convolutions."""
        return self.nf * self.out_ny * self.out_nx

    @property
    def unfolded_elems(self) -> int:
        """|U|: size of the unfolded (im2col) input matrix."""
        return self.out_ny * self.out_nx * self.nc * self.fy * self.fx

    @property
    def unfolded_elems_nominal(self) -> int:
        """|U| under the paper's accounting, which uses input positions.

        Table 1's Unfold+GEMM AIT column is computed with
        ``|U| = Nx*Ny*Nc*Fx*Fy`` -- i.e. one kernel application per *input*
        position (equivalently, assuming same-padding).  We keep the exact
        ``unfolded_elems`` for the physical kernels and use this nominal
        count only to reproduce the paper's reported AIT numbers.
        """
        return self.ny * self.nx * self.nc * self.fy * self.fx

    # ------------------------------------------------------------------
    # Arithmetic intensity (flops per element access)
    # ------------------------------------------------------------------

    @property
    def intrinsic_ait(self) -> float:
        """Intrinsic AIT of the convolution: |A| / (|I| + |W| + |O|)."""
        return self.flops / (self.input_elems + self.weight_elems + self.output_elems)

    @property
    def unfold_gemm_ait(self) -> float:
        """Maximum AIT achievable by Unfold+GEMM: |A| / (2|U| + |W| + |O|).

        Unfolding replicates each input element ~``Fy*Fx`` times and the
        unfolded matrix must be written then re-read, hence the ``2|U|``
        term (paper Sec. 3.1).  Uses the paper's nominal |U| accounting so
        that Table 1 is reproduced exactly.
        """
        denom = 2 * self.unfolded_elems_nominal + self.weight_elems + self.output_elems
        return self.flops / denom

    @property
    def unfold_gemm_ait_exact(self) -> float:
        """Unfold+GEMM AIT with the exact |U| (physical unfolded size).

        Differs from :attr:`unfold_gemm_ait` only in using the true
        ``out_Ny * out_Nx`` unfolded row count; this is the quantity whose
        kernel-size limit behaviour Sec. 3.1 describes (``r -> 1`` as the
        kernel approaches the input size).
        """
        denom = 2 * self.unfolded_elems + self.weight_elems + self.output_elems
        return self.flops / denom

    @property
    def unfold_ait_fraction(self) -> float:
        """The ratio *r* from Sec. 3.1: achievable fraction of intrinsic AIT."""
        return self.unfold_gemm_ait / self.intrinsic_ait

    # ------------------------------------------------------------------
    # GEMM view (Fig. 2c): O = W . U^T
    # ------------------------------------------------------------------

    @property
    def gemm_dims(self) -> tuple[int, int, int]:
        """(M, K, N) of the unfolded forward GEMM.

        ``M = Nf`` (one row per output feature), ``K = Nc*Fy*Fx`` and
        ``N = out_Ny*out_Nx`` (one column per output position).
        """
        return (self.nf, self.nc * self.fy * self.fx, self.out_ny * self.out_nx)

    def with_name(self, name: str) -> "ConvSpec":
        """Return a copy of this spec carrying ``name``."""
        return replace(self, name=name)

    def describe(self) -> str:
        """One-line human-readable description used by reports."""
        label = self.name or "conv"
        return (
            f"{label}: {self.nc}x{self.ny}x{self.nx} -> {self.nf}x{self.out_ny}x{self.out_nx}"
            f" kernel {self.fy}x{self.fx} stride {self.sy}x{self.sx} pad {self.pad}"
        )


def square_conv(
    n: int, nf: int, nc: int, f: int, stride: int = 1, pad: int = 0, name: str = ""
) -> ConvSpec:
    """Build the paper's square convolution ``Nx(=Ny), Nf, Nc, Fx(=Fy)``.

    Table 1 and Table 2 describe convolutions with equal spatial dimensions
    and square kernels; this helper matches that notation order.
    """
    return ConvSpec(
        nc=nc, ny=n, nx=n, nf=nf, fy=f, fx=f, sy=stride, sx=stride, pad=pad, name=name
    )


def backward_data_spec(spec: ConvSpec) -> ConvSpec:
    """Shape of the BP error-gradient computation (Eq. 3) as a ConvSpec.

    Back-propagating the output error through the weights is itself a
    convolution-shaped computation with the roles of input/output feature
    counts swapped; the flop count is identical to FP, which is the only
    property the machine model needs.
    """
    return ConvSpec(
        nc=spec.nf,
        ny=spec.out_ny,
        nx=spec.out_nx,
        nf=spec.nc,
        fy=spec.fy,
        fx=spec.fx,
        sy=1,
        sx=1,
        pad=max(spec.fy, spec.fx) - 1,
        name=(spec.name + ":bp") if spec.name else "bp",
    )
