"""Design-space characterization of CNN convolutions (paper Fig. 1).

The paper divides the convolution design space into six regions along two
axes: the arithmetic intensity achievable by Unfold+Parallel-GEMM (which is
approximately ``2 x number of output features``) and the sparsity of the
computation.  Even-numbered regions are dense, odd-numbered regions sparse;
the AIT bands determine scalability and single-core behaviour:

======  =============  ========  ===========================================
Region  Unfold AIT     Sparsity  Unfold+Parallel-GEMM behaviour
======  =============  ========  ===========================================
0       high           dense     scales, good single-core perf, good goodput
1       high           sparse    scales, good single-core perf, poor goodput
2       moderate       dense     poor scaling, good single-core perf
3       moderate       sparse    poor scaling, poor goodput
4       low            dense     poor scaling and single-core perf
5       low            sparse    poor scaling, poor perf, poor goodput
======  =============  ========  ===========================================

The AIT thresholds below are chosen so that the six Table 1 convolutions
land in exactly the regions the paper assigns them (Table 1's ``Reg``
column), and the sparsity threshold follows Sec. 4.4's observation that the
sparse kernel wins above roughly 75% sparsity.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

from repro.core.convspec import ConvSpec

#: Unfold+GEMM AIT at or above which a convolution behaves like a large
#: matrix multiply (Fig. 1 regions 0/1): scales well under Parallel-GEMM.
HIGH_AIT_THRESHOLD = 500.0

#: Unfold+GEMM AIT below which even single-core performance collapses
#: (Fig. 1 regions 4/5).
LOW_AIT_THRESHOLD = 50.0

#: Sparsity above which the computation is considered sparse (odd regions).
SPARSE_THRESHOLD = 0.75


class Region(IntEnum):
    """The six regions of the paper's Fig. 1 design space."""

    HIGH_AIT_DENSE = 0
    HIGH_AIT_SPARSE = 1
    MODERATE_AIT_DENSE = 2
    MODERATE_AIT_SPARSE = 3
    LOW_AIT_DENSE = 4
    LOW_AIT_SPARSE = 5

    @property
    def is_sparse(self) -> bool:
        """True for odd regions, where goodput is the limiting concern."""
        return self % 2 == 1

    @property
    def ait_band(self) -> str:
        """'high', 'moderate' or 'low' unfold-AIT band of this region."""
        return ("high", "high", "moderate", "moderate", "low", "low")[self]


@dataclass(frozen=True)
class Characterization:
    """Summary of where a convolution sits in the Fig. 1 design space."""

    spec: ConvSpec
    sparsity: float
    intrinsic_ait: float
    unfold_ait: float
    region: Region

    @property
    def scales_under_parallel_gemm(self) -> bool:
        """Parallel-GEMM only scales in the high-AIT band (regions 0/1)."""
        return self.region.ait_band == "high"

    @property
    def good_single_core(self) -> bool:
        """Single-core Unfold+GEMM performance is poor only when AIT is low."""
        return self.region.ait_band != "low"

    @property
    def good_goodput(self) -> bool:
        """Dense execution only achieves good goodput on dense inputs."""
        return not self.region.is_sparse

    def recommended_fp(self) -> str:
        """The spg-CNN FP technique recommended for this region (Sec. 4.4)."""
        if self.region.ait_band == "high":
            return "parallel-gemm"
        if self.region.ait_band == "moderate":
            return "gemm-in-parallel"
        return "stencil"

    def recommended_bp(self) -> str:
        """The spg-CNN BP technique recommended for this region (Sec. 4.4)."""
        if self.region.is_sparse:
            return "sparse"
        if self.region.ait_band == "high":
            return "parallel-gemm"
        return "gemm-in-parallel"


def ait_band(unfold_ait: float) -> str:
    """Classify an Unfold+GEMM AIT value into its Fig. 1 band."""
    if unfold_ait >= HIGH_AIT_THRESHOLD:
        return "high"
    if unfold_ait >= LOW_AIT_THRESHOLD:
        return "moderate"
    return "low"


def classify(spec: ConvSpec, sparsity: float = 0.0) -> Region:
    """Place a convolution (at a given error sparsity) in a Fig. 1 region."""
    if not 0.0 <= sparsity <= 1.0:
        raise ValueError(f"sparsity must be in [0, 1], got {sparsity}")
    band = ait_band(spec.unfold_gemm_ait)
    base = {"high": 0, "moderate": 2, "low": 4}[band]
    return Region(base + (1 if sparsity >= SPARSE_THRESHOLD else 0))


def characterize(spec: ConvSpec, sparsity: float = 0.0) -> Characterization:
    """Full characterization of a convolution at a given sparsity level."""
    return Characterization(
        spec=spec,
        sparsity=sparsity,
        intrinsic_ait=spec.intrinsic_ait,
        unfold_ait=spec.unfold_gemm_ait,
        region=classify(spec, sparsity),
    )


def region_pair(spec: ConvSpec) -> tuple[int, int]:
    """Dense/sparse region pair of a convolution, as listed in Table 1.

    Table 1's ``Reg`` column reports each convolution's region both for
    dense and sparse executions, e.g. ``4,5``.
    """
    dense = classify(spec, sparsity=0.0)
    sparse = classify(spec, sparsity=1.0)
    return (int(dense), int(sparse))
