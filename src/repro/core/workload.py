"""Whole-training-run time estimation under an execution plan.

Answers the question the paper's conclusion poses — "it takes
Parallel-GEMM (CAFFE) 36 mins to train our model, while the optimized
version takes only 4.3 minutes" — for any network: given a training
workload (dataset size, batch size, epochs) and a per-layer plan, the
estimator prices every conv layer's FP and BP with the machine model,
adds the platform's auxiliary costs, and reports end-to-end wall clock
per configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.plan import ExecutionPlan
from repro.errors import MachineModelError, PlanError
from repro.machine.executor import TrainingConfig, conv_phase_time
from repro.machine.roofline import copy_time
from repro.machine.spec import MachineSpec
from repro.nn.network import Network


@dataclass(frozen=True)
class TrainingWorkload:
    """One full training run's extent."""

    dataset_size: int
    batch_size: int
    epochs: int

    def __post_init__(self) -> None:
        if min(self.dataset_size, self.batch_size, self.epochs) <= 0:
            raise MachineModelError(f"workload extents must be positive: {self}")
        if self.batch_size > self.dataset_size:
            raise MachineModelError(
                f"batch size {self.batch_size} exceeds dataset {self.dataset_size}"
            )

    @property
    def batches_per_epoch(self) -> int:
        return -(-self.dataset_size // self.batch_size)

    @property
    def total_images(self) -> int:
        return self.dataset_size * self.epochs


def estimate_batch_time(
    network: Network,
    plan: ExecutionPlan,
    config: TrainingConfig,
    machine: MachineSpec,
    cores: int,
    batch: int,
) -> float:
    """Seconds for one minibatch under the plan's per-layer engines."""
    total = 0.0
    for layer in network.conv_layers():
        layer_plan = plan.for_layer(layer.name)
        spec = layer.padded_spec
        total += conv_phase_time(
            spec, "fp", layer_plan.fp_engine, batch, machine, cores, config
        )
        total += conv_phase_time(
            spec, "bp", layer_plan.bp_engine, batch, machine, cores, config
        )
    aux_cores = cores if config.image_parallel else 1
    total += copy_time(batch * config.platform.aux_bytes_per_image, machine,
                       aux_cores)
    total += (batch * config.platform.per_image_overhead
              / machine.effective_cores(aux_cores))
    return total


def estimate_training_time(
    network: Network,
    plan: ExecutionPlan,
    config: TrainingConfig,
    machine: MachineSpec,
    cores: int,
    workload: TrainingWorkload,
) -> float:
    """End-to-end seconds for the whole training run."""
    batch_time = estimate_batch_time(
        network, plan, config, machine, cores, workload.batch_size
    )
    return batch_time * workload.batches_per_epoch * workload.epochs


def speedup_over(
    network: Network,
    fast_plan: ExecutionPlan,
    fast_config: TrainingConfig,
    slow_plan: ExecutionPlan,
    slow_config: TrainingConfig,
    machine: MachineSpec,
    cores: int,
    workload: TrainingWorkload,
) -> float:
    """End-to-end speedup of one (plan, config) pair over another."""
    fast = estimate_training_time(
        network, fast_plan, fast_config, machine, cores, workload
    )
    slow = estimate_training_time(
        network, slow_plan, slow_config, machine, cores, workload
    )
    if fast <= 0:
        raise PlanError("estimated time must be positive")
    return slow / fast
