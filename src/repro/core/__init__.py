"""Core of the spg-CNN framework: characterization, plans and autotuning."""

from repro.core.characterization import Region, characterize, classify, region_pair
from repro.core.convspec import ConvSpec, square_conv
from repro.core.goodput import GoodputReport, dense_goodput_bound, measure_sparsity

__all__ = [
    "ConvSpec",
    "square_conv",
    "Region",
    "characterize",
    "classify",
    "region_pair",
    "GoodputReport",
    "dense_goodput_bound",
    "measure_sparsity",
]
