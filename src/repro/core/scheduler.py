"""The computation scheduler: placing work items on cores.

spg-CNN "comprises of a computation scheduler for efficient parallel
execution" (abstract).  Image-level techniques produce one work item per
image whose cost can vary (sparse BP time depends on each image's error
sparsity); the scheduler decides the item->core placement.  Two policies:

* ``block`` -- contiguous ranges, one per core (the Sec. 4.1 default,
  what the thread runtime uses);
* ``lpt`` -- Longest Processing Time first, the classic greedy for
  minimizing makespan when item costs are known and skewed.

:func:`makespan` evaluates a placement, and
:func:`simulate_schedule` replays it as a discrete-event timeline for the
utilization analysis the ablation benchmark reports.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.errors import ReproError


@dataclass(frozen=True)
class WorkItem:
    """One schedulable unit (e.g. one image's kernel invocation)."""

    item_id: int
    cost: float

    def __post_init__(self) -> None:
        if self.cost < 0:
            raise ReproError(f"work item cost must be non-negative: {self}")


@dataclass
class Assignment:
    """A complete item->core placement."""

    num_cores: int
    per_core: list[list[WorkItem]] = field(default_factory=list)

    def core_loads(self) -> list[float]:
        """Total cost assigned to each core."""
        return [sum(item.cost for item in items) for items in self.per_core]

    @property
    def makespan(self) -> float:
        """Completion time: the most loaded core's total."""
        loads = self.core_loads()
        return max(loads) if loads else 0.0

    @property
    def utilization(self) -> float:
        """Mean busy fraction across cores at the makespan horizon."""
        span = self.makespan
        if span == 0:
            return 1.0
        loads = self.core_loads()
        return sum(loads) / (span * self.num_cores)


def schedule_block(items: list[WorkItem], num_cores: int) -> Assignment:
    """Contiguous near-equal-count ranges per core (order-preserving)."""
    if num_cores <= 0:
        raise ReproError(f"num_cores must be positive, got {num_cores}")
    assignment = Assignment(num_cores=num_cores,
                            per_core=[[] for _ in range(num_cores)])
    if not items:
        return assignment
    base, extra = divmod(len(items), num_cores)
    cursor = 0
    for core in range(num_cores):
        count = base + (1 if core < extra else 0)
        assignment.per_core[core] = list(items[cursor : cursor + count])
        cursor += count
    return assignment


def schedule_lpt(items: list[WorkItem], num_cores: int) -> Assignment:
    """Longest-Processing-Time-first greedy placement."""
    if num_cores <= 0:
        raise ReproError(f"num_cores must be positive, got {num_cores}")
    assignment = Assignment(num_cores=num_cores,
                            per_core=[[] for _ in range(num_cores)])
    heap = [(0.0, core) for core in range(num_cores)]
    heapq.heapify(heap)
    for item in sorted(items, key=lambda i: i.cost, reverse=True):
        load, core = heapq.heappop(heap)
        assignment.per_core[core].append(item)
        heapq.heappush(heap, (load + item.cost, core))
    return assignment


POLICIES = {"block": schedule_block, "lpt": schedule_lpt}


def schedule(items: list[WorkItem], num_cores: int,
             policy: str = "block") -> Assignment:
    """Place items on cores under the named policy."""
    try:
        fn = POLICIES[policy]
    except KeyError:
        known = ", ".join(sorted(POLICIES))
        raise ReproError(f"unknown policy {policy!r}; known: {known}") from None
    return fn(items, num_cores)


@dataclass(frozen=True)
class TimelineEvent:
    """One executed item in the simulated timeline."""

    core: int
    item_id: int
    start: float
    end: float


def simulate_schedule(assignment: Assignment) -> list[TimelineEvent]:
    """Replay a placement as a per-core discrete-event timeline."""
    events = []
    for core, items in enumerate(assignment.per_core):
        clock = 0.0
        for item in items:
            events.append(
                TimelineEvent(core=core, item_id=item.item_id,
                              start=clock, end=clock + item.cost)
            )
            clock += item.cost
    return events


def lpt_advantage(costs: list[float], num_cores: int) -> float:
    """Makespan ratio block/LPT for the given item costs.

    Quantifies how much cost-aware scheduling buys over contiguous
    ranges; 1.0 means uniform costs (no advantage), larger means skew.
    """
    items = [WorkItem(i, c) for i, c in enumerate(costs)]
    block = schedule_block(items, num_cores).makespan
    lpt = schedule_lpt(items, num_cores).makespan
    if lpt == 0:
        return 1.0
    return block / lpt
