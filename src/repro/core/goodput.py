"""Goodput: the rate of useful (non-zero) work (paper Sec. 3.3, Eqs. 9-10).

The paper distinguishes *throughput* -- total floating point operations per
second, including multiplications by zero -- from *goodput*, the rate of
operations that actually contribute to the result.  For a dense execution
over data with sparsity :math:`s`, goodput is bounded by
:math:`(1 - s) \\times` throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class GoodputReport:
    """Throughput/goodput accounting for one timed computation."""

    total_flops: float
    nonzero_flops: float
    seconds: float

    def __post_init__(self) -> None:
        if self.seconds <= 0:
            raise ValueError(f"seconds must be positive, got {self.seconds}")
        if not 0 <= self.nonzero_flops <= self.total_flops:
            raise ValueError(
                f"nonzero_flops ({self.nonzero_flops}) must be within "
                f"[0, total_flops={self.total_flops}]"
            )

    @property
    def throughput(self) -> float:
        """Total flops per second, zero work included."""
        return self.total_flops / self.seconds

    @property
    def goodput(self) -> float:
        """Non-zero flops per second (Eq. 9)."""
        return self.nonzero_flops / self.seconds

    @property
    def sparsity(self) -> float:
        """Fraction of the total work that was avoidable zero work."""
        if self.total_flops == 0:
            return 0.0
        return 1.0 - self.nonzero_flops / self.total_flops

    @property
    def efficiency(self) -> float:
        """Goodput as a fraction of throughput."""
        return self.goodput / self.throughput


def dense_goodput_bound(sparsity: float, throughput: float) -> float:
    """Upper bound on dense-execution goodput (Eq. 10).

    A dense kernel spends time proportional to total flops, so at sparsity
    ``s`` its goodput cannot exceed ``(1 - s) * throughput``.
    """
    if not 0.0 <= sparsity <= 1.0:
        raise ValueError(f"sparsity must be in [0, 1], got {sparsity}")
    if throughput < 0:
        raise ValueError(f"throughput must be non-negative, got {throughput}")
    return (1.0 - sparsity) * throughput


def measure_sparsity(array: np.ndarray, tolerance: float = 0.0) -> float:
    """Fraction of elements whose magnitude is at most ``tolerance``.

    With the default tolerance of zero this is the paper's definition of
    sparsity: the fraction of exactly-zero elements.
    """
    if array.size == 0:
        return 0.0
    if tolerance == 0.0:
        zeros = np.count_nonzero(array == 0)
    else:
        zeros = np.count_nonzero(np.abs(array) <= tolerance)
    return zeros / array.size


def nonzero_conv_flops(total_flops: float, sparsity: float) -> float:
    """Useful flops of a convolution whose sparse operand has ``sparsity``.

    Each zero element of the sparse operand (the output error in BP) elides
    its full share of multiply-adds, so useful work scales with ``1 - s``.
    """
    if not 0.0 <= sparsity <= 1.0:
        raise ValueError(f"sparsity must be in [0, 1], got {sparsity}")
    return total_flops * (1.0 - sparsity)
