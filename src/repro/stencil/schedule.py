"""Schedule generation for stencil kernels: cache and TLB tiling (Sec. 4.3).

The schedule generator tiles the generated basic blocks so that the input
and output working sets of a tile fit in cache, and estimates the TLB
entries a tile requires -- inputs and outputs are copied into contiguous
memory first (as in the paper), so a tile touches
``ceil(tile_bytes / page_size)`` pages rather than one page per row.

The chosen tile is reported with its private-cache traffic estimate, which
the machine model uses to price the kernel.

Since the loop-IR refactor this cache-derived tiling is also expressible
as a pass pipeline (:meth:`StencilSchedule.as_pipeline`): the halving
search below seeds the autotuner's schedule search with the
capacity-feasible starting point, and the pipeline form is what the
emitters actually consume.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.convspec import ELEMENT_BYTES, ConvSpec
from repro.errors import CodegenError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.stencil.passes import SchedulePipeline


@dataclass(frozen=True)
class StencilSchedule:
    """Loop tiling chosen for a stencil kernel on one convolution."""

    spec: ConvSpec
    tile_y: int
    tile_x: int
    channels_per_pass: int

    @property
    def tile_input_elems(self) -> int:
        """Input elements one tile touches (with kernel halo)."""
        halo_y = self.tile_y * self.spec.sy + self.spec.fy - 1
        halo_x = self.tile_x * self.spec.sx + self.spec.fx - 1
        return self.channels_per_pass * halo_y * halo_x

    @property
    def tile_output_elems(self) -> int:
        """Output elements one tile produces (for all output features)."""
        return self.spec.nf * self.tile_y * self.tile_x

    @property
    def tile_working_set_bytes(self) -> int:
        """Bytes of input + output resident while computing one tile."""
        return ELEMENT_BYTES * (self.tile_input_elems + self.tile_output_elems)

    @property
    def num_tiles(self) -> int:
        """Number of tiles covering the output plane."""
        ty = math.ceil(self.spec.out_ny / self.tile_y)
        tx = math.ceil(self.spec.out_nx / self.tile_x)
        cp = math.ceil(self.spec.nc / self.channels_per_pass)
        return ty * tx * cp

    def tlb_entries(self, page_size: int = 4096) -> int:
        """TLB entries needed for one tile's contiguous working set."""
        return math.ceil(self.tile_working_set_bytes / page_size)

    def private_traffic_elems(self) -> int:
        """Per-image element traffic through the private cache.

        Inputs are read once per output-feature-independent pass (the copy
        into contiguous memory plus the streamed reads), the weights once
        per tile (they are small and typically stay resident), and outputs
        are written once and re-read once per channel pass beyond the first.
        """
        spec = self.spec
        channel_passes = math.ceil(spec.nc / self.channels_per_pass)
        input_reads = 2 * spec.input_elems  # copy-in + streamed read
        weight_reads = spec.weight_elems
        output_traffic = spec.output_elems * (2 * channel_passes)
        return input_reads + weight_reads + output_traffic

    def as_pipeline(self, family: str = "fp") -> "SchedulePipeline":
        """This tiling as a schedule-pass pipeline for the loop IR.

        Channel splitting (``channels_per_pass < Nc``) is *not* carried
        over: splitting the channel contraction changes the accumulation
        order inside the vector primitive and is outside the bit-exact
        pass envelope, so the pipeline keeps the full contraction and
        lets the work estimate price the capacity overrun instead.  The
        same envelope admits only *one* tiled spatial dim (2-D tiling
        shrinks the vector primitive's operands enough to flip its
        internal FMA path), so when this schedule shrank both extents
        the pipeline carries the row tiling -- the dominant term of the
        working set -- and prices the rest.
        """
        from repro.stencil.passes import (
            SchedulePass,
            SchedulePipeline,
            Tile,
            Vectorize,
        )

        passes: list[SchedulePass] = []
        if self.tile_y < self.spec.out_ny:
            passes.append(Tile("oy", self.tile_y))
        elif self.tile_x < self.spec.out_nx:
            passes.append(Tile("ox", self.tile_x))
        passes.append(Vectorize())
        return SchedulePipeline(family=family, passes=tuple(passes))


def generate_schedule(
    spec: ConvSpec,
    cache_bytes: int = 256 * 1024,
    tlb_entries: int = 64,
    page_size: int = 4096,
) -> StencilSchedule:
    """Pick the largest square-ish tile whose working set fits the budget.

    The search halves the tile extent until both the cache-capacity and
    TLB-entry constraints hold; degenerate single-element tiles are always
    feasible (any real cache holds one vector), so this terminates.
    """
    if cache_bytes <= 0 or tlb_entries <= 0 or page_size <= 0:
        raise CodegenError("cache_bytes, tlb_entries and page_size must be positive")
    tile_y = spec.out_ny
    tile_x = spec.out_nx
    channels = spec.nc
    while True:
        candidate = StencilSchedule(
            spec=spec, tile_y=tile_y, tile_x=tile_x, channels_per_pass=channels
        )
        fits_cache = candidate.tile_working_set_bytes <= cache_bytes
        fits_tlb = candidate.tlb_entries(page_size) <= tlb_entries
        if fits_cache and fits_tlb:
            return candidate
        # Shrink the largest extent first; channels last (re-reading outputs
        # across channel passes is the most expensive form of tiling).
        if tile_y >= tile_x and tile_y > 1:
            tile_y = max(1, tile_y // 2)
        elif tile_x > 1:
            tile_x = max(1, tile_x // 2)
        elif channels > 1:
            channels = max(1, channels // 2)
        else:
            return candidate  # smallest possible tile; accept it
