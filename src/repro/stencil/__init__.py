"""Stencil-Kernel code generation (paper Sec. 4.3)."""

from repro.stencil.basic_block import generate_basic_block, optimize_register_tile
from repro.stencil.engine import StencilEngine
from repro.stencil.schedule import generate_schedule

__all__ = [
    "generate_basic_block",
    "optimize_register_tile",
    "generate_schedule",
    "StencilEngine",
]
