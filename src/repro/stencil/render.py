"""Render stencil IR as human-readable listings.

Two renderers live here:

* :func:`render_intrinsics` -- the paper presents its generated code as
  AVX intrinsics; this produces the same listing style from the vector
  IR, so the generated blocks can be inspected (and diffed against
  Fig. 7) even though this reproduction executes the numpy emission
  instead.  Comment lines group each input vector load with the FMAs
  that consume it, exactly as the Fig. 7 listing annotates "load input
  vector 1 and compute 2 contributions".
* :func:`render_nest` -- a schedule-annotated loop-nest listing for the
  loop IR (:mod:`repro.stencil.loopir`), showing each stage's loop
  order, dim kinds, tile/jam factors and buffer scopes.  This is what
  ``repro explain`` style tooling and the schedule-search reports print.
"""

from __future__ import annotations

from repro.stencil.ir import BasicBlock, VBroadcast, VFma, VLoad, VStore
from repro.stencil.loopir import TILE, LoopNest


def render_intrinsics(block: BasicBlock, input_row_stride: str = "NX") -> str:
    """C-with-intrinsics text for one basic block.

    ``input_row_stride`` is the symbol used for the input row pitch in
    the generated address arithmetic.
    """
    lines: list[str] = []
    temp_counter = 0
    pending_fmas: list[VFma] = []
    current_load: VLoad | None = None

    def flush_load() -> None:
        nonlocal temp_counter, current_load
        if current_load is None:
            return
        count = len(pending_fmas)
        plural = "s" if count != 1 else ""
        lines.append(
            f"/* load input vector ({current_load.y_off},{current_load.x_off}) "
            f"and compute {count} contribution{plural} */"
        )
        lines.append(
            f"__m256 {current_load.dst} = _mm256_loadu_ps(input + "
            f"(y + {current_load.y_off})*{input_row_stride} + x + "
            f"{current_load.x_off});"
        )
        for fma in pending_fmas:
            temp = f"temp{temp_counter}"
            temp_counter += 1
            lines.append(
                f"__m256 {temp} = _mm256_mul_ps({fma.vec}, {fma.wvec});"
            )
            lines.append(
                f"{fma.acc} = _mm256_add_ps({fma.acc}, {temp});"
            )
        pending_fmas.clear()
        current_load = None

    for instr in block.instructions:
        if isinstance(instr, VBroadcast):
            flush_load()
            lines.append(
                f"__m256 {instr.dst} = _mm256_set1_ps("
                f"weight[{instr.ky}*FX + {instr.kx}]);"
            )
        elif isinstance(instr, VLoad):
            flush_load()
            current_load = instr
        elif isinstance(instr, VFma):
            pending_fmas.append(instr)
        elif isinstance(instr, VStore):
            flush_load()
            lines.append(
                f"_mm256_storeu_ps(output + (y + {instr.ty})*{input_row_stride}"
                f" + x + {instr.tx}*8, {instr.acc});"
            )
    flush_load()
    return "\n".join(lines) + "\n"


def render_nest(nest: LoopNest) -> str:
    """Schedule-annotated textual listing of a loop nest.

    Buffers print with their scope (tile-scoped intermediates are the
    fusion payoff); each stage prints its loops outer-to-inner with the
    dim kind and any tile/jam annotations, then the statement with its
    access maps.
    """
    lines: list[str] = [f"nest {nest.spec.describe()}"]
    for buf in nest.buffers:
        scope = " [tile-scoped]" if buf.scope == TILE else ""
        lines.append(f"buffer {buf.name}{list(buf.shape)} "
                     f"({buf.role}){scope}")
    for stage in nest.stages:
        lines.append(f"stage {stage.name}:")
        indent = "  "
        for info in stage.loops:
            notes = [info.dim.kind]
            if info.tile is not None:
                notes.append(f"tile={info.tile}")
            if info.jam > 1:
                notes.append(f"jam={info.jam}")
            if info.mode != "serial":
                notes.append(info.mode)
            lines.append(f"{indent}for {info.dim.name} in "
                         f"[0, {info.dim.extent})  # {', '.join(notes)}")
            indent += "  "
        stmt = stage.stmt
        op = "+=" if stmt.accumulate else "="
        reads = ", ".join(
            f"{acc.buffer}[{', '.join(ix.describe() for ix in acc.index)}]"
            for acc in stmt.reads
        )
        out = stmt.out
        lines.append(
            f"{indent}{out.buffer}"
            f"[{', '.join(ix.describe() for ix in out.index)}] "
            f"{op} {stmt.op}({reads})"
        )
    if nest.vectorized:
        lines.append(f"vectorized: {nest.num_registers} registers x "
                     f"{nest.vector_width} lanes")
    return "\n".join(lines) + "\n"


def block_summary_comment(block: BasicBlock) -> str:
    """One-line /* ... */ header summarizing the block's statistics."""
    stats = block.summary()
    return (
        f"/* {block.fy}x{block.fx} stencil, register tile "
        f"{block.ry}x{block.rx}: {stats['loads']:.0f} loads, "
        f"{stats['fmas']:.0f} FMAs ({stats['loads_per_fma']:.2f} loads/FMA), "
        f"{stats['registers_used']:.0f} registers */"
    )
