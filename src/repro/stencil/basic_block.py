"""Basic-block generation and register-tile optimization (paper Sec. 4.3).

For an output register tile of ``ry`` rows by ``rx`` vectors (each
``vector_width`` floats wide) and a kernel of ``Fy x Fx`` taps, the block
generator enumerates every input vector that contributes to the tile,
emits one load for it, and emits the FMAs for all of its contributions --
exactly the structure of the paper's Fig. 7 example, where the load of
``ivec1`` is reused by two output vectors.

An input vector at row offset ``dy`` and column offset ``dx`` contributes
to output vector ``(ty, tx)`` whenever ``dy = ty + ky`` and
``dx = tx * V + kx`` for some kernel tap ``(ky, kx)``; spatial reuse along
y grows with ``ry``, which is what makes tall tiles profitable.

The tile optimizer solves the paper's "geometric optimization problem" by
exhaustive search over all ``(ry, rx)`` with
``ry * rx <= available accumulator registers``, minimizing total vector
instructions per output element (commodity machines have few vector
registers, so the search space is tiny).

In the loop-IR stack this module is the *lowering target* of the
``vectorize`` schedule pass: :func:`block_for_nest` turns a vectorized
:class:`~repro.stencil.loopir.LoopNest` into the register-tiled block
that the machine model prices and the kernel-IR verifier checks.  Only
that pass (via :mod:`repro.stencil.passes`) and the renderer should call
the generator directly -- emitters that bypass the pass pipeline are
flagged by the ``CHK-SCHED-BYPASS`` lint rule.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CodegenError
from repro.stencil.ir import BasicBlock, VBroadcast, VFma, VLoad, VStore
from repro.stencil.loopir import LoopNest

#: AVX on the paper's Xeon: 16 ymm registers, 8 floats each.
DEFAULT_NUM_REGISTERS = 16
DEFAULT_VECTOR_WIDTH = 8


def generate_basic_block(
    fy: int,
    fx: int,
    ry: int,
    rx: int,
    vector_width: int = DEFAULT_VECTOR_WIDTH,
) -> BasicBlock:
    """Emit the IR for one ``(ry, rx)`` register-tiled stencil block."""
    if min(fy, fx, ry, rx, vector_width) <= 0:
        raise CodegenError(
            f"all block parameters must be positive: fy={fy} fx={fx} ry={ry} "
            f"rx={rx} vector_width={vector_width}"
        )
    block = BasicBlock(fy=fy, fx=fx, ry=ry, rx=rx, vector_width=vector_width)
    instrs = block.instructions

    # Weight broadcasts: one register reused for all taps (re-broadcast per tap).
    for ky in range(fy):
        for kx in range(fx):
            instrs.append(VBroadcast(dst=f"wvec_{ky}_{kx}", ky=ky, kx=kx))

    # Distinct input vectors touched by the tile, in row-major order, each
    # loaded once and immediately consumed by all of its FMAs (Fig. 7).
    seen: set[tuple[int, int]] = set()
    for dy in range(ry + fy - 1):
        for tx in range(rx):
            for kx in range(fx):
                dx = tx * vector_width + kx
                if (dy, dx) in seen:
                    continue
                seen.add((dy, dx))
                name = f"ivec_{dy}_{dx}"
                instrs.append(VLoad(dst=name, y_off=dy, x_off=dx))
                for ky in range(fy):
                    ty = dy - ky
                    if not 0 <= ty < ry:
                        continue
                    for tx2 in range(rx):
                        kx2 = dx - tx2 * vector_width
                        if 0 <= kx2 < fx:
                            instrs.append(
                                VFma(
                                    acc=f"ovec_{ty}_{tx2}",
                                    vec=name,
                                    wvec=f"wvec_{ky}_{kx2}",
                                )
                            )

    for ty in range(ry):
        for tx in range(rx):
            instrs.append(VStore(acc=f"ovec_{ty}_{tx}", ty=ty, tx=tx))
    return block


@dataclass(frozen=True)
class TileChoice:
    """The selected register tile and its cost in instructions/output."""

    ry: int
    rx: int
    instructions_per_output: float
    block: BasicBlock


def instructions_per_output(block: BasicBlock) -> float:
    """Vector instructions (load+fma+broadcast+store) per output element."""
    total = block.loads + block.fmas + block.broadcasts + block.stores
    return total / block.outputs_per_block


def optimize_register_tile(
    fy: int,
    fx: int,
    num_registers: int = DEFAULT_NUM_REGISTERS,
    vector_width: int = DEFAULT_VECTOR_WIDTH,
    max_ry: int | None = None,
    max_rx: int | None = None,
) -> TileChoice:
    """Exhaustively search ``(ry, rx)`` tiles for the cheapest basic block.

    The constraint ``ry * rx + 2 <= num_registers`` reserves one register
    for the streamed input vector and one for the broadcast weight.
    """
    budget = num_registers - 2
    if budget < 1:
        raise CodegenError(f"need at least 3 vector registers, got {num_registers}")
    best: TileChoice | None = None
    ry_limit = max_ry or budget
    rx_limit = max_rx or budget
    for ry in range(1, min(budget, ry_limit) + 1):
        for rx in range(1, min(budget // ry, rx_limit) + 1):
            block = generate_basic_block(fy, fx, ry, rx, vector_width)
            cost = instructions_per_output(block)
            if best is None or cost < best.instructions_per_output - 1e-12:
                best = TileChoice(ry=ry, rx=rx, instructions_per_output=cost, block=block)
    assert best is not None  # budget >= 1 guarantees at least one candidate
    return best


def block_for_nest(nest: LoopNest) -> TileChoice:
    """Lower a vectorized loop nest's innermost plane to its basic block.

    This is the bridge the ``vectorize`` pass declares: the nest's
    register budget and vector width select the register tile for the
    nest's kernel taps, and the resulting block is what
    ``repro.check.kernel_ir`` verifies for every scheduled kernel.
    """
    if not nest.vectorized:
        raise CodegenError(
            "block_for_nest requires a vectorized nest; run the vectorize "
            "pass first"
        )
    return optimize_register_tile(
        nest.spec.fy,
        nest.spec.fx,
        num_registers=nest.num_registers,
        vector_width=nest.vector_width,
    )
