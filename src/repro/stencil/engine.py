"""The stencil convolution engine (paper Sec. 4.3).

Combines the register-tile optimizer, the tiling schedule and the emitted
kernels into a :class:`repro.ops.engine.ConvEngine`.  The paper deploys the
stencil kernels for forward propagation (Stencil-Kernel (FP)); for
interface completeness this engine also provides the transposed-stencil
backward kernels, which spg-CNN's autotuner may use when they win.

Since the loop-IR refactor the engine is schedule-parameterized: each
kernel family accepts a :class:`repro.stencil.passes.SchedulePipeline`
(``None`` means the default pipeline, which reproduces the original
emission byte for byte).  Pipelines are frozen and picklable, so an
engine carrying a searched schedule crosses the process-backend spawn
boundary intact.

Like GEMM-in-Parallel, the stencil engine parallelizes across training
inputs: each core runs the generated single-threaded kernel on whole
images (the machine model prices the batch partitioning).
"""

from __future__ import annotations

import numpy as np

from repro.core.convspec import ConvSpec
from repro.ops.engine import ConvEngine, register_engine
from repro.stencil.basic_block import (
    DEFAULT_NUM_REGISTERS,
    DEFAULT_VECTOR_WIDTH,
    TileChoice,
    optimize_register_tile,
)
from repro.stencil.emit import (
    emit_backward_data_kernel,
    emit_backward_weights_kernel,
    emit_forward_kernel,
)
from repro.stencil.passes import SchedulePipeline
from repro.stencil.schedule import StencilSchedule, generate_schedule


@register_engine("stencil")
class StencilEngine(ConvEngine):
    """Direct convolution via generated, shape-specialized stencil kernels."""

    def __init__(
        self,
        spec: ConvSpec,
        num_cores: int = 1,
        num_registers: int = DEFAULT_NUM_REGISTERS,
        vector_width: int = DEFAULT_VECTOR_WIDTH,
        cache_bytes: int = 256 * 1024,
        pipeline: SchedulePipeline | None = None,
        bp_pipeline: SchedulePipeline | None = None,
        dw_pipeline: SchedulePipeline | None = None,
    ):
        super().__init__(spec)
        if num_cores <= 0:
            raise ValueError(f"num_cores must be positive, got {num_cores}")
        self.num_cores = num_cores
        self.tile: TileChoice = optimize_register_tile(
            spec.fy, spec.fx, num_registers=num_registers, vector_width=vector_width
        )
        self.schedule: StencilSchedule = generate_schedule(spec, cache_bytes=cache_bytes)
        self.pipeline = pipeline
        self.bp_pipeline = bp_pipeline
        self.dw_pipeline = dw_pipeline
        self._fp_kernel = emit_forward_kernel(spec, pipeline)
        self._bp_kernel = emit_backward_data_kernel(spec, bp_pipeline)
        self._dw_kernel = emit_backward_weights_kernel(spec, dw_pipeline)

    # -- generated-code accessors (for tests and inspection) ------------

    @property
    def forward_source(self) -> str:
        """Source text of the generated FP kernel."""
        return self._fp_kernel.source

    def block_stats(self) -> dict[str, float]:
        """Instruction statistics of the optimized basic block."""
        return self.tile.block.summary()

    # -- ConvEngine interface -------------------------------------------

    def forward(self, inputs: np.ndarray, weights: np.ndarray) -> np.ndarray:
        self._check_batch_inputs(inputs)
        self._check_weights(weights)
        out = np.zeros((inputs.shape[0],) + self.spec.output_shape, dtype=inputs.dtype)
        for img, dst in zip(inputs, out):
            self._fp_kernel(img, weights, dst)
        return out

    def backward_data(self, out_error: np.ndarray, weights: np.ndarray) -> np.ndarray:
        self._check_batch_out_error(out_error)
        self._check_weights(weights)
        in_err = np.zeros(
            (out_error.shape[0],) + self.spec.input_shape, dtype=out_error.dtype
        )
        for err, dst in zip(out_error, in_err):
            self._bp_kernel(err, weights, dst)
        return in_err

    def backward_weights(self, out_error: np.ndarray, inputs: np.ndarray) -> np.ndarray:
        self._check_batch_out_error(out_error)
        self._check_batch_inputs(inputs)
        dw = np.zeros(self.spec.weight_shape, dtype=out_error.dtype)
        for err, img in zip(out_error, inputs):
            self._dw_kernel(err, img, dw)
        return dw
