"""Vector-instruction IR for the stencil code generator (paper Sec. 4.3).

The basic-block generator models the generated AVX code of Fig. 7 at the
instruction level: unaligned vector loads of the input (``VLoad``), scalar
weight broadcasts (``VBroadcast``), fused multiply-adds into an output
register tile (``VFma``) and stores of the accumulators (``VStore``).

This is the *bottom* layer of the two-level IR stack: the schedulable
loop IR (:mod:`repro.stencil.loopir`) describes whole kernels with
explicit iteration domains, schedule passes (:mod:`repro.stencil.passes`)
rewrite it, and the ``vectorize`` pass lowers the innermost parallel
plane into the basic blocks defined here.

The IR serves two purposes:

* it is emitted as specialized, executable Python (:mod:`repro.stencil.emit`)
  so the generated kernels are functionally real; and
* its instruction statistics (loads per FMA, register pressure) feed the
  machine model's stencil throughput estimate
  (:mod:`repro.machine.stencil_model`), standing in for the issue-port
  behaviour of the paper's AVX kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union


@dataclass(frozen=True)
class VLoad:
    """Unaligned vector load of input row ``y_off``, columns ``x_off..+V``."""

    __slots__ = ("dst", "y_off", "x_off")

    dst: str
    y_off: int
    x_off: int

    def __reduce__(self):
        # frozen + __slots__ defeats default pickling (unpickle falls
        # back to setattr, which the frozen guard rejects); rebuild by
        # constructor instead.  Needed to ship engines holding IR across
        # the process backend's spawn boundary.
        return (VLoad, (self.dst, self.y_off, self.x_off))


@dataclass(frozen=True)
class VBroadcast:
    """Broadcast of the scalar weight at kernel offset ``(ky, kx)``."""

    __slots__ = ("dst", "ky", "kx")

    dst: str
    ky: int
    kx: int

    def __reduce__(self):
        return (VBroadcast, (self.dst, self.ky, self.kx))


@dataclass(frozen=True)
class VFma:
    """``acc += vec * wvec`` -- one vector fused multiply-add."""

    __slots__ = ("acc", "vec", "wvec")

    acc: str
    vec: str
    wvec: str

    def __reduce__(self):
        return (VFma, (self.acc, self.vec, self.wvec))


@dataclass(frozen=True)
class VStore:
    """Store accumulator ``acc`` to output tile position ``(ty, tx)``."""

    __slots__ = ("acc", "ty", "tx")

    acc: str
    ty: int
    tx: int

    def __reduce__(self):
        return (VStore, (self.acc, self.ty, self.tx))


#: The closed set of stencil IR instruction kinds.  A real union (not the
#: old ``object`` placeholder) so the verifier in
#: :mod:`repro.check.kernel_ir` can exhaustively match on instruction
#: kinds and treat anything else as a codegen error.
Instruction = Union[VLoad, VBroadcast, VFma, VStore]

#: Instruction classes in canonical order, for exhaustive dispatch.
INSTRUCTION_KINDS: tuple[type, ...] = (VLoad, VBroadcast, VFma, VStore)


@dataclass
class BasicBlock:
    """One register-tiled stencil basic block and its statistics."""

    fy: int
    fx: int
    ry: int
    rx: int
    vector_width: int
    instructions: list[Instruction] = field(default_factory=list)

    @property
    def loads(self) -> int:
        """Number of vector load instructions in the block."""
        return sum(isinstance(i, VLoad) for i in self.instructions)

    @property
    def broadcasts(self) -> int:
        """Number of weight broadcast instructions in the block."""
        return sum(isinstance(i, VBroadcast) for i in self.instructions)

    @property
    def fmas(self) -> int:
        """Number of vector FMA instructions in the block."""
        return sum(isinstance(i, VFma) for i in self.instructions)

    @property
    def stores(self) -> int:
        """Number of vector store instructions in the block."""
        return sum(isinstance(i, VStore) for i in self.instructions)

    @property
    def outputs_per_block(self) -> int:
        """Output elements produced by one execution of the block."""
        return self.ry * self.rx * self.vector_width

    @property
    def loads_per_fma(self) -> float:
        """Input-load pressure: vector loads issued per vector FMA."""
        if self.fmas == 0:
            return 0.0
        return self.loads / self.fmas

    @property
    def registers_used(self) -> int:
        """Vector registers live at once: accumulators + 1 input + 1 weight."""
        return self.ry * self.rx + 2

    def summary(self) -> dict[str, float]:
        """Statistics dictionary consumed by the machine model."""
        return {
            "loads": self.loads,
            "broadcasts": self.broadcasts,
            "fmas": self.fmas,
            "stores": self.stores,
            "outputs_per_block": self.outputs_per_block,
            "loads_per_fma": self.loads_per_fma,
            "registers_used": self.registers_used,
        }
