"""Composable, individually verified schedule passes over the loop IR.

Each pass is a frozen, hashable rewrite of a :class:`~repro.stencil.loopir.
LoopNest`.  Legality is checked structurally at apply time against the
dimension kinds declared by the nest builders, which encode the bit-exact
transformation envelope established empirically for the numpy vector
primitives:

* ``tile`` may split only PARALLEL spatial dims (``oy``/``ox``, or the
  pool-row dim ``py`` of fused nests).  Splitting a REDUCE_ATOMIC dim
  (the channel contraction inside ``np.tensordot``) changes the
  accumulation order inside the BLAS kernel and is rejected.
* ``reorder`` may permute a stage's loops as long as the *relative*
  order of REDUCE_ORDERED dims (the accumulating kernel taps) is
  preserved.  In the dW nest the taps are PARALLEL -- each ``dw``
  element is written by exactly one tap -- so there they may reorder.
* ``unroll_and_jam`` groups a tiled PARALLEL loop's iterations and
  moves the group members innermost; per output element the tap order
  is untouched, so the rewrite is bit-exact.
* ``vectorize`` lowers the innermost parallel plane plus the atomic
  contraction onto the vector primitive, attaching the register-tiled
  basic block (:mod:`repro.stencil.basic_block`) that the machine model
  prices and :func:`repro.check.kernel_ir.verify_basic_block` verifies.
* ``fuse`` demotes the conv+ReLU+pool intermediate activation to a
  tile-scoped scratch buffer and tiles the pool rows, eliminating the
  materialized activation / pre-pool tensors from shared traffic.

A :class:`SchedulePipeline` is an ordered pass list with a stable
fingerprint; the emitters key their codegen caches on it, and every pass
reports the :class:`~repro.stencil.loopir.WorkDelta` it produced so the
autotuner can explain a schedule choice in roofline terms.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.convspec import ConvSpec
from repro.errors import CodegenError
from repro.stencil import loopir
from repro.stencil.basic_block import (
    DEFAULT_NUM_REGISTERS,
    DEFAULT_VECTOR_WIDTH,
    TileChoice,
    block_for_nest,
)
from repro.stencil.loopir import (
    PARALLEL,
    REDUCE_ORDERED,
    TILE,
    LoopInfo,
    LoopNest,
    Stage,
    WorkDelta,
    WorkEstimate,
    estimate_nest,
    stable_fingerprint,
)


class IllegalSchedule(CodegenError):
    """A pass was applied outside its bit-exactness envelope."""


#: Dims whose tiling is known bit-exact for the numpy vector primitives.
TILABLE_DIMS = ("oy", "ox", "py")


@dataclass(frozen=True)
class Tile:
    """Split a PARALLEL spatial dim into literal tile ranges."""

    dim: str
    factor: int

    def __post_init__(self) -> None:
        if self.factor <= 0:
            raise IllegalSchedule(f"tile({self.dim}): factor must be positive")

    def describe(self) -> str:
        return f"tile({self.dim},{self.factor})"

    def apply(self, nest: LoopNest) -> LoopNest:
        if self.dim not in TILABLE_DIMS:
            raise IllegalSchedule(
                f"tile({self.dim}): only {TILABLE_DIMS} tile bit-exactly; "
                f"reduction dims change the accumulation order"
            )
        if nest.fused and self.dim != "py":
            raise IllegalSchedule(
                "fused nests tile only the pool-row dim 'py' "
                "(conv rows follow from the pool window)"
            )
        touched = False
        for stage in nest.stages:
            if not stage.has_loop(self.dim):
                continue
            info = stage.loop(self.dim)
            if info.dim.kind != PARALLEL:
                raise IllegalSchedule(
                    f"tile({self.dim}): dim is {info.dim.kind} in stage "
                    f"{stage.name!r}; only parallel dims tile bit-exactly"
                )
            if info.tile is not None:
                raise IllegalSchedule(f"tile({self.dim}): already tiled")
            if self.dim in ("oy", "ox"):
                other = "ox" if self.dim == "oy" else "oy"
                if (stage.has_loop(other)
                        and stage.loop(other).tile is not None):
                    raise IllegalSchedule(
                        f"tile({self.dim}): {other} is already tiled; 2-D "
                        "spatial tiling shrinks the vector primitive's "
                        "operands enough to flip its internal FMA path "
                        "(observed 1-ulp drift vs the unscheduled "
                        "emission), so only one spatial dim tiles "
                        "bit-exactly"
                    )
            factor = min(self.factor, info.dim.extent)
            loops = tuple(
                replace(li, tile=factor) if li.dim.name == self.dim else li
                for li in stage.loops
            )
            nest = nest.with_stage(Stage(stage.name, loops, stage.stmt))
            touched = True
        if not touched:
            raise IllegalSchedule(f"tile({self.dim}): no stage has that dim")
        return nest


@dataclass(frozen=True)
class Reorder:
    """Permute a stage's loop order (tap-order preserving)."""

    order: tuple[str, ...]
    stage: str = ""

    def describe(self) -> str:
        target = self.stage or "*"
        return f"reorder({target}:{','.join(self.order)})"

    def apply(self, nest: LoopNest) -> LoopNest:
        if nest.fused:
            raise IllegalSchedule(
                "reorder is not supported on fused nests; the pool window "
                "fixes the stage interleaving"
            )
        stage = nest.stage(self.stage) if self.stage else nest.stages[0]
        names = tuple(li.dim.name for li in stage.loops)
        if sorted(self.order) != sorted(names):
            raise IllegalSchedule(
                f"reorder: {self.order} is not a permutation of {names}"
            )
        ordered_before = [n for n in names
                          if stage.loop(n).dim.kind == REDUCE_ORDERED]
        ordered_after = [n for n in self.order
                         if stage.loop(n).dim.kind == REDUCE_ORDERED]
        if ordered_before != ordered_after:
            raise IllegalSchedule(
                f"reorder: would permute accumulating taps "
                f"{ordered_before} -> {ordered_after}; their relative "
                f"order is observable in float arithmetic"
            )
        loops = tuple(stage.loop(n) for n in self.order)
        return nest.with_stage(Stage(stage.name, loops, stage.stmt))


@dataclass(frozen=True)
class UnrollAndJam:
    """Unroll a tiled PARALLEL loop and jam the copies innermost."""

    dim: str
    factor: int

    def __post_init__(self) -> None:
        if self.factor <= 1:
            raise IllegalSchedule(
                f"unroll_and_jam({self.dim}): factor must be > 1"
            )

    def describe(self) -> str:
        return f"unroll_and_jam({self.dim},{self.factor})"

    def apply(self, nest: LoopNest) -> LoopNest:
        if nest.fused:
            raise IllegalSchedule("unroll_and_jam is not supported on "
                                  "fused nests")
        touched = False
        for stage in nest.stages:
            if not stage.has_loop(self.dim):
                continue
            info = stage.loop(self.dim)
            if info.dim.kind != PARALLEL:
                raise IllegalSchedule(
                    f"unroll_and_jam({self.dim}): dim is {info.dim.kind}; "
                    f"jamming a reduction reorders its accumulation"
                )
            if info.tile is None and info.dim.name in ("oy", "ox"):
                raise IllegalSchedule(
                    f"unroll_and_jam({self.dim}): tile the dim first; "
                    f"untiled spatial dims are absorbed by vectorize"
                )
            loops = tuple(
                replace(li, jam=self.factor) if li.dim.name == self.dim else li
                for li in stage.loops
            )
            nest = nest.with_stage(Stage(stage.name, loops, stage.stmt))
            touched = True
        if not touched:
            raise IllegalSchedule(
                f"unroll_and_jam({self.dim}): no stage has that dim"
            )
        return nest


@dataclass(frozen=True)
class Vectorize:
    """Lower the innermost parallel plane to the vector primitive.

    This is the bridge to the existing basic-block IR: the register tile
    chosen for ``(fy, fx)`` under the declared register budget is what
    the machine model prices and the kernel-IR verifier checks.
    """

    num_registers: int = DEFAULT_NUM_REGISTERS
    vector_width: int = DEFAULT_VECTOR_WIDTH

    def describe(self) -> str:
        return f"vectorize({self.num_registers},{self.vector_width})"

    def apply(self, nest: LoopNest) -> LoopNest:
        if nest.vectorized:
            raise IllegalSchedule("nest is already vectorized")
        return replace(
            nest,
            vectorized=True,
            num_registers=self.num_registers,
            vector_width=self.vector_width,
        )


@dataclass(frozen=True)
class Fuse:
    """Fuse conv+ReLU+pool: demote the activation to tile scope.

    Legality rule: every consumer of the intermediate activation must be
    expressible within one pool-row block -- true exactly when the only
    consumers are the elementwise ReLU and a pool whose windows fall
    inside the block's ``(block_rows - 1) * stride + kernel`` producer
    rows.  The builders guarantee that shape, so the check here is that
    the nest *is* a conv/relu/maxpool program and that no conflicting
    spatial tiling was applied to the producer.
    """

    block_rows: int = 1

    def __post_init__(self) -> None:
        if self.block_rows <= 0:
            raise IllegalSchedule("fuse: block_rows must be positive")

    def describe(self) -> str:
        return f"fuse({self.block_rows})"

    def apply(self, nest: LoopNest) -> LoopNest:
        if nest.pool is None or not nest.fused:
            raise IllegalSchedule(
                "fuse requires a conv+relu+maxpool nest (fused_fp_nest)"
            )
        names = tuple(s.name for s in nest.stages)
        if names != ("conv", "relu", "maxpool"):
            raise IllegalSchedule(f"fuse: unexpected stage chain {names}")
        conv = nest.stage("conv")
        for li in conv.loops:
            if li.tile is not None:
                raise IllegalSchedule(
                    "fuse: conv stage must be untiled; the pool-row block "
                    "determines the producer tile"
                )
        buffers = tuple(
            replace(buf, scope=TILE) if buf.name == "act" else buf
            for buf in nest.buffers
        )
        nest = replace(nest, buffers=buffers)
        return Tile("py", self.block_rows).apply(nest)


SchedulePass = Tile | Reorder | UnrollAndJam | Vectorize | Fuse

#: Kernel families a pipeline can target.
FAMILIES = ("fp", "bp_data", "bp_weights", "fused_fp",
            "sparse_bp_data", "sparse_bp_weights")


@dataclass(frozen=True)
class SchedulePipeline:
    """An ordered, fingerprinted pass list for one kernel family."""

    family: str
    passes: tuple[SchedulePass, ...]
    #: Pool geometry, required for (and only for) the fused family.
    pool_kernel: int = 0
    pool_stride: int = 0

    def __post_init__(self) -> None:
        if self.family not in FAMILIES:
            raise CodegenError(f"unknown pipeline family {self.family!r}")
        if self.family == "fused_fp":
            if self.pool_kernel <= 0:
                raise CodegenError("fused_fp pipeline needs pool_kernel")
            if not any(isinstance(p, Fuse) for p in self.passes):
                raise CodegenError("fused_fp pipeline must contain fuse")
        elif any(isinstance(p, Fuse) for p in self.passes):
            raise CodegenError(f"fuse pass is only legal in the fused_fp "
                               f"family, not {self.family!r}")
        if self.family.startswith("sparse"):
            if any(isinstance(p, (Tile, UnrollAndJam, Vectorize, Fuse))
                   for p in self.passes):
                raise CodegenError(
                    "sparse pipelines support only tap reorder; the CT-CSR "
                    "tile multiply is the fixed vector primitive"
                )
            return
        vec = [i for i, p in enumerate(self.passes)
               if isinstance(p, Vectorize)]
        if len(vec) != 1 or vec[0] != len(self.passes) - 1:
            raise CodegenError(
                "pipeline must end with exactly one vectorize pass "
                "(the lowering to the basic-block IR)"
            )

    # -- identity -------------------------------------------------------

    def describe(self) -> str:
        inner = "|".join(p.describe() for p in self.passes)
        prefix = self.family
        if self.family == "fused_fp":
            prefix = f"{prefix}[{self.pool_kernel},{self.pool_stride}]"
        return f"{prefix}:{inner}"

    def fingerprint(self) -> str:
        """Stable short hash of the full pass sequence and family."""
        return stable_fingerprint(self.describe())

    @property
    def is_default(self) -> bool:
        """True when this pipeline reproduces the original emission."""
        return self == default_pipeline(self.family,
                                        pool_kernel=self.pool_kernel,
                                        pool_stride=self.pool_stride)

    # -- application ----------------------------------------------------

    def base_nest(self, spec: ConvSpec) -> LoopNest:
        if self.family == "fused_fp":
            return loopir.fused_fp_nest(spec, self.pool_kernel,
                                        self.pool_stride or None)
        if self.family.startswith("sparse"):
            builder = loopir.NEST_BUILDERS[self.family[len("sparse_"):]]
            return builder(spec)
        return loopir.NEST_BUILDERS[self.family](spec)

    def build_nest(self, spec: ConvSpec) -> LoopNest:
        """Build the family's algorithm nest and apply every pass."""
        nest = self.base_nest(spec)
        for p in self.passes:
            nest = p.apply(nest)
        return nest

    def vector_block(self, spec: ConvSpec) -> TileChoice:
        """The register-tiled basic block the vectorize pass lowered to."""
        return block_for_nest(self.build_nest(spec))

    # -- work accounting ------------------------------------------------

    def estimate(self, spec: ConvSpec,
                 cache_bytes: int = 256 * 1024) -> WorkEstimate:
        """Work estimate of the fully scheduled nest."""
        return estimate_nest(self.build_nest(spec), cache_bytes=cache_bytes)

    def explain(self, spec: ConvSpec,
                cache_bytes: int = 256 * 1024) -> tuple["PassReport", ...]:
        """Per-pass :class:`WorkDelta` ledger for this schedule."""
        nest = self.base_nest(spec)
        before = estimate_nest(nest, cache_bytes=cache_bytes)
        reports = []
        for p in self.passes:
            nest = p.apply(nest)
            after = estimate_nest(nest, cache_bytes=cache_bytes)
            reports.append(PassReport(name=p.describe(),
                                      delta=after - before,
                                      estimate=after))
            before = after
        return tuple(reports)


@dataclass(frozen=True)
class PassReport:
    """One pass's contribution to the schedule's work estimate."""

    name: str
    delta: WorkDelta
    estimate: WorkEstimate

    def describe(self) -> str:
        return f"{self.name}: {self.delta.describe()}"


# -- default pipelines (the original emitters, as schedules) ---------------


def default_pipeline(family: str, pool_kernel: int = 0,
                     pool_stride: int = 0) -> SchedulePipeline:
    """The pass pipeline reproducing the pre-loop-IR emission byte for
    byte: taps enumerated in (ky, kx) order, full output plane vectorized,
    no tiling.  The fused family's default processes one pool row block at
    a time, which is the smallest legal fusion granularity."""
    if family == "fused_fp":
        return SchedulePipeline(
            family=family,
            passes=(Fuse(block_rows=1), Vectorize()),
            pool_kernel=pool_kernel,
            pool_stride=pool_stride,
        )
    if family.startswith("sparse"):
        return SchedulePipeline(family=family, passes=())
    return SchedulePipeline(family=family, passes=(Vectorize(),))


def tiled_pipeline(family: str, tile_y: int | None = None,
                   tile_x: int | None = None,
                   order: tuple[str, ...] | None = None,
                   jam: int = 1) -> SchedulePipeline:
    """Convenience constructor for the common tiled/reordered shapes."""
    passes: list[SchedulePass] = []
    if tile_y is not None:
        passes.append(Tile("oy", tile_y))
    if tile_x is not None:
        passes.append(Tile("ox", tile_x))
    if order is not None:
        passes.append(Reorder(order))
    if jam > 1:
        if tile_y is None:
            raise CodegenError("jam requires a tiled oy loop")
        passes.append(UnrollAndJam("oy", jam))
    passes.append(Vectorize())
    return SchedulePipeline(family=family, passes=tuple(passes))
