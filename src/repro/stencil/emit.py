"""Emission of specialized, executable stencil kernels.

The emitter turns a convolution shape into Python source with every kernel
tap ``(ky, kx)`` fully unrolled and every slice bound a literal -- the same
specialization decisions the paper's generator makes when it emits AVX C
(Fig. 7), expressed with numpy vector operations standing in for the
vector ISA.  Each unrolled tap line is one shifted rank-reduced
multiply-accumulate, mirroring the FMA group a tap contributes to the
register tile; strided convolutions emit literal strided slices (the
aligned-load layout of Eq. 21 is modelled on the cost side).

The generated source is compiled with :func:`compile`/``exec`` and kept on
the kernel object for inspection and testing.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.convspec import ConvSpec
from repro.errors import CodegenError


@dataclass(frozen=True)
class GeneratedKernel:
    """A compiled specialized kernel plus its source text."""

    name: str
    source: str
    func: Callable[..., np.ndarray]

    def __call__(self, *args, **kwargs):
        return self.func(*args, **kwargs)

    def __reduce__(self):
        # The exec-compiled function cannot pickle; ship (name, source)
        # and recompile on the far side.  Codegen is deterministic, so a
        # kernel crossing a spawn boundary stays identical -- this is
        # what lets engines holding generated kernels run under the
        # process execution backend.
        return (_compile, (self.name, self.source))


def _compile(name: str, source: str) -> GeneratedKernel:
    namespace: dict = {"np": np}
    try:
        code = compile(source, filename=f"<generated:{name}>", mode="exec")
        exec(code, namespace)  # noqa: S102 - generated from trusted templates
    except SyntaxError as exc:  # pragma: no cover - template bug guard
        raise CodegenError(f"generated kernel {name} failed to compile: {exc}") from exc
    return GeneratedKernel(name=name, source=source, func=namespace[name])


def _slice_expr(start: int, count: int, stride: int) -> str:
    """Literal slice text selecting ``count`` elements from ``start`` by ``stride``."""
    stop = start + (count - 1) * stride + 1
    if stride == 1:
        return f"{start}:{stop}"
    return f"{start}:{stop}:{stride}"


@functools.lru_cache(maxsize=256)
def emit_forward_kernel(spec: ConvSpec) -> GeneratedKernel:
    """Generate the FP stencil kernel for ``spec``.

    Signature of the generated function:
    ``kernel(inputs, weights, out) -> out`` with ``inputs [Nc, Ny, Nx]``,
    ``weights [Nf, Nc, Fy, Fx]`` and ``out [Nf, out_Ny, out_Nx]`` (zeroed
    by the caller).  Each tap contributes
    ``out += W[:, :, ky, kx] . I[:, y-slice, x-slice]``.
    """
    if spec.pad != 0:
        raise CodegenError("emit_forward_kernel requires a pre-padded (pad=0) spec")
    name = f"stencil_fp_{spec.nc}x{spec.ny}x{spec.nx}_{spec.nf}_{spec.fy}x{spec.fx}_s{spec.sy}{spec.sx}"
    lines = [
        f"def {name}(inputs, weights, out):",
        f'    """Generated stencil FP kernel for {spec.describe()}."""',
        f"    assert inputs.shape == {spec.input_shape!r}, inputs.shape",
        f"    assert out.shape == {spec.output_shape!r}, out.shape",
    ]
    for ky in range(spec.fy):
        for kx in range(spec.fx):
            ys = _slice_expr(ky, spec.out_ny, spec.sy)
            xs = _slice_expr(kx, spec.out_nx, spec.sx)
            lines.append(
                f"    out += np.tensordot(weights[:, :, {ky}, {kx}], "
                f"inputs[:, {ys}, {xs}], axes=([1], [0]))"
            )
    lines.append("    return out")
    return _compile(name, "\n".join(lines) + "\n")


@functools.lru_cache(maxsize=256)
def emit_backward_data_kernel(spec: ConvSpec) -> GeneratedKernel:
    """Generate the transposed-stencil kernel computing EI from EO (Eq. 3).

    Signature: ``kernel(out_error, weights, in_error) -> in_error`` with
    ``in_error`` zeroed by the caller.  Each tap scatters
    ``W[:, :, ky, kx]^T . EO`` onto the strided input slice at the tap
    offset -- the exact adjoint of the forward kernel's taps.
    """
    if spec.pad != 0:
        raise CodegenError("emit_backward_data_kernel requires a pre-padded spec")
    name = f"stencil_bp_{spec.nc}x{spec.ny}x{spec.nx}_{spec.nf}_{spec.fy}x{spec.fx}_s{spec.sy}{spec.sx}"
    lines = [
        f"def {name}(out_error, weights, in_error):",
        f'    """Generated transposed-stencil kernel for {spec.describe()}."""',
        f"    assert out_error.shape == {spec.output_shape!r}, out_error.shape",
        f"    assert in_error.shape == {spec.input_shape!r}, in_error.shape",
    ]
    for ky in range(spec.fy):
        for kx in range(spec.fx):
            ys = _slice_expr(ky, spec.out_ny, spec.sy)
            xs = _slice_expr(kx, spec.out_nx, spec.sx)
            lines.append(
                f"    in_error[:, {ys}, {xs}] += np.tensordot("
                f"weights[:, :, {ky}, {kx}], out_error, axes=([0], [0]))"
            )
    lines.append("    return in_error")
    return _compile(name, "\n".join(lines) + "\n")


@functools.lru_cache(maxsize=256)
def emit_backward_weights_kernel(spec: ConvSpec) -> GeneratedKernel:
    """Generate the dW kernel (Eq. 4) with unrolled taps.

    Signature: ``kernel(out_error, inputs, dw) -> dw`` (``dw`` accumulated
    in place).  Each tap computes the full ``[Nf, Nc]`` correlation between
    the output error and the tap's shifted input slice.
    """
    if spec.pad != 0:
        raise CodegenError("emit_backward_weights_kernel requires a pre-padded spec")
    name = f"stencil_dw_{spec.nc}x{spec.ny}x{spec.nx}_{spec.nf}_{spec.fy}x{spec.fx}_s{spec.sy}{spec.sx}"
    lines = [
        f"def {name}(out_error, inputs, dw):",
        f'    """Generated dW kernel for {spec.describe()}."""',
        f"    assert out_error.shape == {spec.output_shape!r}, out_error.shape",
        f"    assert dw.shape == {spec.weight_shape!r}, dw.shape",
    ]
    for ky in range(spec.fy):
        for kx in range(spec.fx):
            ys = _slice_expr(ky, spec.out_ny, spec.sy)
            xs = _slice_expr(kx, spec.out_nx, spec.sx)
            lines.append(
                f"    dw[:, :, {ky}, {kx}] += np.tensordot("
                f"out_error, inputs[:, {ys}, {xs}], axes=([1, 2], [1, 2]))"
            )
    lines.append("    return dw")
    return _compile(name, "\n".join(lines) + "\n")
