"""Emission of specialized, executable stencil kernels from the loop IR.

The emitter lowers a *scheduled* :class:`~repro.stencil.loopir.LoopNest`
into Python source with every enumerated loop fully unrolled and every
slice bound a literal -- the same specialization decisions the paper's
generator makes when it emits AVX C (Fig. 7), expressed with numpy vector
operations standing in for the vector ISA.  Each unrolled tap line is one
shifted rank-reduced multiply-accumulate, mirroring the FMA group a tap
contributes to the register tile; strided convolutions emit literal
strided slices (the aligned-load layout of Eq. 21 is modelled on the cost
side).

What used to be the only emission is now the *default schedule*: calling
an emitter without a pipeline applies
:func:`repro.stencil.passes.default_pipeline` and produces byte-identical
source to the original generator.  Non-default pipelines (tiled,
reordered, jammed, fused) emit the corresponding statement stream and
carry the pipeline fingerprint in the kernel name, so distinct schedules
can never collide in the codegen cache -- the cache key *is*
``(spec, pipeline)``.

The generated source is compiled with :func:`compile`/``exec`` and kept on
the kernel object for inspection and testing.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from repro.core.convspec import ConvSpec
from repro.errors import CodegenError
from repro.stencil.loopir import REDUCE_ORDERED, LoopNest, Stage
from repro.stencil.passes import SchedulePipeline, default_pipeline


@dataclass(frozen=True)
class GeneratedKernel:
    """A compiled specialized kernel plus its source text."""

    name: str
    source: str
    func: Callable[..., np.ndarray]

    def __call__(self, *args, **kwargs):
        return self.func(*args, **kwargs)

    def __reduce__(self):
        # The exec-compiled function cannot pickle; ship (name, source)
        # and recompile on the far side.  Codegen is deterministic, so a
        # kernel crossing a spawn boundary stays identical -- this is
        # what lets engines holding generated kernels run under the
        # process execution backend.
        return (_compile, (self.name, self.source))


def _compile(name: str, source: str) -> GeneratedKernel:
    namespace: dict = {"np": np}
    try:
        code = compile(source, filename=f"<generated:{name}>", mode="exec")
        exec(code, namespace)  # noqa: S102 - generated from trusted templates
    except SyntaxError as exc:  # pragma: no cover - template bug guard
        raise CodegenError(f"generated kernel {name} failed to compile: {exc}") from exc
    return GeneratedKernel(name=name, source=source, func=namespace[name])


def _slice_expr(start: int, count: int, stride: int) -> str:
    """Literal slice text selecting ``count`` elements from ``start`` by ``stride``."""
    stop = start + (count - 1) * stride + 1
    if stride == 1:
        return f"{start}:{stop}"
    return f"{start}:{stop}:{stride}"


# -- scheduled statement enumeration ---------------------------------------


@dataclass(frozen=True)
class _Axis:
    """One enumerable loop of the scheduled nest."""

    name: str
    values: tuple
    jam: int = 1


def _stage_axes(stage: Stage) -> list[_Axis]:
    """The loops the emitter enumerates, in schedule order.

    Kernel taps are always unrolled (they are the REDUCE_ORDERED dims, or
    PARALLEL ``ky``/``kx`` in the dW nest); tiled spatial dims enumerate
    their literal tile ranges; everything else -- the untiled parallel
    plane and the atomic contraction -- is absorbed by the vector
    primitive.
    """
    axes: list[_Axis] = []
    for info in stage.loops:
        dim = info.dim
        is_tap = dim.name in ("ky", "kx", "wy", "wx")
        if is_tap or dim.kind == REDUCE_ORDERED:
            axes.append(_Axis(dim.name, tuple(range(dim.extent)), info.jam))
        elif info.tile is not None:
            ranges = tuple(
                (start, min(info.tile, dim.extent - start))
                for start in range(0, dim.extent, info.tile)
            )
            axes.append(_Axis(dim.name, ranges, info.jam))
    return axes


def _enumerate(axes: list[_Axis]) -> Iterator[dict]:
    """Walk the statement stream: axis order outer-to-inner, with jammed
    axes' group members moved innermost (classic unroll-and-jam)."""

    def rec(idx: int, pending: list, assignment: dict) -> Iterator[dict]:
        if idx == len(axes):
            if not pending:
                yield dict(assignment)
                return
            name, group = pending[0]
            for value in group:
                assignment[name] = value
                yield from rec(idx, pending[1:], assignment)
            return
        axis = axes[idx]
        if axis.jam > 1:
            for lo in range(0, len(axis.values), axis.jam):
                group = axis.values[lo:lo + axis.jam]
                yield from rec(idx + 1, pending + [(axis.name, group)],
                               assignment)
        else:
            for value in axis.values:
                assignment[axis.name] = value
                yield from rec(idx + 1, pending, assignment)

    yield from rec(0, [], {})


def _spatial(assignment: dict, dim: str, full: int) -> tuple[int, int]:
    """(start, extent) of the spatial tile this assignment selects."""
    if dim in assignment:
        return assignment[dim]
    return (0, full)


def _require_vectorized(nest: LoopNest, what: str) -> None:
    if not nest.vectorized:
        raise CodegenError(
            f"{what}: pipeline never lowered to the vector primitive; "
            f"append a vectorize pass"
        )


def _kernel_name(base: str, pipeline: SchedulePipeline) -> str:
    if pipeline.is_default:
        return base
    return f"{base}__s{pipeline.fingerprint()}"


# -- kernel emitters -------------------------------------------------------


@functools.lru_cache(maxsize=256)
def emit_forward_kernel(
    spec: ConvSpec, pipeline: SchedulePipeline | None = None
) -> GeneratedKernel:
    """Generate the FP stencil kernel for ``spec`` under ``pipeline``.

    Signature of the generated function:
    ``kernel(inputs, weights, out) -> out`` with ``inputs [Nc, Ny, Nx]``,
    ``weights [Nf, Nc, Fy, Fx]`` and ``out [Nf, out_Ny, out_Nx]`` (zeroed
    by the caller).  Each tap contributes
    ``out += W[:, :, ky, kx] . I[:, y-slice, x-slice]`` -- per spatial
    tile when the schedule tiled the output plane.
    """
    if spec.pad != 0:
        raise CodegenError("emit_forward_kernel requires a pre-padded (pad=0) spec")
    pipeline = pipeline or default_pipeline("fp")
    if pipeline.family != "fp":
        raise CodegenError(f"emit_forward_kernel got a {pipeline.family!r} pipeline")
    nest = pipeline.build_nest(spec)
    _require_vectorized(nest, "emit_forward_kernel")
    base = f"stencil_fp_{spec.nc}x{spec.ny}x{spec.nx}_{spec.nf}_{spec.fy}x{spec.fx}_s{spec.sy}{spec.sx}"
    name = _kernel_name(base, pipeline)
    lines = [
        f"def {name}(inputs, weights, out):",
        f'    """Generated stencil FP kernel for {spec.describe()}."""',
        f"    assert inputs.shape == {spec.input_shape!r}, inputs.shape",
        f"    assert out.shape == {spec.output_shape!r}, out.shape",
    ]
    tiled = any(li.tile is not None for li in nest.stages[0].loops)
    for a in _enumerate(_stage_axes(nest.stages[0])):
        ky, kx = a["ky"], a["kx"]
        y0, rows = _spatial(a, "oy", spec.out_ny)
        x0, cols = _spatial(a, "ox", spec.out_nx)
        ys = _slice_expr(ky + y0 * spec.sy, rows, spec.sy)
        xs = _slice_expr(kx + x0 * spec.sx, cols, spec.sx)
        dst = "out" if not tiled else (
            f"out[:, {y0}:{y0 + rows}, {x0}:{x0 + cols}]"
        )
        lines.append(
            f"    {dst} += np.tensordot(weights[:, :, {ky}, {kx}], "
            f"inputs[:, {ys}, {xs}], axes=([1], [0]))"
        )
    lines.append("    return out")
    return _compile(name, "\n".join(lines) + "\n")


@functools.lru_cache(maxsize=256)
def emit_backward_data_kernel(
    spec: ConvSpec, pipeline: SchedulePipeline | None = None
) -> GeneratedKernel:
    """Generate the transposed-stencil kernel computing EI from EO (Eq. 3).

    Signature: ``kernel(out_error, weights, in_error) -> in_error`` with
    ``in_error`` zeroed by the caller.  Each tap scatters
    ``W[:, :, ky, kx]^T . EO`` onto the strided input slice at the tap
    offset -- the exact adjoint of the forward kernel's taps.
    """
    if spec.pad != 0:
        raise CodegenError("emit_backward_data_kernel requires a pre-padded spec")
    pipeline = pipeline or default_pipeline("bp_data")
    if pipeline.family != "bp_data":
        raise CodegenError(
            f"emit_backward_data_kernel got a {pipeline.family!r} pipeline"
        )
    nest = pipeline.build_nest(spec)
    _require_vectorized(nest, "emit_backward_data_kernel")
    base = f"stencil_bp_{spec.nc}x{spec.ny}x{spec.nx}_{spec.nf}_{spec.fy}x{spec.fx}_s{spec.sy}{spec.sx}"
    name = _kernel_name(base, pipeline)
    lines = [
        f"def {name}(out_error, weights, in_error):",
        f'    """Generated transposed-stencil kernel for {spec.describe()}."""',
        f"    assert out_error.shape == {spec.output_shape!r}, out_error.shape",
        f"    assert in_error.shape == {spec.input_shape!r}, in_error.shape",
    ]
    tiled = any(li.tile is not None for li in nest.stages[0].loops)
    for a in _enumerate(_stage_axes(nest.stages[0])):
        ky, kx = a["ky"], a["kx"]
        y0, rows = _spatial(a, "oy", spec.out_ny)
        x0, cols = _spatial(a, "ox", spec.out_nx)
        ys = _slice_expr(ky + y0 * spec.sy, rows, spec.sy)
        xs = _slice_expr(kx + x0 * spec.sx, cols, spec.sx)
        src = "out_error" if not tiled else (
            f"out_error[:, {y0}:{y0 + rows}, {x0}:{x0 + cols}]"
        )
        lines.append(
            f"    in_error[:, {ys}, {xs}] += np.tensordot("
            f"weights[:, :, {ky}, {kx}], {src}, axes=([0], [0]))"
        )
    lines.append("    return in_error")
    return _compile(name, "\n".join(lines) + "\n")


@functools.lru_cache(maxsize=256)
def emit_backward_weights_kernel(
    spec: ConvSpec, pipeline: SchedulePipeline | None = None
) -> GeneratedKernel:
    """Generate the dW kernel (Eq. 4) with unrolled taps.

    Signature: ``kernel(out_error, inputs, dw) -> dw`` (``dw`` accumulated
    in place).  Each tap computes the full ``[Nf, Nc]`` correlation between
    the output error and the tap's shifted input slice.  The spatial plane
    is the reduction here, so schedules may only reorder the taps (each
    ``dw`` element is written by exactly one statement).
    """
    if spec.pad != 0:
        raise CodegenError("emit_backward_weights_kernel requires a pre-padded spec")
    pipeline = pipeline or default_pipeline("bp_weights")
    if pipeline.family != "bp_weights":
        raise CodegenError(
            f"emit_backward_weights_kernel got a {pipeline.family!r} pipeline"
        )
    nest = pipeline.build_nest(spec)
    _require_vectorized(nest, "emit_backward_weights_kernel")
    base = f"stencil_dw_{spec.nc}x{spec.ny}x{spec.nx}_{spec.nf}_{spec.fy}x{spec.fx}_s{spec.sy}{spec.sx}"
    name = _kernel_name(base, pipeline)
    lines = [
        f"def {name}(out_error, inputs, dw):",
        f'    """Generated dW kernel for {spec.describe()}."""',
        f"    assert out_error.shape == {spec.output_shape!r}, out_error.shape",
        f"    assert dw.shape == {spec.weight_shape!r}, dw.shape",
    ]
    for a in _enumerate(_stage_axes(nest.stages[0])):
        ky, kx = a["ky"], a["kx"]
        ys = _slice_expr(ky, spec.out_ny, spec.sy)
        xs = _slice_expr(kx, spec.out_nx, spec.sx)
        lines.append(
            f"    dw[:, :, {ky}, {kx}] += np.tensordot("
            f"out_error, inputs[:, {ys}, {xs}], axes=([1, 2], [1, 2]))"
        )
    lines.append("    return dw")
    return _compile(name, "\n".join(lines) + "\n")


@functools.lru_cache(maxsize=256)
def emit_fused_forward_kernel(
    spec: ConvSpec,
    pool_kernel: int,
    pool_stride: int | None = None,
    pipeline: SchedulePipeline | None = None,
) -> GeneratedKernel:
    """Generate the fused conv+ReLU+max-pool kernel (one pass, no
    materialized activation or pre-pool intermediate).

    Signature: ``kernel(inputs, weights, bias, out, argmax) -> out`` with
    ``bias [Nf]`` added after the conv taps and before the ReLU (the same
    operation order as the unfused chain, which is what keeps the fusion
    bit-exact when the layer carries a trained bias),
    ``out [Nf, pool_Ny, pool_Nx]`` (pooled activations, zeroed or not --
    every element is written) and ``argmax [Nf, pool_Ny, pool_Nx]`` int64
    flat window indices (the only cache the fused backward needs: the
    ReLU mask at the argmax equals ``out > 0``).

    The emission processes one pool-row block at a time: the conv taps
    accumulate into a block-scoped scratch ``act`` covering exactly the
    producer rows the block's pool windows read, ReLU is applied in
    cache, and the pool reduces via the same strided window view /
    ``argmax`` / ``take_along_axis`` sequence as the unfused
    ``MaxPoolLayer`` -- which is what makes the fusion bit-exact against
    the layer chain.
    """
    if spec.pad != 0:
        raise CodegenError("emit_fused_forward_kernel requires a pre-padded spec")
    stride = pool_stride or pool_kernel
    pipeline = pipeline or default_pipeline(
        "fused_fp", pool_kernel=pool_kernel, pool_stride=stride
    )
    if pipeline.family != "fused_fp":
        raise CodegenError(
            f"emit_fused_forward_kernel got a {pipeline.family!r} pipeline"
        )
    if (pipeline.pool_kernel, pipeline.pool_stride) != (pool_kernel, stride):
        raise CodegenError(
            f"pipeline pool geometry ({pipeline.pool_kernel}, "
            f"{pipeline.pool_stride}) does not match requested "
            f"({pool_kernel}, {stride})"
        )
    nest = pipeline.build_nest(spec)
    _require_vectorized(nest, "emit_fused_forward_kernel")
    pool = nest.pool
    assert pool is not None
    nf = spec.nf
    onx = spec.out_nx
    py = pool.out_extent(spec.out_ny)
    px = pool.out_extent(spec.out_nx)
    pk, ps = pool.kernel, pool.stride
    block = nest.stage("maxpool").loop("py").tile or 1
    base = (
        f"fused_fp_{spec.nc}x{spec.ny}x{spec.nx}_{spec.nf}"
        f"_{spec.fy}x{spec.fx}_s{spec.sy}{spec.sx}_p{pk}x{pk}s{ps}"
    )
    name = _kernel_name(base, pipeline)
    lines = [
        f"def {name}(inputs, weights, bias, out, argmax):",
        f'    """Generated fused conv+ReLU+maxpool kernel for {spec.describe()}'
        f' | pool {pk}x{pk} stride {ps}."""',
        f"    assert inputs.shape == {spec.input_shape!r}, inputs.shape",
        f"    assert out.shape == {(nf, py, px)!r}, out.shape",
        f"    assert argmax.shape == {(nf, py, px)!r}, argmax.shape",
    ]
    for p0 in range(0, py, block):
        p1 = min(p0 + block, py)
        bpy = p1 - p0
        rows = (bpy - 1) * ps + pk       # producer rows this block needs
        r0 = p0 * ps                     # first conv output row
        lines.append(f"    act = np.zeros(({nf}, {rows}, {onx}), dtype=out.dtype)")
        for a in _enumerate(_stage_axes(nest.stage("conv"))):
            ky, kx = a["ky"], a["kx"]
            ys = _slice_expr(ky + r0 * spec.sy, rows, spec.sy)
            xs = _slice_expr(kx, onx, spec.sx)
            lines.append(
                f"    act += np.tensordot(weights[:, :, {ky}, {kx}], "
                f"inputs[:, {ys}, {xs}], axes=([1], [0]))"
            )
        lines.extend(
            [
                "    act += bias[:, None, None]",
                "    act = np.where(act > 0, act, 0).astype(out.dtype, copy=False)",
                f"    win = np.lib.stride_tricks.as_strided(act, "
                f"shape=({nf}, {bpy}, {px}, {pk}, {pk}), "
                f"strides=(act.strides[0], act.strides[1] * {ps}, "
                f"act.strides[2] * {ps}, act.strides[1], act.strides[2]))",
                f"    flat = win.reshape({nf}, {bpy}, {px}, {pk * pk})",
                "    idx = flat.argmax(axis=3)",
                f"    out[:, {p0}:{p1}, :] = np.take_along_axis("
                f"flat, idx[:, :, :, None], axis=3)[:, :, :, 0]",
                f"    argmax[:, {p0}:{p1}, :] = idx",
            ]
        )
    lines.append("    return out")
    return _compile(name, "\n".join(lines) + "\n")
