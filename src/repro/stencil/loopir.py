"""Loop-level IR for the stencil code generators (the schedulable layer).

The original generators each baked *one* schedule into their emitter:
``emit.py`` always produced the taps-outer, fully-vectorized-plane
emission and ``schedule.py`` chose one cache tiling.  This module keeps
the *algorithm* -- what is computed -- as a small loop-level IR, so that
*schedules* -- in what order, at what tile granularity, with what fusion
-- become composable, individually verified transformation passes
(:mod:`repro.stencil.passes`), in the style of Exo/SYS_ATL.

Vocabulary
----------

* :class:`Dim` -- one iteration axis with an explicit extent and a
  *kind* that encodes what reordering the axis tolerates:

  - ``PARALLEL``: distinct iterations write disjoint output elements;
    tiling and reordering are always bit-exact.
  - ``REDUCE_ORDERED``: iterations accumulate into the same output
    elements in program order (the unrolled kernel taps).  Their
    *relative* order is observable in float arithmetic, so passes must
    preserve it.
  - ``REDUCE_ATOMIC``: the reduction happens inside one vectorized
    primitive (the channel contraction inside ``np.tensordot``).  It
    cannot be split or reordered at all -- splitting it changes the
    accumulation order inside the BLAS kernel.

* :class:`Affine` / :class:`Access` -- affine access maps from loop
  variables to buffer coordinates (``inputs[c, oy*sy + ky, ox*sx + kx]``).

* :class:`Buffer` -- a named tensor with a role and a *scope*: ``GLOBAL``
  buffers are kernel parameters; ``TILE`` buffers are intermediates the
  fusion pass demoted to tile-sized scratch that never reaches memory.

* :class:`Stage` -- one perfect nest (ordered :class:`LoopInfo` list plus
  a :class:`Statement`).  A :class:`LoopNest` is an ordered sequence of
  stages; the conv+ReLU+pool fusion produces a multi-stage nest whose
  intermediate buffers are tile-scoped.

* :class:`WorkEstimate` -- the flop / private-traffic / shared-traffic
  account of a scheduled nest.  Every pass reports its delta, and the
  multi-level roofline (:mod:`repro.machine.roofline`) prices the
  estimate, which is how the autotuner compares schedules without
  running them.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace

from repro.core.convspec import ELEMENT_BYTES, ConvSpec
from repro.errors import CodegenError

# -- dimension kinds -------------------------------------------------------

PARALLEL = "parallel"
REDUCE_ORDERED = "reduce-ordered"
REDUCE_ATOMIC = "reduce-atomic"

#: Loop execution modes assigned by schedule passes.
MODE_SERIAL = "serial"          # enumerated one iteration at a time
MODE_UNROLLED = "unrolled"      # fully unrolled into literal statements
MODE_VECTORIZED = "vectorized"  # absorbed into one vector primitive

GLOBAL = "global"
TILE = "tile"


@dataclass(frozen=True)
class Dim:
    """One iteration axis of the algorithm."""

    name: str
    extent: int
    kind: str = PARALLEL

    def __post_init__(self) -> None:
        if self.extent <= 0:
            raise CodegenError(f"dim {self.name!r} needs positive extent, "
                               f"got {self.extent}")
        if self.kind not in (PARALLEL, REDUCE_ORDERED, REDUCE_ATOMIC):
            raise CodegenError(f"unknown dim kind {self.kind!r}")


@dataclass(frozen=True)
class Affine:
    """``sum(coeff * var) + offset`` over loop variables."""

    terms: tuple[tuple[str, int], ...] = ()
    offset: int = 0

    @staticmethod
    def var(name: str, coeff: int = 1, offset: int = 0) -> "Affine":
        return Affine(terms=((name, coeff),), offset=offset)

    @staticmethod
    def const(value: int) -> "Affine":
        return Affine(terms=(), offset=value)

    def variables(self) -> tuple[str, ...]:
        return tuple(v for v, _ in self.terms)

    def describe(self) -> str:
        parts = [f"{c}*{v}" if c != 1 else v for v, c in self.terms]
        if self.offset or not parts:
            parts.append(str(self.offset))
        return "+".join(parts)


@dataclass(frozen=True)
class Access:
    """One read or write of a buffer through an affine index map."""

    buffer: str
    index: tuple[Affine, ...]

    def variables(self) -> set[str]:
        out: set[str] = set()
        for expr in self.index:
            out.update(expr.variables())
        return out


@dataclass(frozen=True)
class Buffer:
    """A named tensor, its shape, role and scope."""

    name: str
    shape: tuple[int, ...]
    role: str  # "input" | "weight" | "output" | "intermediate" | "index"
    scope: str = GLOBAL

    @property
    def elems(self) -> int:
        total = 1
        for extent in self.shape:
            total *= extent
        return total


@dataclass(frozen=True)
class Statement:
    """One compute statement: ``out[...] (+)= op(reads...)``."""

    name: str        # "conv" | "relu" | "maxpool"
    op: str          # "fma" | "relu" | "maxpool"
    out: Access
    reads: tuple[Access, ...]
    accumulate: bool = False


@dataclass(frozen=True)
class LoopInfo:
    """One loop of a stage's nest, with its schedule annotations."""

    dim: Dim
    mode: str = MODE_SERIAL
    #: Tile width assigned by the ``tile`` pass (None = untiled).
    tile: int | None = None
    #: Unroll-and-jam factor assigned by ``unroll_and_jam`` (1 = off).
    jam: int = 1

    def __post_init__(self) -> None:
        if self.tile is not None and self.tile <= 0:
            raise CodegenError(f"loop {self.dim.name}: tile must be positive")
        if self.jam <= 0:
            raise CodegenError(f"loop {self.dim.name}: jam must be positive")


@dataclass(frozen=True)
class Stage:
    """One perfect nest: ordered loops around a single statement."""

    name: str
    loops: tuple[LoopInfo, ...]
    stmt: Statement

    def loop(self, dim_name: str) -> LoopInfo:
        for info in self.loops:
            if info.dim.name == dim_name:
                return info
        raise CodegenError(f"stage {self.name!r} has no loop {dim_name!r}")

    def has_loop(self, dim_name: str) -> bool:
        return any(info.dim.name == dim_name for info in self.loops)


@dataclass(frozen=True)
class PoolWindow:
    """Pool geometry carried by fused nests (kernel and stride)."""

    kernel: int
    stride: int

    def __post_init__(self) -> None:
        if self.kernel <= 0 or self.stride <= 0:
            raise CodegenError("pool kernel and stride must be positive")

    def out_extent(self, extent: int) -> int:
        if extent < self.kernel:
            raise CodegenError(
                f"pool kernel {self.kernel} larger than input extent {extent}"
            )
        return (extent - self.kernel) // self.stride + 1

    def rows_needed(self, pool_rows: int) -> int:
        """Producer rows required to compute ``pool_rows`` output rows."""
        return (pool_rows - 1) * self.stride + self.kernel


@dataclass(frozen=True)
class LoopNest:
    """A scheduled program: ordered stages over declared buffers."""

    spec: ConvSpec
    buffers: tuple[Buffer, ...]
    stages: tuple[Stage, ...]
    #: Pool geometry when the nest is a fused conv+ReLU+pool program.
    pool: PoolWindow | None = None
    #: True once the ``vectorize`` pass ran (innermost dims lowered to
    #: the vector primitive / basic-block IR).
    vectorized: bool = False
    #: Register budget / vector width the ``vectorize`` pass lowered with.
    num_registers: int = 16
    vector_width: int = 8

    def buffer(self, name: str) -> Buffer:
        for buf in self.buffers:
            if buf.name == name:
                return buf
        raise CodegenError(f"nest has no buffer {name!r}")

    def stage(self, name: str) -> Stage:
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise CodegenError(f"nest has no stage {name!r}")

    @property
    def fused(self) -> bool:
        return len(self.stages) > 1

    def with_stage(self, stage: Stage) -> "LoopNest":
        stages = tuple(stage if s.name == stage.name else s
                       for s in self.stages)
        return replace(self, stages=stages)


# -- nest builders (the algorithms, schedule-free) -------------------------


def _conv_dims(spec: ConvSpec) -> dict[str, Dim]:
    return {
        "f": Dim("f", spec.nf, PARALLEL),
        "c": Dim("c", spec.nc, REDUCE_ATOMIC),
        "ky": Dim("ky", spec.fy, REDUCE_ORDERED),
        "kx": Dim("kx", spec.fx, REDUCE_ORDERED),
        "oy": Dim("oy", spec.out_ny, PARALLEL),
        "ox": Dim("ox", spec.out_nx, PARALLEL),
    }


def _conv_stmt(spec: ConvSpec, out_buffer: str = "out") -> Statement:
    return Statement(
        name="conv",
        op="fma",
        out=Access(out_buffer, (Affine.var("f"), Affine.var("oy"),
                                Affine.var("ox"))),
        reads=(
            Access("weights", (Affine.var("f"), Affine.var("c"),
                               Affine.var("ky"), Affine.var("kx"))),
            Access("inputs", (Affine.var("c"),
                              Affine.var("oy", spec.sy, 0)
                              if spec.fy == 1 else
                              Affine(terms=(("oy", spec.sy), ("ky", 1))),
                              Affine.var("ox", spec.sx, 0)
                              if spec.fx == 1 else
                              Affine(terms=(("ox", spec.sx), ("kx", 1))))),
        ),
        accumulate=True,
    )


def conv_fp_nest(spec: ConvSpec) -> LoopNest:
    """The forward convolution (Eq. 2) as an unscheduled nest."""
    if spec.pad != 0:
        raise CodegenError("loop nests are built from pre-padded specs")
    dims = _conv_dims(spec)
    loops = tuple(LoopInfo(dims[n], MODE_SERIAL)
                  for n in ("ky", "kx", "f", "c", "oy", "ox"))
    buffers = (
        Buffer("inputs", spec.input_shape, "input"),
        Buffer("weights", spec.weight_shape, "weight"),
        Buffer("out", spec.output_shape, "output"),
    )
    return LoopNest(spec=spec, buffers=buffers,
                    stages=(Stage("conv", loops, _conv_stmt(spec)),))


def conv_bp_data_nest(spec: ConvSpec) -> LoopNest:
    """The backward-data adjoint (Eq. 3): scatter per tap."""
    if spec.pad != 0:
        raise CodegenError("loop nests are built from pre-padded specs")
    dims = dict(_conv_dims(spec))
    # The contraction runs over output features; channels are parallel.
    dims["f"] = Dim("f", spec.nf, REDUCE_ATOMIC)
    dims["c"] = Dim("c", spec.nc, PARALLEL)
    stmt = Statement(
        name="bp_data",
        op="fma",
        out=Access("in_error", (
            Affine.var("c"),
            Affine(terms=(("oy", spec.sy), ("ky", 1))),
            Affine(terms=(("ox", spec.sx), ("kx", 1))),
        )),
        reads=(
            Access("weights", (Affine.var("f"), Affine.var("c"),
                               Affine.var("ky"), Affine.var("kx"))),
            Access("out_error", (Affine.var("f"), Affine.var("oy"),
                                 Affine.var("ox"))),
        ),
        accumulate=True,
    )
    loops = tuple(LoopInfo(dims[n], MODE_SERIAL)
                  for n in ("ky", "kx", "c", "f", "oy", "ox"))
    buffers = (
        Buffer("out_error", spec.output_shape, "input"),
        Buffer("weights", spec.weight_shape, "weight"),
        Buffer("in_error", spec.input_shape, "output"),
    )
    return LoopNest(spec=spec, buffers=buffers,
                    stages=(Stage("bp_data", loops, stmt),))


def conv_bp_weights_nest(spec: ConvSpec) -> LoopNest:
    """The dW kernel (Eq. 4): each tap owns a disjoint dW slice, but the
    spatial plane is the reduction -- it cannot be tiled bit-exactly."""
    if spec.pad != 0:
        raise CodegenError("loop nests are built from pre-padded specs")
    stmt = Statement(
        name="bp_weights",
        op="fma",
        out=Access("dw", (Affine.var("f"), Affine.var("c"),
                          Affine.var("ky"), Affine.var("kx"))),
        reads=(
            Access("out_error", (Affine.var("f"), Affine.var("oy"),
                                 Affine.var("ox"))),
            Access("inputs", (
                Affine.var("c"),
                Affine(terms=(("oy", spec.sy), ("ky", 1))),
                Affine(terms=(("ox", spec.sx), ("kx", 1))),
            )),
        ),
        accumulate=True,
    )
    dims = {
        "f": Dim("f", spec.nf, PARALLEL),
        "c": Dim("c", spec.nc, PARALLEL),
        "ky": Dim("ky", spec.fy, PARALLEL),   # disjoint dW slices per tap
        "kx": Dim("kx", spec.fx, PARALLEL),
        "oy": Dim("oy", spec.out_ny, REDUCE_ATOMIC),
        "ox": Dim("ox", spec.out_nx, REDUCE_ATOMIC),
    }
    loops = tuple(LoopInfo(dims[n], MODE_SERIAL)
                  for n in ("ky", "kx", "f", "c", "oy", "ox"))
    buffers = (
        Buffer("out_error", spec.output_shape, "input"),
        Buffer("inputs", spec.input_shape, "input"),
        Buffer("dw", spec.weight_shape, "output"),
    )
    return LoopNest(spec=spec, buffers=buffers,
                    stages=(Stage("bp_weights", loops, stmt),))


def fused_fp_nest(spec: ConvSpec, pool_kernel: int,
                  pool_stride: int | None = None) -> LoopNest:
    """Conv + ReLU + max-pool as one multi-stage program.

    Built *unfused*: the activation and its pooled indices are global
    buffers.  The :class:`~repro.stencil.passes.Fuse` pass demotes the
    activation to a tile-scoped scratch buffer, which is what removes it
    from the shared-traffic account.
    """
    pool = PoolWindow(pool_kernel, pool_stride or pool_kernel)
    conv = conv_fp_nest(spec)
    py = pool.out_extent(spec.out_ny)
    px = pool.out_extent(spec.out_nx)
    relu_stmt = Statement(
        name="relu",
        op="relu",
        out=Access("act", (Affine.var("f"), Affine.var("oy"),
                           Affine.var("ox"))),
        reads=(Access("act", (Affine.var("f"), Affine.var("oy"),
                              Affine.var("ox"))),),
    )
    pool_stmt = Statement(
        name="maxpool",
        op="maxpool",
        out=Access("out", (Affine.var("f"), Affine.var("py"),
                           Affine.var("px"))),
        reads=(Access("act", (
            Affine.var("f"),
            Affine(terms=(("py", pool.stride), ("wy", 1))),
            Affine(terms=(("px", pool.stride), ("wx", 1))),
        )),),
    )
    relu_loops = (
        LoopInfo(Dim("f", spec.nf, PARALLEL)),
        LoopInfo(Dim("oy", spec.out_ny, PARALLEL)),
        LoopInfo(Dim("ox", spec.out_nx, PARALLEL)),
    )
    pool_loops = (
        LoopInfo(Dim("f", spec.nf, PARALLEL)),
        LoopInfo(Dim("py", py, PARALLEL)),
        LoopInfo(Dim("px", px, PARALLEL)),
        LoopInfo(Dim("wy", pool.kernel, REDUCE_ORDERED)),
        LoopInfo(Dim("wx", pool.kernel, REDUCE_ORDERED)),
    )
    conv_stage = Stage("conv", conv.stages[0].loops, _conv_stmt(spec, "act"))
    buffers = (
        Buffer("inputs", spec.input_shape, "input"),
        Buffer("weights", spec.weight_shape, "weight"),
        Buffer("act", spec.output_shape, "intermediate"),
        Buffer("out", (spec.nf, py, px), "output"),
        Buffer("argmax", (spec.nf, py, px), "index"),
    )
    return LoopNest(
        spec=spec,
        buffers=buffers,
        stages=(conv_stage,
                Stage("relu", relu_loops, relu_stmt),
                Stage("maxpool", pool_loops, pool_stmt)),
        pool=pool,
    )


#: Builders by kernel family (the vocabulary the emitters understand).
NEST_BUILDERS = {
    "fp": conv_fp_nest,
    "bp_data": conv_bp_data_nest,
    "bp_weights": conv_bp_weights_nest,
}


# -- work estimates --------------------------------------------------------


@dataclass(frozen=True)
class WorkEstimate:
    """Per-image flop and traffic account of one scheduled nest.

    ``private_elems`` counts element transfers through per-core caches;
    ``shared_elems`` counts element transfers that reach shared memory
    (DRAM).  The multi-level roofline converts both to seconds.
    """

    flops: int
    private_elems: int
    shared_elems: int

    def __post_init__(self) -> None:
        if min(self.flops, self.private_elems, self.shared_elems) < 0:
            raise CodegenError(f"negative work estimate: {self}")

    @property
    def private_bytes(self) -> int:
        return self.private_elems * ELEMENT_BYTES

    @property
    def shared_bytes(self) -> int:
        return self.shared_elems * ELEMENT_BYTES

    def __sub__(self, other: "WorkEstimate") -> "WorkDelta":
        return WorkDelta(
            flops=self.flops - other.flops,
            private_elems=self.private_elems - other.private_elems,
            shared_elems=self.shared_elems - other.shared_elems,
        )

    def time(self, machine: "object", cores: int, batch: int = 1,
             efficiency: float = 1.0) -> float:
        """Roofline seconds for ``batch`` images on ``cores`` workers."""
        from repro.machine.roofline import Phase, phase_time

        phase = Phase(
            flops=float(batch * self.flops),
            private_bytes=float(batch * self.private_bytes),
            dram_bytes=float(batch * self.shared_bytes),
            efficiency=efficiency,
        )
        return phase_time(phase, machine, cores)  # type: ignore[arg-type]


@dataclass(frozen=True)
class WorkDelta:
    """The change in the work estimate one pass produced."""

    flops: int = 0
    private_elems: int = 0
    shared_elems: int = 0

    def describe(self) -> str:
        return (f"flops {self.flops:+d}, private {self.private_elems:+d} "
                f"elems, shared {self.shared_elems:+d} elems")


def _tile_extents(nest: LoopNest) -> tuple[int, int]:
    """Effective (tile_y, tile_x) of the first stage's output plane."""
    stage = nest.stages[0]
    spec = nest.spec
    tile_y, tile_x = spec.out_ny, spec.out_nx
    if nest.fused and nest.pool is not None:
        pool_stage = nest.stage("maxpool")
        if pool_stage.has_loop("py"):
            info = pool_stage.loop("py")
            if info.tile is not None:
                tile_y = min(nest.pool.rows_needed(info.tile), spec.out_ny)
        return tile_y, tile_x
    for name, full in (("oy", spec.out_ny), ("ox", spec.out_nx)):
        if stage.has_loop(name):
            info = stage.loop(name)
            if info.tile is not None:
                if name == "oy":
                    tile_y = min(info.tile, full)
                else:
                    tile_x = min(info.tile, full)
    return tile_y, tile_x


def tile_working_set_bytes(nest: LoopNest) -> int:
    """Bytes of input + output resident while computing one tile."""
    spec = nest.spec
    tile_y, tile_x = _tile_extents(nest)
    halo_y = (tile_y - 1) * spec.sy + spec.fy
    halo_x = (tile_x - 1) * spec.sx + spec.fx
    in_elems = spec.nc * halo_y * halo_x
    out_elems = spec.nf * tile_y * tile_x
    return ELEMENT_BYTES * (in_elems + out_elems)


def estimate_nest(nest: LoopNest,
                  cache_bytes: int = 256 * 1024) -> WorkEstimate:
    """Per-image work estimate of a scheduled nest.

    The account follows the original ``StencilSchedule`` model (inputs
    copied in and streamed, weights read once, outputs written once),
    extended with two schedule-sensitive effects:

    * a tile whose working set exceeds the private cache loses the halo
      reuse between kernel taps -- inputs are re-streamed per tap and the
      excess shows up as shared traffic;
    * fusion removes tile-scoped intermediates from the shared-traffic
      account entirely (they live and die in cache) at the price of the
      overlap rows recomputed between adjacent pool tiles.
    """
    spec = nest.spec
    taps = spec.fy * spec.fx
    fits = tile_working_set_bytes(nest) <= cache_bytes
    conv_flops = spec.flops

    if not nest.fused:
        stage = nest.stages[0]
        out_buf = nest.buffer(stage.stmt.out.buffer)
        in_bufs = [b for b in nest.buffers if b.role == "input"]
        weight_elems = sum(b.elems for b in nest.buffers if b.role == "weight")
        in_elems = sum(b.elems for b in in_bufs)
        out_elems = out_buf.elems
        if fits:
            private = 2 * in_elems + weight_elems + 2 * out_elems
            shared = in_elems + out_elems
        else:
            # Halo reuse lost: every tap re-streams its input slice.
            private = in_elems + taps * in_elems + weight_elems + 2 * out_elems
            shared = in_elems + out_elems + (taps - 1) * out_elems
        return WorkEstimate(flops=conv_flops, private_elems=private,
                            shared_elems=shared)

    # Fused conv+ReLU+pool.
    pool = nest.pool
    assert pool is not None
    act = nest.buffer("act")
    out = nest.buffer("out")
    in_elems = nest.buffer("inputs").elems
    weight_elems = nest.buffer("weights").elems
    py = out.shape[1]
    tile_y, _ = _tile_extents(nest)
    # Overlapping pool windows recompute boundary rows between tiles.
    overlap_rows = 0
    pool_stage = nest.stage("maxpool")
    tile_py = pool_stage.loop("py").tile if pool_stage.has_loop("py") else None
    if tile_py:
        num_tiles = -(-py // tile_py)
        overlap = max(pool.kernel - pool.stride, 0)
        overlap_rows = max(num_tiles - 1, 0) * overlap
    act_rows = act.shape[1] + overlap_rows
    act_elems = act.shape[0] * act_rows * act.shape[2]
    recompute_flops = (conv_flops // max(act.shape[1], 1)) * overlap_rows
    # ReLU compare + pool max comparisons count as flops.
    relu_flops = act_elems
    pool_flops = out.elems * pool.kernel * pool.kernel
    if act.scope == TILE:
        # Fused: the activation never reaches shared memory.  It is
        # written once and re-read once (window flattening) in cache.
        private = 2 * in_elems + weight_elems + 4 * act_elems + 2 * out.elems
        shared = in_elems + 2 * out.elems  # pooled values + indices
    else:
        # Unfused chain: conv writes act, relu reads + writes act, pool
        # reads act -- all full-size and all through shared memory.
        private = 2 * in_elems + weight_elems + 6 * act_elems + 2 * out.elems
        shared = in_elems + 4 * act_elems + 2 * out.elems
    if not fits:
        private += (taps - 1) * in_elems
        shared += (taps - 1) * act_elems
    return WorkEstimate(
        flops=conv_flops + recompute_flops + relu_flops + pool_flops,
        private_elems=private,
        shared_elems=shared,
    )


def chain_estimate(spec: ConvSpec, pool_kernel: int,
                   pool_stride: int | None = None,
                   cache_bytes: int = 256 * 1024) -> WorkEstimate:
    """Estimate of the *unfused* conv -> ReLU -> pool layer chain."""
    nest = fused_fp_nest(spec, pool_kernel, pool_stride)
    return estimate_nest(nest, cache_bytes=cache_bytes)


# -- fingerprinting --------------------------------------------------------


def stable_fingerprint(text: str, length: int = 12) -> str:
    """Deterministic short hex fingerprint of canonical text."""
    return hashlib.sha256(text.encode()).hexdigest()[:length]
