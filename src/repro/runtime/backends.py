"""Pluggable execution backends for the worker pool.

The paper's GEMM-in-Parallel schedule wants one *single-threaded* kernel
per core over different images (Sec. 4.1).  Threads deliver that only
for numpy-dominated kernels (the GIL is released inside ``dot``); the
pure-Python hot loops -- per-image unfold, generated stencil basic
blocks, CT-CSR construction, pointer-shifted sparse accumulation --
serialize on the GIL.  The **process** backend runs those kernels in
persistent spawned worker processes instead, so every core executes
Python bytecode concurrently, and moves the tensors through
:mod:`repro.runtime.shm` segments rather than pickles.

Three backends share one contract (:class:`ExecutionBackend`):

* ``serial``  -- tasks run inline on the caller's thread, in range
  order.  The determinism reference and the zero-overhead baseline.
* ``thread``  -- tasks run on the pool's dispatcher threads (the
  pre-existing behavior).
* ``process`` -- tasks are shipped to persistent worker processes;
  the dispatcher thread blocks on the round-trip.  Tasks and their
  arguments must pickle; array payloads should travel via shared
  memory (see :func:`run_engine_slice`), not through the pickle.

Spawn-safety: workers are started with the ``spawn`` context (no
inherited locks or collector state -- the fork-unsafety CHK-FORK lints
against cannot arise), and the parent's ``repro`` source root is pushed
onto the child's ``PYTHONPATH`` so the spawned interpreter can import
the task functions it receives by reference.

Fault injection and telemetry remain parent-side: the pool's
``pool.task`` / ``pool.result`` sites wrap the *dispatch* of a task, so
a chaos plan fires identically (and deterministically) under every
backend, and spans never need to cross a process boundary.
"""

from __future__ import annotations

import os
import pickle
import sys
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any, Callable

from repro import telemetry
from repro.errors import ReproError
from repro.runtime import shm

#: Names accepted by ``WorkerPool(backend=...)``.
BACKEND_NAMES = ("serial", "thread", "process")

#: Attached-segment LRU size in each worker process.  Segments are
#: reused across calls while their geometry is stable; a reallocated
#: role invalidates its stale mapping immediately (see
#: :func:`_cached_attach`), the LRU bound only caps segments whose
#: arenas went away entirely.
_ATTACH_CACHE_SIZE = 32


def validate_backend(name: str) -> str:
    if name not in BACKEND_NAMES:
        raise ReproError(
            f"unknown execution backend {name!r}; known: {BACKEND_NAMES}"
        )
    return name


class WorkerCrashedError(ReproError):
    """A persistent worker process died while jobs were outstanding."""


def _portable_error(exc: BaseException) -> BaseException:
    """An exception safe to send over the result queue."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return ReproError(f"{type(exc).__name__}: {exc}")


def _worker_main(requests: Any, results: Any) -> None:
    """Loop of one persistent worker process (spawn entry point)."""
    while True:
        item = requests.get()
        if item is None:
            return
        job_id, payload = item
        try:
            fn, args = pickle.loads(payload)
            result = fn(*args)
            body = pickle.dumps((job_id, "ok", result))
        except BaseException as exc:  # noqa: BLE001 - shipped to the parent
            body = pickle.dumps((job_id, "err", _portable_error(exc)))
        results.put(body)


class _Job:
    __slots__ = ("event", "result", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.result: Any = None
        self.error: BaseException | None = None


class _Worker:
    """Parent-side record of one spawned worker process."""

    __slots__ = ("process", "requests", "outstanding")

    def __init__(self, process: Any, requests: Any) -> None:
        self.process = process
        self.requests = requests
        self.outstanding: set[int] = set()


class ExecutionBackend:
    """How the pool turns a task into an executed result."""

    name = "abstract"

    def call(self, fn: Callable[..., Any], *args: Any) -> Any:
        """Run ``fn(*args)`` to completion on this backend."""
        raise NotImplementedError

    def start(self) -> None:
        """Acquire backend resources (idempotent)."""

    def shutdown(self) -> None:
        """Release backend resources (idempotent)."""


class SerialBackend(ExecutionBackend):
    """Inline execution on the calling thread."""

    name = "serial"

    def call(self, fn: Callable[..., Any], *args: Any) -> Any:
        return fn(*args)


class ThreadBackend(ExecutionBackend):
    """Execution on the pool's dispatcher thread (which called us)."""

    name = "thread"

    def call(self, fn: Callable[..., Any], *args: Any) -> Any:
        return fn(*args)


class ProcessBackend(ExecutionBackend):
    """Persistent spawned worker processes fed over queues.

    ``call`` is thread-safe: each dispatcher thread ships its job to the
    least-loaded live worker and blocks for the round-trip.  A worker
    that dies mid-job fails that worker's outstanding jobs with
    :class:`WorkerCrashedError` and is respawned, so the backend
    survives hard crashes without hanging the parent.
    """

    name = "process"

    def __init__(self, num_workers: int) -> None:
        if num_workers <= 0:
            raise ReproError(
                f"num_workers must be positive, got {num_workers}"
            )
        self.num_workers = num_workers
        self._ctx: Any = None
        self._results: Any = None
        self._old_path: str | None = None
        self._workers: list[_Worker] = []
        self._jobs: dict[int, _Job] = {}
        self._job_seq = 0
        self._lock = threading.Lock()
        # Serializes start()/shutdown(); separate from ``_lock`` so the
        # collector and reaper never block behind process spawning.
        self._lifecycle_lock = threading.Lock()
        self._collector: threading.Thread | None = None
        self._started = False
        self._closed = False

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        # Double-checked: call() is documented thread-safe and starts
        # the backend lazily, so two dispatcher threads can race here --
        # without the lock each would spawn a full worker set and the
        # second would reassign self._results, stranding jobs shipped to
        # workers bound to the replaced queue.
        if self._started:
            return
        with self._lifecycle_lock:
            if self._started:
                return
            import multiprocessing as mp

            self._ctx = mp.get_context("spawn")
            self._results = self._ctx.SimpleQueue()
            with self._spawn_env():
                for _ in range(self.num_workers):
                    self._workers.append(self._spawn_worker())
            self._collector = threading.Thread(
                target=self._collect, name="repro-shm-collector", daemon=True
            )
            self._collector.start()
            self._closed = False
            self._started = True

    def _spawn_env(self) -> Any:
        """Ensure spawned interpreters can import the repro package."""
        import repro

        src_root = str(Path(repro.__file__).resolve().parents[1])

        class _Env:
            def __enter__(_self) -> None:
                self._old_path = os.environ.get("PYTHONPATH")
                parts = [src_root]
                if self._old_path:
                    parts.append(self._old_path)
                os.environ["PYTHONPATH"] = os.pathsep.join(parts)

            def __exit__(_self, *exc_info: object) -> None:
                if self._old_path is None:
                    os.environ.pop("PYTHONPATH", None)
                else:
                    os.environ["PYTHONPATH"] = self._old_path

        return _Env()

    def _spawn_worker(self) -> _Worker:
        requests = self._ctx.SimpleQueue()
        process = self._ctx.Process(
            target=_worker_main, args=(requests, self._results), daemon=True
        )
        process.start()
        return _Worker(process, requests)

    def shutdown(self) -> None:
        with self._lifecycle_lock:
            self._shutdown_locked()

    def _shutdown_locked(self) -> None:
        if not self._started:
            return
        self._closed = True
        for worker in self._workers:
            try:
                worker.requests.put(None)
            except Exception:  # pragma: no cover - queue already broken
                pass
        for worker in self._workers:
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():  # pragma: no cover - hung worker
                worker.process.terminate()
                worker.process.join(timeout=1.0)
        # Unblock and retire the collector thread.
        self._results.put(pickle.dumps((None, "stop", None)))
        if self._collector is not None:
            self._collector.join(timeout=5.0)
        with self._lock:
            for job in self._jobs.values():
                job.error = ReproError("process backend shut down")
                job.event.set()
            self._jobs.clear()
        self._workers.clear()
        self._started = False

    def worker_pids(self) -> tuple[int, ...]:
        """PIDs of the live workers (tests assert persistence on these)."""
        return tuple(w.process.pid for w in self._workers
                     if w.process.is_alive())

    # -- dispatch ---------------------------------------------------------

    def _collect(self) -> None:
        while True:
            body = self._results.get()
            job_id, status, payload = pickle.loads(body)
            if status == "stop":
                return
            with self._lock:
                job = self._jobs.pop(job_id, None)
                for worker in self._workers:
                    worker.outstanding.discard(job_id)
            if job is None:
                continue  # job already failed (e.g. worker declared dead)
            if status == "ok":
                job.result = payload
            else:
                job.error = payload
            job.event.set()

    def _reap_dead_workers(self) -> None:
        """Fail jobs stranded on dead workers; respawn replacements."""
        with self._lock:
            dead = [w for w in self._workers if not w.process.is_alive()]
            if not dead:
                return
            for worker in dead:
                self._workers.remove(worker)
                for job_id in worker.outstanding:
                    job = self._jobs.pop(job_id, None)
                    if job is not None:
                        job.error = WorkerCrashedError(
                            f"worker process {worker.process.pid} died "
                            f"with the job outstanding"
                        )
                        job.event.set()
        telemetry.add("pool.worker_crashes", len(dead))
        if not self._closed:
            with self._spawn_env():
                with self._lock:
                    while len(self._workers) < self.num_workers:
                        self._workers.append(self._spawn_worker())

    def call(self, fn: Callable[..., Any], *args: Any) -> Any:
        if self._closed:
            raise ReproError("process backend is shut down")
        self.start()
        try:
            payload = pickle.dumps((fn, args))
        except Exception as exc:
            raise ReproError(
                f"task {getattr(fn, '__name__', fn)!r} cannot be shipped "
                f"to a worker process: {exc}; process-backend tasks and "
                f"their arguments must pickle (move array payloads into "
                f"shared memory)"
            ) from exc
        job = _Job()
        with self._lock:
            self._job_seq += 1
            job_id = self._job_seq
            worker = min(
                (w for w in self._workers if w.process.is_alive()),
                key=lambda w: len(w.outstanding),
                default=None,
            )
            if worker is None:
                raise WorkerCrashedError("no live worker processes")
            worker.outstanding.add(job_id)
            self._jobs[job_id] = job
        worker.requests.put((job_id, payload))
        telemetry.add("pool.shipped_jobs", 1)
        while not job.event.wait(timeout=0.2):
            self._reap_dead_workers()
        if job.error is not None:
            raise job.error
        return job.result


def make_backend(name: str, num_workers: int) -> ExecutionBackend:
    """Instantiate the backend registered under ``name``."""
    validate_backend(name)
    if name == "serial":
        return SerialBackend()
    if name == "thread":
        return ThreadBackend()
    return ProcessBackend(num_workers)


# -- worker-side engine execution over shared memory ------------------------
#
# Everything below runs inside the spawned workers.  State persists for
# the worker's lifetime: engines (with their generated kernels and
# scratch workspaces) are cached per construction key, and shared-memory
# attachments are cached per segment name, so steady-state calls do no
# codegen, no allocation and no cross-process copies.

_ENGINE_CACHE: dict = {}
_ATTACH_CACHE: "OrderedDict[str, shm.SharedArray]" = OrderedDict()


def _cached_engine(engine_name: str, spec: Any,
                   kwargs_items: tuple) -> Any:
    key = (engine_name, spec, kwargs_items)
    engine = _ENGINE_CACHE.get(key)
    if engine is None:
        # Engine classes register themselves on import; a spawned
        # interpreter starts with an empty registry.
        import repro.ops.gemm_conv  # noqa: F401
        import repro.ops.reference_engine  # noqa: F401
        import repro.sparse.engine  # noqa: F401
        import repro.stencil.engine  # noqa: F401
        from repro.ops.engine import make_engine

        engine = make_engine(engine_name, spec, **dict(kwargs_items))
        _ENGINE_CACHE[key] = engine
    return engine


def _cached_attach(descriptor: shm.ShmDescriptor) -> Any:
    # Arena segments are keyed by their arena-unique role: a descriptor
    # carrying a known role but a *new* segment name means the parent
    # reallocated that role (geometry change) and unlinked the old
    # segment -- close our mapping now instead of pinning the dead
    # segment's pages until the name ages out of the LRU.
    key = descriptor.role or descriptor.name
    seg = _ATTACH_CACHE.get(key)
    if seg is not None:
        if seg.name == descriptor.name:
            _ATTACH_CACHE.move_to_end(key)
            return seg.ndarray
        del _ATTACH_CACHE[key]
        seg.close()
    seg = shm.SharedArray.attach(descriptor)
    _ATTACH_CACHE[key] = seg
    while len(_ATTACH_CACHE) > _ATTACH_CACHE_SIZE:
        _, old = _ATTACH_CACHE.popitem(last=False)
        old.close()
    return seg.ndarray


def run_engine_slice(
    engine_name: str,
    spec: Any,
    kwargs_items: tuple,
    method: str,
    primary_desc: shm.ShmDescriptor,
    shared_desc: shm.ShmDescriptor,
    out_desc: shm.ShmDescriptor,
    lo: int,
    hi: int,
    slot: int | None,
) -> None:
    """Run one engine method over ``[lo, hi)`` directly in shared memory.

    ``forward`` / ``backward_data`` write their output slice into
    ``out[lo:hi]``; ``backward_weights`` (``slot`` set) slices *both*
    operands and writes its per-worker partial into ``out[slot]``.  The
    return value is None on purpose -- results live in the segments.
    """
    engine = _cached_engine(engine_name, spec, kwargs_items)
    primary = _cached_attach(primary_desc)
    shared = _cached_attach(shared_desc)
    out = _cached_attach(out_desc)
    if slot is not None:
        out[slot] = engine.backward_weights(primary[lo:hi], shared[lo:hi])
    else:
        out[lo:hi] = getattr(engine, method)(primary[lo:hi], shared)


def worker_diagnostics() -> dict[str, Any]:
    """Worker-side cache/identity info (shipped back for tests)."""
    return {
        "pid": os.getpid(),
        "engines_cached": len(_ENGINE_CACHE),
        "segments_attached": len(_ATTACH_CACHE),
        "executable": sys.executable,
    }
