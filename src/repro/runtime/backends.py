"""Pluggable execution backends for the worker pool.

The paper's GEMM-in-Parallel schedule wants one *single-threaded* kernel
per core over different images (Sec. 4.1).  Threads deliver that only
for numpy-dominated kernels (the GIL is released inside ``dot``); the
pure-Python hot loops -- per-image unfold, generated stencil basic
blocks, CT-CSR construction, pointer-shifted sparse accumulation --
serialize on the GIL.  The **process** backend runs those kernels in
persistent spawned worker processes instead, so every core executes
Python bytecode concurrently, and moves the tensors through
:mod:`repro.runtime.shm` segments rather than pickles.

Three backends share one contract (:class:`ExecutionBackend`):

* ``serial``  -- tasks run inline on the caller's thread, in range
  order.  The determinism reference and the zero-overhead baseline.
* ``thread``  -- tasks run on the pool's dispatcher threads (the
  pre-existing behavior).
* ``process`` -- tasks are shipped to persistent worker processes;
  the dispatcher thread blocks on the round-trip.  Tasks and their
  arguments must pickle; array payloads should travel via shared
  memory (see :func:`run_engine_slice`), not through the pickle.

Spawn-safety: workers are started with the ``spawn`` context (no
inherited locks or collector state -- the fork-unsafety CHK-FORK lints
against cannot arise), and the parent's ``repro`` source root is pushed
onto the child's ``PYTHONPATH`` so the spawned interpreter can import
the task functions it receives by reference.

Fault injection remains parent-side: the pool's ``pool.task`` /
``pool.result`` sites wrap the *dispatch* of a task, so a chaos plan
fires identically (and deterministically) under every backend.
Telemetry, by contrast, crosses the process boundary: each worker
writes execution spans and counters into its own lock-free
shared-memory ring (:mod:`repro.telemetry.remote`), and the parent
drains the rings -- after every awaited job and at shutdown -- merging
the records into the active collectors with each worker's monotonic
clock calibrated against the parent's timeline.  Every dispatched job
carries a ``job_id`` that both the parent's ``pool/dispatch`` span and
the worker's execution span record, which is what lets the Chrome
trace draw dispatch -> worker -> collection flow arrows.

Supervision: every worker stamps a shared heartbeat slot around each
task (see :mod:`repro.runtime.supervisor`), and a supervisor thread
sweeps the worker table -- dead *and* hung workers are escalated
``terminate`` -> ``kill``, respawned, and their in-flight jobs
re-dispatched to surviving workers (bounded by ``max_redispatch``;
engine-slice tasks are idempotent, they write disjoint shared-memory
ranges).  Backend start also runs the shm janitor, reclaiming segments
orphaned by a previous hard-killed process.
"""

from __future__ import annotations

import os
import pickle
import sys
import threading
import time
import traceback
from collections import OrderedDict
from pathlib import Path
from typing import Any, Callable

from repro import telemetry
from repro.errors import ReproError
from repro.runtime import shm
from repro.runtime.supervisor import (
    STATE_BUSY,
    STATE_IDLE,
    HeartbeatBoard,
    WorkerSupervisor,
)
from repro.telemetry import remote

#: Names accepted by ``WorkerPool(backend=...)``.
BACKEND_NAMES = ("serial", "thread", "process")

#: Functions in this module that execute inside worker processes.  The
#: CHK-TEL-WORKER lint reads this tuple: code listed here must never
#: call the parent-only ``telemetry.*`` helpers (a spawned worker's
#: collector stack is empty, so they silently record nothing) -- it
#: writes to the shm telemetry ring via :mod:`repro.telemetry.remote`.
__worker_side__: tuple[str, ...] = (
    "_worker_main", "run_engine_slice", "_cached_engine", "_cached_attach",
    "worker_diagnostics",
)

#: Attached-segment LRU size in each worker process.  Segments are
#: reused across calls while their geometry is stable; a reallocated
#: role invalidates its stale mapping immediately (see
#: :func:`_cached_attach`), the LRU bound only caps segments whose
#: arenas went away entirely.
_ATTACH_CACHE_SIZE = 32


def validate_backend(name: str) -> str:
    if name not in BACKEND_NAMES:
        raise ReproError(
            f"unknown execution backend {name!r}; known: {BACKEND_NAMES}"
        )
    return name


class WorkerCrashedError(ReproError):
    """A persistent worker process died while jobs were outstanding."""


def _portable_error(exc: BaseException) -> BaseException:
    """An exception safe to send over the result queue."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return ReproError(f"{type(exc).__name__}: {exc}")


def _worker_main(requests: Any, results: Any,
                 heartbeat: Any, slot: int,
                 ring_descriptor: Any = None) -> None:
    """Loop of one persistent worker process (spawn entry point).

    Stamps its heartbeat slot *busy* on task pickup and *idle* once the
    result is posted; an idle worker blocks in ``get()`` without
    stamping, so the supervisor only reads staleness against work the
    worker actually owes.

    ``ring_descriptor`` names the shared telemetry ring board; the
    worker adopts its slot's ring (stamping the clock-handshake hello)
    and tags every record with the job id currently being executed.
    Telemetry is strictly best-effort -- a failed ring install degrades
    to a blind worker, never a dead one.

    ``results`` is this worker's **private** pipe end.  A shared result
    queue would put a lock in shared memory between all workers -- a
    worker SIGKILL'd mid-``put`` would die holding it and every sibling
    (and the parent's shutdown sentinel) would block on that dead lock
    forever.  One pipe per worker means a hard kill can only ever poison
    the dead worker's own channel, which the parent detects as EOF.
    """
    from repro.runtime.supervisor import HeartbeatBoard

    # Drop this process's inherited copy of the request queue's write
    # end, mirroring the parent dropping its copy of the result send
    # end.  The parent is then the pipe's only writer, so a dead parent
    # (even SIGKILL'd) closes it and get() raises EOFError; with the
    # copy still open the worker keeps its own pipe alive and blocks in
    # get() forever as an orphan.
    try:
        requests._writer.close()
    except (AttributeError, OSError):  # pragma: no cover - impl drift
        pass
    if ring_descriptor is not None:
        try:
            remote.install_worker_ring(ring_descriptor, slot)
        except Exception:  # noqa: BLE001 - telemetry never kills a worker
            pass
    HeartbeatBoard.stamp(heartbeat, slot, STATE_IDLE)
    while True:
        try:
            item = requests.get()
        except (EOFError, OSError):
            # Parent died and took its end of the pipe with it; exit so
            # a hard-killed parent does not strand orphan workers.
            return
        if item is None:
            return
        job_id, payload = item
        HeartbeatBoard.stamp(heartbeat, slot, STATE_BUSY)
        remote.set_current_job(job_id)
        try:
            fn, args = pickle.loads(payload)
            result = fn(*args)
            body = pickle.dumps((job_id, "ok", result))
        except BaseException as exc:  # noqa: BLE001 - shipped to the parent
            body = pickle.dumps((job_id, "err", _portable_error(exc)))
        remote.set_current_job(0)
        try:
            results.send_bytes(body)
        except (BrokenPipeError, OSError):  # pragma: no cover - parent died
            return
        HeartbeatBoard.stamp(heartbeat, slot, STATE_IDLE)


class _Job:
    __slots__ = ("event", "result", "error", "payload", "dispatched",
                 "redispatches", "job_id")

    def __init__(self, payload: bytes = b"", job_id: int = 0) -> None:
        self.event = threading.Event()
        self.result: Any = None
        self.error: BaseException | None = None
        #: The pickled (fn, args) body, kept so a job stranded on a dead
        #: worker can be re-dispatched to a survivor.
        self.payload = payload
        #: ``time.monotonic()`` of the most recent dispatch.
        self.dispatched = 0.0
        #: How many times this job has been re-dispatched after a crash.
        self.redispatches = 0
        #: Backend-unique id; the causal key tying the parent's
        #: ``pool/dispatch`` span to the worker's execution span.
        #: Stable across re-dispatches (the retried work is the same job).
        self.job_id = job_id


class _Worker:
    """Parent-side record of one spawned worker process."""

    __slots__ = ("process", "requests", "results", "outstanding", "slot",
                 "escalating")

    def __init__(self, process: Any, requests: Any, results: Any,
                 slot: int) -> None:
        self.process = process
        self.requests = requests
        #: Parent's receive end of this worker's private result pipe.
        self.results = results
        self.outstanding: set[int] = set()
        #: Fixed heartbeat-slot index; respawns reuse freed slots.
        self.slot = slot
        #: Set (under the backend lock) by the first sweep that decides
        #: to kill this worker, so concurrent sweeps never double-signal.
        self.escalating = False


class ExecutionBackend:
    """How the pool turns a task into an executed result."""

    name = "abstract"

    def call(self, fn: Callable[..., Any], *args: Any) -> Any:
        """Run ``fn(*args)`` to completion on this backend."""
        raise NotImplementedError

    def start(self) -> None:
        """Acquire backend resources (idempotent)."""

    def shutdown(self) -> None:
        """Release backend resources (idempotent)."""


class SerialBackend(ExecutionBackend):
    """Inline execution on the calling thread."""

    name = "serial"

    def call(self, fn: Callable[..., Any], *args: Any) -> Any:
        return fn(*args)


class ThreadBackend(ExecutionBackend):
    """Execution on the pool's dispatcher thread (which called us)."""

    name = "thread"

    def call(self, fn: Callable[..., Any], *args: Any) -> Any:
        return fn(*args)


class ProcessBackend(ExecutionBackend):
    """Persistent spawned worker processes fed over queues.

    ``call`` is thread-safe: each dispatcher thread ships its job to the
    least-loaded live worker and blocks for the round-trip.  A worker
    that dies mid-job fails that worker's outstanding jobs with
    :class:`WorkerCrashedError` and is respawned, so the backend
    survives hard crashes without hanging the parent.
    """

    name = "process"

    #: How long ``shutdown`` waits for a worker to drain its sentinel.
    shutdown_join = 5.0
    #: Bounded join after SIGTERM and again after SIGKILL when a worker
    #: has to be escalated (hung at shutdown, or flagged by the sweep).
    escalate_grace = 2.0

    def __init__(self, num_workers: int,
                 task_deadline: float | None = None,
                 max_redispatch: int = 2) -> None:
        if num_workers <= 0:
            raise ReproError(
                f"num_workers must be positive, got {num_workers}"
            )
        self.num_workers = num_workers
        #: Hang deadline in seconds: a worker whose oldest obligation is
        #: older than this is escalated.  ``None`` disables hang
        #: detection (dead-worker reaping still runs).
        self.task_deadline = task_deadline
        self._deadline_pinned = task_deadline is not None
        #: Per-job budget of crash re-dispatches before the job fails
        #: with :class:`WorkerCrashedError`.
        self.max_redispatch = max_redispatch
        #: Supervision counters (exposed via :meth:`supervisor_state`).
        self.respawns = 0
        self.redispatches = 0
        self.hung_workers = 0
        self._ctx: Any = None
        #: Receive ends the collector multiplexes over (one per worker,
        #: plus the private shutdown pipe).  Guarded by ``_lock``.
        self._result_conns: set[Any] = set()
        self._stop_reader: Any = None
        self._stop_writer: Any = None
        self._old_path: str | None = None
        self._workers: list[_Worker] = []
        self._free_slots: list[int] = []
        self._heartbeat: HeartbeatBoard | None = None
        self._supervisor: WorkerSupervisor | None = None
        self._jobs: dict[int, _Job] = {}
        self._job_seq = 0
        #: Worker telemetry: the shm ring board, per-(slot, pid) clock
        #: calibrations, the parent clock constant, and the last enabled
        #: state pushed to the rings (so the flag is only rewritten on
        #: collector activation changes, not per dispatch).
        self._ring_board: Any = None
        self._calibrations: dict[tuple[int, int], Any] = {}
        self._perf_minus_mono = 0.0
        self._rings_enabled: bool | None = None
        self._drain_lock = threading.Lock()
        self._lock = threading.Lock()
        # Serializes start()/shutdown(); separate from ``_lock`` so the
        # collector and reaper never block behind process spawning.
        self._lifecycle_lock = threading.Lock()
        # Serializes respawn batches (PYTHONPATH is process-global
        # state; two concurrent _spawn_env blocks would corrupt it).
        self._respawn_lock = threading.Lock()
        self._collector: threading.Thread | None = None
        self._collector_error: str | None = None
        self._started = False
        self._closed = False

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        # Double-checked: call() is documented thread-safe and starts
        # the backend lazily, so two dispatcher threads can race here --
        # without the lock each would spawn a full worker set and the
        # second would reassign the pipe set, stranding jobs shipped to
        # workers bound to the replaced channels.
        if self._started:
            return
        with self._lifecycle_lock:
            if self._started:
                return
            import multiprocessing as mp

            # Janitor first: reclaim segments a previous hard-killed
            # process left in /dev/shm before allocating new ones.
            shm.reap_orphans()
            self._ctx = mp.get_context("spawn")
            self._stop_reader, self._stop_writer = self._ctx.Pipe(
                duplex=False
            )
            self._heartbeat = HeartbeatBoard(self.num_workers, self._ctx)
            self._ring_board = remote.RingBoard.create(self.num_workers)
            self._perf_minus_mono = remote.parent_perf_minus_mono()
            self._calibrations = {}
            self._rings_enabled = None
            self._free_slots = list(range(self.num_workers - 1, -1, -1))
            with self._spawn_env():
                for _ in range(self.num_workers):
                    self._workers.append(
                        self._spawn_worker(self._free_slots.pop())
                    )
            self._collector_error = None
            self._collector = threading.Thread(
                target=self._collect, name="repro-shm-collector", daemon=True
            )
            self._collector.start()
            self._closed = False
            self._started = True
            self._supervisor = WorkerSupervisor(self)
            self._supervisor.start()

    def _spawn_env(self) -> Any:
        """Ensure spawned interpreters can import the repro package."""
        import repro

        src_root = str(Path(repro.__file__).resolve().parents[1])

        class _Env:
            def __enter__(_self) -> None:
                self._old_path = os.environ.get("PYTHONPATH")
                parts = [src_root]
                if self._old_path:
                    parts.append(self._old_path)
                os.environ["PYTHONPATH"] = os.pathsep.join(parts)

            def __exit__(_self, *exc_info: object) -> None:
                if self._old_path is None:
                    os.environ.pop("PYTHONPATH", None)
                else:
                    os.environ["PYTHONPATH"] = self._old_path

        return _Env()

    def _spawn_worker(self, slot: int) -> _Worker:
        assert self._heartbeat is not None
        requests = self._ctx.SimpleQueue()
        recv_end, send_end = self._ctx.Pipe(duplex=False)
        ring_descriptor = None
        if self._ring_board is not None:
            # A respawn reuses the dead predecessor's slot: flush its
            # undrained records first (they calibrate against the *old*
            # pid's handshake), then restamp the handshake for the new
            # occupant.
            self._drain_slot(slot)
            ring = self._ring_board.ring(slot)
            ring.stamp_hello_parent()
            ring.set_enabled(bool(telemetry.active_collectors()))
            ring_descriptor = self._ring_board.descriptor
        process = self._ctx.Process(
            target=_worker_main,
            args=(requests, send_end, self._heartbeat.shared, slot,
                  ring_descriptor),
            daemon=True,
        )
        process.start()
        # Drop the parent's copy of the send end: the pipe must hit EOF
        # (worker death detection) as soon as the worker's copy closes.
        send_end.close()
        self._result_conns.add(recv_end)
        return _Worker(process, requests, recv_end, slot)

    def shutdown(self) -> None:
        with self._lifecycle_lock:
            self._shutdown_locked()

    def _shutdown_locked(self) -> None:
        if not self._started:
            return
        self._closed = True
        # Supervisor first: it must not escalate or respawn workers
        # while the table is being torn down underneath it.
        if self._supervisor is not None:
            self._supervisor.stop()
            self._supervisor = None
        for worker in self._workers:
            try:
                worker.requests.put(None)
            except Exception:  # pragma: no cover - queue already broken
                pass
        for worker in self._workers:
            worker.process.join(timeout=self.shutdown_join)
            if worker.process.is_alive():
                # Hung (or SIGSTOP'd) worker: the sentinel will never be
                # read.  SIGTERM is not delivered to a stopped process;
                # SIGKILL always is, so escalate with bounded joins.
                worker.process.terminate()
                worker.process.join(timeout=self.escalate_grace)
                if worker.process.is_alive():
                    worker.process.kill()
                    worker.process.join(timeout=self.escalate_grace)
        # Unblock and retire the collector thread.  The stop pipe has
        # the parent as its only writer, so this send can never block on
        # a lock a dead worker took with it (the failure mode a shared
        # result queue had).
        try:
            self._stop_writer.send_bytes(b"stop")
        except (BrokenPipeError, OSError):  # pragma: no cover - torn pipe
            pass
        if self._collector is not None:
            self._collector.join(timeout=5.0)
        # Last telemetry drain -- workers are down, so their final spans
        # are published -- then retire the ring segment.
        self.drain_worker_telemetry()
        if self._ring_board is not None:
            try:
                self._ring_board.unlink()
            except Exception:  # pragma: no cover - already reaped
                pass
            self._ring_board = None
        self._calibrations = {}
        self._rings_enabled = None
        with self._lock:
            for job in self._jobs.values():
                job.error = ReproError("process backend shut down")
                job.event.set()
            self._jobs.clear()
            for conn in self._result_conns:
                try:
                    conn.close()
                except OSError:  # pragma: no cover - collector closed it
                    pass
            self._result_conns.clear()
        for conn in (self._stop_reader, self._stop_writer):
            if conn is not None:
                try:
                    conn.close()
                except OSError:
                    # Already closed -- e.g. by the fault that killed the
                    # collector; Connection.close() is not idempotent.
                    pass
        self._stop_reader = self._stop_writer = None
        self._workers.clear()
        self._free_slots = []
        self._started = False

    def worker_pids(self) -> tuple[int, ...]:
        """PIDs of the live workers (tests assert persistence on these)."""
        return tuple(w.process.pid for w in self._workers
                     if w.process.is_alive())

    # -- worker telemetry -------------------------------------------------

    def _refresh_ring_enabled(self) -> None:
        """Push the collector-active state to the rings when it changes."""
        board = self._ring_board
        if board is None:
            return
        enabled = bool(telemetry.active_collectors())
        if enabled != self._rings_enabled:
            self._rings_enabled = enabled
            board.set_enabled(enabled)

    def _calibration_for(self, slot: int, ring: Any) -> Any:
        """This slot occupant's clock calibration (cached per pid)."""
        pid = ring.pid
        key = (slot, pid)
        calibration = self._calibrations.get(key)
        if calibration is None:
            calibration = remote.calibrate(
                parent_send=ring.hello_parent,
                worker_hello=ring.hello_worker,
                parent_recv=time.monotonic(),
                perf_minus_mono=self._perf_minus_mono,
            )
            self._calibrations[key] = calibration
        return calibration

    def _drain_slot(self, slot: int) -> None:
        """Drain one worker ring into the active collectors."""
        board = self._ring_board
        if board is None:
            return
        with self._drain_lock:
            ring = board.ring(slot)
            if ring.pending == 0:
                return
            # Consume unconditionally: records belong to whoever is
            # listening *now*; without a collector they are discarded
            # rather than held to pollute a future collector's run.
            records = ring.drain()
            collectors = telemetry.active_collectors()
            if not records or not collectors:
                return
            calibration = self._calibration_for(slot, ring)
            remote.merge_records(records, calibration, collectors,
                                 pid=ring.pid)

    def drain_worker_telemetry(self) -> None:
        """Merge every worker's ring records into the active collectors.

        Runs after every awaited job and at shutdown; safe from any
        thread (drains are serialized by a parent-side lock -- the rings
        themselves are single-consumer).
        """
        board = self._ring_board
        if board is None:
            return
        for slot in range(self.num_workers):
            self._drain_slot(slot)

    def _note_inflight(self, slot: int, count: int) -> None:
        """Publish one worker's in-flight job-count gauge."""
        telemetry.gauge(f"pool.inflight.w{slot}", float(count))

    # -- dispatch ---------------------------------------------------------

    def _collect(self) -> None:
        from multiprocessing.connection import wait as connection_wait

        stop = self._stop_reader
        try:
            while True:
                with self._lock:
                    conns = list(self._result_conns)
                conns.append(stop)
                # Bounded wait so pipes of workers respawned since the
                # snapshot join the multiplex set on the next pass.
                for conn in connection_wait(conns, timeout=0.2):
                    if conn is stop:
                        return
                    try:
                        body = conn.recv_bytes()
                    except (EOFError, OSError):
                        # Worker died (possibly mid-send: a truncated
                        # message reads as EOF).  The sweep redispatches
                        # its jobs; here just retire the pipe.
                        with self._lock:
                            self._result_conns.discard(conn)
                        conn.close()
                        continue
                    job_id, status, payload = pickle.loads(body)
                    owner: tuple[int, int] | None = None
                    with self._lock:
                        job = self._jobs.pop(job_id, None)
                        for worker in self._workers:
                            if job_id in worker.outstanding:
                                worker.outstanding.discard(job_id)
                                owner = (worker.slot,
                                         len(worker.outstanding))
                    if owner is not None:
                        self._note_inflight(*owner)
                    if job is None:
                        continue  # already failed, or redispatch duplicate
                    if status == "ok":
                        job.result = payload
                    else:
                        job.error = payload
                    job.event.set()
        except BaseException:  # noqa: BLE001 - collector is load-bearing
            # The collector is the only path that completes jobs; if it
            # dies every pending and future wait would spin forever.
            # Record the traceback (call() re-raises it) and fail every
            # pending job now.
            tb = traceback.format_exc()
            self._collector_error = tb
            telemetry.event("pool.collector_died", traceback=tb)
            with self._lock:
                pending = list(self._jobs.values())
                self._jobs.clear()
                for worker in self._workers:
                    worker.outstanding.clear()
            for job in pending:
                job.error = WorkerCrashedError(
                    f"result collector thread died:\n{tb}"
                )
                job.event.set()

    def _check_collector(self) -> None:
        """Raise if the result-collector thread is no longer serving."""
        if self._closed:
            return
        collector = self._collector
        if self._collector_error is not None or (
            collector is not None and not collector.is_alive()
        ):
            raise WorkerCrashedError(
                "result collector thread died; jobs can never complete"
                + (f":\n{self._collector_error}"
                   if self._collector_error else "")
            )

    def sweep_workers(self) -> None:
        """One supervision pass: escalate hung workers, reap dead ones.

        Run on a cadence by the supervisor thread and opportunistically
        by dispatcher poll loops.  A worker counts as *hung* only while
        it owes results: its heartbeat is silent **and** its oldest
        outstanding dispatch is older than ``task_deadline``.
        """
        if not self._started or self._closed:
            return
        deadline = self.task_deadline
        hung: list[_Worker] = []
        if deadline is not None and self._heartbeat is not None:
            now = time.monotonic()
            with self._lock:
                for worker in self._workers:
                    if (worker.escalating or not worker.outstanding
                            or not worker.process.is_alive()):
                        continue
                    dispatches = [
                        self._jobs[j].dispatched
                        for j in worker.outstanding if j in self._jobs
                    ]
                    if not dispatches:
                        continue
                    _, _, stamp = self._heartbeat.read(worker.slot)
                    # Busy worker: stamp is the running task's pickup
                    # time.  Worker stopped while idle: the dispatch
                    # timestamp starts the clock instead.
                    if now - max(stamp, min(dispatches)) > deadline:
                        worker.escalating = True
                        hung.append(worker)
        for worker in hung:
            self._escalate(worker)
        self._reap_dead_workers()

    def _escalate(self, worker: _Worker) -> None:
        """terminate -> bounded join -> kill -> join; then it is dead."""
        pid = worker.process.pid
        self.hung_workers += 1
        telemetry.add("supervisor.hung_workers", 1)
        telemetry.event("supervisor.hung", pid=pid,
                        deadline=self.task_deadline)
        try:
            telemetry.event("supervisor.escalate", pid=pid,
                            slot=worker.slot, stage="sigterm")
            worker.process.terminate()
            worker.process.join(timeout=self.escalate_grace)
            if worker.process.is_alive():
                telemetry.event("supervisor.escalate", pid=pid,
                                slot=worker.slot, stage="sigkill")
                worker.process.kill()
                worker.process.join(timeout=self.escalate_grace)
        except Exception:  # pragma: no cover - process already reaped
            pass

    def _reap_dead_workers(self) -> None:
        """Handle dead workers: redispatch or fail their jobs; respawn."""
        redispatch: list[tuple[int, _Job]] = []
        failed: list[tuple[_Job, WorkerCrashedError]] = []
        with self._lock:
            dead = [w for w in self._workers if not w.process.is_alive()]
            if not dead:
                return
            for worker in dead:
                self._workers.remove(worker)
                self._free_slots.append(worker.slot)
                for job_id in sorted(worker.outstanding):
                    job = self._jobs.get(job_id)
                    if job is None:
                        continue
                    if (not self._closed
                            and job.redispatches < self.max_redispatch):
                        job.redispatches += 1
                        redispatch.append((job_id, job))
                    else:
                        del self._jobs[job_id]
                        failed.append((job, WorkerCrashedError(
                            f"worker process {worker.process.pid} died "
                            f"with the job outstanding"
                            + (" (redispatch budget spent)"
                               if job.redispatches else "")
                        )))
        telemetry.add("pool.worker_crashes", len(dead))
        for worker in dead:
            telemetry.event("supervisor.worker_dead",
                            pid=worker.process.pid, slot=worker.slot,
                            stranded=len(worker.outstanding))
            # The dead worker holds nothing any more; zero its gauge so
            # the in-flight tracks drain even across a crash.
            self._note_inflight(worker.slot, 0)
        respawned: list[tuple[int, int | None]] = []
        if not self._closed:
            with self._respawn_lock:
                with self._spawn_env():
                    with self._lock:
                        while (len(self._workers) < self.num_workers
                               and self._free_slots):
                            slot = self._free_slots.pop()
                            spawned = self._spawn_worker(slot)
                            self._workers.append(spawned)
                            self.respawns += 1
                            telemetry.add("supervisor.respawns", 1)
                            respawned.append((slot, spawned.process.pid))
        for slot, pid in respawned:
            telemetry.event("supervisor.respawn", slot=slot, pid=pid)
        # Fail jobs only after replacements exist: a waiter that wakes
        # on WorkerCrashedError may immediately re-dispatch.
        for job, error in failed:
            job.error = error
            job.event.set()
        if self._closed:
            return
        # Re-dispatch stranded jobs to the (possibly fresh) survivors.
        shipments: list[tuple[_Worker, int, bytes, int]] = []
        with self._lock:
            for job_id, job in redispatch:
                target = min(
                    (w for w in self._workers
                     if w.process.is_alive() and not w.escalating),
                    key=lambda w: len(w.outstanding),
                    default=None,
                )
                if target is None:
                    self._jobs.pop(job_id, None)
                    job.error = WorkerCrashedError(
                        "no live worker to re-dispatch a stranded job to"
                    )
                    job.event.set()
                    continue
                target.outstanding.add(job_id)
                job.dispatched = time.monotonic()
                shipments.append((target, job_id, job.payload,
                                  len(target.outstanding)))
        for target, job_id, payload, count in shipments:
            target.requests.put((job_id, payload))
            self.redispatches += 1
            telemetry.add("supervisor.redispatches", 1)
            telemetry.event("supervisor.redispatch", job=job_id,
                            slot=target.slot, pid=target.process.pid)
            self._note_inflight(target.slot, count)

    def _next_job_id(self) -> int:
        with self._lock:
            self._job_seq += 1
            return self._job_seq

    def _dispatch(self, job: _Job) -> bool:
        """Ship ``job`` to the least-loaded live worker; False if none."""
        with self._lock:
            target = min(
                (w for w in self._workers
                 if w.process.is_alive() and not w.escalating),
                key=lambda w: len(w.outstanding),
                default=None,
            )
            if target is None:
                return False
            job_id = job.job_id
            target.outstanding.add(job_id)
            job.dispatched = time.monotonic()
            self._jobs[job_id] = job
            slot, count = target.slot, len(target.outstanding)
        target.requests.put((job_id, job.payload))
        self._note_inflight(slot, count)
        return True

    def _await(self, job: _Job) -> Any:
        """Block for a dispatched job, supervising while it waits."""
        while not job.event.wait(timeout=0.2):
            self._check_collector()
            supervisor = self._supervisor
            if supervisor is None or not supervisor.alive:
                # Degraded mode: no supervisor thread, so the waiters
                # themselves keep dead-worker detection alive.
                self.sweep_workers()
        if job.error is not None:
            raise job.error
        return job.result

    def call(self, fn: Callable[..., Any], *args: Any) -> Any:
        if self._closed:
            raise ReproError("process backend is shut down")
        self.start()
        self._refresh_ring_enabled()
        try:
            payload = pickle.dumps((fn, args))
        except Exception as exc:
            raise ReproError(
                f"task {getattr(fn, '__name__', fn)!r} cannot be shipped "
                f"to a worker process: {exc}; process-backend tasks and "
                f"their arguments must pickle (move array payloads into "
                f"shared memory)"
            ) from exc
        job = _Job(payload, job_id=self._next_job_id())
        try:
            with telemetry.span("pool/dispatch", job=job.job_id,
                                task=getattr(fn, "__name__", str(fn))):
                if not self._dispatch(job):
                    # Every worker is dead right now; reap (which
                    # respawns replacements) and retry once.
                    self._reap_dead_workers()
                    if not self._dispatch(job):
                        raise WorkerCrashedError("no live worker processes")
                telemetry.add("pool.shipped_jobs", 1)
                return self._await(job)
        finally:
            # The worker wrote its spans before posting the result, so
            # this drain deterministically captures this job's records.
            self.drain_worker_telemetry()

    def broadcast(self, fn: Callable[..., Any], *args: Any) -> list[Any]:
        """Run ``fn(*args)`` once on every live worker; ordered results.

        Used for per-worker introspection (``repro workers``): unlike
        :meth:`call`, which targets the least-loaded worker, this ships
        one job to *each* worker's queue.
        """
        if self._closed:
            raise ReproError("process backend is shut down")
        self.start()
        self._refresh_ring_enabled()
        payload = pickle.dumps((fn, args))
        dispatched: list[tuple[_Worker, int, _Job]] = []
        with self._lock:
            for worker in self._workers:
                if not worker.process.is_alive() or worker.escalating:
                    continue
                self._job_seq += 1
                job = _Job(payload, job_id=self._job_seq)
                worker.outstanding.add(self._job_seq)
                job.dispatched = time.monotonic()
                self._jobs[self._job_seq] = job
                dispatched.append((worker, self._job_seq, job))
        for worker, job_id, _ in dispatched:
            worker.requests.put((job_id, payload))
        telemetry.add("pool.shipped_jobs", len(dispatched))
        try:
            return [self._await(job) for _, _, job in dispatched]
        finally:
            self.drain_worker_telemetry()

    # -- supervision surface ----------------------------------------------

    def set_task_deadline(self, seconds: float | None) -> None:
        """Pin the hang deadline (``None`` disables hang detection).

        An explicitly pinned deadline is never overridden by
        :meth:`propose_task_deadline`.
        """
        self.task_deadline = seconds
        self._deadline_pinned = True

    def propose_task_deadline(self, seconds: float) -> None:
        """Raise the derived deadline to cover the priciest task seen.

        Called by the executor with the machine-model-derived deadline
        (see :func:`repro.runtime.supervisor.derive_task_deadline`); a
        no-op when the user pinned an explicit deadline.
        """
        if self._deadline_pinned:
            return
        if self.task_deadline is None or seconds > self.task_deadline:
            self.task_deadline = seconds

    def supervisor_state(self) -> dict[str, Any]:
        """Parent-side supervision snapshot (pids, heartbeats, counters)."""
        workers: list[dict[str, Any]] = []
        with self._lock:
            for worker in self._workers:
                if self._heartbeat is not None:
                    seq, state, _ = self._heartbeat.read(worker.slot)
                    age = self._heartbeat.age(worker.slot)
                else:  # pragma: no cover - backend never started
                    seq, state, age = 0, STATE_IDLE, float("inf")
                workers.append({
                    "pid": worker.process.pid,
                    "slot": worker.slot,
                    "alive": worker.process.is_alive(),
                    "state": "busy" if state == STATE_BUSY else "idle",
                    "beats": seq,
                    "heartbeat_age": age,
                    "outstanding": len(worker.outstanding),
                })
        supervisor = self._supervisor
        return {
            "backend": self.name,
            "num_workers": self.num_workers,
            "task_deadline": self.task_deadline,
            "respawns": self.respawns,
            "redispatches": self.redispatches,
            "hung_workers": self.hung_workers,
            "supervisor_alive": bool(supervisor is not None
                                     and supervisor.alive),
            "workers": workers,
        }


def make_backend(name: str, num_workers: int) -> ExecutionBackend:
    """Instantiate the backend registered under ``name``."""
    validate_backend(name)
    if name == "serial":
        return SerialBackend()
    if name == "thread":
        return ThreadBackend()
    return ProcessBackend(num_workers)


# -- worker-side engine execution over shared memory ------------------------
#
# Everything below runs inside the spawned workers.  State persists for
# the worker's lifetime: engines (with their generated kernels and
# scratch workspaces) are cached per construction key, and shared-memory
# attachments are cached per segment name, so steady-state calls do no
# codegen, no allocation and no cross-process copies.

_ENGINE_CACHE: dict = {}
_ATTACH_CACHE: "OrderedDict[str, shm.SharedArray]" = OrderedDict()


def _cached_engine(engine_name: str, spec: Any,
                   kwargs_items: tuple) -> Any:
    key = (engine_name, spec, kwargs_items)
    engine = _ENGINE_CACHE.get(key)
    if engine is None:
        # Engine classes register themselves on import; a spawned
        # interpreter starts with an empty registry.
        import repro.ops.gemm_conv  # noqa: F401
        import repro.ops.reference_engine  # noqa: F401
        import repro.sparse.engine  # noqa: F401
        import repro.stencil.engine  # noqa: F401
        from repro.ops.engine import make_engine

        # A miss means codegen + workspace allocation in the hot path --
        # worth a trace record; steady-state hits stay silent.
        remote.record_counter("worker.engine_cache_misses")
        engine = make_engine(engine_name, spec, **dict(kwargs_items))
        _ENGINE_CACHE[key] = engine
    return engine


def _cached_attach(descriptor: shm.ShmDescriptor) -> Any:
    # Arena segments are keyed by their arena-unique role: a descriptor
    # carrying a known role but a *new* segment name means the parent
    # reallocated that role (geometry change) and unlinked the old
    # segment -- close our mapping now instead of pinning the dead
    # segment's pages until the name ages out of the LRU.
    key = descriptor.role or descriptor.name
    seg = _ATTACH_CACHE.get(key)
    if seg is not None:
        if seg.name == descriptor.name:
            _ATTACH_CACHE.move_to_end(key)
            return seg.ndarray
        del _ATTACH_CACHE[key]
        seg.close()
    remote.record_counter("worker.attach_cache_misses")
    seg = shm.SharedArray.attach(descriptor)
    _ATTACH_CACHE[key] = seg
    while len(_ATTACH_CACHE) > _ATTACH_CACHE_SIZE:
        _, old = _ATTACH_CACHE.popitem(last=False)
        old.close()
    return seg.ndarray


def run_engine_slice(
    engine_name: str,
    spec: Any,
    kwargs_items: tuple,
    method: str,
    primary_desc: shm.ShmDescriptor,
    shared_desc: shm.ShmDescriptor,
    out_desc: shm.ShmDescriptor,
    lo: int,
    hi: int,
    slot: int | None,
) -> None:
    """Run one engine method over ``[lo, hi)`` directly in shared memory.

    ``forward`` / ``backward_data`` write their output slice into
    ``out[lo:hi]``; ``backward_weights`` (``slot`` set) slices *both*
    operands and writes its per-worker partial into ``out[slot]``.  The
    return value is None on purpose -- results live in the segments.
    """
    with remote.worker_span(f"worker/{method}",
                            engine=engine_name, lo=lo, hi=hi):
        engine = _cached_engine(engine_name, spec, kwargs_items)
        primary = _cached_attach(primary_desc)
        shared = _cached_attach(shared_desc)
        out = _cached_attach(out_desc)
        if slot is not None:
            out[slot] = engine.backward_weights(primary[lo:hi], shared[lo:hi])
        else:
            out[lo:hi] = getattr(engine, method)(primary[lo:hi], shared)


def worker_diagnostics() -> dict[str, Any]:
    """Worker-side cache/identity info (shipped back for tests)."""
    info = {
        "pid": os.getpid(),
        "engines_cached": len(_ENGINE_CACHE),
        "segments_attached": len(_ATTACH_CACHE),
        "executable": sys.executable,
    }
    info.update(remote.worker_ring_stats())
    return info
