"""Named shared-memory ndarray segments with explicit lifecycle.

The process execution backend (:mod:`repro.runtime.backends`) moves
batch slices between the parent and its persistent worker processes
through POSIX shared memory: the parent *creates* a named segment and
copies a tensor in once, every worker *attaches* to the same name and
maps the identical pages, and results are written straight into a
shared output segment -- no pickling of array payloads, no per-call
copies across the process boundary.

:class:`SharedArray` wraps one ``multiprocessing.shared_memory``
segment as an ndarray with an explicit, leak-checked lifecycle:

* ``SharedArray.create(shape, dtype)`` -- allocate a named segment (the
  *owner* side).  Owners must eventually call :meth:`unlink`.
* ``SharedArray.attach(descriptor)`` -- map an existing segment by its
  :class:`ShmDescriptor` (the *worker* side).  Attachers only
  :meth:`close`; they never unlink.
* both sides are context managers: ``with`` closes (and unlinks, for
  owners) even when the body raises.

Every owned segment is recorded in a process-local registry until it is
unlinked, so tests (and the CI leak check) can assert that no segment
outlives its run: :func:`owned_segments` must be empty after a clean
shutdown.  Segment names all carry the :data:`SEGMENT_PREFIX` so a
``/dev/shm`` scan can tell our segments from anything else on the host.

:class:`ShmArena` groups several owned segments under one lifetime --
the :class:`~repro.runtime.parallel.ParallelExecutor` keeps one arena
per executor and reuses segments across calls when shapes match
(workspace reuse), releasing everything in one ``release()`` (or, as a
fault net, from a ``weakref.finalize`` when the owner is collected).

Python 3.11's ``SharedMemory`` registers *attached* segments with the
``multiprocessing`` resource tracker, which then unlinks them when the
tracker retires -- destroying a segment the parent still owns (fixed
only in 3.13 via ``track=False``).  Worse, spawn children share the
parent's tracker daemon, so the classic attach-then-unregister
workaround strips the *creator's* registration out of the shared cache.
:meth:`SharedArray.attach` therefore suppresses the registration
entirely (:func:`_attach_untracked`): lifetime is owned explicitly
here, not by the tracker.

**Crash reaping.**  The process-local ``owned_segments()`` registry dies
with the process, so a SIGKILL'd owner orphans its segments in
``/dev/shm`` with nobody left who knows to unlink them.  Every
``create`` therefore also writes an *on-disk manifest entry* (owner pid,
role, creation time) under :func:`manifest_dir`, removed again by
``unlink``; :func:`reap_orphans` -- the janitor -- scans the manifest
(and the raw ``/dev/shm`` namespace, whose segment names embed the
creator pid) and unlinks every segment whose owner is dead.  The janitor
runs at process-backend start, after kill-chaos runs, and from the
``repro shm`` CLI.
"""

from __future__ import annotations

import json
import os
import secrets
import tempfile
import threading
import time
import weakref
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from pathlib import Path

import numpy as np

from repro import telemetry
from repro.errors import ReproError

#: Prefix of every segment name this module creates; the CI leak check
#: greps ``/dev/shm`` for it after the test run.  The hex field after
#: the prefix is the *creator's pid*, which lets the janitor attribute
#: even an unmanifested segment to its (possibly dead) owner.
SEGMENT_PREFIX = "repro-shm-"

#: Environment override for the manifest directory (tests point it at a
#: tmpdir so concurrent suites never see each other's entries).
MANIFEST_ENV = "REPRO_SHM_MANIFEST_DIR"


def _new_segment_name() -> str:
    return f"{SEGMENT_PREFIX}{os.getpid():x}-{secrets.token_hex(4)}"


def _segment_owner_pid(name: str) -> "int | None":
    """The creator pid embedded in a segment name, if parseable."""
    if not name.startswith(SEGMENT_PREFIX):
        return None
    head = name[len(SEGMENT_PREFIX):].partition("-")[0]
    try:
        return int(head, 16)
    except ValueError:
        return None


# -- untracked attach -------------------------------------------------------

_ATTACH_LOCK = threading.Lock()


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to ``name`` without registering it with the resource tracker.

    Python 3.11's ``SharedMemory`` registers attached segments; spawn
    children *share the parent's tracker daemon*, so the historical
    attach-then-``unregister`` workaround removes the creator's own
    registration from the shared cache -- the owner's later ``unlink``
    then double-unregisters and the tracker prints a ``KeyError`` at
    every worker exit.  Suppressing the registration instead leaves
    exactly one entry (the creator's) for the segment's whole life.
    """
    with _ATTACH_LOCK:
        original = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


# -- leak registry ----------------------------------------------------------

_OWNED: set[str] = set()
_OWNED_LOCK = threading.Lock()


def _register_owned(name: str) -> None:
    with _OWNED_LOCK:
        _OWNED.add(name)


def _unregister_owned(name: str) -> None:
    with _OWNED_LOCK:
        _OWNED.discard(name)


def owned_segments() -> tuple[str, ...]:
    """Names of segments this process created and has not yet unlinked.

    A non-empty result after all pools/executors are closed is a leak.
    """
    with _OWNED_LOCK:
        return tuple(sorted(_OWNED))


# -- on-disk manifest and crash janitor -------------------------------------


def manifest_dir() -> Path:
    """Directory holding one JSON manifest entry per live owned segment."""
    override = os.environ.get(MANIFEST_ENV)
    if override:
        return Path(override)
    return Path(tempfile.gettempdir()) / "repro-shm-manifest"


def _manifest_path(name: str) -> Path:
    return manifest_dir() / f"{name}.json"


def _manifest_write(name: str, role: str | None) -> None:
    """Record segment ownership on disk (atomic; best-effort).

    Written at ``create`` time so that even a SIGKILL'd owner leaves a
    record the janitor can act on; removed again by ``unlink``.
    """
    directory = manifest_dir()
    try:
        directory.mkdir(parents=True, exist_ok=True)
        entry = {
            "name": name,
            "pid": os.getpid(),
            "role": role,
            "created": time.time(),
        }
        tmp = directory / f".{name}.tmp"
        tmp.write_text(json.dumps(entry))
        os.replace(tmp, _manifest_path(name))
    except OSError:  # pragma: no cover - manifest dir unwritable
        pass


def _manifest_remove(name: str) -> None:
    """Drop the manifest entry for ``name`` (idempotent; best-effort)."""
    try:
        _manifest_path(name).unlink(missing_ok=True)
    except OSError:  # pragma: no cover - manifest dir unwritable
        pass


@dataclass(frozen=True)
class ManifestEntry:
    """One manifest record, joined against live pid and segment state."""

    name: str
    pid: int
    role: str | None
    created: float
    #: True when the owning process is still running.
    owner_alive: bool
    #: True when the named segment still exists in ``/dev/shm``.
    segment_exists: bool

    @property
    def orphaned(self) -> bool:
        """A reapable leak: the segment outlived its dead owner."""
        return self.segment_exists and not self.owner_alive


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - other-user pid
        return True
    return True


def _segment_exists(name: str) -> bool:
    # Stat the host namespace rather than attach-probing: attaching
    # registers the segment with this process's resource tracker, and
    # unregistering it back out would also strip the entry a live owner
    # in this process still needs (double-unregister noise at exit).
    shm_root = Path("/dev/shm")
    if shm_root.is_dir():
        return (shm_root / name).exists()
    try:  # pragma: no cover - non-Linux host
        probe = _attach_untracked(name)
    except FileNotFoundError:  # pragma: no cover - non-Linux host
        return False
    probe.close()  # pragma: no cover - non-Linux host
    return True  # pragma: no cover - non-Linux host


def host_segments() -> tuple[str, ...]:
    """Our segment names currently present in the host shm namespace."""
    shm_root = Path("/dev/shm")
    if not shm_root.is_dir():  # pragma: no cover - non-Linux host
        return ()
    return tuple(sorted(
        p.name for p in shm_root.iterdir()
        if p.name.startswith(SEGMENT_PREFIX)
    ))


def manifest_entries() -> tuple[ManifestEntry, ...]:
    """All manifest records plus unmanifested on-host segments.

    Segments found in ``/dev/shm`` without a manifest entry (e.g. the
    manifest dir was wiped) are synthesized from the creator pid embedded
    in the segment name, so the janitor still sees them.
    """
    entries: dict[str, ManifestEntry] = {}
    directory = manifest_dir()
    if directory.is_dir():
        for path in sorted(directory.glob("*.json")):
            try:
                raw = json.loads(path.read_text())
                name = str(raw["name"])
                pid = int(raw["pid"])
            except (OSError, ValueError, KeyError):
                continue
            entries[name] = ManifestEntry(
                name=name,
                pid=pid,
                role=raw.get("role"),
                created=float(raw.get("created", 0.0)),
                owner_alive=_pid_alive(pid),
                segment_exists=_segment_exists(name),
            )
    for name in host_segments():
        if name in entries:
            continue
        pid = _segment_owner_pid(name)
        if pid is None:  # pragma: no cover - foreign name under our prefix
            continue
        entries[name] = ManifestEntry(
            name=name, pid=pid, role=None, created=0.0,
            owner_alive=_pid_alive(pid), segment_exists=True,
        )
    return tuple(entries[name] for name in sorted(entries))


def reap_orphans() -> tuple[str, ...]:
    """Unlink every segment whose owning process died; prune stale entries.

    Returns the names of segments actually reclaimed.  Segments with a
    live owner are left strictly alone -- the janitor is safe to run
    concurrently with active pools in other processes.
    """
    reaped: list[str] = []
    for entry in manifest_entries():
        if entry.owner_alive:
            continue
        if entry.segment_exists:
            try:
                seg = shared_memory.SharedMemory(name=entry.name)
            except FileNotFoundError:  # pragma: no cover - concurrent reap
                seg = None
            if seg is not None:
                # Attaching registered the name with our resource
                # tracker; unlink() unregisters it again, so the pair
                # stays balanced (no explicit unregister here).
                try:
                    seg.unlink()
                except FileNotFoundError:  # pragma: no cover - reap race
                    pass
                seg.close()
                reaped.append(entry.name)
                telemetry.add("shm.reaped_segments", 1)
                telemetry.event(
                    "shm.reap", segment=entry.name, owner=entry.pid,
                    role=entry.role,
                )
        # Entry is stale either way: segment gone or just reclaimed.
        _manifest_remove(entry.name)
    return tuple(reaped)


@dataclass(frozen=True)
class ShmDescriptor:
    """A picklable handle naming a segment and its ndarray geometry.

    ``role`` is the arena-unique slot the segment fills (set for
    arena-owned segments, ``None`` for standalone ones).  A worker's
    attach cache keys on it: when the parent reallocates a role after a
    geometry change, the new descriptor carries the same role with a new
    segment name, telling the worker to drop its mapping of the old --
    already unlinked -- segment instead of pinning its pages until the
    name ages out of the cache.
    """

    name: str
    shape: tuple[int, ...]
    dtype: str
    role: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ReproError("shm descriptor needs a segment name")


class SharedArray:
    """One ndarray backed by a named shared-memory segment."""

    def __init__(self, shm: shared_memory.SharedMemory,
                 shape: tuple[int, ...], dtype: np.dtype,
                 owner: bool) -> None:
        self._shm: shared_memory.SharedMemory | None = shm
        self.shape = tuple(int(s) for s in shape)
        self.dtype = np.dtype(dtype)
        self.owner = owner
        #: Arena-unique role shipped in the descriptor (None standalone).
        self.role: str | None = None
        self._ndarray: np.ndarray | None = np.ndarray(
            self.shape, dtype=self.dtype, buffer=shm.buf
        )

    # -- construction -----------------------------------------------------

    @classmethod
    def create(cls, shape: tuple[int, ...],
               dtype: np.dtype | str = np.float32,
               role: str | None = None) -> "SharedArray":
        """Allocate a fresh owned segment sized for ``shape``/``dtype``."""
        dtype = np.dtype(dtype)
        nbytes = max(1, int(np.prod(shape, dtype=np.int64)) * dtype.itemsize)
        shm = shared_memory.SharedMemory(
            create=True, size=nbytes, name=_new_segment_name()
        )
        _register_owned(shm.name)
        _manifest_write(shm.name, role)
        seg = cls(shm, tuple(shape), dtype, owner=True)
        seg.role = role
        return seg

    @classmethod
    def from_array(cls, array: np.ndarray) -> "SharedArray":
        """Allocate an owned segment holding a copy of ``array``."""
        seg = cls.create(array.shape, array.dtype)
        seg.ndarray[...] = array
        return seg

    @classmethod
    def attach(cls, descriptor: ShmDescriptor) -> "SharedArray":
        """Map an existing segment by descriptor (never unlinks it)."""
        shm = _attach_untracked(descriptor.name)
        return cls(shm, descriptor.shape, np.dtype(descriptor.dtype),
                   owner=False)

    # -- access -----------------------------------------------------------

    @property
    def name(self) -> str:
        if self._shm is None:
            raise ReproError("shared array is closed")
        return self._shm.name

    @property
    def ndarray(self) -> np.ndarray:
        """The live ndarray view onto the segment."""
        if self._ndarray is None:
            raise ReproError("shared array is closed")
        return self._ndarray

    @property
    def descriptor(self) -> ShmDescriptor:
        """The picklable handle workers attach with."""
        return ShmDescriptor(name=self.name, shape=self.shape,
                             dtype=self.dtype.str, role=self.role)

    def matches(self, shape: tuple[int, ...], dtype: np.dtype | str) -> bool:
        """True when this segment can hold ``shape``/``dtype`` as-is."""
        return (self._shm is not None and self.shape == tuple(shape)
                and self.dtype == np.dtype(dtype))

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        """Drop this process's mapping (idempotent)."""
        if self._shm is None:
            return
        # The ndarray view must be released before the buffer can be
        # unmapped, or SharedMemory.close() raises BufferError.
        self._ndarray = None
        self._shm.close()
        self._shm = None

    def unlink(self) -> None:
        """Destroy the segment (owner side; closes too; idempotent)."""
        if self._shm is None:
            return
        if not self.owner:
            raise ReproError(
                f"segment {self._shm.name} was attached, not created; "
                f"only the owner unlinks"
            )
        shm = self._shm
        name = shm.name
        # Unlink through the handle we already hold -- re-attaching by
        # name would open (and leak until GC) a second fd + mapping.
        # The ndarray view must be released before the buffer can be
        # unmapped, or SharedMemory.close() raises BufferError.
        self._ndarray = None
        self._shm = None
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double unlink race
            pass
        shm.close()
        _unregister_owned(name)
        _manifest_remove(name)

    def __enter__(self) -> "SharedArray":
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self.owner:
            self.unlink()
        else:
            self.close()


class ShmArena:
    """A set of owned segments reused across calls, freed together.

    ``ensure(role, shape, dtype)`` returns the arena's segment for
    ``role``, reallocating only when the requested geometry changed --
    the shared-memory counterpart of the engines' scratch
    :class:`~repro.ops.workspace.Workspace`.  ``release()`` unlinks
    everything; a ``weakref.finalize`` releases leftover segments when
    the arena is garbage-collected, so a dropped arena can never leak
    past the owning process's lifetime.
    """

    def __init__(self) -> None:
        self._segments: dict[str, SharedArray] = {}
        # Distinguishes this arena's roles from another arena's in a
        # worker's attach cache when two executors share one pool.
        self._tag = secrets.token_hex(4)
        self._finalizer = weakref.finalize(
            self, ShmArena._release_segments, self._segments
        )

    @staticmethod
    def _release_segments(segments: dict[str, SharedArray]) -> None:
        for seg in segments.values():
            try:
                seg.unlink()
            except Exception:  # pragma: no cover - best-effort fault net
                pass
        segments.clear()

    def ensure(self, role: str, shape: tuple[int, ...],
               dtype: np.dtype | str) -> SharedArray:
        """The segment for ``role``, reallocated only on geometry change."""
        seg = self._segments.get(role)
        if seg is not None and seg.matches(shape, dtype):
            return seg
        if seg is not None:
            seg.unlink()
        seg = SharedArray.create(tuple(shape), dtype,
                                 role=f"{self._tag}:{role}")
        self._segments[role] = seg
        return seg

    def release(self) -> None:
        """Unlink every segment now (idempotent)."""
        ShmArena._release_segments(self._segments)

    def __len__(self) -> int:
        return len(self._segments)

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()
