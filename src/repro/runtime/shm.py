"""Named shared-memory ndarray segments with explicit lifecycle.

The process execution backend (:mod:`repro.runtime.backends`) moves
batch slices between the parent and its persistent worker processes
through POSIX shared memory: the parent *creates* a named segment and
copies a tensor in once, every worker *attaches* to the same name and
maps the identical pages, and results are written straight into a
shared output segment -- no pickling of array payloads, no per-call
copies across the process boundary.

:class:`SharedArray` wraps one ``multiprocessing.shared_memory``
segment as an ndarray with an explicit, leak-checked lifecycle:

* ``SharedArray.create(shape, dtype)`` -- allocate a named segment (the
  *owner* side).  Owners must eventually call :meth:`unlink`.
* ``SharedArray.attach(descriptor)`` -- map an existing segment by its
  :class:`ShmDescriptor` (the *worker* side).  Attachers only
  :meth:`close`; they never unlink.
* both sides are context managers: ``with`` closes (and unlinks, for
  owners) even when the body raises.

Every owned segment is recorded in a process-local registry until it is
unlinked, so tests (and the CI leak check) can assert that no segment
outlives its run: :func:`owned_segments` must be empty after a clean
shutdown.  Segment names all carry the :data:`SEGMENT_PREFIX` so a
``/dev/shm`` scan can tell our segments from anything else on the host.

:class:`ShmArena` groups several owned segments under one lifetime --
the :class:`~repro.runtime.parallel.ParallelExecutor` keeps one arena
per executor and reuses segments across calls when shapes match
(workspace reuse), releasing everything in one ``release()`` (or, as a
fault net, from a ``weakref.finalize`` when the owner is collected).

Python 3.11's ``SharedMemory`` registers *attached* segments with the
``multiprocessing`` resource tracker, which then unlinks them when the
attaching process exits -- destroying a segment the parent still owns
(fixed only in 3.13 via ``track=False``).  :meth:`SharedArray.attach`
therefore unregisters the mapping from the tracker: lifetime is owned
explicitly here, not by the tracker.
"""

from __future__ import annotations

import os
import secrets
import threading
import weakref
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.errors import ReproError

#: Prefix of every segment name this module creates; the CI leak check
#: greps ``/dev/shm`` for it after the test run.
SEGMENT_PREFIX = "repro-shm-"


def _new_segment_name() -> str:
    return f"{SEGMENT_PREFIX}{os.getpid():x}-{secrets.token_hex(4)}"


# -- leak registry ----------------------------------------------------------

_OWNED: set[str] = set()
_OWNED_LOCK = threading.Lock()


def _register_owned(name: str) -> None:
    with _OWNED_LOCK:
        _OWNED.add(name)


def _unregister_owned(name: str) -> None:
    with _OWNED_LOCK:
        _OWNED.discard(name)


def owned_segments() -> tuple[str, ...]:
    """Names of segments this process created and has not yet unlinked.

    A non-empty result after all pools/executors are closed is a leak.
    """
    with _OWNED_LOCK:
        return tuple(sorted(_OWNED))


@dataclass(frozen=True)
class ShmDescriptor:
    """A picklable handle naming a segment and its ndarray geometry.

    ``role`` is the arena-unique slot the segment fills (set for
    arena-owned segments, ``None`` for standalone ones).  A worker's
    attach cache keys on it: when the parent reallocates a role after a
    geometry change, the new descriptor carries the same role with a new
    segment name, telling the worker to drop its mapping of the old --
    already unlinked -- segment instead of pinning its pages until the
    name ages out of the cache.
    """

    name: str
    shape: tuple[int, ...]
    dtype: str
    role: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ReproError("shm descriptor needs a segment name")


class SharedArray:
    """One ndarray backed by a named shared-memory segment."""

    def __init__(self, shm: shared_memory.SharedMemory,
                 shape: tuple[int, ...], dtype: np.dtype,
                 owner: bool) -> None:
        self._shm: shared_memory.SharedMemory | None = shm
        self.shape = tuple(int(s) for s in shape)
        self.dtype = np.dtype(dtype)
        self.owner = owner
        #: Arena-unique role shipped in the descriptor (None standalone).
        self.role: str | None = None
        self._ndarray: np.ndarray | None = np.ndarray(
            self.shape, dtype=self.dtype, buffer=shm.buf
        )

    # -- construction -----------------------------------------------------

    @classmethod
    def create(cls, shape: tuple[int, ...],
               dtype: np.dtype | str = np.float32) -> "SharedArray":
        """Allocate a fresh owned segment sized for ``shape``/``dtype``."""
        dtype = np.dtype(dtype)
        nbytes = max(1, int(np.prod(shape, dtype=np.int64)) * dtype.itemsize)
        shm = shared_memory.SharedMemory(
            create=True, size=nbytes, name=_new_segment_name()
        )
        _register_owned(shm.name)
        return cls(shm, tuple(shape), dtype, owner=True)

    @classmethod
    def from_array(cls, array: np.ndarray) -> "SharedArray":
        """Allocate an owned segment holding a copy of ``array``."""
        seg = cls.create(array.shape, array.dtype)
        seg.ndarray[...] = array
        return seg

    @classmethod
    def attach(cls, descriptor: ShmDescriptor) -> "SharedArray":
        """Map an existing segment by descriptor (never unlinks it)."""
        shm = shared_memory.SharedMemory(name=descriptor.name)
        try:
            # Python 3.11 tracks attached segments and unlinks them when
            # this process exits; ownership lives with the creator, so
            # take the mapping back out of the tracker's hands.
            resource_tracker.unregister(shm._name, "shared_memory")  # noqa: SLF001
        except Exception:  # pragma: no cover - tracker internals moved
            pass
        return cls(shm, descriptor.shape, np.dtype(descriptor.dtype),
                   owner=False)

    # -- access -----------------------------------------------------------

    @property
    def name(self) -> str:
        if self._shm is None:
            raise ReproError("shared array is closed")
        return self._shm.name

    @property
    def ndarray(self) -> np.ndarray:
        """The live ndarray view onto the segment."""
        if self._ndarray is None:
            raise ReproError("shared array is closed")
        return self._ndarray

    @property
    def descriptor(self) -> ShmDescriptor:
        """The picklable handle workers attach with."""
        return ShmDescriptor(name=self.name, shape=self.shape,
                             dtype=self.dtype.str, role=self.role)

    def matches(self, shape: tuple[int, ...], dtype: np.dtype | str) -> bool:
        """True when this segment can hold ``shape``/``dtype`` as-is."""
        return (self._shm is not None and self.shape == tuple(shape)
                and self.dtype == np.dtype(dtype))

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        """Drop this process's mapping (idempotent)."""
        if self._shm is None:
            return
        # The ndarray view must be released before the buffer can be
        # unmapped, or SharedMemory.close() raises BufferError.
        self._ndarray = None
        self._shm.close()
        self._shm = None

    def unlink(self) -> None:
        """Destroy the segment (owner side; closes too; idempotent)."""
        if self._shm is None:
            return
        if not self.owner:
            raise ReproError(
                f"segment {self._shm.name} was attached, not created; "
                f"only the owner unlinks"
            )
        shm = self._shm
        name = shm.name
        # Unlink through the handle we already hold -- re-attaching by
        # name would open (and leak until GC) a second fd + mapping.
        # The ndarray view must be released before the buffer can be
        # unmapped, or SharedMemory.close() raises BufferError.
        self._ndarray = None
        self._shm = None
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double unlink race
            pass
        shm.close()
        _unregister_owned(name)

    def __enter__(self) -> "SharedArray":
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self.owner:
            self.unlink()
        else:
            self.close()


class ShmArena:
    """A set of owned segments reused across calls, freed together.

    ``ensure(role, shape, dtype)`` returns the arena's segment for
    ``role``, reallocating only when the requested geometry changed --
    the shared-memory counterpart of the engines' scratch
    :class:`~repro.ops.workspace.Workspace`.  ``release()`` unlinks
    everything; a ``weakref.finalize`` releases leftover segments when
    the arena is garbage-collected, so a dropped arena can never leak
    past the owning process's lifetime.
    """

    def __init__(self) -> None:
        self._segments: dict[str, SharedArray] = {}
        # Distinguishes this arena's roles from another arena's in a
        # worker's attach cache when two executors share one pool.
        self._tag = secrets.token_hex(4)
        self._finalizer = weakref.finalize(
            self, ShmArena._release_segments, self._segments
        )

    @staticmethod
    def _release_segments(segments: dict[str, SharedArray]) -> None:
        for seg in segments.values():
            try:
                seg.unlink()
            except Exception:  # pragma: no cover - best-effort fault net
                pass
        segments.clear()

    def ensure(self, role: str, shape: tuple[int, ...],
               dtype: np.dtype | str) -> SharedArray:
        """The segment for ``role``, reallocated only on geometry change."""
        seg = self._segments.get(role)
        if seg is not None and seg.matches(shape, dtype):
            return seg
        if seg is not None:
            seg.unlink()
        seg = SharedArray.create(tuple(shape), dtype)
        seg.role = f"{self._tag}:{role}"
        self._segments[role] = seg
        return seg

    def release(self) -> None:
        """Unlink every segment now (idempotent)."""
        ShmArena._release_segments(self._segments)

    def __len__(self) -> int:
        return len(self._segments)

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()
