"""Parallel execution of the spg-CNN engines over pluggable backends."""

from repro.runtime.backends import (
    BACKEND_NAMES,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    make_backend,
)
from repro.runtime.parallel import ParallelExecutor
from repro.runtime.pool import WorkerPool, default_worker_count
from repro.runtime.shm import SharedArray, ShmArena, ShmDescriptor, owned_segments

__all__ = [
    "BACKEND_NAMES",
    "ExecutionBackend",
    "ParallelExecutor",
    "ProcessBackend",
    "SerialBackend",
    "SharedArray",
    "ShmArena",
    "ShmDescriptor",
    "ThreadBackend",
    "WorkerPool",
    "default_worker_count",
    "make_backend",
    "owned_segments",
]
