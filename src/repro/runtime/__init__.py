"""Thread-based parallel execution of the spg-CNN engines."""

from repro.runtime.parallel import ParallelExecutor
from repro.runtime.pool import WorkerPool, default_worker_count

__all__ = ["WorkerPool", "ParallelExecutor", "default_worker_count"]
