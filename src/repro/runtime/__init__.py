"""Parallel execution of the spg-CNN engines over pluggable backends."""

from repro.runtime.backends import (
    BACKEND_NAMES,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    make_backend,
)
from repro.runtime.dag import (
    SCHEDULER_NAMES,
    DagScheduler,
    NetworkDagRunner,
    TaskGraph,
    TaskNode,
    validate_scheduler,
)
from repro.runtime.parallel import ParallelExecutor, SliceTask
from repro.runtime.pool import WorkerPool, default_worker_count
from repro.runtime.shm import SharedArray, ShmArena, ShmDescriptor, owned_segments

__all__ = [
    "BACKEND_NAMES",
    "DagScheduler",
    "ExecutionBackend",
    "NetworkDagRunner",
    "ParallelExecutor",
    "ProcessBackend",
    "SCHEDULER_NAMES",
    "SerialBackend",
    "SharedArray",
    "ShmArena",
    "ShmDescriptor",
    "SliceTask",
    "TaskGraph",
    "TaskNode",
    "ThreadBackend",
    "WorkerPool",
    "default_worker_count",
    "make_backend",
    "owned_segments",
    "validate_scheduler",
]
