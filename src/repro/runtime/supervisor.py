"""Worker supervision for the process backend: heartbeats and deadlines.

The process backend (:mod:`repro.runtime.backends`) reacts to worker
*death* lazily -- a crash is noticed when a dispatcher polls for a
stranded job.  That leaves two failure classes unhandled: a worker that
is alive but stuck (SIGSTOP, deadlocked C extension, runaway loop)
blocks its outstanding jobs forever, and nothing notices a crash while
no dispatcher happens to be polling.  This module adds the proactive
half of the fault model:

* :class:`HeartbeatBoard` -- one lock-free shared slot per worker
  (sequence counter, idle/busy state, monotonic stamp).  Workers stamp
  *busy* when they pick a task off their queue and *idle* when the
  result is posted, so the parent can read "how long has this worker
  been silent while holding work" without any message traffic.
  ``time.monotonic`` is ``CLOCK_MONOTONIC`` on Linux and therefore
  comparable across processes.
* :class:`WorkerSupervisor` -- a daemon thread in the parent that
  periodically runs the backend's sweep: dead workers are reaped and
  respawned with their in-flight jobs re-dispatched, and workers whose
  oldest obligation is older than the *task deadline* are escalated
  ``SIGTERM`` -> bounded join -> ``SIGKILL`` (SIGTERM is never delivered
  to a SIGSTOP'd process; SIGKILL is) and then handled as dead.
* :func:`derive_task_deadline` -- turns the machine model's per-batch
  cost estimate into a hang deadline: a generous safety multiple of the
  modeled time, never below :data:`DEADLINE_FLOOR` so model optimism on
  a loaded host can not produce false hang verdicts.

A worker is only ever declared hung while it *owes* results: the rule is
``now - max(last_heartbeat, oldest outstanding dispatch) > deadline``.
An idle worker blocks silently in ``queue.get()`` without stamping, so
staleness alone is never evidence of a hang; conversely a worker that
was SIGSTOP'd while idle is still caught the moment work is dispatched
to it, via the dispatch timestamp.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Any

from repro import telemetry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.backends import ProcessBackend

#: Floor under every derived task deadline, in seconds.  The machine
#: model prices compute on an unloaded socket; CI hosts are oversubscribed
#: and a single slow batch must not read as a hang.
DEADLINE_FLOOR = 5.0

#: Safety multiple applied to the machine model's per-batch estimate.
#: Hang detection wants orders-of-magnitude headroom: a false "hung"
#: verdict kills a healthy worker mid-task.
DEADLINE_SAFETY = 200.0

#: How long the escalation path waits on ``join`` after SIGTERM and
#: again after SIGKILL before giving up on the handle.
ESCALATE_GRACE = 2.0

#: Supervisor sweep cadence, in seconds.
POLL_INTERVAL = 0.1

#: Doubles per heartbeat slot: (sequence, state, stamp).
_SLOT_WIDTH = 3

#: Heartbeat ``state`` values.
STATE_IDLE = 0.0
STATE_BUSY = 1.0


def derive_task_deadline(modeled_seconds: float,
                         floor: float = DEADLINE_FLOOR,
                         safety: float = DEADLINE_SAFETY) -> float:
    """Hang deadline for a task the machine model prices at ``modeled_seconds``."""
    if modeled_seconds < 0.0 or not modeled_seconds < float("inf"):
        raise ValueError(
            f"modeled task time must be finite and >= 0, got {modeled_seconds}"
        )
    return max(floor, safety * modeled_seconds)


class HeartbeatBoard:
    """Fixed-size shared heartbeat slots, one per worker position.

    Backed by a lock-free ``multiprocessing`` double array created with
    the spawn context so it can be shipped to workers as a ``Process``
    argument.  Writes are a sequence bump plus state/stamp store;
    readers tolerate torn reads (a stamp is only ever compared against
    a multi-second deadline).
    """

    def __init__(self, slots: int, ctx: Any) -> None:
        if slots <= 0:
            raise ValueError(f"heartbeat board needs >= 1 slot, got {slots}")
        self.slots = slots
        self._array = ctx.Array("d", slots * _SLOT_WIDTH, lock=False)

    @property
    def shared(self) -> Any:
        """The raw shared array, passed to worker processes."""
        return self._array

    @staticmethod
    def stamp(array: Any, slot: int, state: float) -> None:
        """Record ``state`` at ``now`` in ``slot`` (worker side)."""
        base = slot * _SLOT_WIDTH
        array[base] += 1.0
        array[base + 1] = state
        array[base + 2] = time.monotonic()

    def read(self, slot: int) -> tuple[int, float, float]:
        """``(sequence, state, stamp)`` for ``slot`` (parent side)."""
        base = slot * _SLOT_WIDTH
        return (int(self._array[base]), float(self._array[base + 1]),
                float(self._array[base + 2]))

    def age(self, slot: int) -> float:
        """Seconds since ``slot`` last stamped (inf if it never did)."""
        _, _, stamp = self.read(slot)
        if stamp == 0.0:
            return float("inf")
        return max(0.0, time.monotonic() - stamp)


class WorkerSupervisor:
    """Parent-side daemon thread driving the backend's supervision sweep.

    The sweep itself lives on the backend (it owns the worker table and
    job registry); this thread provides the cadence, keeps one failure
    from ending supervision, and publishes the supervisor gauges.  The
    backend's dispatchers also run the same sweep opportunistically from
    their poll loops, so supervision degrades gracefully if this thread
    is ever lost.
    """

    def __init__(self, backend: "ProcessBackend",
                 poll_interval: float = POLL_INTERVAL) -> None:
        self._backend = backend
        self._poll = poll_interval
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name="repro-supervisor", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=10.0)
            self._thread = None

    @property
    def alive(self) -> bool:
        thread = self._thread
        return thread is not None and thread.is_alive()

    def _run(self) -> None:
        while not self._stop.wait(self._poll):
            try:
                self._backend.sweep_workers()
                self._publish_gauges()
            except Exception as exc:  # pragma: no cover - defensive
                telemetry.event("supervisor.error", error=repr(exc))

    def _publish_gauges(self) -> None:
        state = self._backend.supervisor_state()
        ages = [
            float(w["heartbeat_age"]) for w in state["workers"]
            if w["outstanding"] and w["heartbeat_age"] != float("inf")
        ]
        telemetry.gauge("supervisor.heartbeat_age", max(ages, default=0.0))
        telemetry.gauge("supervisor.workers_alive",
                        float(sum(1 for w in state["workers"] if w["alive"])))
        for w in state["workers"]:
            age = float(w["heartbeat_age"])
            if age == float("inf"):
                # Idle-from-birth worker: no stamp yet, nothing to chart.
                continue
            telemetry.gauge(f"supervisor.w{w['slot']}.heartbeat_age", age)
