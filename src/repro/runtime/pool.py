"""A worker pool for genuinely parallel image-level execution.

The paper's spg-CNN techniques all parallelize at the *image* level
(GEMM-in-Parallel, and likewise the stencil and sparse kernels).  This
pool runs those per-image kernels on real threads: the numpy operations
that dominate each kernel release the GIL, so image-level parallelism
yields real concurrency even from Python.

The pool is deliberately minimal -- ``map_batches`` mirrors the paper's
scheduling (contiguous image ranges per core, Sec. 4.1) and is what the
:class:`repro.runtime.parallel.ParallelExecutor` builds on.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor, wait
from typing import Callable, TypeVar

from repro import telemetry
from repro.blas.gemm import partition_rows
from repro.errors import ReproError

T = TypeVar("T")


def default_worker_count() -> int:
    """Number of workers to use when unspecified: the host's CPU count."""
    return max(1, os.cpu_count() or 1)


class WorkerPool:
    """A fixed set of worker threads executing image-range tasks."""

    def __init__(self, num_workers: int | None = None):
        if num_workers is not None and num_workers <= 0:
            raise ReproError(f"num_workers must be positive, got {num_workers}")
        self.num_workers = num_workers or default_worker_count()
        self._executor: ThreadPoolExecutor | None = None

    # -- lifecycle --------------------------------------------------------

    def __enter__(self) -> "WorkerPool":
        self._executor = ThreadPoolExecutor(max_workers=self.num_workers)
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def shutdown(self) -> None:
        """Stop the worker threads (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def _require_executor(self) -> ThreadPoolExecutor:
        if self._executor is None:
            # Lazily start when used outside a ``with`` block.
            self._executor = ThreadPoolExecutor(max_workers=self.num_workers)
        return self._executor

    # -- execution --------------------------------------------------------

    def assignment(self, batch_size: int) -> list[tuple[int, int]]:
        """Contiguous ``[lo, hi)`` image ranges, one per worker (Sec. 4.1)."""
        if batch_size <= 0:
            raise ReproError(f"batch_size must be positive, got {batch_size}")
        return [r for r in partition_rows(batch_size, self.num_workers) if r[0] < r[1]]

    def map_batches(
        self, task: Callable[[int, int], T], batch_size: int
    ) -> list[T]:
        """Run ``task(lo, hi)`` over the per-worker image ranges, in parallel.

        Results are returned in range order.  Exceptions propagate to the
        caller after all submitted tasks finish.
        """
        ranges = self.assignment(batch_size)
        telemetry.add("pool.tasks", len(ranges))
        telemetry.gauge("pool.queue_occupancy", len(ranges))

        def run(index: int, lo: int, hi: int) -> T:
            with telemetry.span("pool/task", worker=index, lo=lo, hi=hi):
                return task(lo, hi)

        if len(ranges) == 1:
            lo, hi = ranges[0]
            return [run(0, lo, hi)]
        executor = self._require_executor()
        futures = [
            executor.submit(run, i, lo, hi) for i, (lo, hi) in enumerate(ranges)
        ]
        # Let every sibling task finish before propagating any failure, as
        # documented -- callers must never observe a task still running
        # after map_batches raised.
        wait(futures)
        for f in futures:
            error = f.exception()
            if error is not None:
                raise error
        return [f.result() for f in futures]

    def map_items(self, task: Callable[[int], T], count: int) -> list[T]:
        """Run ``task(i)`` for every item index, spread over the workers."""

        def run_range(lo: int, hi: int) -> list[T]:
            return [task(i) for i in range(lo, hi)]

        nested = self.map_batches(run_range, count)
        return [item for chunk in nested for item in chunk]
