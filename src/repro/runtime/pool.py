"""A worker pool for genuinely parallel image-level execution.

The paper's spg-CNN techniques all parallelize at the *image* level
(GEMM-in-Parallel, and likewise the stencil and sparse kernels).  This
pool runs those per-image kernels on real threads: the numpy operations
that dominate each kernel release the GIL, so image-level parallelism
yields real concurrency even from Python.

The pool is deliberately minimal -- ``map_batches`` mirrors the paper's
scheduling (contiguous image ranges per core, Sec. 4.1) and is what the
:class:`repro.runtime.parallel.ParallelExecutor` builds on.

Fault handling: when a :class:`repro.resilience.policy.RetryPolicy` is
attached (explicitly, or ambiently via ``apply_policy``), ``map_batches``
runs its tasks under supervision -- bounded retries with backoff for
attempts that raise, per-attempt deadlines with straggler reassignment
for attempts that hang -- and the chaos sites ``pool.task`` /
``pool.result`` let :mod:`repro.resilience.faults` exercise exactly
those paths deterministically.
"""

from __future__ import annotations

import os
import weakref
from concurrent.futures import ThreadPoolExecutor, wait
from typing import Callable, TypeVar

from repro import telemetry
from repro.blas.gemm import partition_rows
from repro.errors import ReproError
from repro.resilience import faults
from repro.resilience.policy import RetryPolicy, active_policy, run_supervised

T = TypeVar("T")


def default_worker_count() -> int:
    """Number of workers to use when unspecified: the host's CPU count."""
    return max(1, os.cpu_count() or 1)


class WorkerPool:
    """A fixed set of worker threads executing image-range tasks."""

    def __init__(self, num_workers: int | None = None,
                 policy: RetryPolicy | None = None):
        if num_workers is not None and num_workers <= 0:
            raise ReproError(f"num_workers must be positive, got {num_workers}")
        self.num_workers = num_workers or default_worker_count()
        self.policy = policy
        self._executor: ThreadPoolExecutor | None = None
        self._finalizer: weakref.finalize | None = None

    # -- lifecycle --------------------------------------------------------

    def __enter__(self) -> "WorkerPool":
        self._require_executor()
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def shutdown(self) -> None:
        """Stop the worker threads (idempotent; the pool may be reused)."""
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def _require_executor(self) -> ThreadPoolExecutor:
        if self._executor is None:
            # Started lazily (or re-started after shutdown()).  The
            # finalizer guarantees the threads are reaped even if the
            # owner never calls shutdown(): it fires when the pool is
            # garbage-collected, referencing only the executor itself.
            executor = ThreadPoolExecutor(max_workers=self.num_workers)
            self._executor = executor
            self._finalizer = weakref.finalize(self, executor.shutdown, False)
        return self._executor

    # -- execution --------------------------------------------------------

    def assignment(self, batch_size: int) -> list[tuple[int, int]]:
        """Contiguous ``[lo, hi)`` image ranges, one per worker (Sec. 4.1)."""
        if batch_size <= 0:
            raise ReproError(f"batch_size must be positive, got {batch_size}")
        return [r for r in partition_rows(batch_size, self.num_workers) if r[0] < r[1]]

    def _effective_policy(self) -> RetryPolicy | None:
        return self.policy if self.policy is not None else active_policy()

    def map_batches(
        self, task: Callable[[int, int], T], batch_size: int
    ) -> list[T]:
        """Run ``task(lo, hi)`` over the per-worker image ranges, in parallel.

        Results are returned in range order.  Exceptions propagate to the
        caller after all submitted tasks finish.  Under a retry policy,
        failing attempts are retried and hanging attempts reassigned
        first; tasks must be idempotent (pure functions of their range).
        """
        ranges = self.assignment(batch_size)
        policy = self._effective_policy()
        telemetry.add("pool.tasks", len(ranges))
        telemetry.gauge("pool.queue_occupancy", len(ranges))

        def run(index: int, lo: int, hi: int) -> T:
            with telemetry.span("pool/task", worker=index, lo=lo, hi=hi):
                faults.perturb("pool.task", worker=index, lo=lo, hi=hi)
                return faults.corrupt_array("pool.result", task(lo, hi))

        if len(ranges) == 1 and policy is None:
            lo, hi = ranges[0]
            return [run(0, lo, hi)]
        executor = self._require_executor()
        if policy is not None:
            thunks = [
                (lambda i=i, lo=lo, hi=hi: run(i, lo, hi))
                for i, (lo, hi) in enumerate(ranges)
            ]
            return run_supervised(executor, thunks, policy)
        futures = [
            executor.submit(run, i, lo, hi) for i, (lo, hi) in enumerate(ranges)
        ]
        # Let every sibling task finish before propagating any failure, as
        # documented -- callers must never observe a task still running
        # after map_batches raised.
        wait(futures)
        for f in futures:
            error = f.exception()
            if error is not None:
                raise error
        return [f.result() for f in futures]

    def map_items(self, task: Callable[[int], T], count: int) -> list[T]:
        """Run ``task(i)`` for every item index, spread over the workers."""

        def run_range(lo: int, hi: int) -> list[T]:
            return [task(i) for i in range(lo, hi)]

        nested = self.map_batches(run_range, count)
        return [item for chunk in nested for item in chunk]
