"""A worker pool for genuinely parallel image-level execution.

The paper's spg-CNN techniques all parallelize at the *image* level
(GEMM-in-Parallel, and likewise the stencil and sparse kernels).  This
pool runs those per-image kernels on a pluggable execution backend
(:mod:`repro.runtime.backends`):

* ``backend="thread"``  (default) -- real threads; the numpy operations
  that dominate the GEMM kernels release the GIL, so image-level
  parallelism yields real concurrency even from Python.
* ``backend="process"`` -- persistent spawned worker processes; the
  pure-Python hot loops (generated stencil blocks, sparse accumulation,
  unfold) run concurrently too, because each worker owns its own GIL.
  Tasks must pickle; array payloads travel through
  :mod:`repro.runtime.shm` segments.
* ``backend="serial"`` -- tasks run inline in range order: the
  determinism reference and the zero-overhead single-core baseline.

The pool is deliberately minimal -- ``map_batches`` mirrors the paper's
scheduling (contiguous image ranges per core, Sec. 4.1) and is what the
:class:`repro.runtime.parallel.ParallelExecutor` builds on.

Fault handling: when a :class:`repro.resilience.policy.RetryPolicy` is
attached (explicitly, or ambiently via ``apply_policy``), tasks run
under supervision -- bounded retries with backoff for attempts that
raise, per-attempt deadlines with straggler reassignment for attempts
that hang -- and the chaos sites ``pool.task`` / ``pool.result`` let
:mod:`repro.resilience.faults` exercise exactly those paths
deterministically.  Both sites wrap the *dispatch* of a task, on the
parent side, so a chaos plan fires identically under every backend.
"""

from __future__ import annotations

import functools
import os
import weakref
from concurrent.futures import Executor, Future, ThreadPoolExecutor, wait
from typing import Any, Callable, Mapping, Sequence, TypeVar

from repro import telemetry
from repro.blas.gemm import partition_rows
from repro.errors import ReproError
from repro.resilience import faults
from repro.resilience.policy import RetryPolicy, active_policy, run_supervised
from repro.runtime.backends import (
    BACKEND_NAMES,
    ExecutionBackend,
    ProcessBackend,
    make_backend,
)

T = TypeVar("T")


def default_worker_count() -> int:
    """Number of workers to use when unspecified: the host's CPU count."""
    return max(1, os.cpu_count() or 1)


class _InlineExecutor(Executor):
    """An Executor whose submit() runs the callable immediately.

    Lets the serial backend reuse :func:`run_supervised` unchanged:
    attempts execute inline in submission order, retries included
    (deadlines never fire because every attempt finishes before the
    supervision loop observes it).
    """

    def submit(self, fn: Callable[..., Any], /, *args: Any,
               **kwargs: Any) -> "Future[Any]":  # noqa: D102
        future: "Future[Any]" = Future()
        try:
            future.set_result(fn(*args, **kwargs))
        except BaseException as exc:  # noqa: BLE001 - routed via the future
            future.set_exception(exc)
        return future


def _item_range_task(task: Callable[[int], T], lo: int, hi: int) -> list[T]:
    """Module-level body of ``map_items`` ranges (picklable for spawn)."""
    return [task(i) for i in range(lo, hi)]


class WorkerPool:
    """A fixed set of workers executing image-range tasks."""

    def __init__(self, num_workers: int | None = None,
                 policy: RetryPolicy | None = None,
                 backend: str | ExecutionBackend = "thread") -> None:
        if num_workers is not None and num_workers <= 0:
            raise ReproError(f"num_workers must be positive, got {num_workers}")
        self.num_workers = num_workers or default_worker_count()
        self.policy = policy
        if isinstance(backend, ExecutionBackend):
            self._backend: ExecutionBackend | None = backend
            self.backend_name = backend.name
        else:
            if backend not in BACKEND_NAMES:
                raise ReproError(
                    f"unknown execution backend {backend!r}; "
                    f"known: {BACKEND_NAMES}"
                )
            self._backend = None  # built lazily (process spawn is costly)
            self.backend_name = backend
        self._executor: ThreadPoolExecutor | None = None
        self._finalizer: weakref.finalize | None = None
        self._backend_finalizer: weakref.finalize | None = None

    # -- lifecycle --------------------------------------------------------

    def __enter__(self) -> "WorkerPool":
        if self.backend_name != "serial":
            self._require_executor()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    def shutdown(self) -> None:
        """Stop the workers (idempotent; the pool may be reused).

        The reuse contract is uniform across backends -- including a
        pool constructed with an :class:`ExecutionBackend` *instance*:
        the backend object is kept and the next dispatch restarts it
        (``start()`` is idempotent and, for the process backend,
        respawns the worker set).
        """
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._backend_finalizer is not None:
            self._backend_finalizer.detach()
            self._backend_finalizer = None
        if self._backend is not None:
            self._backend.shutdown()

    def _require_executor(self) -> ThreadPoolExecutor:
        if self._executor is None:
            # Started lazily (or re-started after shutdown()).  The
            # finalizer guarantees the threads are reaped even if the
            # owner never calls shutdown(): it fires when the pool is
            # garbage-collected, referencing only the executor itself.
            executor = ThreadPoolExecutor(max_workers=self.num_workers)
            self._executor = executor
            self._finalizer = weakref.finalize(self, executor.shutdown, False)
        return self._executor

    def _require_backend(self) -> ExecutionBackend:
        if self._backend is None:
            self._backend = make_backend(self.backend_name, self.num_workers)
        if isinstance(self._backend, ProcessBackend):
            # The retry policy is the user-facing fault-budget knob;
            # mirror its crash budget onto the backend's per-job
            # redispatch budget so one setting governs both layers.
            policy = self._effective_policy()
            if policy is not None:
                self._backend.max_redispatch = policy.max_redispatches
        # start() is idempotent and revives a shut-down backend, so
        # reuse-after-shutdown behaves identically whether the pool was
        # built from a backend name or a live instance.
        needs_finalizer = self._backend_finalizer is None
        self._backend.start()
        if needs_finalizer and isinstance(self._backend, ProcessBackend):
            self._backend_finalizer = weakref.finalize(
                self, self._backend.shutdown
            )
        return self._backend

    @property
    def backend(self) -> ExecutionBackend | None:
        """The live backend instance, if one has been built yet.

        Supervision tooling (``repro workers``, the kill-chaos harness)
        reaches the :class:`ProcessBackend` through this to read
        ``supervisor_state()`` or pin ``task_deadline`` -- without
        forcing a lazy pool to spawn workers just to be inspected.
        """
        return self._backend

    # -- execution --------------------------------------------------------

    def assignment(self, batch_size: int) -> list[tuple[int, int]]:
        """Contiguous ``[lo, hi)`` image ranges, one per worker (Sec. 4.1)."""
        if batch_size <= 0:
            raise ReproError(f"batch_size must be positive, got {batch_size}")
        return [r for r in partition_rows(batch_size, self.num_workers) if r[0] < r[1]]

    def _effective_policy(self) -> RetryPolicy | None:
        return self.policy if self.policy is not None else active_policy()

    def run_tasks(
        self,
        thunks: Sequence[Callable[[], T]],
        metas: Sequence[Mapping[str, Any]] | None = None,
    ) -> list[T]:
        """Run parent-side thunks with spans, fault sites and supervision.

        The scheduling primitive beneath ``map_batches``: each thunk is
        wrapped in a ``pool/task`` telemetry span and the ``pool.task``
        / ``pool.result`` fault sites, then executed on this pool's
        backend -- inline in order (serial), on the dispatcher threads
        (thread), or blocking on a worker-process round-trip (process;
        the thunk itself performs the shipping).  Results come back in
        thunk order; the first failure propagates after every sibling
        resolved.  Under a retry policy, thunks must be idempotent.
        """
        metas = metas or [{} for _ in thunks]
        policy = self._effective_policy()
        telemetry.add("pool.tasks", len(thunks))
        telemetry.gauge("pool.queue_occupancy", len(thunks))

        def run(index: int) -> T:
            meta = dict(metas[index])
            with telemetry.span("pool/task", worker=index, **meta):
                faults.perturb("pool.task", worker=index, **meta)
                return faults.corrupt_array("pool.result", thunks[index]())

        serial = self.backend_name == "serial"
        try:
            if policy is None:
                if serial or len(thunks) == 1:
                    return [run(i) for i in range(len(thunks))]
                executor = self._require_executor()
                futures = [executor.submit(run, i) for i in range(len(thunks))]
                # Let every sibling task finish before propagating any
                # failure, as documented -- callers must never observe a
                # task still running after run_tasks raised.
                wait(futures)
                for f in futures:
                    error = f.exception()
                    if error is not None:
                        raise error
                return [f.result() for f in futures]
            supervisor: Executor = (
                _InlineExecutor() if serial else self._require_executor()
            )
            wrapped = [
                (lambda i=i: run(i)) for i in range(len(thunks))
            ]
            return run_supervised(supervisor, wrapped, policy)
        finally:
            # Results collected (or the batch failed): the queue is
            # drained either way, and the gauge must say so -- a stuck
            # nonzero value reads as a phantom backlog on the trace's
            # counter track and in the monitor report.
            telemetry.gauge("pool.queue_occupancy", 0)

    def map_batches(
        self, task: Callable[[int, int], T], batch_size: int
    ) -> list[T]:
        """Run ``task(lo, hi)`` over the per-worker image ranges, in parallel.

        Results are returned in range order.  Exceptions propagate to the
        caller after all submitted tasks finish.  Under a retry policy,
        failing attempts are retried and hanging attempts reassigned
        first; tasks must be idempotent (pure functions of their range).
        Under the process backend the task and its captured state must
        pickle -- ship arrays through :mod:`repro.runtime.shm` instead
        of capturing them.
        """
        ranges = self.assignment(batch_size)
        if self.backend_name == "process":
            backend = self._require_backend()
            thunks = [
                (lambda lo=lo, hi=hi: backend.call(task, lo, hi))
                for lo, hi in ranges
            ]
        else:
            thunks = [
                (lambda lo=lo, hi=hi: task(lo, hi)) for lo, hi in ranges
            ]
        metas = [{"lo": lo, "hi": hi} for lo, hi in ranges]
        return self.run_tasks(thunks, metas)

    def map_items(self, task: Callable[[int], T], count: int) -> list[T]:
        """Run ``task(i)`` for every item index, spread over the workers.

        Under the process backend ``task`` itself must pickle (the range
        wrapper around it already does).
        """
        nested = self.map_batches(
            functools.partial(_item_range_task, task), count
        )
        return [item for chunk in nested for item in chunk]
