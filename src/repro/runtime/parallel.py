"""Parallel execution of convolution engines over real threads.

Wraps any registered single-threaded :class:`repro.ops.engine.ConvEngine`
and executes its batch methods with image-level parallelism on a
:class:`repro.runtime.pool.WorkerPool` -- the executable counterpart of
the machine model's GEMM-in-Parallel scheduling.  Each worker processes a
contiguous slice of the batch with its own engine instance (generated
kernels and scratch state are not shared across threads).

Weight gradients are accumulated per worker and reduced at the end, so
results are independent of the worker count up to float addition order.
"""

from __future__ import annotations

import numpy as np

from repro import telemetry
from repro.core.convspec import ConvSpec
from repro.errors import ReproError
from repro.ops.engine import ConvEngine, make_engine
from repro.resilience.policy import RetryPolicy
from repro.runtime.pool import WorkerPool


class ParallelExecutor:
    """Run a named engine's FP/BP over a batch with worker threads."""

    def __init__(self, engine_name: str, spec: ConvSpec,
                 pool: WorkerPool | None = None,
                 policy: RetryPolicy | None = None, **engine_kwargs):
        self.spec = spec
        self.engine_name = engine_name
        self.pool = pool or WorkerPool(policy=policy)
        self._owns_pool = pool is None
        # One engine per worker: generated kernels are stateless but cheap
        # scratch decisions (e.g. CT-CSR buffers) must not be shared.
        self._engines: list[ConvEngine] = [
            make_engine(engine_name, spec, **engine_kwargs)
            for _ in range(self.pool.num_workers)
        ]

    @property
    def name(self) -> str:
        """The wrapped engine's registry name (ConvEngine-compatible)."""
        return self.engine_name

    def close(self) -> None:
        """Shut the pool down if this executor created it."""
        if self._owns_pool:
            self.pool.shutdown()

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _engine_for(self, worker_index: int) -> ConvEngine:
        return self._engines[worker_index % len(self._engines)]

    def _run_sliced(self, method: str, primary: np.ndarray,
                    shared: np.ndarray) -> np.ndarray:
        batch = primary.shape[0]
        if batch == 0:
            raise ReproError("empty batch")
        ranges = self.pool.assignment(batch)
        outputs: list[np.ndarray | None] = [None] * len(ranges)

        def task(index: int) -> None:
            lo, hi = ranges[index]
            engine = self._engine_for(index)
            outputs[index] = getattr(engine, method)(primary[lo:hi], shared)

        with telemetry.span(f"executor/{method}", engine=self.engine_name,
                            batch=batch, workers=len(ranges)):
            self.pool.map_items(task, len(ranges))
        chunks = [c for c in outputs if c is not None]
        return np.concatenate(chunks, axis=0)

    # -- batch API mirroring ConvEngine -----------------------------------

    def forward(self, inputs: np.ndarray, weights: np.ndarray) -> np.ndarray:
        """Forward-propagate the batch across the workers."""
        return self._run_sliced("forward", inputs, weights)

    def backward_data(self, out_error: np.ndarray, weights: np.ndarray) -> np.ndarray:
        """Back-propagate the error batch across the workers."""
        return self._run_sliced("backward_data", out_error, weights)

    def backward_weights(self, out_error: np.ndarray, inputs: np.ndarray) -> np.ndarray:
        """Per-worker dW partials, reduced into one gradient tensor."""
        batch = out_error.shape[0]
        if batch == 0:
            raise ReproError("empty batch")
        ranges = self.pool.assignment(batch)
        partials: list[np.ndarray | None] = [None] * len(ranges)

        def task(index: int) -> None:
            lo, hi = ranges[index]
            engine = self._engine_for(index)
            partials[index] = engine.backward_weights(
                out_error[lo:hi], inputs[lo:hi]
            )

        with telemetry.span("executor/backward_weights",
                            engine=self.engine_name, batch=batch,
                            workers=len(ranges)):
            self.pool.map_items(task, len(ranges))
        total = np.zeros(self.spec.weight_shape, dtype=out_error.dtype)
        for partial in partials:
            if partial is not None:
                total += partial
        return total
