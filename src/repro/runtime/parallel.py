"""Parallel execution of convolution engines over a pluggable backend.

Wraps any registered single-threaded :class:`repro.ops.engine.ConvEngine`
and executes its batch methods with image-level parallelism on a
:class:`repro.runtime.pool.WorkerPool` -- the executable counterpart of
the machine model's GEMM-in-Parallel scheduling.  Each attempt processes
a contiguous slice of the batch with an engine checked out of a
free-list, so mutable engine scratch is never shared between attempts
running at once -- not even when straggler reassignment makes a backup
attempt overlap its still-running original.

Memory behavior: the executor pre-allocates **one** output array per
call and workers write their ``[lo, hi)`` slice in place -- there is no
per-worker chunk list and no final ``np.concatenate``/``np.stack``.
Under the process backend the batch operands are published once into
shared-memory segments (:mod:`repro.runtime.shm`) that workers attach
zero-copy; segments are owned by a per-executor arena and *reused*
across calls while shapes are stable, then unlinked on ``close()`` (or
by the arena's finalizer -- never leaked, even when a task faults).

Weight gradients are accumulated per worker and reduced in the parent
in fixed range order, so results are bit-identical across the serial,
thread and process backends for a given worker count.

Under the process backend the executor also feeds the supervisor: each
dispatch proposes a *task deadline* derived from the machine model's
GEMM-in-Parallel cost estimate for that (phase, batch), so hang
detection is calibrated to the work actually shipped rather than a
wall-clock guess (see :mod:`repro.runtime.supervisor`).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro import telemetry
from repro.core.convspec import ConvSpec
from repro.errors import ReproError
from repro.machine.gemm_model import gemm_in_parallel_conv_time
from repro.machine.spec import xeon_e5_2650
from repro.ops.engine import ConvEngine, make_engine
from repro.resilience.policy import RetryPolicy
from repro.runtime.backends import run_engine_slice
from repro.runtime.pool import WorkerPool
from repro.runtime.shm import SharedArray, ShmArena
from repro.runtime.supervisor import derive_task_deadline


@dataclass(frozen=True)
class SliceTask:
    """One schedulable engine slice over images ``[lo, hi)``.

    The shared currency between the barrier path (which wraps ``run``
    into :meth:`WorkerPool.run_tasks` thunks) and the task-graph runtime
    (:mod:`repro.runtime.dag`, which wraps it into graph nodes) -- both
    execute the identical callable, so the two paths cannot diverge
    numerically.  ``run`` is idempotent: it writes only its own output
    slice (or returns a fresh partial), so retries and straggler
    duplicates are safe.
    """

    index: int
    lo: int
    hi: int
    run: Callable[[], np.ndarray]


def adopt_slice(out: np.ndarray, task: SliceTask, result: object) -> None:
    """Copy a task result into ``out`` unless it already lives there.

    Covers slices coming back from shared memory and arrays the fault
    layer replaced with corrupted copies; thread-backend results are
    views into ``out`` and are left alone.
    """
    if isinstance(result, np.ndarray) and result.base is not out:
        out[task.lo:task.hi] = result


class ParallelExecutor:
    """Run a named engine's FP/BP over a batch on the pool's backend."""

    def __init__(self, engine_name: str, spec: ConvSpec,
                 pool: WorkerPool | None = None,
                 policy: RetryPolicy | None = None,
                 backend: str = "thread", **engine_kwargs: Any) -> None:
        self.spec = spec
        self.engine_name = engine_name
        self.pool = pool or WorkerPool(policy=policy, backend=backend)
        self._owns_pool = pool is None
        self._engine_kwargs = dict(engine_kwargs)
        self._arena = ShmArena()
        # Machine-model hang deadlines, cached per (method, batch).
        self._deadline_cache: dict[tuple[str, int], float] = {}
        # (method, batch) pairs whose machine-model estimate was already
        # published as a ``model.estimate`` event this collector epoch.
        self._estimates_emitted: set[tuple[str, int]] = set()
        self._estimates_epoch: tuple[int, ...] | None = None
        # One engine per concurrent attempt: engines hold mutable scratch
        # (unfold workspace, GEMM out= panels, CT-CSR buffers) that must
        # never be shared between two attempts running at once.  A fixed
        # index->engine mapping is not enough under a RetryPolicy with
        # straggler reassignment -- a backup attempt for an index can run
        # concurrently with its still-running original -- so attempts
        # check an engine out of a free-list and check it back in, and
        # the list grows on demand when duplicates overlap.  Under the
        # process backend the engines live in the worker processes
        # instead (cached per construction key).
        self._engine_lock = threading.Lock()
        self._engines: list[ConvEngine] = []
        self._free_engines: list[ConvEngine] = []
        if self.pool.backend_name != "process":
            self._engines = [
                make_engine(engine_name, spec, **engine_kwargs)
                for _ in range(self.pool.num_workers)
            ]
            self._free_engines = list(self._engines)

    @property
    def name(self) -> str:
        """The wrapped engine's registry name (ConvEngine-compatible)."""
        return self.engine_name

    def release_workspace(self) -> None:
        """Unlink this executor's shared-memory segments now."""
        self._arena.release()

    def close(self) -> None:
        """Release segments; shut the pool down if this executor made it."""
        self.release_workspace()
        if self._owns_pool:
            self.pool.shutdown()

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _checkout_engine(self) -> ConvEngine:
        """An engine no other in-flight attempt is using."""
        with self._engine_lock:
            if self._free_engines:
                return self._free_engines.pop()
        # All engines busy: an original attempt and its reassigned
        # duplicate overlap.  Engines are deterministic, so results do
        # not depend on which instance an attempt lands on.
        engine = make_engine(self.engine_name, self.spec,
                             **self._engine_kwargs)
        with self._engine_lock:
            self._engines.append(engine)
        return engine

    def _checkin_engine(self, engine: ConvEngine) -> None:
        with self._engine_lock:
            self._free_engines.append(engine)

    # -- shared-memory dispatch (process backend) -------------------------

    def _propose_deadline(self, backend: Any, method: str,
                          batch: int) -> None:
        """Calibrate the backend's hang deadline to this dispatch.

        The machine model prices the slice work; the supervisor's floor
        and safety multiple absorb model optimism.  A user-pinned
        deadline wins (``propose_task_deadline`` is then a no-op).
        """
        propose = getattr(backend, "propose_task_deadline", None)
        if propose is None:  # pragma: no cover - non-process backend
            return
        key = (method, batch)
        deadline = self._deadline_cache.get(key)
        if deadline is None:
            phase = "fp" if method == "forward" else "bp"
            try:
                modeled = gemm_in_parallel_conv_time(
                    self.spec, phase, batch, xeon_e5_2650(),
                    cores=max(1, self.pool.num_workers),
                )
            except ReproError:  # pragma: no cover - degenerate spec
                modeled = 0.0
            deadline = derive_task_deadline(modeled)
            self._deadline_cache[key] = deadline
        propose(deadline)

    def _emit_model_estimate(self, method: str, batch: int) -> None:
        """Publish the machine model's cost estimate for this dispatch.

        One ``model.estimate`` event per (method, batch) per collector
        activation: the critical-path report joins it against ``dag/node``
        spans by layer name to build its roofline column.  Works on every
        backend (thread and serial included), unlike the deadline path.
        """
        collectors = telemetry.active_collectors()
        if not collectors:
            return
        epoch = tuple(id(c) for c in collectors)
        if epoch != self._estimates_epoch:
            self._estimates_epoch = epoch
            self._estimates_emitted.clear()
        key = (method, batch)
        if key in self._estimates_emitted:
            return
        self._estimates_emitted.add(key)
        phase = "fp" if method == "forward" else "bp"
        try:
            modeled = gemm_in_parallel_conv_time(
                self.spec, phase, batch, xeon_e5_2650(),
                cores=max(1, self.pool.num_workers),
            )
        except ReproError:  # pragma: no cover - degenerate spec
            return
        telemetry.event(
            "model.estimate", layer=self.spec.name, method=method,
            phase=phase, batch=batch, seconds=modeled,
            workers=max(1, self.pool.num_workers),
        )

    def _publish(self, role: str, array: np.ndarray) -> SharedArray:
        """Copy ``array`` into the arena's reusable segment for ``role``."""
        seg = self._arena.ensure(role, array.shape, array.dtype)
        seg.ndarray[...] = array
        return seg

    def _shipped_thunks(
        self, method: str, primary: np.ndarray, shared: np.ndarray,
        out_shape: tuple[int, ...], out_dtype: np.dtype,
        ranges: list[tuple[int, int]], per_worker_out: bool,
    ) -> list[Callable[[], np.ndarray]]:
        """Thunks that run the engine slices inside worker processes."""
        backend = self.pool._require_backend()
        self._propose_deadline(backend, method, primary.shape[0])
        primary_seg = self._publish(f"{method}/primary", primary)
        shared_seg = self._publish(f"{method}/shared", shared)
        out_seg = self._arena.ensure(f"{method}/out", out_shape, out_dtype)
        kwargs_items = tuple(sorted(self._engine_kwargs.items()))
        out_view = out_seg.ndarray

        def make(index: int, lo: int, hi: int) -> Callable[[], np.ndarray]:
            slot = index if per_worker_out else None

            def thunk() -> np.ndarray:
                backend.call(
                    run_engine_slice, self.engine_name, self.spec,
                    kwargs_items, method, primary_seg.descriptor,
                    shared_seg.descriptor, out_seg.descriptor, lo, hi, slot,
                )
                # Return the freshly written region: the pool's
                # ``pool.result`` corrupt site applies to it, and the
                # caller copies it out of shared memory.
                return out_view[slot] if per_worker_out else out_view[lo:hi]

            return thunk

        return [make(i, lo, hi) for i, (lo, hi) in enumerate(ranges)]

    # -- sliced execution -------------------------------------------------

    def slice_plan(self, method: str, primary: np.ndarray,
                   shared: np.ndarray) -> tuple[np.ndarray, list[SliceTask]]:
        """Preallocate the output and build one :class:`SliceTask` per range.

        Each task's engine is checked out of the free-list at run time
        (never captured), so concurrent tasks -- barrier siblings, DAG
        nodes or straggler duplicates -- never share mutable engine
        scratch.  Under the process backend this also publishes the
        operands into the executor's shared-memory arena, so building
        the plan is itself the prefetch step the DAG overlaps with
        other layers' GEMMs.  Task results that may live outside ``out``
        must be adopted via :func:`adopt_slice`.
        """
        batch = primary.shape[0]
        if batch == 0:
            raise ReproError("empty batch")
        self._emit_model_estimate(method, batch)
        ranges = self.pool.assignment(batch)
        item_shape = (self.spec.output_shape if method == "forward"
                      else self.spec.input_shape)
        dtype = np.result_type(primary, shared)
        out = np.empty((batch,) + item_shape, dtype=dtype)

        if self.pool.backend_name == "process":
            thunks = self._shipped_thunks(
                method, primary, shared, out.shape, dtype, ranges,
                per_worker_out=False,
            )
        else:
            def make(lo: int, hi: int) -> Callable[[], np.ndarray]:
                def thunk() -> np.ndarray:
                    engine = self._checkout_engine()
                    try:
                        out[lo:hi] = getattr(engine, method)(
                            primary[lo:hi], shared
                        )
                    finally:
                        self._checkin_engine(engine)
                    return out[lo:hi]

                return thunk

            thunks = [make(lo, hi) for lo, hi in ranges]

        tasks = [SliceTask(i, lo, hi, thunk)
                 for i, ((lo, hi), thunk) in enumerate(zip(ranges, thunks))]
        return out, tasks

    def _run_sliced(self, method: str, primary: np.ndarray,
                    shared: np.ndarray) -> np.ndarray:
        out, tasks = self.slice_plan(method, primary, shared)
        metas = [{"lo": task.lo, "hi": task.hi} for task in tasks]
        with telemetry.span(f"executor/{method}", engine=self.engine_name,
                            batch=primary.shape[0], workers=len(tasks)):
            results = self.pool.run_tasks([task.run for task in tasks], metas)
        for task, result in zip(tasks, results):
            adopt_slice(out, task, result)
        return out

    # -- batch API mirroring ConvEngine -----------------------------------

    def forward(self, inputs: np.ndarray, weights: np.ndarray) -> np.ndarray:
        """Forward-propagate the batch across the workers."""
        return self._run_sliced("forward", inputs, weights)

    def backward_data(self, out_error: np.ndarray, weights: np.ndarray) -> np.ndarray:
        """Back-propagate the error batch across the workers."""
        return self._run_sliced("backward_data", out_error, weights)

    def weights_plan(self, out_error: np.ndarray,
                     inputs: np.ndarray) -> list[SliceTask]:
        """One dW-partial :class:`SliceTask` per range.

        Each task returns its range's gradient partial; the caller owns
        the reduction and must accumulate the partials **in range
        order** -- the fixed order that keeps results bit-identical
        across backends, worker counts and schedulers.
        """
        batch = out_error.shape[0]
        if batch == 0:
            raise ReproError("empty batch")
        self._emit_model_estimate("backward_weights", batch)
        ranges = self.pool.assignment(batch)
        partial_shape = (len(ranges),) + self.spec.weight_shape
        dtype = out_error.dtype

        if self.pool.backend_name == "process":
            thunks = self._shipped_thunks(
                "backward_weights", out_error, inputs, partial_shape, dtype,
                ranges, per_worker_out=True,
            )
        else:
            def make(lo: int, hi: int) -> Callable[[], np.ndarray]:
                def thunk() -> np.ndarray:
                    engine = self._checkout_engine()
                    try:
                        return engine.backward_weights(
                            out_error[lo:hi], inputs[lo:hi]
                        )
                    finally:
                        self._checkin_engine(engine)

                return thunk

            thunks = [make(lo, hi) for lo, hi in ranges]

        return [SliceTask(i, lo, hi, thunk)
                for i, ((lo, hi), thunk) in enumerate(zip(ranges, thunks))]

    def backward_weights(self, out_error: np.ndarray, inputs: np.ndarray) -> np.ndarray:
        """Per-worker dW partials, reduced into one gradient tensor."""
        tasks = self.weights_plan(out_error, inputs)
        metas = [{"lo": task.lo, "hi": task.hi} for task in tasks]
        with telemetry.span("executor/backward_weights",
                            engine=self.engine_name,
                            batch=out_error.shape[0],
                            workers=len(tasks)):
            partials = self.pool.run_tasks([task.run for task in tasks], metas)
        # Fixed reduction order (range order) keeps the result identical
        # across backends and worker schedules.
        total = np.zeros(self.spec.weight_shape, dtype=out_error.dtype)
        for partial in partials:
            if partial is not None:
                total += partial
        return total
