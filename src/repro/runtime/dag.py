"""Task-graph asynchronous execution of a training step.

The barrier path (:class:`repro.runtime.parallel.ParallelExecutor`)
fork/joins on the worker pool at *every* layer and phase -- FP, BP-data
and dW each pay one synchronization per layer, and the machine model
charges exactly that cost per parallel region (paper Sec. 4).  ZNN
(Zlateski & Lee) shows the barriers are not load-bearing: compile the
step into a dependency graph of fine-grained tasks and the only true
sync points remain.

This module is that compilation.  One forward or backward pass becomes
a :class:`TaskGraph` of nodes:

* per layer and per image range, the engine-slice tasks the barrier
  path would have run between fork and join (built from the same
  :class:`~repro.runtime.parallel.SliceTask` plans, so the arithmetic
  is byte-for-byte the same);
* per sliced conv layer, a *prep* node (pad / cache / publish into
  Workspace or shared-memory buffers) and a *finish* node (bias add,
  unpad, fixed-order dW reduction).

Edges encode only data dependencies, so during backward propagation
layer N's BP-data chain unblocks layer N-1 while layer N's dW partials
are still reducing, and a conv's dW and BP-data prep/publish work
overlaps the other chain's GEMMs.  A :class:`DagScheduler` executes the
graph with per-worker deques and work stealing (own work popped LIFO
for locality, steals taken FIFO from the oldest end).

**The reduction-order invariant.**  The DAG is allowed to change
wall-clock, never bits.  Every floating-point reduction keeps the fixed
order of the barrier path: dW partials accumulate in range order inside
a single reduce node, sliced outputs are written to disjoint ``[lo,hi)``
slices, and layers whose math reduces over the whole batch (dense
layers, bias sums) stay single nodes.  Scheduling order therefore
affects *when* a node runs, not what it computes.

Scheduler states: a node is *blocked* until every dependency finished
(``pending`` edges > 0), *ready* once enqueued on a worker deque,
*running* while its callable executes, and *done* when it returned; the
first raising node wins, later-ready nodes are abandoned, and in-flight
nodes drain before the error propagates.  Node bodies must be
idempotent (they re-run under a retry policy) and should apply side
effects last, after all raising work.

Fault injection reuses the ``pool.task`` site, so named chaos plans
(e.g. ``workers``) exercise the DAG scheduler exactly as they do the
barrier pool, and an ambient :class:`~repro.resilience.policy.RetryPolicy`
gives per-node bounded retries with backoff.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Sequence

import numpy as np

from repro import telemetry
from repro.errors import ReproError, ShapeError
from repro.resilience import faults
from repro.resilience.policy import active_policy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.nn.network import Network
    from repro.runtime.parallel import ParallelExecutor

#: The step-execution strategies a network can run under.
SCHEDULER_NAMES = ("barrier", "dag")

#: Process-wide graph-id allocator.  Graphs are rebuilt every pass, so
#: span attributes need a run-unique id to tell one executed graph's
#: ``dag/node`` spans from the next pass's (see :mod:`repro.obs.critical`).
_GRAPH_IDS = itertools.count(1)


@dataclass(frozen=True)
class Region:
    """A symbolic read/write region over one logical buffer.

    ``buffer`` names the logical storage a node touches; the graph
    builders use a fixed ``family:qualifier`` vocabulary (see
    :mod:`repro.check.effects` for the full contract):

    * ``act:{i}`` / ``err:{i}`` -- the forward/backward activation cell
      between layers ``i`` and ``i+1``;
    * ``weights:{layer}`` / ``grad:{layer}`` -- a layer's parameters and
      accumulated gradients;
    * ``cache:{layer}`` -- the conv layer's ``_cached_padded_input``;
    * ``state:{layer}`` -- miscellaneous per-layer mutable state
      (sparsity gauges, per-pass timing, layer-internal caches);
    * ``plan:{layer}:{chain}`` -- the prep node's published slice plan
      (output array + :class:`SliceTask` handles) for chain ``fp`` /
      ``dw`` / ``bd``;
    * ``partial:{layer}`` -- the dW partial list, one element per range;
    * ``bdout:{layer}`` -- the padded BP-data output slab;
    * ``ws:{layer}:{phase}`` -- engine scratch drawn from the executor
      free-list (always ``atomic``);
    * ``shm:{arena_tag}`` -- a :class:`~repro.runtime.shm.ShmArena`'s
      segment map (mutated by publishing preps under the process
      backend).

    ``lo``/``hi`` restrict the region to an element range ``[lo, hi)``
    of the buffer (both ``None`` means the whole buffer).  ``atomic``
    marks a region whose accesses are serialized by the runtime itself
    (the engine free-list checkout): two atomic regions never conflict,
    but an atomic against a plain region does -- that is exactly the
    aliasing bug the verifier must catch.
    """

    buffer: str
    lo: int | None = None
    hi: int | None = None
    atomic: bool = False

    def __post_init__(self) -> None:
        if not self.buffer:
            raise ReproError("effect region needs a buffer name")
        if (self.lo is None) != (self.hi is None):
            raise ReproError(
                f"region on {self.buffer!r}: lo and hi must be set together"
            )
        if self.lo is not None and self.hi is not None and self.lo >= self.hi:
            raise ReproError(
                f"region on {self.buffer!r}: empty range [{self.lo}, {self.hi})"
            )

    def overlaps(self, other: "Region") -> bool:
        """True when the two regions can touch the same bytes."""
        if self.buffer != other.buffer:
            return False
        if self.lo is None or other.lo is None:
            return True
        assert self.hi is not None and other.hi is not None
        return self.lo < other.hi and other.lo < self.hi


def validate_scheduler(name: str) -> str:
    """Return ``name`` if it is a known scheduler, else raise."""
    if name not in SCHEDULER_NAMES:
        raise ReproError(
            f"unknown scheduler {name!r}; known: {SCHEDULER_NAMES}"
        )
    return name


class TaskNode:
    """One schedulable unit of work in a :class:`TaskGraph`.

    ``reads``/``writes`` are the node's declared effect set: the
    symbolic :class:`Region`\\ s its callable may touch.  The scheduler
    ignores them; :mod:`repro.check.effects` proves from them that no
    two unordered nodes conflict, and cross-checks the declarations
    against the callable's source so they cannot drift from the code.
    """

    __slots__ = ("node_id", "name", "fn", "deps", "children", "pending",
                 "attrs", "graph", "reads", "writes")

    def __init__(self, node_id: int, name: str, fn: Callable[[], Any],
                 deps: tuple["TaskNode", ...], attrs: dict[str, Any],
                 graph: "TaskGraph",
                 reads: tuple[Region, ...] = (),
                 writes: tuple[Region, ...] = ()) -> None:
        self.node_id = node_id
        self.name = name
        self.fn = fn
        self.deps = deps
        self.children: list[TaskNode] = []
        self.pending = len(deps)
        self.attrs = attrs
        self.graph = graph
        self.reads = reads
        self.writes = writes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TaskNode({self.node_id}, {self.name!r}, pending={self.pending})"


class TaskGraph:
    """A DAG of :class:`TaskNode`\\ s, acyclic by construction.

    ``add_node`` only accepts already-added nodes as dependencies, so
    every edge points from a lower node id to a higher one -- a cycle
    cannot be expressed.
    """

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self.graph_id = next(_GRAPH_IDS)
        self._nodes: list[TaskNode] = []

    def edge_list(self) -> str:
        """Edges as ``"dep>child|..."`` node-id pairs (event-attr friendly).

        The compact string form survives the telemetry event attr dict
        and the Chrome-trace JSON round trip unchanged, which is how
        :mod:`repro.obs.critical` reconstructs the executed graph.
        """
        return "|".join(
            f"{dep.node_id}>{node.node_id}"
            for node in self._nodes for dep in node.deps
        )

    @property
    def nodes(self) -> list[TaskNode]:
        return self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def add_node(self, name: str, fn: Callable[[], Any],
                 deps: Sequence[TaskNode] = (),
                 reads: Sequence[Region] = (),
                 writes: Sequence[Region] = (),
                 **attrs: Any) -> TaskNode:
        """Append a node depending on ``deps`` (nodes of this graph).

        ``reads``/``writes`` declare the node's effect regions for the
        static race verifier (:mod:`repro.check.effects`); nodes built
        without them verify as *undeclared* there, never as race-free.
        """
        dep_nodes = tuple(deps)
        for dep in dep_nodes:
            if not isinstance(dep, TaskNode) or dep.graph is not self:
                raise ReproError(
                    f"node {name!r}: dependency {dep!r} is not a node of "
                    f"this graph"
                )
        node = TaskNode(len(self._nodes), name, fn, dep_nodes, dict(attrs),
                        self, reads=tuple(reads), writes=tuple(writes))
        for dep in dep_nodes:
            dep.children.append(node)
        self._nodes.append(node)
        return node


class DagScheduler:
    """Executes a :class:`TaskGraph`: inline when single-threaded,
    work-stealing threads otherwise.

    With one worker the graph runs deterministically in Kahn order
    (ready nodes by ascending node id) on the calling thread -- the
    serial-backend reference.  With N workers, each worker owns a deque:
    nodes it unblocks are pushed locally and popped LIFO (the freshest
    work is the cache-warm work); an idle worker steals FIFO from the
    first non-empty victim, taking the oldest -- most dependency-laden
    -- node.  All deque traffic happens under one condition variable,
    which the profile can afford: nodes are engine slices (milliseconds),
    not microtasks.
    """

    def __init__(self, num_workers: int = 1, name: str = "dag") -> None:
        if num_workers <= 0:
            raise ReproError(
                f"num_workers must be positive, got {num_workers}"
            )
        self.num_workers = num_workers
        self.name = name

    # -- node execution ---------------------------------------------------

    def _execute(self, node: TaskNode, worker: int) -> None:
        """Run one node under span, fault site and bounded retries."""
        from repro.runtime.backends import WorkerCrashedError

        policy = active_policy()
        retries = 0
        crash_retried = False
        while True:
            try:
                with telemetry.span("dag/node", node=node.name,
                                    worker=worker,
                                    graph_id=node.graph.graph_id,
                                    node_id=node.node_id,
                                    **node.attrs):
                    faults.perturb("pool.task", worker=worker,
                                   node=node.name)
                    node.fn()
                return
            except WorkerCrashedError as exc:
                # Infrastructure fault, not a task fault: the process
                # backend has already respawned workers by the time this
                # surfaces, and nodes are idempotent, so even without an
                # ambient policy one immediate re-run is safe and keeps
                # a crash during a policy-less step from failing it.
                if policy is None and not crash_retried:
                    crash_retried = True
                    telemetry.add("dag.crash_retries", 1)
                    telemetry.event("dag.crash_retry", node=node.name,
                                    error=f"{type(exc).__name__}: {exc}")
                    continue
                if policy is None or retries >= policy.max_retries:
                    raise
                retries += 1
                telemetry.add("dag.retries", 1)
                telemetry.event("dag.retry", node=node.name, retry=retries,
                                error=f"{type(exc).__name__}: {exc}")
                delay = policy.backoff(retries)
                if delay > 0.0:
                    time.sleep(delay)
            except Exception as exc:  # noqa: BLE001 - policy decides
                if policy is None or retries >= policy.max_retries:
                    raise
                retries += 1
                telemetry.add("dag.retries", 1)
                telemetry.event("dag.retry", node=node.name, retry=retries,
                                error=f"{type(exc).__name__}: {exc}")
                delay = policy.backoff(retries)
                if delay > 0.0:
                    time.sleep(delay)

    # -- graph execution --------------------------------------------------

    def run(self, graph: TaskGraph) -> None:
        """Execute every node of ``graph``; returns when all are done."""
        nodes = graph.nodes
        if not nodes:
            return
        for node in nodes:
            node.pending = len(node.deps)
        telemetry.add("dag.graphs", 1)
        telemetry.add("dag.nodes", len(nodes))
        workers = min(self.num_workers, len(nodes))
        telemetry.event("dag.graph", graph=graph.name,
                        graph_id=graph.graph_id, nodes=len(nodes),
                        workers=workers, edges=graph.edge_list())
        start = time.perf_counter()
        if workers == 1:
            busy = self._run_inline(nodes)
        else:
            busy = self._run_stealing(nodes, workers)
        wall = time.perf_counter() - start
        # Aggregate idle = worker-seconds not spent inside a node.  The
        # tail (waiting for the last node) is included on purpose: it is
        # exactly the cost a barrier would have paid at every layer.
        telemetry.gauge("dag.idle_seconds",
                        max(0.0, wall * workers - sum(busy)))

    def _run_inline(self, nodes: list[TaskNode]) -> list[float]:
        ready = [n.node_id for n in nodes if n.pending == 0]
        heapq.heapify(ready)
        done = 0
        start = time.perf_counter()
        while ready:
            node = nodes[heapq.heappop(ready)]
            self._execute(node, 0)
            done += 1
            for child in node.children:
                child.pending -= 1
                if child.pending == 0:
                    heapq.heappush(ready, child.node_id)
        if done != len(nodes):  # pragma: no cover - unreachable by construction
            raise ReproError(
                f"task graph stalled: {len(nodes) - done} nodes unreachable"
            )
        return [time.perf_counter() - start]

    def _run_stealing(self, nodes: list[TaskNode],
                      workers: int) -> list[float]:
        deques: list[deque[TaskNode]] = [deque() for _ in range(workers)]
        cond = threading.Condition()
        state = {"remaining": len(nodes), "error": None, "steals": 0}
        busy = [0.0] * workers
        for i, node in enumerate(n for n in nodes if n.pending == 0):
            deques[i % workers].append(node)

        def take(worker: int) -> TaskNode | None:
            """Next node for ``worker`` (call holding ``cond``)."""
            own = deques[worker]
            if own:
                return own.pop()
            for offset in range(1, workers):
                victim = deques[(worker + offset) % workers]
                if victim:
                    state["steals"] += 1
                    return victim.popleft()
            return None

        def work(worker: int) -> None:
            while True:
                with cond:
                    while True:
                        if state["error"] is not None or state["remaining"] == 0:
                            return
                        node = take(worker)
                        if node is not None:
                            break
                        cond.wait()
                begun = time.perf_counter()
                try:
                    self._execute(node, worker)
                except BaseException as exc:  # noqa: BLE001 - first error wins
                    busy[worker] += time.perf_counter() - begun
                    with cond:
                        if state["error"] is None:
                            state["error"] = exc
                        state["remaining"] -= 1
                        cond.notify_all()
                    return
                busy[worker] += time.perf_counter() - begun
                with cond:
                    state["remaining"] -= 1
                    for child in node.children:
                        child.pending -= 1
                        if child.pending == 0:
                            deques[worker].append(child)
                    cond.notify_all()

        threads = [
            threading.Thread(target=work, args=(w,),
                             name=f"{self.name}-worker-{w}", daemon=True)
            for w in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if state["steals"]:
            telemetry.add("dag.steals", state["steals"])
        if state["error"] is not None:
            raise state["error"]
        return busy


# -- compiling a network step into graphs -----------------------------------


def _sliced_executor(layer: Any, engine: Any) -> "ParallelExecutor | None":
    """The layer's executor when the phase runs sliced, else ``None``."""
    from repro.runtime.parallel import ParallelExecutor

    return engine if isinstance(engine, ParallelExecutor) else None


def _shm_regions(executor: "ParallelExecutor") -> tuple[Region, ...]:
    """The arena segment-map write of a publishing prep node.

    Only the process backend publishes operands into the executor's
    :class:`~repro.runtime.shm.ShmArena`; its segment dict is unlocked,
    so any two nodes publishing into the same arena must be ordered --
    which is precisely the ``bd_prep -> dw_prep`` edge the backward
    builder adds, and what the effects verifier re-proves.
    """
    if executor.pool.backend_name != "process":
        return ()
    return (Region(f"shm:{executor._arena._tag}"),)


def build_forward_graph(network: "Network", inputs: np.ndarray,
                        training: bool = True
                        ) -> tuple[TaskGraph, list[Any]]:
    """Compile one forward pass; ``cells[-1]`` holds the output after run.

    Sliced conv layers expand into prep -> per-range -> finish nodes;
    every other layer is a single whole-batch node (their reductions --
    dense ``x.T @ e``, bias sums -- span the batch, so slicing them
    would change summation order and break bit-identity; dropout draws
    its RNG once per pass, which a single node preserves).
    """
    from repro.nn.layers.conv import ConvLayer

    if inputs.shape[1:] != network.input_shape:
        raise ShapeError(
            f"batch input shape {inputs.shape} != (B, *{network.input_shape})"
        )
    graph = TaskGraph(name=f"{network.name}/fp")
    cells: list[Any] = [None] * (len(network.layers) + 1)
    cells[0] = inputs
    batch = int(inputs.shape[0])
    producer: TaskNode | None = None
    for i, layer in enumerate(network.layers):
        deps = (producer,) if producer is not None else ()
        executor = (_sliced_executor(layer, layer._fp_engine)
                    if isinstance(layer, ConvLayer) else None)
        if executor is None:
            def whole(i: int = i, layer: Any = layer) -> None:
                cells[i + 1] = layer.forward(cells[i], training=training)

            writes = [Region(f"act:{i + 1}"), Region(f"state:{layer.name}")]
            if isinstance(layer, ConvLayer):
                # Unsliced conv forward caches its padded input.
                writes.append(Region(f"cache:{layer.name}"))
            producer = graph.add_node(
                f"fp/{layer.name}", whole, deps,
                reads=(Region(f"act:{i}"), Region(f"weights:{layer.name}")),
                writes=tuple(writes),
                layer=layer.name, phase="fp",
            )
        else:
            producer = _add_sliced_forward(graph, layer, executor, i, cells,
                                           batch, training, deps)
    return graph, cells


def _add_sliced_forward(graph: TaskGraph, layer: Any,
                        executor: "ParallelExecutor", i: int,
                        cells: list[Any], batch: int, training: bool,
                        deps: tuple[TaskNode, ...]) -> TaskNode:
    from repro.runtime.parallel import adopt_slice

    ranges = executor.pool.assignment(batch)
    ctx: dict[str, Any] = {}
    L = layer.name

    def prep() -> None:
        x = cells[i]
        if x.ndim != 4 or x.shape[1:] != layer.spec.input_shape:
            raise ShapeError(
                f"layer {layer.name}: batch input shape {x.shape} != "
                f"(B, *{layer.spec.input_shape})"
            )
        padded = layer._pad_batch(x)
        if training:
            layer._cached_padded_input = padded
        ctx["out"], ctx["tasks"] = executor.slice_plan(
            "forward", padded, layer.weights
        )

    prep_node = graph.add_node(
        f"fp/{layer.name}/prep", prep, deps,
        reads=(Region(f"act:{i}"), Region(f"weights:{L}")),
        writes=(Region(f"cache:{L}"), Region(f"plan:{L}:fp"))
        + _shm_regions(executor),
        layer=layer.name, phase="fp",
    )
    range_nodes = []
    for r, (lo, hi) in enumerate(ranges):
        def run_range(r: int = r) -> None:
            task = ctx["tasks"][r]
            adopt_slice(ctx["out"], task, task.run())

        range_nodes.append(graph.add_node(
            f"fp/{layer.name}/{lo}:{hi}", run_range, (prep_node,),
            reads=(Region(f"plan:{L}:fp"), Region(f"weights:{L}")),
            writes=(Region(f"act:{i + 1}", lo, hi),
                    Region(f"ws:{L}:fp", atomic=True)),
            layer=layer.name, phase="fp", lo=lo, hi=hi,
        ))

    def finish() -> None:
        out = ctx["out"]
        out += layer.bias[None, :, None, None]
        cells[i + 1] = out

    return graph.add_node(
        f"fp/{layer.name}/finish", finish, tuple(range_nodes),
        reads=(Region(f"plan:{L}:fp"), Region(f"weights:{L}")),
        writes=(Region(f"act:{i + 1}"),),
        layer=layer.name, phase="fp",
    )


def build_backward_graph(network: "Network", out_error: np.ndarray
                         ) -> tuple[TaskGraph, list[Any]]:
    """Compile one backward pass; ``ecells[0]`` holds the input error.

    This is where the barriers die: a sliced conv forks into a dW chain
    (prep -> per-range partials -> fixed-order reduce) and a BP-data
    chain (prep -> per-range slices -> unpad), and the next layer down
    depends only on the BP-data chain -- so layer N-1's backward overlaps
    layer N's dW reduction, which the barrier path serialized.
    """
    from repro.nn.layers.conv import ConvLayer

    graph = TaskGraph(name=f"{network.name}/bp")
    count = len(network.layers)
    ecells: list[Any] = [None] * (count + 1)
    ecells[count] = out_error
    batch = int(out_error.shape[0])
    producer: TaskNode | None = None
    for i in reversed(range(count)):
        layer = network.layers[i]
        deps = (producer,) if producer is not None else ()
        executor = (_sliced_executor(layer, layer._bp_engine)
                    if isinstance(layer, ConvLayer) else None)
        if executor is None:
            def whole(i: int = i, layer: Any = layer) -> None:
                ecells[i] = layer.backward(ecells[i + 1])

            reads = [Region(f"err:{i + 1}"), Region(f"weights:{layer.name}"),
                     Region(f"state:{layer.name}")]
            if isinstance(layer, ConvLayer):
                # Unsliced conv backward consumes the forward's cache.
                reads.append(Region(f"cache:{layer.name}"))
            producer = graph.add_node(
                f"bp/{layer.name}", whole, deps,
                reads=tuple(reads),
                writes=(Region(f"err:{i}"), Region(f"grad:{layer.name}"),
                        Region(f"state:{layer.name}")),
                layer=layer.name, phase="bp",
            )
        else:
            producer = _add_sliced_backward(graph, layer, executor, i,
                                            ecells, batch, deps)
    return graph, ecells


def _add_sliced_backward(graph: TaskGraph, layer: Any,
                         executor: "ParallelExecutor", i: int,
                         ecells: list[Any], batch: int,
                         deps: tuple[TaskNode, ...]) -> TaskNode:
    from repro.core.goodput import measure_sparsity, nonzero_conv_flops
    from repro.runtime.parallel import adopt_slice

    ranges = executor.pool.assignment(batch)
    ctx: dict[str, Any] = {}
    L = layer.name

    def head() -> None:
        err = ecells[i + 1]
        if layer._cached_padded_input is None:
            raise ShapeError(f"layer {layer.name}: backward before forward")
        layer.last_error_sparsity = measure_sparsity(err)
        ctx["begun"] = time.perf_counter()

    head_node = graph.add_node(
        f"bp/{layer.name}/head", head, deps,
        reads=(Region(f"err:{i + 1}"), Region(f"cache:{L}")),
        writes=(Region(f"state:{L}"),),
        layer=layer.name, phase="bp",
    )

    # dW chain: per-range partials reduced in fixed range order.
    def dw_prep() -> None:
        ctx["dw_tasks"] = executor.weights_plan(
            ecells[i + 1], layer._cached_padded_input
        )
        ctx["partials"] = [None] * len(ranges)

    dw_prep_node = graph.add_node(
        f"bp/{layer.name}/dw_prep", dw_prep, (head_node,),
        reads=(Region(f"err:{i + 1}"), Region(f"cache:{L}")),
        writes=(Region(f"plan:{L}:dw"), Region(f"partial:{L}"))
        + _shm_regions(executor),
        layer=layer.name, phase="bp",
    )
    dw_nodes = []
    for r, (lo, hi) in enumerate(ranges):
        def run_dw(r: int = r) -> None:
            ctx["partials"][r] = ctx["dw_tasks"][r].run()

        dw_nodes.append(graph.add_node(
            f"bp/{layer.name}/dw/{lo}:{hi}", run_dw, (dw_prep_node,),
            reads=(Region(f"plan:{L}:dw"),),
            writes=(Region(f"partial:{L}", r, r + 1),
                    Region(f"ws:{L}:bp", atomic=True)),
            layer=layer.name, phase="bp", lo=lo, hi=hi,
        ))

    def dw_reduce() -> None:
        err = ecells[i + 1]
        total = np.zeros(layer.padded_spec.weight_shape, dtype=err.dtype)
        for partial in ctx["partials"]:
            if partial is not None:
                total += partial
        d_bias = err.sum(axis=(0, 2, 3))
        # Side effects last, so a retried raise above cannot double-apply.
        layer.d_weights += total
        layer.d_bias += d_bias

    dw_reduce_node = graph.add_node(
        f"bp/{layer.name}/dw_reduce", dw_reduce, tuple(dw_nodes),
        reads=(Region(f"err:{i + 1}"),)
        + tuple(Region(f"partial:{L}", r, r + 1)
                for r in range(len(ranges))),
        writes=(Region(f"grad:{L}"),),
        layer=layer.name, phase="bp",
        reduce_buffer=f"partial:{L}",
        reduce_order=tuple(range(len(ranges))),
    )

    # BP-data chain.  Its prep waits on dw_prep only because both publish
    # into the same (unlocked) ShmArena under the process backend; the
    # range nodes of the two chains still overlap freely.
    def bd_prep() -> None:
        ctx["bd_out"], ctx["bd_tasks"] = executor.slice_plan(
            "backward_data", ecells[i + 1], layer.weights
        )

    bd_prep_node = graph.add_node(
        f"bp/{layer.name}/bd_prep", bd_prep, (head_node, dw_prep_node),
        reads=(Region(f"err:{i + 1}"), Region(f"weights:{L}")),
        writes=(Region(f"plan:{L}:bd"),) + _shm_regions(executor),
        layer=layer.name, phase="bp",
    )
    bd_nodes = []
    for r, (lo, hi) in enumerate(ranges):
        def run_bd(r: int = r) -> None:
            task = ctx["bd_tasks"][r]
            adopt_slice(ctx["bd_out"], task, task.run())

        bd_nodes.append(graph.add_node(
            f"bp/{layer.name}/bd/{lo}:{hi}", run_bd, (bd_prep_node,),
            reads=(Region(f"plan:{L}:bd"), Region(f"weights:{L}")),
            writes=(Region(f"bdout:{L}", lo, hi),
                    Region(f"ws:{L}:bp", atomic=True)),
            layer=layer.name, phase="bp", lo=lo, hi=hi,
        ))

    def bd_finish() -> None:
        padded = ctx["bd_out"]
        p = layer.spec.pad
        ecells[i] = padded if p == 0 else padded[:, :, p:-p, p:-p]

    bd_finish_node = graph.add_node(
        f"bp/{layer.name}/bd_finish", bd_finish, tuple(bd_nodes),
        reads=(Region(f"plan:{L}:bd"), Region(f"bdout:{L}")),
        writes=(Region(f"err:{i}"),),
        layer=layer.name, phase="bp",
    )

    # Bookkeeping once both chains land: flop counters and goodput
    # gauges, mirroring the barrier path's per-backward emission.
    def done() -> None:
        sparsity = layer.last_error_sparsity
        total_flops = 2.0 * batch * layer.padded_spec.flops
        useful_flops = nonzero_conv_flops(total_flops, sparsity)
        elapsed = max(time.perf_counter() - ctx["begun"], 1e-9)
        telemetry.add("conv.flops.total", total_flops)
        telemetry.add("conv.flops.useful", useful_flops)
        telemetry.gauge(f"goodput.{layer.name}", useful_flops / elapsed)
        telemetry.gauge(f"throughput.{layer.name}", total_flops / elapsed)

    graph.add_node(f"bp/{layer.name}/done", done,
                   (dw_reduce_node, bd_finish_node),
                   reads=(Region(f"state:{L}"),),
                   layer=layer.name, phase="bp")
    # Downstream layers wait on BP-data only -- the overlap win.
    return bd_finish_node


def dag_worker_count(network: "Network") -> int:
    """Scheduler width for a network: the widest non-serial conv pool."""
    workers = 1
    for layer in network.conv_layers():
        pool = getattr(layer, "_pool", None)
        if pool is not None and pool.backend_name != "serial":
            workers = max(workers, pool.num_workers)
    return workers


class NetworkDagRunner:
    """Runs a network's FP/BP passes as task graphs.

    Graphs are rebuilt per pass (they capture the current engines, batch
    geometry and training flag); the scheduler is reused.  With every
    conv pool on the serial backend the scheduler stays single-threaded,
    so ``scheduler="dag"`` remains a valid determinism reference there.
    """

    def __init__(self, network: "Network",
                 num_workers: int | None = None) -> None:
        self.network = network
        self.scheduler = DagScheduler(
            num_workers or dag_worker_count(network)
        )

    def forward(self, inputs: np.ndarray, training: bool = True) -> np.ndarray:
        graph, cells = build_forward_graph(self.network, inputs, training)
        with telemetry.span("dag/forward", nodes=len(graph),
                            graph_id=graph.graph_id,
                            workers=self.scheduler.num_workers):
            self.scheduler.run(graph)
        return cells[-1]

    def backward(self, out_error: np.ndarray) -> np.ndarray:
        graph, ecells = build_backward_graph(self.network, out_error)
        with telemetry.span("dag/backward", nodes=len(graph),
                            graph_id=graph.graph_id,
                            workers=self.scheduler.num_workers):
            self.scheduler.run(graph)
        return ecells[0]
