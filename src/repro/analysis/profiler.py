"""Wall-clock per-layer profiling of real training runs.

The paper's framework selects techniques from *measured* per-layer
timings; this profiler provides that measurement on a whole network: it
wraps each layer's forward/backward with timers, runs real training
steps, and reports per-layer, per-phase wall-clock totals -- the data a
user needs to see where spg-CNN's optimizations land in their model.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.analysis.reporting import format_table
from repro.errors import ReproError
from repro.nn.network import Network


@dataclass
class LayerTiming:
    """Accumulated wall-clock for one layer."""

    name: str
    kind: str
    forward_seconds: float = 0.0
    backward_seconds: float = 0.0
    calls: int = 0

    @property
    def total_seconds(self) -> float:
        return self.forward_seconds + self.backward_seconds


@dataclass
class ProfileReport:
    """Per-layer timings of a profiled run."""

    layers: list[LayerTiming] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return sum(t.total_seconds for t in self.layers)

    def fraction(self, layer_name: str) -> float:
        """Fraction of total time spent in the named layer."""
        total = self.total_seconds
        if total == 0:
            return 0.0
        for timing in self.layers:
            if timing.name == layer_name:
                return timing.total_seconds / total
        raise ReproError(f"no timing recorded for layer {layer_name!r}")

    def hottest(self) -> LayerTiming:
        """The layer with the largest total time."""
        if not self.layers:
            raise ReproError("empty profile")
        return max(self.layers, key=lambda t: t.total_seconds)

    def describe(self) -> str:
        """Formatted per-layer breakdown."""
        total = self.total_seconds or 1.0
        rows = [
            [t.name, t.kind, f"{t.forward_seconds * 1e3:.2f}",
             f"{t.backward_seconds * 1e3:.2f}",
             f"{100 * t.total_seconds / total:.1f}%"]
            for t in self.layers
        ]
        return format_table(
            ["layer", "kind", "FP (ms)", "BP (ms)", "share"],
            rows,
            title=f"profile: {self.total_seconds * 1e3:.2f} ms total",
        )


class NetworkProfiler:
    """Context manager instrumenting a network's layers with timers."""

    def __init__(self, network: Network):
        self.network = network
        self.report = ProfileReport()
        self._originals: list[tuple] = []

    def __enter__(self) -> "NetworkProfiler":
        for layer in self.network.layers:
            timing = LayerTiming(name=layer.name, kind=layer.kind)
            self.report.layers.append(timing)
            self._instrument(layer, timing)
        return self

    def __exit__(self, *exc_info) -> None:
        for layer, _forward, _backward in self._originals:
            # Remove the instance-level wrappers so lookups fall back to
            # the class methods.
            del layer.forward
            del layer.backward
        self._originals.clear()

    def _instrument(self, layer, timing: LayerTiming) -> None:
        original_forward = layer.forward
        original_backward = layer.backward

        def timed_forward(inputs, training=True):
            start = time.perf_counter()
            try:
                return original_forward(inputs, training=training)
            finally:
                timing.forward_seconds += time.perf_counter() - start
                timing.calls += 1

        def timed_backward(out_error):
            start = time.perf_counter()
            try:
                return original_backward(out_error)
            finally:
                timing.backward_seconds += time.perf_counter() - start

        layer.forward = timed_forward
        layer.backward = timed_backward
        self._originals.append((layer, original_forward, original_backward))


def profile_training_steps(network: Network, images, labels,
                           steps: int = 1, learning_rate: float = 0.01
                           ) -> ProfileReport:
    """Profile ``steps`` SGD steps on the given minibatch."""
    from repro.nn.sgd import SGDTrainer

    if steps <= 0:
        raise ReproError(f"steps must be positive, got {steps}")
    trainer = SGDTrainer(network, learning_rate=learning_rate)
    with NetworkProfiler(network) as profiler:
        for _ in range(steps):
            trainer.step(images, labels)
    return profiler.report
