"""Wall-clock per-layer profiling of real training runs.

The paper's framework selects techniques from *measured* per-layer
timings; this profiler provides that measurement on a whole network: it
wraps each layer's forward/backward with telemetry spans, runs real
training steps, and reports per-layer, per-phase wall-clock totals -- the
data a user needs to see where spg-CNN's optimizations land in their
model.

The profiler is built on :mod:`repro.telemetry`: entering activates a
private :class:`~repro.telemetry.TelemetryCollector` and installs
instance-level wrappers that record one span per layer call.  The
wrappers carry a per-profiler marker attribute, so the report aggregates
only this profiler's own spans -- two profilers can nest on the same
network without corrupting each other -- and exiting restores exactly the
callables that were installed before (including any pre-existing
instance-level wrapper, e.g. an outer profiler's).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import telemetry
from repro.analysis.reporting import format_table
from repro.errors import ReproError
from repro.nn.network import Network

#: Attribute key marking a span as emitted by a specific profiler.
_MARK = "profiler"

#: Sentinel: the layer had no instance-level attribute before we wrapped it.
_ABSENT = object()


@dataclass
class LayerTiming:
    """Accumulated wall-clock for one layer."""

    name: str
    kind: str
    forward_seconds: float = 0.0
    backward_seconds: float = 0.0
    calls: int = 0

    @property
    def total_seconds(self) -> float:
        return self.forward_seconds + self.backward_seconds


@dataclass
class ProfileReport:
    """Per-layer timings of a profiled run."""

    layers: list[LayerTiming] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return sum(t.total_seconds for t in self.layers)

    def fraction(self, layer_name: str) -> float:
        """Fraction of total time spent in the named layer."""
        total = self.total_seconds
        if total == 0:
            return 0.0
        for timing in self.layers:
            if timing.name == layer_name:
                return timing.total_seconds / total
        raise ReproError(f"no timing recorded for layer {layer_name!r}")

    def hottest(self) -> LayerTiming:
        """The layer with the largest total time."""
        if not self.layers:
            raise ReproError("empty profile")
        return max(self.layers, key=lambda t: t.total_seconds)

    def describe(self) -> str:
        """Formatted per-layer breakdown."""
        total = self.total_seconds or 1.0
        rows = [
            [t.name, t.kind, f"{t.forward_seconds * 1e3:.2f}",
             f"{t.backward_seconds * 1e3:.2f}",
             f"{100 * t.total_seconds / total:.1f}%"]
            for t in self.layers
        ]
        return format_table(
            ["layer", "kind", "FP (ms)", "BP (ms)", "share"],
            rows,
            title=f"profile: {self.total_seconds * 1e3:.2f} ms total",
        )


class NetworkProfiler:
    """Context manager instrumenting a network's layers with span timers."""

    def __init__(self, network: Network):
        self.network = network
        #: Full trace of the profiled run (spans, counters, gauges,
        #: events), including spans emitted by the layers themselves.
        self.telemetry = telemetry.TelemetryCollector()
        self._token = f"profiler-{id(self)}"
        # (layer, saved instance 'forward', saved instance 'backward');
        # _ABSENT means the lookup fell through to the class method.
        self._originals: list[tuple] = []
        self._collecting = None
        self._entered = False

    # -- lifecycle --------------------------------------------------------

    def __enter__(self) -> "NetworkProfiler":
        if self._entered:
            raise ReproError("profiler is already active; cannot re-enter")
        self._entered = True
        self._collecting = telemetry.collect(self.telemetry)
        self._collecting.__enter__()
        try:
            for layer in self.network.layers:
                self._instrument(layer)
        except BaseException:
            # Partial instrumentation must not leave wrappers behind.
            self._restore()
            raise
        return self

    def __exit__(self, *exc_info) -> None:
        self._restore()

    def _restore(self) -> None:
        if not self._entered:
            return  # idempotent: exiting twice is a no-op
        for layer, saved_forward, saved_backward in reversed(self._originals):
            for attr, saved in (("forward", saved_forward),
                                ("backward", saved_backward)):
                if saved is _ABSENT:
                    layer.__dict__.pop(attr, None)
                else:
                    setattr(layer, attr, saved)
        self._originals.clear()
        self._collecting.__exit__(None, None, None)
        self._collecting = None
        self._entered = False

    # -- instrumentation --------------------------------------------------

    def _instrument(self, layer) -> None:
        saved_forward = layer.__dict__.get("forward", _ABSENT)
        saved_backward = layer.__dict__.get("backward", _ABSENT)
        # Call whatever is currently reachable -- a nested profiler wraps
        # the outer profiler's wrapper, not the class method.
        original_forward = layer.forward
        original_backward = layer.backward
        token = self._token
        name = layer.name

        def timed_forward(inputs, training=True):
            with telemetry.span(f"{name}/fp", layer=name, phase="fp",
                                **{_MARK: token}):
                return original_forward(inputs, training=training)

        def timed_backward(out_error):
            with telemetry.span(f"{name}/bp", layer=name, phase="bp",
                                **{_MARK: token}):
                return original_backward(out_error)

        layer.forward = timed_forward
        layer.backward = timed_backward
        self._originals.append((layer, saved_forward, saved_backward))

    # -- reporting --------------------------------------------------------

    @property
    def report(self) -> ProfileReport:
        """Per-layer timings aggregated from this profiler's spans."""
        report = ProfileReport()
        for layer in self.network.layers:
            timing = LayerTiming(name=layer.name, kind=layer.kind)
            fp = self.telemetry.find_spans(
                layer=layer.name, phase="fp", **{_MARK: self._token}
            )
            bp = self.telemetry.find_spans(
                layer=layer.name, phase="bp", **{_MARK: self._token}
            )
            timing.forward_seconds = sum(s.seconds for s in fp)
            timing.backward_seconds = sum(s.seconds for s in bp)
            timing.calls = len(fp)
            report.layers.append(timing)
        return report


def profile_training_steps(network: Network, images, labels,
                           steps: int = 1, learning_rate: float = 0.01
                           ) -> ProfileReport:
    """Profile ``steps`` SGD steps on the given minibatch."""
    from repro.nn.sgd import SGDTrainer

    if steps <= 0:
        raise ReproError(f"steps must be positive, got {steps}")
    trainer = SGDTrainer(network, learning_rate=learning_rate)
    with NetworkProfiler(network) as profiler:
        for _ in range(steps):
            trainer.step(images, labels)
    return profiler.report
