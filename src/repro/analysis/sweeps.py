"""Design-space sweeps: the Fig. 1 region map as data.

Fig. 1 is a schematic of the (AIT, sparsity) plane; this module makes it
concrete: a grid of synthetic convolutions sweeping the output-feature
count (the paper notes AIT is roughly ``2 x number of features``) against
sparsity levels, each cell classified into its region and annotated with
spg-CNN's technique choice.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.characterization import characterize
from repro.core.convspec import ConvSpec

#: Feature counts sweeping the AIT axis (low to high, log-spaced).
DEFAULT_FEATURE_AXIS: tuple[int, ...] = (16, 32, 64, 128, 256, 512, 1024, 2048)

#: Sparsity levels sweeping the other axis.
DEFAULT_SPARSITY_AXIS: tuple[float, ...] = (0.0, 0.5, 0.8, 0.95)


@dataclass(frozen=True)
class GridCell:
    """One (features, sparsity) cell of the design-space grid."""

    features: int
    sparsity: float
    unfold_ait: float
    region: int
    fp_technique: str
    bp_technique: str


def design_space_grid(
    feature_axis: tuple[int, ...] = DEFAULT_FEATURE_AXIS,
    sparsity_axis: tuple[float, ...] = DEFAULT_SPARSITY_AXIS,
    image: int = 64,
    channels: int = 64,
    kernel: int = 3,
) -> list[GridCell]:
    """Classify a grid of convolutions over the two Fig. 1 axes."""
    cells = []
    for nf in feature_axis:
        spec = ConvSpec(nc=channels, ny=image, nx=image, nf=nf,
                        fy=kernel, fx=kernel)
        for sparsity in sparsity_axis:
            ch = characterize(spec, sparsity=sparsity)
            cells.append(
                GridCell(
                    features=nf,
                    sparsity=sparsity,
                    unfold_ait=ch.unfold_ait,
                    region=int(ch.region),
                    fp_technique=ch.recommended_fp(),
                    bp_technique=ch.recommended_bp(),
                )
            )
    return cells


def render_region_map(cells: list[GridCell]) -> str:
    """Text rendering of the grid: one row per feature count.

    Each cell shows its region digit -- the textual analogue of Fig. 1.
    """
    features = sorted({c.features for c in cells})
    sparsities = sorted({c.sparsity for c in cells})
    by_key = {(c.features, c.sparsity): c for c in cells}
    header = "features\\sparsity  " + "  ".join(f"{s:>5.2f}" for s in sparsities)
    lines = [header, "-" * len(header)]
    for nf in features:
        cells_row = [by_key[(nf, s)] for s in sparsities]
        row = "  ".join(f"{c.region:>5d}" for c in cells_row)
        lines.append(f"{nf:>8d}           {row}")
    return "\n".join(lines)


def region_transitions(cells: list[GridCell]) -> dict[str, int]:
    """AIT-band boundaries along the feature axis (at zero sparsity).

    Returns the first feature count in the moderate and high bands --
    the concrete positions of Fig. 1's vertical region boundaries for
    the sweep's geometry.
    """
    dense = sorted(
        (c for c in cells if c.sparsity == 0.0), key=lambda c: c.features
    )
    transitions: dict[str, int] = {}
    for cell in dense:
        if cell.region == 2 and "moderate_starts_at" not in transitions:
            transitions["moderate_starts_at"] = cell.features
        if cell.region == 0 and "high_starts_at" not in transitions:
            transitions["high_starts_at"] = cell.features
    return transitions
