"""Regeneration of every table and figure in the paper's evaluation.

Each ``figure_*`` / ``table_*`` function computes the data behind one of
the paper's exhibits and returns it in a plain dictionary, so the
benchmark harness can print it and the test suite can assert on its
shape.  The experiment index in DESIGN.md maps exhibits to these
functions.

All performance exhibits use the calibrated Xeon E5-2650 machine model;
Fig. 3b is a real (small-scale) training measurement.
"""

from __future__ import annotations

import math

from repro.core.characterization import region_pair
from repro.core.convspec import ConvSpec
from repro.data.tables import (
    BENCHMARK_ORDER,
    TABLE1_CONVS,
    benchmark_layers,
)
from repro.machine.baselines import adam_profile
from repro.machine.executor import fig9_configs, training_throughput
from repro.machine.gemm_model import (
    gemm_in_parallel_conv_time,
    parallel_gemm_conv_time,
    percore_gflops,
)
from repro.machine.sparse_model import sparse_bp_time, sparse_goodput
from repro.machine.spec import MachineSpec, xeon_e5_2650
from repro.machine.stencil_model import stencil_fp_time, stencil_percore_gflops

CORE_COUNTS: tuple[int, ...] = (1, 2, 4, 8, 16)
FIG4E_SPARSITIES: tuple[float, ...] = (0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99)
FIG4F_SPARSITIES: tuple[float, ...] = (0.0, 0.5, 0.75, 0.88, 0.94, 0.97, 0.99)


def _machine(machine: MachineSpec | None) -> MachineSpec:
    return machine or xeon_e5_2650()


def table1(machine: MachineSpec | None = None) -> dict:
    """Table 1: the six benchmark convolutions and their AIT/regions."""
    rows = []
    for i, spec in enumerate(TABLE1_CONVS):
        rows.append(
            {
                "id": i,
                "params": f"{spec.nx},{spec.nf},{spec.nc},{spec.fx}",
                "intrinsic_ait": math.floor(spec.intrinsic_ait),
                "unfold_gemm_ait": math.floor(spec.unfold_gemm_ait),
                "region": region_pair(spec),
            }
        )
    return {"rows": rows}


def figure3a(machine: MachineSpec | None = None) -> dict:
    """Fig. 3a: Parallel-GEMM per-core GFlops vs cores, Table 1 convs."""
    m = _machine(machine)
    series = {
        spec.name: [percore_gflops(spec, "parallel-gemm", m, c) for c in CORE_COUNTS]
        for spec in TABLE1_CONVS
    }
    return {"cores": CORE_COUNTS, "series": series}


def figure4a(machine: MachineSpec | None = None) -> dict:
    """Fig. 4a: GEMM-in-Parallel per-core GFlops vs cores."""
    m = _machine(machine)
    series = {
        spec.name: [
            percore_gflops(spec, "gemm-in-parallel", m, c) for c in CORE_COUNTS
        ]
        for spec in TABLE1_CONVS
    }
    return {"cores": CORE_COUNTS, "series": series}


def figure4b(machine: MachineSpec | None = None, batch: int = 16) -> dict:
    """Fig. 4b: GEMM-in-Parallel speedup over Parallel-GEMM vs cores."""
    m = _machine(machine)
    series = {}
    for spec in TABLE1_CONVS:
        values = []
        for c in CORE_COUNTS:
            pg = sum(
                parallel_gemm_conv_time(spec, ph, batch, m, c, include_unfold=False)
                for ph in ("fp", "bp")
            )
            gip = sum(
                gemm_in_parallel_conv_time(spec, ph, batch, m, c, include_unfold=False)
                for ph in ("fp", "bp")
            )
            values.append(pg / gip)
        series[spec.name] = values
    return {"cores": CORE_COUNTS, "series": series}


def figure4c(machine: MachineSpec | None = None) -> dict:
    """Fig. 4c: Stencil-Kernel (FP) per-core GFlops vs cores."""
    m = _machine(machine)
    series = {
        spec.name: [stencil_percore_gflops(spec, m, c) for c in CORE_COUNTS]
        for spec in TABLE1_CONVS
    }
    return {"cores": CORE_COUNTS, "series": series}


def figure4d(machine: MachineSpec | None = None) -> dict:
    """Fig. 4d: Stencil-Kernel (FP) speedup over GEMM-in-Parallel."""
    m = _machine(machine)
    series = {}
    for spec in TABLE1_CONVS:
        values = []
        for c in CORE_COUNTS:
            gip = gemm_in_parallel_conv_time(spec, "fp", c, m, c, include_unfold=True)
            stencil = stencil_fp_time(spec, c, m, c)
            values.append(gip / stencil)
        series[spec.name] = values
    return {"cores": CORE_COUNTS, "series": series}


def figure4e(machine: MachineSpec | None = None, cores: int = 16) -> dict:
    """Fig. 4e: Sparse-Kernel (BP) goodput vs sparsity at 16 cores."""
    m = _machine(machine)
    series = {
        spec.name: [sparse_goodput(spec, s, m, cores) for s in FIG4E_SPARSITIES]
        for spec in TABLE1_CONVS
    }
    return {"sparsity": FIG4E_SPARSITIES, "series": series}


def figure4f(machine: MachineSpec | None = None, cores: int = 16,
             batch: int = 16) -> dict:
    """Fig. 4f: Sparse-Kernel (BP) speedup over GEMM-in-Parallel vs sparsity."""
    m = _machine(machine)
    series = {}
    for spec in TABLE1_CONVS:
        gip = gemm_in_parallel_conv_time(spec, "bp", batch, m, cores)
        series[spec.name] = [
            gip / sparse_bp_time(spec, batch, s, m, cores) for s in FIG4F_SPARSITIES
        ]
    return {"sparsity": FIG4F_SPARSITIES, "series": series}


def table2() -> dict:
    """Table 2: convolution specifications of the four benchmarks."""
    rows = []
    for bench in BENCHMARK_ORDER:
        for spec in benchmark_layers(bench):
            rows.append(
                {
                    "benchmark": bench,
                    "layer": spec.name,
                    "params": f"{spec.nx},{spec.nf},{spec.nc},{spec.fx},{spec.sx}",
                }
            )
    return {"rows": rows}


def figure8(machine: MachineSpec | None = None, cores: int = 16,
            batch: int = 16, sparsity: float = 0.85) -> dict:
    """Fig. 8: per-layer FP/BP speedups over Parallel-GEMM (85% sparsity).

    For each Table 2 layer: the GEMM-in-Parallel FP speedup, the total FP
    speedup with Stencil-Kernel where it wins (the paper's green bars add
    to the blue only when stencil helps), and the Sparse-Kernel BP
    speedup.
    """
    m = _machine(machine)
    profile = adam_profile().gemm
    rows = []
    for bench in BENCHMARK_ORDER:
        for spec in benchmark_layers(bench):
            pg_fp = parallel_gemm_conv_time(spec, "fp", batch, m, cores, profile)
            gip_fp = gemm_in_parallel_conv_time(spec, "fp", batch, m, cores, profile)
            st_fp = stencil_fp_time(spec, batch, m, cores)
            pg_bp = parallel_gemm_conv_time(spec, "bp", batch, m, cores, profile)
            sp_bp = sparse_bp_time(spec, batch, sparsity, m, cores)
            best_fp = min(gip_fp, st_fp)
            rows.append(
                {
                    "benchmark": bench,
                    "layer": spec.name,
                    "fp_gip_speedup": pg_fp / gip_fp,
                    "fp_best_speedup": pg_fp / best_fp,
                    "fp_uses_stencil": st_fp < gip_fp,
                    "bp_sparse_speedup": pg_bp / sp_bp,
                }
            )
    return {"rows": rows, "cores": cores, "sparsity": sparsity}


def figure9(machine: MachineSpec | None = None, sparsity: float = 0.85,
            conv_specs: tuple[ConvSpec, ...] | None = None) -> dict:
    """Fig. 9: CIFAR-10 end-to-end images/second vs cores, five configs."""
    m = _machine(machine)
    convs = conv_specs or benchmark_layers("cifar-10")
    cores = (1, 2, 4, 8, 16, 32)
    series = {
        cfg.label: [training_throughput(convs, cfg, m, c) for c in cores]
        for cfg in fig9_configs(sparsity)
    }
    return {"cores": cores, "series": series}
