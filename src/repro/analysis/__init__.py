"""Experiment regeneration and reporting."""

from repro.analysis.reporting import format_series, format_table

__all__ = ["format_series", "format_table"]
