"""Goodput instrumentation for live engine executions (Sec. 3.3).

Wraps a convolution engine and produces :class:`GoodputReport` objects
for each backward pass: total flops come from the convolution's shape,
useful flops from the measured sparsity of the incoming error gradient,
and elapsed time from a wall clock.  This is the measurement behind the
paper's goodput claims, applied to this repository's own kernels.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro import telemetry
from repro.core.convspec import ConvSpec
from repro.core.goodput import GoodputReport, measure_sparsity
from repro.errors import ReproError
from repro.ops.engine import ConvEngine


@dataclass
class GoodputLog:
    """Accumulated goodput reports from metered executions."""

    reports: list[GoodputReport] = field(default_factory=list)

    def mean_goodput(self) -> float:
        """Average useful flops/s across the logged passes."""
        if not self.reports:
            raise ReproError("no goodput reports logged")
        return float(np.mean([r.goodput for r in self.reports]))

    def mean_efficiency(self) -> float:
        """Average goodput/throughput across the logged passes."""
        if not self.reports:
            raise ReproError("no goodput reports logged")
        return float(np.mean([r.efficiency for r in self.reports]))


class GoodputMeter:
    """Measures the goodput of an engine's backward passes."""

    def __init__(self, engine: ConvEngine):
        self.engine = engine
        self.spec: ConvSpec = engine.spec
        self.log = GoodputLog()

    def backward(self, out_error: np.ndarray, weights: np.ndarray,
                 inputs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Run both BP computations, logging one goodput report.

        Returns ``(input_error, weight_gradient)``.
        """
        batch = out_error.shape[0]
        sparsity = measure_sparsity(out_error)
        total_flops = 2.0 * batch * self.spec.flops  # EI + dW, dense count
        nonzero_flops = total_flops * (1.0 - sparsity)
        with telemetry.span("goodput/bp", engine=self.engine.name,
                            batch=int(batch), sparsity=sparsity):
            start = time.perf_counter()
            in_error = self.engine.backward_data(out_error, weights)
            dw = self.engine.backward_weights(out_error, inputs)
            elapsed = time.perf_counter() - start
        report = GoodputReport(
            total_flops=total_flops,
            nonzero_flops=nonzero_flops,
            seconds=max(elapsed, 1e-9),
        )
        self.log.reports.append(report)
        telemetry.add("goodput.flops.total", total_flops)
        telemetry.add("goodput.flops.useful", nonzero_flops)
        telemetry.gauge("goodput.measured", report.goodput)
        telemetry.gauge("goodput.efficiency", report.efficiency)
        return in_error, dw
