"""Plain-text reporting of experiment tables and series.

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers keep that formatting consistent.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned ASCII table."""
    cells = [[str(h) for h in headers]] + [[_fmt(v) for v in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[float]],
    title: str = "",
    precision: int = 2,
) -> str:
    """Render one-figure-worth of named series against a shared x axis."""
    headers = [x_label] + [_fmt(x) for x in x_values]
    rows = [
        [name] + [f"{v:.{precision}f}" for v in values]
        for name, values in series.items()
    ]
    return format_table(headers, rows, title=title)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)
