"""Analytical cluster-training model (paper Sec. 6).

"The time to train a model is therefore a function of the throughput of
the worker machines (inputs processed per second) and the latency of
synchronizing model parameters.  Our work ... could improve the
throughput of each worker machine, and therefore help to accelerate the
training of large CNNs that are compute bound."

This model quantifies that claim: cluster throughput is the aggregate of
per-worker throughput (taken from the single-machine Fig. 9 executor,
under any of the five configurations) discounted by the parameter-sync
duty cycle.  It exposes the compute-bound -> communication-bound
transition: speeding workers up with spg-CNN shifts the knee to smaller
sync intervals / fewer workers, exactly the interaction the paper notes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.convspec import ConvSpec
from repro.errors import MachineModelError
from repro.machine.executor import TrainingConfig, training_throughput
from repro.machine.spec import MachineSpec


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster of multicore worker machines."""

    num_workers: int
    machine: MachineSpec
    cores_per_worker: int
    #: Point-to-point bandwidth between a worker and the parameter
    #: servers (bytes/s), e.g. 10 GbE ~ 1.25e9.
    network_bandwidth: float
    #: Fixed per-synchronization latency (round trips, serialization).
    sync_latency: float = 1e-3

    def __post_init__(self) -> None:
        if self.num_workers <= 0 or self.cores_per_worker <= 0:
            raise MachineModelError("num_workers and cores_per_worker must be positive")
        if self.network_bandwidth <= 0 or self.sync_latency < 0:
            raise MachineModelError("invalid network parameters")


def sync_time(cluster: ClusterSpec, model_bytes: int) -> float:
    """Time for one worker's parameter synchronization (push + pull)."""
    if model_bytes < 0:
        raise MachineModelError(f"model_bytes must be non-negative, got {model_bytes}")
    return cluster.sync_latency + 2 * model_bytes / cluster.network_bandwidth


def worker_throughput(
    conv_specs: tuple[ConvSpec, ...],
    config: TrainingConfig,
    cluster: ClusterSpec,
) -> float:
    """Images/second of one worker machine under ``config``."""
    return training_throughput(
        conv_specs, config, cluster.machine, cluster.cores_per_worker
    )


def cluster_throughput(
    conv_specs: tuple[ConvSpec, ...],
    config: TrainingConfig,
    cluster: ClusterSpec,
    model_bytes: int,
    images_per_sync: int,
) -> float:
    """Aggregate cluster images/second with periodic parameter sync.

    Each worker alternates computing ``images_per_sync`` inputs with one
    parameter exchange; syncing overlaps across workers but not with a
    worker's own compute (the conservative ADAM-style accounting).
    """
    if images_per_sync <= 0:
        raise MachineModelError(
            f"images_per_sync must be positive, got {images_per_sync}"
        )
    per_worker = worker_throughput(conv_specs, config, cluster)
    compute_time = images_per_sync / per_worker
    cycle = compute_time + sync_time(cluster, model_bytes)
    return cluster.num_workers * images_per_sync / cycle


def communication_bound_fraction(
    conv_specs: tuple[ConvSpec, ...],
    config: TrainingConfig,
    cluster: ClusterSpec,
    model_bytes: int,
    images_per_sync: int,
) -> float:
    """Fraction of each worker cycle spent synchronizing parameters.

    Faster workers (spg-CNN) push this fraction up at a fixed sync
    interval -- the coupling between the paper's contribution and the
    distributed platforms it plugs into.
    """
    per_worker = worker_throughput(conv_specs, config, cluster)
    compute_time = images_per_sync / per_worker
    sync = sync_time(cluster, model_bytes)
    return sync / (compute_time + sync)
