"""Distributed SGD training loops over the parameter-server substrate.

Implements the two synchronization disciplines of the Sec. 6 platforms on
real (small) networks, deterministically: asynchronous execution is
simulated by interleaving worker pushes in a fixed round-robin order with
a configurable *push interval* -- a worker pulls fresh parameters only
every ``sync_interval`` steps, so intermediate pushes land on stale
parameters exactly as in ADAM/DistBelief.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

import numpy as np

from repro.data.synthetic import Dataset
from repro.distributed.parameter_server import (
    ParameterServer,
    Worker,
    shard_dataset,
)
from repro.errors import ReproError
from repro.nn.network import Network


@dataclass
class DistributedRunResult:
    """Summary of one distributed training run."""

    mode: str
    num_workers: int
    steps: int
    losses: list[float] = field(default_factory=list)
    mean_staleness: float = 0.0

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


def _replicate(network: Network) -> Network:
    """Deep-copy a network so each worker owns independent buffers."""
    return copy.deepcopy(network)


class DistributedTrainer:
    """Train a model data-parallel over ``num_workers`` replicas."""

    def __init__(
        self,
        network: Network,
        dataset: Dataset,
        num_workers: int,
        batch_size: int = 8,
        learning_rate: float = 0.05,
        mode: str = "bsp",
        sync_interval: int = 1,
        max_staleness: int | None = None,
        staleness_policy: str = "reject",
    ):
        if mode not in ("bsp", "async"):
            raise ReproError(f"mode must be 'bsp' or 'async', got {mode!r}")
        if sync_interval <= 0:
            raise ReproError(f"sync_interval must be positive, got {sync_interval}")
        self.mode = mode
        self.sync_interval = sync_interval
        self.server = ParameterServer(
            network,
            learning_rate=learning_rate,
            max_staleness=max_staleness,
            staleness_policy=staleness_policy,
        )
        shards = shard_dataset(dataset.images, dataset.labels, num_workers)
        self.workers = [
            Worker(i, _replicate(network), images, labels, batch_size)
            for i, (images, labels) in enumerate(shards)
        ]

    @property
    def num_workers(self) -> int:
        return len(self.workers)

    def _step_bsp(self) -> float:
        """One bulk-synchronous step: average all workers' gradients."""
        for worker in self.workers:
            worker.pull(self.server)
        all_grads, losses = [], []
        for worker in self.workers:
            grads, loss = worker.compute_gradients()
            losses.append(loss)
            all_grads.append(grads)
        averaged = {
            name: np.mean([g[name] for g in all_grads], axis=0)
            for name in all_grads[0]
        }
        self.server.apply_gradients(averaged)
        return float(np.mean(losses))

    def _step_async(self, step: int) -> float:
        """One asynchronous round: each worker computes and pushes in turn.

        Workers only re-pull every ``sync_interval`` rounds, so their
        pushes in between are applied against parameters other workers
        have already moved -- real gradient staleness.
        """
        losses = []
        scale = 1.0 / self.num_workers
        for worker in self.workers:
            if step % self.sync_interval == 0 or worker.pulled_version < 0:
                worker.pull(self.server)
            grads, loss = worker.compute_gradients()
            worker.push(self.server, grads, loss, scale=scale)
            losses.append(loss)
        return float(np.mean(losses))

    def run(self, steps: int) -> DistributedRunResult:
        """Train for ``steps`` global steps; returns the loss history."""
        if steps <= 0:
            raise ReproError(f"steps must be positive, got {steps}")
        result = DistributedRunResult(
            mode=self.mode, num_workers=self.num_workers, steps=steps
        )
        for step in range(steps):
            if self.mode == "bsp":
                result.losses.append(self._step_bsp())
            else:
                result.losses.append(self._step_async(step))
        result.mean_staleness = self.server.mean_staleness()
        return result
