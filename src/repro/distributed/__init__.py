"""Data-parallel distributed training substrate (paper Sec. 6 context)."""

from repro.distributed.cluster_model import (
    ClusterSpec,
    cluster_throughput,
    communication_bound_fraction,
)
from repro.distributed.parameter_server import (
    ParameterServer,
    Worker,
    shard_dataset,
)
from repro.distributed.trainer import DistributedRunResult, DistributedTrainer

__all__ = [
    "ParameterServer",
    "Worker",
    "shard_dataset",
    "DistributedTrainer",
    "DistributedRunResult",
    "ClusterSpec",
    "cluster_throughput",
    "communication_bound_fraction",
]
