"""Data-parallel training with a parameter server (paper Sec. 6 context).

The paper positions spg-CNN inside distributed platforms like Microsoft
ADAM and Google DistBelief: "many worker machines train in parallel on
different subsets of the training data.  Each worker periodically
synchronizes its model parameters with other workers.  The time to train
a model is therefore a function of the throughput of the worker machines
... and the latency of synchronizing model parameters."

This module implements that substrate functionally: a
:class:`ParameterServer` holds the authoritative parameters, and
:class:`Worker` replicas compute gradients on their data shards and
exchange updates under either synchronization discipline:

* ``"bsp"`` -- bulk-synchronous: every worker's gradients for a step are
  averaged before one server update (equivalent to large-batch SGD);
* ``"async"`` -- ADAM/DistBelief-style asynchronous updates: workers push
  whenever they finish, so updates are applied against parameters that
  may be *stale*; staleness is tracked per push.

Staleness is also *bounded*: with ``max_staleness`` set, a push computed
against parameters more than that many versions old is not applied --
the gradient would point somewhere the model no longer is.  The
``staleness_policy`` decides what else happens: ``"reject"`` simply
drops the gradient, ``"refresh"`` additionally re-pulls fresh
parameters into the offending worker so its next step is current.
Rejected pushes stay in the push log (flagged ``applied=False``) and
count into ``ps.pushes.rejected`` telemetry.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import telemetry
from repro.errors import ReproError
from repro.nn.losses import softmax_cross_entropy
from repro.nn.network import Network
from repro.resilience import faults

STALENESS_POLICIES = ("reject", "refresh")


@dataclass
class PushResult:
    """Outcome of one gradient push."""

    worker_id: int
    staleness: int
    loss: float
    #: False when the push was rejected (stale bound) or dropped (fault).
    applied: bool = True


class ParameterServer:
    """Holds the authoritative model parameters and applies updates."""

    def __init__(self, network: Network, learning_rate: float = 0.01,
                 max_staleness: int | None = None,
                 staleness_policy: str = "reject"):
        if learning_rate <= 0:
            raise ReproError(f"learning_rate must be positive, got {learning_rate}")
        if max_staleness is not None and max_staleness < 0:
            raise ReproError(
                f"max_staleness must be non-negative, got {max_staleness}"
            )
        if staleness_policy not in STALENESS_POLICIES:
            raise ReproError(
                f"staleness_policy must be one of {STALENESS_POLICIES}, "
                f"got {staleness_policy!r}"
            )
        self.network = network
        self.learning_rate = learning_rate
        self.max_staleness = max_staleness
        self.staleness_policy = staleness_policy
        #: Monotonic version counter, bumped on every applied update.
        self.version = 0
        self.push_log: list[PushResult] = []

    def admits(self, staleness: int) -> bool:
        """Whether a push at the given staleness is within the bound."""
        return self.max_staleness is None or staleness <= self.max_staleness

    def snapshot(self) -> tuple[int, dict[str, np.ndarray]]:
        """Current version and a copy of every parameter."""
        params = {
            name: param.copy() for name, param, _ in self.network.parameters()
        }
        return self.version, params

    def parameter_bytes(self) -> int:
        """Size of one full model exchange (the sync payload)."""
        return sum(p.nbytes for _, p, _ in self.network.parameters())

    def apply_gradients(self, grads: dict[str, np.ndarray],
                        scale: float = 1.0) -> int:
        """SGD update with the given gradients; returns the new version."""
        for name, param, _ in self.network.parameters():
            if name not in grads:
                raise ReproError(f"missing gradient for parameter {name}")
            param -= self.learning_rate * scale * grads[name]
        self.version += 1
        return self.version

    def record_push(self, result: PushResult) -> None:
        """Log a worker push (staleness statistics for the experiments)."""
        self.push_log.append(result)

    def mean_staleness(self) -> float:
        """Average parameter staleness across all logged pushes."""
        if not self.push_log:
            return 0.0
        return float(np.mean([p.staleness for p in self.push_log]))


class Worker:
    """One data-parallel worker: a model replica plus a data shard."""

    def __init__(self, worker_id: int, network: Network,
                 images: np.ndarray, labels: np.ndarray, batch_size: int):
        if batch_size <= 0:
            raise ReproError(f"batch_size must be positive, got {batch_size}")
        if len(images) == 0:
            raise ReproError(f"worker {worker_id} received an empty shard")
        self.worker_id = worker_id
        self.network = network
        self.images = images
        self.labels = labels
        self.batch_size = batch_size
        self._cursor = 0
        #: Server version the replica's parameters came from.
        self.pulled_version = -1

    def pull(self, server: ParameterServer) -> None:
        """Refresh the replica's parameters from the server."""
        version, params = server.snapshot()
        for name, param, _ in self.network.parameters():
            param[...] = params[name]
        self.pulled_version = version

    def _next_batch(self) -> tuple[np.ndarray, np.ndarray]:
        lo = self._cursor
        hi = min(lo + self.batch_size, len(self.images))
        self._cursor = hi if hi < len(self.images) else 0
        return self.images[lo:hi], self.labels[lo:hi]

    def compute_gradients(self) -> tuple[dict[str, np.ndarray], float]:
        """FP+BP on the next local minibatch; returns (gradients, loss)."""
        batch_x, batch_y = self._next_batch()
        net = self.network
        net.zero_grads()
        logits = net.forward(batch_x, training=True)
        loss, grad = softmax_cross_entropy(logits, batch_y)
        net.backward(grad)
        grads = {name: g.copy() for name, _, g in net.parameters()}
        return grads, loss

    def push(self, server: ParameterServer, grads: dict[str, np.ndarray],
             loss: float, scale: float = 1.0) -> PushResult:
        """Apply this worker's gradients at the server, recording staleness.

        A push can come back unapplied (``result.applied`` False) in two
        cases: an injected network fault dropped it on the wire, or its
        staleness exceeded the server's bound.  Under the ``"refresh"``
        policy a rejected worker immediately re-pulls fresh parameters.
        """
        staleness = server.version - self.pulled_version
        faults.perturb("ps.push", worker=self.worker_id, staleness=staleness)
        if faults.should_drop("ps.push"):
            telemetry.add("ps.pushes.dropped", 1)
            telemetry.event("ps.push_dropped", worker=self.worker_id,
                            staleness=staleness)
            result = PushResult(worker_id=self.worker_id, staleness=staleness,
                                loss=loss, applied=False)
            server.record_push(result)
            return result
        if not server.admits(staleness):
            telemetry.add("ps.pushes.rejected", 1)
            telemetry.event("ps.push_rejected", worker=self.worker_id,
                            staleness=staleness,
                            bound=server.max_staleness,
                            policy=server.staleness_policy)
            result = PushResult(worker_id=self.worker_id, staleness=staleness,
                                loss=loss, applied=False)
            server.record_push(result)
            if server.staleness_policy == "refresh":
                self.pull(server)
            return result
        server.apply_gradients(grads, scale=scale)
        result = PushResult(worker_id=self.worker_id, staleness=staleness,
                            loss=loss)
        server.record_push(result)
        return result


def shard_dataset(images: np.ndarray, labels: np.ndarray,
                  num_workers: int) -> list[tuple[np.ndarray, np.ndarray]]:
    """Split a dataset into contiguous, near-equal worker shards."""
    if num_workers <= 0:
        raise ReproError(f"num_workers must be positive, got {num_workers}")
    if len(images) < num_workers:
        raise ReproError(
            f"cannot shard {len(images)} examples over {num_workers} workers"
        )
    bounds = np.linspace(0, len(images), num_workers + 1, dtype=int)
    return [
        (images[lo:hi], labels[lo:hi])
        for lo, hi in zip(bounds[:-1], bounds[1:])
    ]
