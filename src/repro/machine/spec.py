"""Machine descriptions for the analytical performance model.

The paper's experiments run on an Intel Xeon E5-2650 with 16 physical
cores (32 logical with hyper-threading) and a peak of 41.6 GFlops per
core, with OpenBLAS/MKL GEMM.  :func:`xeon_e5_2650` encodes that machine;
the remaining parameters (bandwidths, overheads) are calibrated so the
model reproduces the paper's measured curves (see EXPERIMENTS.md).

All bandwidths are bytes/second; times are seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import MachineModelError


@dataclass(frozen=True)
class MachineSpec:
    """Parameters of the modelled multicore CPU."""

    name: str
    physical_cores: int
    logical_cores: int
    peak_flops_per_core: float
    #: Shared DRAM bandwidth (all cores combined).
    dram_bandwidth: float
    #: Private-cache (L2) streaming bandwidth per core.
    cache_bandwidth_per_core: float
    #: Straight-line copy bandwidth per core (memcpy of long runs).
    copy_bandwidth_per_core: float
    l2_bytes: int
    llc_bytes: int
    vector_width: int
    num_vector_registers: int
    tlb_entries: int
    page_size: int
    #: Fork/join cost of one parallel region, per participating core pair
    #: (total barrier cost grows logarithmically with the core count).
    sync_base_seconds: float
    #: Marginal throughput of a hyper-thread relative to a physical core.
    smt_yield: float

    def __post_init__(self) -> None:
        if self.physical_cores <= 0 or self.logical_cores < self.physical_cores:
            raise MachineModelError(
                f"invalid core counts: physical={self.physical_cores}, "
                f"logical={self.logical_cores}"
            )
        positive = (
            "peak_flops_per_core",
            "dram_bandwidth",
            "cache_bandwidth_per_core",
            "copy_bandwidth_per_core",
            "l2_bytes",
            "llc_bytes",
            "vector_width",
            "num_vector_registers",
            "tlb_entries",
            "page_size",
        )
        for attr in positive:
            if getattr(self, attr) <= 0:
                raise MachineModelError(f"{attr} must be positive")
        if self.sync_base_seconds < 0 or not 0 <= self.smt_yield <= 1:
            raise MachineModelError("invalid sync/SMT parameters")

    def effective_cores(self, cores: int) -> float:
        """Compute throughput-equivalent cores for ``cores`` workers.

        Up to the physical core count each worker is a full core; beyond
        it, hyper-threads contribute only ``smt_yield`` of a core each.
        """
        if cores <= 0:
            raise MachineModelError(f"cores must be positive, got {cores}")
        if cores > self.logical_cores:
            raise MachineModelError(
                f"{cores} cores requested but machine has {self.logical_cores} logical"
            )
        if cores <= self.physical_cores:
            return float(cores)
        return self.physical_cores + (cores - self.physical_cores) * self.smt_yield

    def sync_overhead(self, cores: int) -> float:
        """Fork/join barrier cost of one parallel region over ``cores``."""
        if cores <= 1:
            return 0.0
        # Tree barrier: log2 rounds, each costing the base latency.
        rounds = max(1, (cores - 1).bit_length())
        return self.sync_base_seconds * rounds

    def with_cores(self, physical: int, logical: int | None = None) -> "MachineSpec":
        """A copy of this spec with a different core count (for sweeps)."""
        return replace(
            self,
            physical_cores=physical,
            logical_cores=logical if logical is not None else physical,
        )


def xeon_e5_2650() -> MachineSpec:
    """The paper's evaluation machine (Sec. 3 / Sec. 5.1).

    Peak per-core flops comes from the paper directly.  Bandwidths are the
    nominal Sandy Bridge-EP figures (quad-channel DDR3-1600 per socket);
    the remaining constants are calibrated against the paper's curves.
    """
    return MachineSpec(
        name="Intel Xeon E5-2650 (16 cores, 32 threads)",
        physical_cores=16,
        logical_cores=32,
        peak_flops_per_core=41.6e9,
        dram_bandwidth=51.2e9,
        cache_bandwidth_per_core=80e9,
        copy_bandwidth_per_core=8e9,
        l2_bytes=256 * 1024,
        llc_bytes=20 * 1024 * 1024,
        vector_width=8,
        num_vector_registers=16,
        tlb_entries=64,
        page_size=4096,
        sync_base_seconds=15e-6,
        smt_yield=0.20,
    )


def laptop_4core() -> MachineSpec:
    """A small generic machine, handy for examples and tests."""
    return MachineSpec(
        name="generic 4-core laptop",
        physical_cores=4,
        logical_cores=8,
        peak_flops_per_core=50e9,
        dram_bandwidth=30e9,
        cache_bandwidth_per_core=100e9,
        copy_bandwidth_per_core=10e9,
        l2_bytes=512 * 1024,
        llc_bytes=8 * 1024 * 1024,
        vector_width=8,
        num_vector_registers=16,
        tlb_entries=64,
        page_size=4096,
        sync_base_seconds=2e-6,
        smt_yield=0.25,
    )
