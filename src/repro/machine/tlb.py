"""A TLB simulator for access-pattern analysis (paper Sec. 4.2).

The paper justifies CT-CSR with a TLB argument: "In CT-CSR elements of
two adjacent rows within a tile are also adjacent in memory.  Without
this explicit tiling, elements corresponding to two adjacent rows may be
far apart depending on the column width of the entire matrix requiring
two TLB lines to access them."  This module lets that claim be measured
rather than asserted: a fully-associative LRU TLB replays the address
trace of a kernel's memory accesses and reports hit/miss counts.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import MachineModelError


@dataclass
class TLBStats:
    """Hit/miss counts of one replayed trace."""

    accesses: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses


class TLBSimulator:
    """Fully-associative LRU TLB over fixed-size pages."""

    def __init__(self, entries: int = 64, page_size: int = 4096):
        if entries <= 0 or page_size <= 0:
            raise MachineModelError(
                f"entries and page_size must be positive: {entries}, {page_size}"
            )
        self.entries = entries
        self.page_size = page_size
        self._resident: OrderedDict[int, None] = OrderedDict()
        self.stats = TLBStats()

    def reset(self) -> None:
        """Clear residency and statistics."""
        self._resident.clear()
        self.stats = TLBStats()

    def access(self, address: int) -> bool:
        """Touch one byte address; returns True on a TLB hit."""
        if address < 0:
            raise MachineModelError(f"address must be non-negative, got {address}")
        page = address // self.page_size
        self.stats.accesses += 1
        if page in self._resident:
            self._resident.move_to_end(page)
            return True
        self.stats.misses += 1
        self._resident[page] = None
        if len(self._resident) > self.entries:
            self._resident.popitem(last=False)
        return False

    def replay(self, addresses) -> TLBStats:
        """Replay an address iterable; returns the accumulated stats."""
        for address in addresses:
            self.access(address)
        return self.stats
