"""Roofline primitives shared by the per-technique time models.

A *work phase* is a homogeneous stretch of execution described by its
flops, its private-cache traffic and its shared-DRAM traffic.  Its time on
``cores`` workers is the maximum of the three lanes -- compute at an
efficiency-scaled peak, private traffic at per-core cache bandwidth, and
shared traffic at the DRAM bandwidth all cores contend for -- mirroring
how the paper reasons about AIT per core (Sec. 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MachineModelError
from repro.machine.spec import MachineSpec


@dataclass(frozen=True)
class Phase:
    """One homogeneous stretch of work.

    ``flops`` -- total floating point operations executed (zero work
    included).  ``private_bytes`` -- total bytes moved through private
    caches, summed over cores.  ``dram_bytes`` -- total bytes moved to or
    from shared memory.  ``efficiency`` -- fraction of peak flop rate the
    kernel achieves when compute bound.
    """

    flops: float = 0.0
    private_bytes: float = 0.0
    dram_bytes: float = 0.0
    efficiency: float = 1.0

    def __post_init__(self) -> None:
        if min(self.flops, self.private_bytes, self.dram_bytes) < 0:
            raise MachineModelError(f"negative work in phase: {self}")
        if not 0 < self.efficiency <= 1:
            raise MachineModelError(f"efficiency must be in (0, 1], got {self.efficiency}")


def phase_time(phase: Phase, machine: MachineSpec, cores: int) -> float:
    """Execution time of one phase spread over ``cores`` workers."""
    eff_cores = machine.effective_cores(cores)
    compute = phase.flops / (phase.efficiency * machine.peak_flops_per_core * eff_cores)
    private = phase.private_bytes / (machine.cache_bandwidth_per_core * eff_cores)
    shared = phase.dram_bytes / machine.dram_bandwidth
    return max(compute, private, shared)


def copy_time(bytes_moved: float, machine: MachineSpec, cores: int,
              run_bytes: float | None = None) -> float:
    """Time to copy ``bytes_moved`` with ``cores`` workers.

    ``run_bytes`` is the contiguous run length of the copy; short runs
    (e.g. im2col of narrow rows) pay per-run overhead that reduces the
    achieved bandwidth.  The shared-DRAM ceiling applies when the copy
    streams more than the workers' caches can hold.
    """
    if bytes_moved < 0:
        raise MachineModelError(f"bytes_moved must be non-negative, got {bytes_moved}")
    if bytes_moved == 0:
        return 0.0
    bw_core = machine.copy_bandwidth_per_core
    if run_bytes is not None:
        if run_bytes <= 0:
            raise MachineModelError(f"run_bytes must be positive, got {run_bytes}")
        # Each run pays roughly one cache-line setup; 32 B of overhead per
        # run halves the bandwidth of 32 B runs and vanishes for long runs.
        bw_core = bw_core * run_bytes / (run_bytes + 32.0)
    eff_cores = machine.effective_cores(cores)
    private = bytes_moved / (bw_core * eff_cores)
    shared = bytes_moved / machine.dram_bandwidth
    return max(private, shared)


def serial_fraction_speedup(cores: float, serial_fraction: float) -> float:
    """Amdahl speedup, used by sanity checks and the analysis helpers."""
    if not 0 <= serial_fraction <= 1:
        raise MachineModelError(f"serial_fraction must be in [0,1], got {serial_fraction}")
    return 1.0 / (serial_fraction + (1.0 - serial_fraction) / cores)
