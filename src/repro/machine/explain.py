"""Explain the machine model's verdicts: per-lane time breakdowns.

For one convolution and phase, decomposes each technique's predicted time
into its constituent lanes (compute, private-cache traffic, shared DRAM,
synchronization, unfolding / layout transforms), so a user can see *why*
the autotuner picked what it picked -- the analysis behind every claim in
Sec. 3 and Sec. 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.reporting import format_table
from repro.core.convspec import ELEMENT_BYTES, ConvSpec
from repro.errors import MachineModelError
from repro.machine.gemm_model import (
    DEFAULT_PROFILE,
    GemmProfile,
    conv_gemm_dims,
    unfold_time,
)
from repro.machine.sparse_model import (
    DEFAULT_SPARSE_PROFILE,
    sparse_build_bytes,
    sparse_transform_bytes,
    sparse_useful_flops,
)
from repro.machine.spec import MachineSpec
from repro.machine.stencil_model import (
    DEFAULT_STENCIL_PROFILE,
    stencil_efficiency,
)


@dataclass
class LaneBreakdown:
    """One technique's time decomposed into lanes (seconds)."""

    technique: str
    lanes: dict[str, float] = field(default_factory=dict)

    @property
    def bound_by(self) -> str:
        """The lane with the largest share."""
        if not self.lanes:
            raise MachineModelError("empty breakdown")
        return max(self.lanes, key=self.lanes.get)

    @property
    def total_estimate(self) -> float:
        """Sum of lanes -- an upper-bound view (lanes partially overlap)."""
        return sum(self.lanes.values())


def explain_parallel_gemm(
    spec: ConvSpec, phase: str, batch: int, machine: MachineSpec,
    cores: int, profile: GemmProfile = DEFAULT_PROFILE,
) -> LaneBreakdown:
    """Lane decomposition of the Unfold+Parallel-GEMM baseline."""
    compute = cache = dram = sync = 0.0
    for m, k, n in conv_gemm_dims(spec, phase):
        active = min(cores, max(1, m // profile.min_rows_per_core), m)
        eff = profile.kernel_efficiency(m / active, n, k)
        flops = 2 * m * k * n
        compute += batch * flops / (
            eff * machine.peak_flops_per_core * machine.effective_cores(active)
        )
        per_core_bytes = ELEMENT_BYTES * (m * k / active + k * n + m * n / active)
        cache += batch * per_core_bytes / machine.cache_bandwidth_per_core
        b_bytes = ELEMENT_BYTES * k * n
        streams = 1 if b_bytes <= machine.llc_bytes else active
        dram += batch * (
            ELEMENT_BYTES * (m * k + m * n) + streams * b_bytes
        ) / machine.dram_bandwidth
        sync += batch * machine.sync_overhead(cores)
    return LaneBreakdown(
        technique="parallel-gemm",
        lanes={
            "compute": compute,
            "private-cache": cache,
            "shared-dram": dram,
            "synchronization": sync,
            "unfold (serial)": unfold_time(spec, batch, machine, cores=1),
        },
    )


def explain_gemm_in_parallel(
    spec: ConvSpec, phase: str, batch: int, machine: MachineSpec,
    cores: int, profile: GemmProfile = DEFAULT_PROFILE,
) -> LaneBreakdown:
    """Lane decomposition of GEMM-in-Parallel (Sec. 4.1)."""
    import math

    per_image_compute = per_image_cache = 0.0
    dram_bytes = 0.0
    for m, k, n in conv_gemm_dims(spec, phase):
        eff = profile.kernel_efficiency(m, n, k)
        per_image_compute += 2 * m * k * n / (eff * machine.peak_flops_per_core)
        per_image_cache += (
            ELEMENT_BYTES * (m * k + k * n + m * n)
            / machine.cache_bandwidth_per_core
        )
        dram_bytes += batch * ELEMENT_BYTES * (m * k + k * n + m * n)
    images_per_core = math.ceil(batch / cores)
    return LaneBreakdown(
        technique="gemm-in-parallel",
        lanes={
            "compute": images_per_core * per_image_compute,
            "private-cache": images_per_core * per_image_cache,
            "shared-dram": dram_bytes / machine.dram_bandwidth,
            "synchronization": machine.sync_overhead(cores),
            "unfold (parallel)": unfold_time(spec, batch, machine, cores),
        },
    )


def explain_stencil(
    spec: ConvSpec, batch: int, machine: MachineSpec, cores: int,
) -> LaneBreakdown:
    """Lane decomposition of Stencil-Kernel (FP) (Sec. 4.3)."""
    import math

    from repro.machine.roofline import copy_time
    from repro.stencil.schedule import generate_schedule

    eff = stencil_efficiency(spec, machine, DEFAULT_STENCIL_PROFILE)
    schedule = generate_schedule(
        spec, cache_bytes=machine.l2_bytes, tlb_entries=machine.tlb_entries,
        page_size=machine.page_size,
    )
    images_per_core = math.ceil(batch / cores)
    lanes = {
        "compute": images_per_core * spec.flops
        / (eff * machine.peak_flops_per_core),
        "private-cache": images_per_core
        * schedule.private_traffic_elems() * ELEMENT_BYTES
        / machine.cache_bandwidth_per_core,
        "shared-dram": batch * ELEMENT_BYTES
        * (spec.input_elems + spec.output_elems) / machine.dram_bandwidth,
        "synchronization": machine.sync_overhead(cores),
    }
    if spec.sx > 1:
        lanes["layout transform (Eq. 21)"] = copy_time(
            batch * 2 * spec.input_elems * ELEMENT_BYTES, machine, cores,
            run_bytes=spec.sx * ELEMENT_BYTES,
        )
    return LaneBreakdown(technique="stencil", lanes=lanes)


def explain_sparse(
    spec: ConvSpec, batch: int, sparsity: float, machine: MachineSpec,
    cores: int,
) -> LaneBreakdown:
    """Lane decomposition of Sparse-Kernel (BP) (Sec. 4.2)."""
    import math

    profile = DEFAULT_SPARSE_PROFILE
    images_per_core = math.ceil(batch / cores)
    eff = profile.effective_compute_efficiency(spec.nc)
    return LaneBreakdown(
        technique="sparse",
        lanes={
            "sparse compute": images_per_core
            * sparse_useful_flops(spec, sparsity)
            / (eff * machine.peak_flops_per_core),
            "layout transforms": images_per_core
            * sparse_transform_bytes(spec) / profile.transpose_bandwidth,
            "ct-csr build": images_per_core
            * sparse_build_bytes(spec, sparsity) / profile.build_bandwidth,
            "synchronization": machine.sync_overhead(cores),
        },
    )


def explain_conv(
    spec: ConvSpec, phase: str, batch: int, machine: MachineSpec,
    cores: int, sparsity: float = 0.85,
) -> list[LaneBreakdown]:
    """Breakdowns of every technique eligible for the phase."""
    breakdowns = [
        explain_parallel_gemm(spec, phase, batch, machine, cores),
        explain_gemm_in_parallel(spec, phase, batch, machine, cores),
    ]
    if phase == "fp":
        breakdowns.append(explain_stencil(spec, batch, machine, cores))
    elif phase == "bp":
        breakdowns.append(explain_sparse(spec, batch, sparsity, machine, cores))
    else:
        raise MachineModelError(f"phase must be 'fp' or 'bp', got {phase!r}")
    return breakdowns


def explain_report(breakdowns: list[LaneBreakdown]) -> str:
    """Tabular rendering of a set of breakdowns."""
    rows = []
    for b in breakdowns:
        for lane, seconds in b.lanes.items():
            rows.append([b.technique, lane, f"{seconds * 1e3:.3f}",
                         "<- bound" if lane == b.bound_by else ""])
    return format_table(
        ["technique", "lane", "time (ms)", ""], rows,
        title="machine-model lane breakdown",
    )
