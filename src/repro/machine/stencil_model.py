"""Analytical time model for the generated stencil kernels (Sec. 4.3).

The stencil kernel's throughput is derived from the *generated code
itself*: the register-tile optimizer's basic block supplies the vector
instruction mix, and the model applies

* a **port model** -- the core issues up to as many vector loads as FMAs
  per cycle, so blocks whose loads (plus weight broadcasts) outnumber
  FMAs become load-bound;
* an **issue efficiency** constant covering unaligned loads, loop
  overhead and address arithmetic of the generated code; and
* **utilization factors** for the vector-width remainder along x and the
  register-tile remainder along y (small images waste lanes).

Inputs are streamed per output feature, but the schedule generator's
tiles keep them cache-resident, so the cache lane uses the schedule's
traffic estimate.  Strided convolutions pay the Eq. 21 data-layout
transform.  Parallelization is GEMM-in-Parallel style: whole images per
core.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.convspec import ELEMENT_BYTES, ConvSpec
from repro.errors import MachineModelError
from repro.machine.roofline import copy_time
from repro.machine.spec import MachineSpec
from repro.stencil.basic_block import TileChoice, optimize_register_tile
from repro.stencil.schedule import StencilSchedule, generate_schedule


@dataclass(frozen=True)
class StencilProfile:
    """Constants of the generated-kernel implementation."""

    #: Fraction of peak sustained by the generated inner loop when
    #: compute bound (unaligned loads, loop and addressing overhead).
    issue_efficiency: float = 0.78
    #: Vector loads the core can issue per FMA without stalling.
    loads_per_fma_budget: float = 1.0


DEFAULT_STENCIL_PROFILE = StencilProfile()


def _utilization(extent: int, granule: int) -> float:
    """Useful fraction of lanes when ``extent`` is covered in ``granule`` steps."""
    if extent <= 0 or granule <= 0:
        raise MachineModelError(f"extent and granule must be positive: {extent}, {granule}")
    return extent / (granule * math.ceil(extent / granule))


def stencil_efficiency(
    spec: ConvSpec,
    machine: MachineSpec,
    profile: StencilProfile = DEFAULT_STENCIL_PROFILE,
    tile: TileChoice | None = None,
) -> float:
    """Fraction of peak the generated FP kernel achieves on one core."""
    if tile is None:
        tile = optimize_register_tile(
            spec.fy,
            spec.fx,
            num_registers=machine.num_vector_registers,
            vector_width=machine.vector_width,
        )
    block = tile.block
    # Port pressure: load-bound blocks dilate execution time.
    load_pressure = (block.loads + block.broadcasts) / max(block.fmas, 1)
    port = min(1.0, profile.loads_per_fma_budget / max(load_pressure, 1e-9))
    util_x = _utilization(spec.out_nx, machine.vector_width)
    util_y = _utilization(spec.out_ny, tile.ry)
    return profile.issue_efficiency * port * util_x * util_y


def stencil_fp_time(
    spec: ConvSpec,
    batch: int,
    machine: MachineSpec,
    cores: int,
    profile: StencilProfile = DEFAULT_STENCIL_PROFILE,
    schedule: StencilSchedule | None = None,
) -> float:
    """Time of the generated stencil FP kernel over a ``batch`` of images."""
    if batch <= 0 or cores <= 0:
        raise MachineModelError(f"batch and cores must be positive: {batch}, {cores}")
    if schedule is None:
        schedule = generate_schedule(
            spec, cache_bytes=machine.l2_bytes, tlb_entries=machine.tlb_entries,
            page_size=machine.page_size,
        )
    eff = stencil_efficiency(spec, machine, profile)
    per_image_compute = spec.flops / (eff * machine.peak_flops_per_core)
    per_image_cache = (
        schedule.private_traffic_elems() * ELEMENT_BYTES
        / machine.cache_bandwidth_per_core
    )
    per_image = max(per_image_compute, per_image_cache)
    images_per_core = math.ceil(batch / cores)
    makespan = images_per_core * per_image

    # Shared memory: each image's inputs and outputs stream once.
    dram_bytes = batch * ELEMENT_BYTES * (spec.input_elems + spec.output_elems)
    dram = dram_bytes / machine.dram_bandwidth
    total = max(makespan, dram) + machine.sync_overhead(cores)

    # Eq. 21 layout transform for non-unit x stride (read + write the input).
    if spec.sx > 1:
        total += copy_time(
            batch * 2 * spec.input_elems * ELEMENT_BYTES,
            machine,
            cores,
            run_bytes=spec.sx * ELEMENT_BYTES,
        )
    return total


def stencil_percore_gflops(
    spec: ConvSpec,
    machine: MachineSpec,
    cores: int,
    profile: StencilProfile = DEFAULT_STENCIL_PROFILE,
    batch: int | None = None,
) -> float:
    """Per-core GFlops of Stencil-Kernel (FP), as plotted in Fig. 4c.

    Includes the data-layout transformation time, as the paper's Fig. 4c
    does; the batch defaults to one image per core.
    """
    if batch is None:
        batch = cores
    t = stencil_fp_time(spec, batch, machine, cores, profile)
    return batch * spec.flops / t / cores / 1e9
