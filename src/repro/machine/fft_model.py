"""Time model for the FFT convolution engine (extension, paper Sec. 6).

FFT convolution trades the ``O(Nf*Nc*Fy*Fx)`` per-position work of direct
convolution for per-grid transforms plus an ``O(Nf*Nc)`` pointwise
product, so it wins when kernels are large relative to ``log(N)`` and
loses on strided or small convolutions (stride forces computing the
unit-stride result and discarding most of it).  Parallelization is
image-level, like the other spg-CNN techniques.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.convspec import ELEMENT_BYTES, ConvSpec
from repro.errors import MachineModelError
from repro.machine.spec import MachineSpec
from repro.ops.fft_conv import _fft_shape, fft_conv_flops


@dataclass(frozen=True)
class FFTProfile:
    """Constants of the FFT execution path."""

    #: Fraction of peak sustained by the butterfly/pointwise kernels
    #: (strided twiddle access keeps this well below GEMM's efficiency).
    compute_efficiency: float = 0.30

    def __post_init__(self) -> None:
        if not 0 < self.compute_efficiency <= 1:
            raise MachineModelError(
                f"compute_efficiency must be in (0, 1], got {self.compute_efficiency}"
            )


DEFAULT_FFT_PROFILE = FFTProfile()


def fft_grid_bytes(spec: ConvSpec) -> int:
    """Frequency-grid traffic per image: every transform read and written.

    Complex spectra are twice the real element size; ``Nc + Nf`` spatial
    grids plus the ``Nc*Nf`` pointwise products move through memory.
    """
    gy, gx = _fft_shape(spec)
    # Nc input spectra + Nf accumulated product spectra, each written and
    # re-read; the pointwise stage streams the cached weight spectra too.
    grids = 2 * (spec.nc + spec.nf) + spec.nc * spec.nf
    return int(2 * ELEMENT_BYTES * grids * gy * gx)


def fft_conv_time(
    spec: ConvSpec,
    batch: int,
    machine: MachineSpec,
    cores: int,
    profile: FFTProfile = DEFAULT_FFT_PROFILE,
) -> float:
    """Time of the FFT forward pass over a batch of images."""
    if batch <= 0 or cores <= 0:
        raise MachineModelError(f"batch and cores must be positive: {batch}, {cores}")
    per_image_compute = fft_conv_flops(spec) / (
        profile.compute_efficiency * machine.peak_flops_per_core
    )
    per_image_traffic = fft_grid_bytes(spec) / machine.cache_bandwidth_per_core
    per_image = max(per_image_compute, per_image_traffic)
    makespan = math.ceil(batch / cores) * per_image
    dram = batch * ELEMENT_BYTES * (spec.input_elems + spec.output_elems)
    return max(makespan, dram / machine.dram_bandwidth) + machine.sync_overhead(cores)
