"""Cross-validation of the machine model against host wall-clock.

The machine model predicts the *paper's* Xeon, so its absolute times
cannot be checked on an arbitrary host -- but several of its *relative*
predictions are hardware-independent and can be validated against real
timings of this repository's own kernels:

1. unfolding costs real time on top of the GEMM (the Sec. 3.1 overhead);
2. sparse BP gets faster as error sparsity rises (the Sec. 4.2 payoff);
3. image-level thread parallelism speeds up batched execution (the
   Sec. 4.1 scheduling claim).

:func:`validate_model` runs these checks and returns a report that the
test suite and the calibration example assert on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.convspec import ConvSpec
from repro.errors import ReproError
from repro.ops import unfold as uf
from repro.ops.engine import make_engine


@dataclass
class Check:
    """One relative-effect validation."""

    name: str
    claim: str
    measured_ratio: float
    passed: bool


@dataclass
class ValidationReport:
    """All validation checks of one run."""

    checks: list[Check] = field(default_factory=list)

    @property
    def all_passed(self) -> bool:
        return all(c.passed for c in self.checks)

    def describe(self) -> str:
        lines = ["machine-model validation (relative effects on this host):"]
        for c in self.checks:
            status = "ok " if c.passed else "FAIL"
            lines.append(
                f"  [{status}] {c.name}: ratio {c.measured_ratio:.2f} -- {c.claim}"
            )
        return "\n".join(lines)


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def check_unfold_overhead(spec: ConvSpec, repeats: int = 3,
                          seed: int = 0) -> Check:
    """Unfolding adds measurable time on top of the bare GEMM."""
    rng = np.random.default_rng(seed)
    image = rng.standard_normal(spec.input_shape).astype(np.float32)
    weights = rng.standard_normal(spec.weight_shape).astype(np.float32)
    w_mat = uf.weights_matrix(spec, weights)
    unfolded = uf.unfold(spec, image)

    gemm_only = _best_of(lambda: w_mat @ unfolded.T, repeats)
    with_unfold = _best_of(
        lambda: w_mat @ uf.unfold(spec, image).T, repeats
    )
    ratio = with_unfold / gemm_only if gemm_only > 0 else float("inf")
    return Check(
        name="unfold-overhead",
        claim="Unfold+GEMM slower than bare GEMM (Sec. 3.1)",
        measured_ratio=ratio,
        passed=ratio > 1.0,
    )


def check_sparsity_payoff(spec: ConvSpec, repeats: int = 3,
                          seed: int = 0) -> Check:
    """The sparse BP kernel speeds up as error sparsity rises."""
    rng = np.random.default_rng(seed)
    engine = make_engine("sparse", spec)
    weights = rng.standard_normal(spec.weight_shape).astype(np.float32)
    dense_err = rng.standard_normal((2,) + spec.output_shape).astype(np.float32)
    sparse_err = dense_err.copy()
    sparse_err[rng.random(sparse_err.shape) < 0.97] = 0.0

    t_dense = _best_of(lambda: engine.backward_data(dense_err, weights), repeats)
    t_sparse = _best_of(lambda: engine.backward_data(sparse_err, weights), repeats)
    ratio = t_dense / t_sparse if t_sparse > 0 else float("inf")
    return Check(
        name="sparsity-payoff",
        claim="sparse BP faster at 97% sparsity than dense (Sec. 4.2)",
        measured_ratio=ratio,
        passed=ratio > 1.0,
    )


def check_thread_scaling(spec: ConvSpec, batch: int = 8, repeats: int = 3,
                         seed: int = 0) -> Check:
    """Image-level threads speed up batch execution (Sec. 4.1).

    Thread scaling in Python depends on numpy releasing the GIL; the
    check passes when the parallel run is at least not substantially
    slower, and reports the measured ratio for the calibration record.
    """
    from repro.runtime.parallel import ParallelExecutor
    from repro.runtime.pool import WorkerPool

    rng = np.random.default_rng(seed)
    inputs = rng.standard_normal((batch,) + spec.input_shape).astype(np.float32)
    weights = rng.standard_normal(spec.weight_shape).astype(np.float32)

    serial = make_engine("gemm-in-parallel", spec)
    t_serial = _best_of(lambda: serial.forward(inputs, weights), repeats)
    with ParallelExecutor("gemm-in-parallel", spec,
                          pool=WorkerPool(4)) as executor:
        t_parallel = _best_of(lambda: executor.forward(inputs, weights), repeats)
    ratio = t_serial / t_parallel if t_parallel > 0 else float("inf")
    return Check(
        name="thread-scaling",
        claim="image-parallel threads do not slow batched FP (Sec. 4.1)",
        measured_ratio=ratio,
        passed=ratio > 0.5,
    )


def validate_model(spec: ConvSpec | None = None, repeats: int = 3
                   ) -> ValidationReport:
    """Run all relative-effect checks; see the module docstring."""
    if repeats <= 0:
        raise ReproError(f"repeats must be positive, got {repeats}")
    spec = spec or ConvSpec(nc=16, ny=32, nx=32, nf=32, fy=3, fx=3)
    report = ValidationReport()
    report.checks.append(check_unfold_overhead(spec, repeats))
    report.checks.append(check_sparsity_payoff(spec, repeats))
    report.checks.append(check_thread_scaling(spec, repeats=repeats))
    return report
