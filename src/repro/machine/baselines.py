"""Training-platform profiles: ADAM and CAFFE (paper Sec. 5.1).

The paper's baselines are Parallel-GEMM as implemented by two platforms:
CAFFE (linking OpenBLAS) and ADAM (linking Intel MKL).  The paper finds
the conventional approach's limitations independent of the platform; the
platforms differ in absolute throughput (CAFFE peaks at 273 CIFAR
images/s, ADAM at 185) due to per-image framework overheads.  spg-CNN is
implemented on top of ADAM.

A :class:`PlatformProfile` bundles the GEMM library constants with the
per-image framework overhead (data layer, activation bookkeeping, weight
updates) that the end-to-end model (Fig. 9) charges on top of the
convolution work.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MachineModelError
from repro.machine.gemm_model import GemmProfile


@dataclass(frozen=True)
class PlatformProfile:
    """One CNN training platform's cost constants."""

    name: str
    gemm: GemmProfile
    #: Per-image framework time at one core (parallelizes across cores).
    per_image_overhead: float
    #: Activation bytes the non-conv layers (ReLU, pool, FC, loss, update)
    #: move per image, priced at copy bandwidth.
    aux_bytes_per_image: float

    def __post_init__(self) -> None:
        if self.per_image_overhead < 0 or self.aux_bytes_per_image < 0:
            raise MachineModelError(f"negative overhead in profile {self.name}")


def caffe_profile() -> PlatformProfile:
    """CAFFE linking OpenBLAS: lean framework, fastest at 1-2 cores."""
    return PlatformProfile(
        name="CAFFE (OpenBLAS)",
        gemm=GemmProfile(name="openblas"),
        per_image_overhead=2.0e-3,
        aux_bytes_per_image=3.0e6,
    )


def adam_profile() -> PlatformProfile:
    """ADAM linking MKL: heavier per-image machinery (model-sync paths)."""
    return PlatformProfile(
        name="ADAM (MKL)",
        gemm=GemmProfile(name="mkl", eff_max=0.90),
        per_image_overhead=5.5e-3,
        aux_bytes_per_image=3.0e6,
    )
