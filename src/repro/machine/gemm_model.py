"""Analytical time model for Unfold+GEMM convolution execution.

Reproduces the paper's Sec. 3.1/3.2 analysis quantitatively:

* **Kernel efficiency.**  A single-threaded blocked GEMM achieves a
  fraction of peak that shrinks when any dimension falls below its natural
  blocking size (register/panel ramp-up):
  ``eff = eff_max * m/(m+m_half) * n/(n+n_half) * k/(k+k_half)``.
* **Parallel-GEMM.**  The rows of C are divided among cores (the paper's
  Sec. 3.2 accounting), so per-core efficiency is that of an ``M/p``-row
  GEMM, every core streams all of B through its private cache, B is
  re-streamed from DRAM per core when it exceeds the LLC, and each
  invocation pays a fork/join barrier.  This is what destroys per-core
  AIT -- and performance -- as cores are added.
* **GEMM-in-Parallel.**  Each core runs whole single-threaded GEMMs on its
  share of the batch: full-size efficiency, no per-image barrier, only
  shared-DRAM contention -- hence the paper's near-flat per-core curve.
* **Unfolding.**  A pure copy that writes (and later re-reads) the
  ``|U|``-element matrix in runs of ``out_Nx`` elements; narrow outputs
  copy slowly, which is the unfolding penalty small convolutions pay.

All functions return seconds for a *batch* of images.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.convspec import ELEMENT_BYTES, ConvSpec
from repro.errors import MachineModelError
from repro.machine.roofline import copy_time
from repro.machine.spec import MachineSpec


@dataclass(frozen=True)
class GemmProfile:
    """Constants of one BLAS library implementation (OpenBLAS/MKL-like)."""

    name: str = "openblas-like"
    eff_max: float = 0.92
    m_half: float = 24.0
    n_half: float = 16.0
    k_half: float = 32.0
    #: Fixed cost of one single-threaded GEMM call (dispatch, blocking setup).
    call_overhead: float = 1.5e-6
    #: Minimum C rows a BLAS worker thread accepts; multiplications with
    #: fewer rows than ``min_rows_per_core * cores`` leave cores idle (the
    #: granularity floor real BLAS libraries apply), which is why
    #: Parallel-GEMM stops scaling on small-feature convolutions.
    min_rows_per_core: int = 8

    def kernel_efficiency(self, m: float, n: float, k: float) -> float:
        """Fraction of peak a single-threaded ``m x k . k x n`` GEMM achieves."""
        if min(m, n, k) <= 0:
            raise MachineModelError(f"GEMM dims must be positive: {m}x{k}x{n}")
        return (
            self.eff_max
            * (m / (m + self.m_half))
            * (n / (n + self.n_half))
            * (k / (k + self.k_half))
        )


DEFAULT_PROFILE = GemmProfile()


def conv_gemm_dims(spec: ConvSpec, phase: str) -> list[tuple[int, int, int]]:
    """(M, K, N) of the GEMMs one image requires in the given phase.

    FP is the single multiply ``O = W_mat . U^T`` (Fig. 2c).  BP needs two:
    the error-gradient multiply ``U_err = W_mat^T . EO_mat`` and the
    delta-weight multiply ``dW = EO_mat . U`` (Sec. 2.3).
    """
    m, k, n = spec.gemm_dims
    if phase == "fp":
        return [(m, k, n)]
    if phase == "bp":
        return [(k, m, n), (m, n, k)]
    raise MachineModelError(f"phase must be 'fp' or 'bp', got {phase!r}")


def conv_gemm_flops(spec: ConvSpec, phase: str) -> int:
    """Total GEMM flops per image in the given phase."""
    return sum(2 * m * k * n for m, k, n in conv_gemm_dims(spec, phase))


# ----------------------------------------------------------------------
# Unfolding cost
# ----------------------------------------------------------------------


def unfold_time(spec: ConvSpec, batch: int, machine: MachineSpec, cores: int) -> float:
    """Time to unfold ``batch`` images (write |U|; the GEMM re-reads it).

    im2col copies, for each ``(c, ky, kx)``, a strided plane whose
    contiguous runs are ``out_Nx`` elements long (unit x-stride); short
    runs reduce the achieved copy bandwidth.
    """
    if batch <= 0:
        raise MachineModelError(f"batch must be positive, got {batch}")
    bytes_per_image = ELEMENT_BYTES * (spec.input_elems + spec.unfolded_elems)
    run_bytes = max(1, spec.out_nx if spec.sx == 1 else 1) * ELEMENT_BYTES
    return copy_time(batch * bytes_per_image, machine, cores, run_bytes=run_bytes)


# ----------------------------------------------------------------------
# Single-threaded and Parallel-GEMM
# ----------------------------------------------------------------------


def single_gemm_time(
    m: int, k: int, n: int, machine: MachineSpec, profile: GemmProfile = DEFAULT_PROFILE
) -> float:
    """One single-threaded blocked GEMM on one core."""
    flops = 2 * m * k * n
    eff = profile.kernel_efficiency(m, n, k)
    compute = flops / (eff * machine.peak_flops_per_core)
    traffic = ELEMENT_BYTES * (m * k + k * n + m * n)
    cache = traffic / machine.cache_bandwidth_per_core
    return max(compute, cache) + profile.call_overhead


def parallel_gemm_time(
    m: int,
    k: int,
    n: int,
    machine: MachineSpec,
    cores: int,
    profile: GemmProfile = DEFAULT_PROFILE,
) -> float:
    """One GEMM partitioned row-wise across ``cores`` (the baseline).

    Per-core work is an ``M/active``-row GEMM whose efficiency shrinks with
    the slice; every active core streams all of B through its private
    cache, and from DRAM when B exceeds the LLC.
    """
    if cores <= 0:
        raise MachineModelError(f"cores must be positive, got {cores}")
    active = min(cores, max(1, m // profile.min_rows_per_core), m)
    rows_per_core = m / active
    eff = profile.kernel_efficiency(rows_per_core, n, k)
    flops = 2 * m * k * n
    eff_cores = machine.effective_cores(active) if active <= machine.logical_cores else active
    compute = flops / (eff * machine.peak_flops_per_core * eff_cores)

    # Private traffic per core: its A and C slices plus *all* of B.
    per_core_bytes = ELEMENT_BYTES * (m * k / active + k * n + m * n / active)
    cache = per_core_bytes / machine.cache_bandwidth_per_core

    # Shared traffic: B once if LLC-resident, else once per active core.
    b_bytes = ELEMENT_BYTES * k * n
    b_streams = 1 if b_bytes <= machine.llc_bytes else active
    dram_bytes = ELEMENT_BYTES * (m * k + m * n) + b_streams * b_bytes
    dram = dram_bytes / machine.dram_bandwidth

    return max(compute, cache, dram) + machine.sync_overhead(cores) + profile.call_overhead


# ----------------------------------------------------------------------
# Batched convolution execution under the two schedules
# ----------------------------------------------------------------------


def parallel_gemm_conv_time(
    spec: ConvSpec,
    phase: str,
    batch: int,
    machine: MachineSpec,
    cores: int,
    profile: GemmProfile = DEFAULT_PROFILE,
    include_unfold: bool = True,
) -> float:
    """Unfold+Parallel-GEMM over a batch: images sequential, GEMMs spanned.

    Only the GEMM itself is parallel; the unfolding runs single-threaded
    per image, as the conventional platforms' im2col does.
    """
    gemm_total = sum(
        parallel_gemm_time(m, k, n, machine, cores, profile)
        for m, k, n in conv_gemm_dims(spec, phase)
    )
    total = batch * gemm_total
    if include_unfold:
        total += unfold_time(spec, batch, machine, cores=1)
    return total


def gemm_in_parallel_conv_time(
    spec: ConvSpec,
    phase: str,
    batch: int,
    machine: MachineSpec,
    cores: int,
    profile: GemmProfile = DEFAULT_PROFILE,
    include_unfold: bool = True,
) -> float:
    """GEMM-in-Parallel over a batch: whole images per core (Sec. 4.1)."""
    if batch <= 0:
        raise MachineModelError(f"batch must be positive, got {batch}")
    per_image = sum(
        single_gemm_time(m, k, n, machine, profile)
        for m, k, n in conv_gemm_dims(spec, phase)
    )
    images_per_core = math.ceil(batch / cores)
    compute_makespan = images_per_core * per_image

    # Every core streams its own images' operands from shared memory.
    per_image_bytes = ELEMENT_BYTES * sum(
        m * k + k * n + m * n for m, k, n in conv_gemm_dims(spec, phase)
    )
    dram = batch * per_image_bytes / machine.dram_bandwidth

    total = max(compute_makespan, dram) + machine.sync_overhead(cores)
    if include_unfold:
        total += unfold_time(spec, batch, machine, cores)
    return total


def cct_conv_time(
    spec: ConvSpec,
    phase: str,
    batch: int,
    machine: MachineSpec,
    cores: int,
    profile: GemmProfile = DEFAULT_PROFILE,
    include_unfold: bool = True,
) -> float:
    """Caffe con Troll's schedule: a batch of image *partitions* per core.

    The paper's Sec. 6 notes CcT improves Parallel-GEMM in Region 2 "by
    executing a batch of image partitions (rather than one partition) per
    core".  Each image's unfolded GEMM is split along output positions
    (columns of U) into just enough partitions that every core has work
    even when the batch is smaller than the machine -- the regime where
    GEMM-in-Parallel leaves cores idle.  Each partition runs a
    single-threaded GEMM, so per-core AIT is preserved like GiP, at the
    cost of a narrower-N efficiency penalty per partition.
    """
    if batch <= 0 or cores <= 0:
        raise MachineModelError(f"batch and cores must be positive: {batch}, {cores}")
    partitions = max(1, math.ceil(cores / batch))
    per_image = 0.0
    for m, k, n in conv_gemm_dims(spec, phase):
        n_part = max(1, n // partitions)
        per_image += partitions * single_gemm_time(m, k, n_part, machine, profile)
    tasks = batch * partitions
    tasks_per_core = math.ceil(tasks / cores)
    makespan = tasks_per_core * (per_image / partitions)

    per_image_bytes = ELEMENT_BYTES * sum(
        m * k + k * n + m * n for m, k, n in conv_gemm_dims(spec, phase)
    )
    dram = batch * per_image_bytes / machine.dram_bandwidth
    total = max(makespan, dram) + machine.sync_overhead(cores)
    if include_unfold:
        total += unfold_time(spec, batch, machine, cores)
    return total


def percore_gflops(
    spec: ConvSpec,
    schedule: str,
    machine: MachineSpec,
    cores: int,
    profile: GemmProfile = DEFAULT_PROFILE,
    batch: int | None = None,
) -> float:
    """Per-core GFlops of the FP+BP GEMMs, as measured for Figs. 3a/4a.

    The paper times the three MMs (FP, gradient, delta-weight) without the
    unfolding step and reports ``GFlops / core``.  For GEMM-in-Parallel the
    batch defaults to one image per core.
    """
    if batch is None:
        batch = cores if schedule == "gemm-in-parallel" else 1
    flops = batch * (conv_gemm_flops(spec, "fp") + conv_gemm_flops(spec, "bp"))
    if schedule == "parallel-gemm":
        t = parallel_gemm_conv_time(
            spec, "fp", batch, machine, cores, profile, include_unfold=False
        ) + parallel_gemm_conv_time(
            spec, "bp", batch, machine, cores, profile, include_unfold=False
        )
    elif schedule == "gemm-in-parallel":
        t = gemm_in_parallel_conv_time(
            spec, "fp", batch, machine, cores, profile, include_unfold=False
        ) + gemm_in_parallel_conv_time(
            spec, "bp", batch, machine, cores, profile, include_unfold=False
        )
    else:
        raise MachineModelError(f"unknown schedule {schedule!r}")
    return flops / t / cores / 1e9
