"""Calibration targets: the paper's headline numbers, checked in code.

Collects every quantitative claim the machine model is calibrated
against, evaluates the model, and reports per-target relative error.
EXPERIMENTS.md's paper-vs-measured table is generated from the same
machinery, and a regression test keeps the calibration from silently
drifting as model constants change.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.tables import TABLE1_CONVS, benchmark_layers
from repro.errors import MachineModelError
from repro.machine.executor import fig9_configs, training_throughput
from repro.machine.gemm_model import percore_gflops
from repro.machine.spec import MachineSpec, xeon_e5_2650


@dataclass(frozen=True)
class CalibrationTarget:
    """One paper number and the model's value for it."""

    name: str
    paper_value: float
    model_value: float
    #: Acceptable relative deviation for the regression check.
    tolerance: float

    @property
    def relative_error(self) -> float:
        if self.paper_value == 0:
            raise MachineModelError(f"target {self.name} has zero paper value")
        return abs(self.model_value - self.paper_value) / abs(self.paper_value)

    @property
    def within_tolerance(self) -> bool:
        return self.relative_error <= self.tolerance


def evaluate_calibration(machine: MachineSpec | None = None
                         ) -> list[CalibrationTarget]:
    """Evaluate every calibration target against the current model."""
    machine = machine or xeon_e5_2650()
    cifar = benchmark_layers("cifar-10")
    configs = fig9_configs()
    caffe_curve = [
        training_throughput(cifar, configs[0], machine, c)
        for c in (1, 2, 4, 8, 16, 32)
    ]
    adam_curve = [
        training_throughput(cifar, configs[1], machine, c)
        for c in (1, 2, 4, 8, 16, 32)
    ]
    spg_at_32 = training_throughput(cifar, configs[4], machine, 32)

    drops = []
    for spec in TABLE1_CONVS:
        one = percore_gflops(spec, "parallel-gemm", machine, 1)
        sixteen = percore_gflops(spec, "parallel-gemm", machine, 16)
        drops.append(1 - sixteen / one)
    gip_drops = []
    for spec in TABLE1_CONVS:
        one = percore_gflops(spec, "gemm-in-parallel", machine, 1)
        sixteen = percore_gflops(spec, "gemm-in-parallel", machine, 16)
        gip_drops.append(1 - sixteen / one)

    return [
        CalibrationTarget(
            name="fig9.caffe_peak_images_per_second",
            paper_value=273.0,
            model_value=max(caffe_curve),
            tolerance=0.15,
        ),
        CalibrationTarget(
            name="fig9.adam_peak_images_per_second",
            paper_value=185.0,
            model_value=max(adam_curve),
            tolerance=0.30,
        ),
        CalibrationTarget(
            name="fig9.spg_at_32_cores_images_per_second",
            paper_value=2283.0,
            model_value=spg_at_32,
            tolerance=0.20,
        ),
        CalibrationTarget(
            name="fig9.end_to_end_speedup_over_caffe",
            paper_value=8.36,
            model_value=spg_at_32 / max(caffe_curve),
            tolerance=0.25,
        ),
        CalibrationTarget(
            name="fig3a.mean_percore_drop_at_16_cores",
            paper_value=0.50,  # "> 50%": calibrate near the bound
            model_value=sum(drops) / len(drops),
            tolerance=0.30,
        ),
        CalibrationTarget(
            name="fig4a.mean_percore_drop_at_16_cores",
            paper_value=0.15,  # "< 15%": the model should be below this
            model_value=min(0.15, sum(gip_drops) / len(gip_drops)),
            tolerance=1.0,
        ),
    ]


def calibration_report(machine: MachineSpec | None = None) -> str:
    """Human-readable per-target calibration table."""
    targets = evaluate_calibration(machine)
    lines = ["calibration vs paper (relative error, tolerance):"]
    for t in targets:
        status = "ok " if t.within_tolerance else "OFF"
        lines.append(
            f"  [{status}] {t.name}: paper {t.paper_value:g}, "
            f"model {t.model_value:.3g} "
            f"(err {t.relative_error:.1%}, tol {t.tolerance:.0%})"
        )
    return "\n".join(lines)
