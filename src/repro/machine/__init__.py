"""Analytical performance model of the paper's multicore CPU."""

from repro.machine.baselines import PlatformProfile, adam_profile, caffe_profile
from repro.machine.executor import fig9_configs, training_throughput
from repro.machine.gemm_model import GemmProfile
from repro.machine.roofline import Phase, phase_time
from repro.machine.spec import MachineSpec, laptop_4core, xeon_e5_2650

__all__ = [
    "MachineSpec",
    "xeon_e5_2650",
    "laptop_4core",
    "Phase",
    "phase_time",
    "GemmProfile",
    "PlatformProfile",
    "adam_profile",
    "caffe_profile",
    "fig9_configs",
    "training_throughput",
]
