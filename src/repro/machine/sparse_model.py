"""Analytical time model for the sparse BP kernels (Sec. 4.2).

One image's sparse back-propagation decomposes into sequential stages:

1. **Layout transformations** -- EO to its ``f``-fastest matrix form,
   inputs to channel-last form (for dW), and the result back to
   channel-major.  Transposes move data in short contiguous runs, so they
   run well below straight-line copy bandwidth.
2. **CT-CSR construction** -- a branchy scan of the dense EO matrix plus
   writes of the values/index arrays.
3. **Sparse compute** -- ``2 * nnz * Fy*Fx * Nc`` useful flops for each of
   the two BP computations (Eq. 3's EI and Eq. 4's dW), executed by the
   pointer-shifting kernels at a scatter-limited fraction of peak.

As sparsity rises, stage 3 shrinks with ``(1 - s)`` while stages 1-2 are
fixed, so goodput collapses beyond ~90% sparsity -- the bottleneck shift
the paper reports under Fig. 4e.  Parallelization is across images.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.convspec import ELEMENT_BYTES, ConvSpec
from repro.errors import MachineModelError
from repro.machine.spec import MachineSpec


@dataclass(frozen=True)
class SparseProfile:
    """Constants of the generated sparse-kernel implementation."""

    #: Fraction of peak the channel-vectorized scatter FMAs sustain.
    compute_efficiency: float = 0.35
    #: Channel count at which the vector FMAs reach half their peak: the
    #: kernels vectorize along channels (Fig. 5b), so few-channel layers
    #: leave vector lanes idle.
    channel_half: float = 4.0
    #: Per-core bandwidth of the branchy CT-CSR build scan (bytes/s).
    build_bandwidth: float = 2e9
    #: Per-core bandwidth of the short-run layout transposes (bytes/s).
    transpose_bandwidth: float = 4e9
    #: Fixed per-image kernel cost (CT-CSR allocation, dispatch).
    per_image_overhead: float = 8e-6

    def effective_compute_efficiency(self, nc: int) -> float:
        """Compute efficiency adjusted for the channel vector length."""
        if nc <= 0:
            raise MachineModelError(f"nc must be positive, got {nc}")
        return self.compute_efficiency * nc / (nc + self.channel_half)


DEFAULT_SPARSE_PROFILE = SparseProfile()


def sparse_useful_flops(spec: ConvSpec, sparsity: float) -> float:
    """Useful flops of both BP computations at the given error sparsity."""
    if not 0.0 <= sparsity <= 1.0:
        raise MachineModelError(f"sparsity must be in [0, 1], got {sparsity}")
    return 2.0 * spec.flops * (1.0 - sparsity)


def sparse_transform_bytes(spec: ConvSpec) -> int:
    """Bytes moved by the per-image layout transforms (read + write).

    EO to matrix form, the input to channel-last (for dW), and EI back to
    channel-major.  The weight-layout transform is amortized over the
    batch and excluded here.
    """
    return ELEMENT_BYTES * (2 * spec.output_elems + 2 * 2 * spec.input_elems)


def sparse_build_bytes(spec: ConvSpec, sparsity: float) -> float:
    """Bytes of the CT-CSR construction scan and index/value writes."""
    nnz = spec.output_elems * (1.0 - sparsity)
    return ELEMENT_BYTES * (spec.output_elems + 2.0 * nnz)


def sparse_bp_time(
    spec: ConvSpec,
    batch: int,
    sparsity: float,
    machine: MachineSpec,
    cores: int,
    profile: SparseProfile = DEFAULT_SPARSE_PROFILE,
) -> float:
    """Time of the sparse BP kernels (EI + dW) over a batch of images."""
    if batch <= 0 or cores <= 0:
        raise MachineModelError(f"batch and cores must be positive: {batch}, {cores}")
    useful = sparse_useful_flops(spec, sparsity)
    eff = profile.effective_compute_efficiency(spec.nc)
    per_image_compute = useful / (eff * machine.peak_flops_per_core)
    per_image_transform = sparse_transform_bytes(spec) / profile.transpose_bandwidth
    per_image_build = sparse_build_bytes(spec, sparsity) / profile.build_bandwidth
    per_image = (
        per_image_compute
        + per_image_transform
        + per_image_build
        + profile.per_image_overhead
    )

    images_per_core = math.ceil(batch / cores)
    makespan = images_per_core * per_image

    # Shared memory: the dense EO scan and EI/input streams per image.
    dram_bytes = batch * ELEMENT_BYTES * (
        spec.output_elems + 2 * spec.input_elems + spec.weight_elems
    )
    dram = dram_bytes / machine.dram_bandwidth
    return max(makespan, dram) + machine.sync_overhead(cores)


def sparse_goodput(
    spec: ConvSpec,
    sparsity: float,
    machine: MachineSpec,
    cores: int,
    profile: SparseProfile = DEFAULT_SPARSE_PROFILE,
    batch: int | None = None,
) -> float:
    """Goodput (useful GFlops/s, Eq. 9) of Sparse-Kernel (BP) -- Fig. 4e."""
    if batch is None:
        batch = cores
    useful_total = batch * sparse_useful_flops(spec, sparsity)
    t = sparse_bp_time(spec, batch, sparsity, machine, cores, profile)
    return useful_total / t / 1e9
