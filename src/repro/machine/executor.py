"""End-to-end training throughput model (paper Fig. 9).

Combines the per-technique convolution time models with the platform
profiles into a throughput estimate (images trained per second) for a
whole network, under each of the paper's five Fig. 9 configurations:

1. Parallel-GEMM (CAFFE)
2. Parallel-GEMM (ADAM)
3. GEMM-in-Parallel (FP and BP)
4. GEMM-in-Parallel (FP) + Sparse-Kernel (BP)
5. Stencil-Kernel (FP) + Sparse-Kernel (BP)

One trained image costs: every conv layer's FP and BP under the
configuration's techniques, plus the platform's auxiliary-layer traffic
and per-image framework overhead, both of which parallelize across
cores.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.convspec import ConvSpec
from repro.errors import MachineModelError
from repro.machine.baselines import PlatformProfile, adam_profile, caffe_profile
from repro.machine.gemm_model import (
    gemm_in_parallel_conv_time,
    parallel_gemm_conv_time,
)
from repro.machine.roofline import copy_time
from repro.machine.sparse_model import sparse_bp_time
from repro.machine.spec import MachineSpec
from repro.machine.stencil_model import stencil_fp_time


@dataclass(frozen=True)
class TrainingConfig:
    """One end-to-end execution configuration of Fig. 9."""

    label: str
    fp_technique: str
    bp_technique: str
    platform: PlatformProfile
    sparsity: float = 0.85

    def __post_init__(self) -> None:
        if self.fp_technique not in ("parallel-gemm", "gemm-in-parallel", "stencil"):
            raise MachineModelError(f"bad FP technique {self.fp_technique!r}")
        if self.bp_technique not in ("parallel-gemm", "gemm-in-parallel", "sparse"):
            raise MachineModelError(f"bad BP technique {self.bp_technique!r}")
        if not 0.0 <= self.sparsity <= 1.0:
            raise MachineModelError(f"sparsity must be in [0,1], got {self.sparsity}")

    @property
    def image_parallel(self) -> bool:
        """Whether the configuration parallelizes across training inputs.

        GEMM-in-Parallel / stencil / sparse configurations assign whole
        images to cores, so the auxiliary layers and per-image framework
        work parallelize too.  The conventional Parallel-GEMM platforms
        parallelize only the GEMM: im2col, pooling, ReLU and the framework
        glue stay single-threaded (as in CPU Caffe), which is the Amdahl
        bottleneck behind Fig. 9's early plateau.
        """
        return self.fp_technique != "parallel-gemm"


def fig9_configs(sparsity: float = 0.85) -> tuple[TrainingConfig, ...]:
    """The five configurations plotted in Fig. 9, in legend order."""
    caffe = caffe_profile()
    adam = adam_profile()
    return (
        TrainingConfig("Parallel-GEMM (CAFFE)", "parallel-gemm", "parallel-gemm", caffe),
        TrainingConfig("Parallel-GEMM (ADAM)", "parallel-gemm", "parallel-gemm", adam),
        TrainingConfig("GEMM-in-Parallel (FP and BP)",
                       "gemm-in-parallel", "gemm-in-parallel", adam),
        TrainingConfig("GEMM-in-Parallel (FP) + Sparse-Kernel (BP)",
                       "gemm-in-parallel", "sparse", adam, sparsity=sparsity),
        TrainingConfig("Stencil-Kernel (FP) + Sparse-Kernel (BP)",
                       "stencil", "sparse", adam, sparsity=sparsity),
    )


def conv_phase_time(
    spec: ConvSpec,
    phase: str,
    technique: str,
    batch: int,
    machine: MachineSpec,
    cores: int,
    config: TrainingConfig,
) -> float:
    """Time of one conv layer's phase under the configuration's technique."""
    if technique == "parallel-gemm":
        return parallel_gemm_conv_time(
            spec, phase, batch, machine, cores, config.platform.gemm
        )
    if technique == "gemm-in-parallel":
        return gemm_in_parallel_conv_time(
            spec, phase, batch, machine, cores, config.platform.gemm
        )
    if technique == "stencil":
        if phase != "fp":
            raise MachineModelError("stencil serves FP only")
        return stencil_fp_time(spec, batch, machine, cores)
    if technique == "sparse":
        if phase != "bp":
            raise MachineModelError("sparse serves BP only")
        return sparse_bp_time(spec, batch, config.sparsity, machine, cores)
    raise MachineModelError(f"unknown technique {technique!r}")


def training_time(
    conv_specs: tuple[ConvSpec, ...],
    config: TrainingConfig,
    batch: int,
    machine: MachineSpec,
    cores: int,
) -> float:
    """Seconds to fully train one minibatch end to end."""
    if batch <= 0 or cores <= 0:
        raise MachineModelError(f"batch and cores must be positive: {batch}, {cores}")
    total = 0.0
    for spec in conv_specs:
        total += conv_phase_time(
            spec, "fp", config.fp_technique, batch, machine, cores, config
        )
        total += conv_phase_time(
            spec, "bp", config.bp_technique, batch, machine, cores, config
        )
    aux_cores = cores if config.image_parallel else 1
    total += copy_time(batch * config.platform.aux_bytes_per_image, machine, aux_cores)
    overhead = batch * config.platform.per_image_overhead
    total += overhead / machine.effective_cores(aux_cores)
    return total


def training_throughput(
    conv_specs: tuple[ConvSpec, ...],
    config: TrainingConfig,
    machine: MachineSpec,
    cores: int,
    batch: int | None = None,
) -> float:
    """Images trained per second (the Fig. 9 y-axis)."""
    if batch is None:
        batch = max(cores, 32)
    return batch / training_time(conv_specs, config, batch, machine, cores)
