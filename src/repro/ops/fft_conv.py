"""FFT-based convolution engine (paper Sec. 6, "other techniques").

The paper cites FFT-based training (Mathieu, Henaff, LeCun) as a
complementary execution strategy; this engine implements it so the
autotuner's candidate set can be extended and so the ablation benchmarks
can locate where the frequency domain wins (large kernels on large
images) and loses (strided or small convolutions).

The convolution of Eq. 2 is a *correlation*, so the kernel is conjugated
in the frequency domain: ``O_f = sum_c FFT(I_c) * conj(FFT(W_fc))``
evaluated on a common padded grid, with the valid-mode window extracted
afterwards.  Strided convolutions are computed at unit stride and
subsampled (the frequency domain cannot skip positions), which is why
stride makes FFT unattractive -- the cost model reflects that.
"""

from __future__ import annotations

import numpy as np

from repro.core.convspec import ConvSpec
from repro.ops.engine import ConvEngine, register_engine


def _fft_shape(spec: ConvSpec) -> tuple[int, int]:
    # Linear (non-circular) correlation and convolution need
    # ``N + F - 1`` points per axis; powers of two keep the transforms
    # fast and mirror what FFT conv implementations do.
    fy = 1 << (spec.padded_ny + spec.fy - 2).bit_length()
    fx = 1 << (spec.padded_nx + spec.fx - 2).bit_length()
    return fy, fx


def fft_conv_flops(spec: ConvSpec) -> float:
    """Approximate flop count of the FFT execution path.

    ``Nc`` forward transforms of the input grids plus ``Nf`` inverse
    transforms of the accumulated products (the pointwise multiply
    accumulates *in the frequency domain*, so no per-(f, c) transform is
    needed) at ``5 N log2 N`` each, plus the ``Nc*Nf`` pointwise complex
    multiply-accumulates at 8 flops/point.  Weight transforms amortize
    over a training batch and are excluded, matching how FFT conv
    implementations cache them.
    """
    gy, gx = _fft_shape(spec)
    points = gy * gx
    log_term = np.log2(points)
    transforms = spec.nc + spec.nf
    fft_cost = transforms * 5.0 * points * log_term
    pointwise = spec.nc * spec.nf * 8.0 * points
    return fft_cost + pointwise


@register_engine("fft")
class FFTConvEngine(ConvEngine):
    """Frequency-domain convolution over a batch.

    Forward-only deployment is intended (like the stencil engine, the
    backward computations delegate to the spatial adjoints expressed
    through the same frequency-domain machinery).
    """

    def __init__(self, spec: ConvSpec, num_cores: int = 1):
        super().__init__(spec)
        if num_cores <= 0:
            raise ValueError(f"num_cores must be positive, got {num_cores}")
        self.num_cores = num_cores
        self.grid = _fft_shape(spec)

    # -- helpers ---------------------------------------------------------

    def _weight_freq(self, weights: np.ndarray) -> np.ndarray:
        """conj(FFT) of the weights on the padded grid, ``[F, C, gy, gx]``."""
        gy, gx = self.grid
        return np.conj(np.fft.rfft2(weights, s=(gy, gx)))

    def forward(self, inputs: np.ndarray, weights: np.ndarray) -> np.ndarray:
        self._check_batch_inputs(inputs)
        self._check_weights(weights)
        gy, gx = self.grid
        w_freq = self._weight_freq(weights)
        out = np.empty((inputs.shape[0],) + self.spec.output_shape,
                       dtype=inputs.dtype)
        span_y = (self.spec.out_ny - 1) * self.spec.sy + 1
        span_x = (self.spec.out_nx - 1) * self.spec.sx + 1
        for b, image in enumerate(inputs):
            i_freq = np.fft.rfft2(image, s=(gy, gx))  # [C, gy, gx//2+1]
            prod = np.einsum("cyx,fcyx->fyx", i_freq, w_freq, optimize=True)
            full = np.fft.irfft2(prod, s=(gy, gx))
            valid = full[:, :span_y : self.spec.sy, :span_x : self.spec.sx]
            out[b] = valid.astype(inputs.dtype, copy=False)
        return out

    def backward_data(self, out_error: np.ndarray, weights: np.ndarray) -> np.ndarray:
        """Adjoint of forward: full correlation with the *unconjugated* kernel.

        Upsample the strided error back onto the unit grid, then convolve
        (true convolution, which the frequency domain gives with the
        non-conjugated weight transform) and crop to the input extent.
        """
        self._check_batch_out_error(out_error)
        self._check_weights(weights)
        spec = self.spec
        gy, gx = self.grid
        w_freq = np.fft.rfft2(weights, s=(gy, gx))  # no conjugate: convolution
        in_err = np.empty((out_error.shape[0],) + spec.input_shape,
                          dtype=out_error.dtype)
        span_y = (spec.out_ny - 1) * spec.sy + 1
        span_x = (spec.out_nx - 1) * spec.sx + 1
        for b, err in enumerate(out_error):
            dense = np.zeros((spec.nf, spec.padded_ny, spec.padded_nx),
                             dtype=err.dtype)
            dense[:, :span_y : spec.sy, :span_x : spec.sx] = err
            e_freq = np.fft.rfft2(dense, s=(gy, gx))
            prod = np.einsum("fyx,fcyx->cyx", e_freq, w_freq, optimize=True)
            full = np.fft.irfft2(prod, s=(gy, gx))
            in_err[b] = full[:, : spec.padded_ny, : spec.padded_nx].astype(
                err.dtype, copy=False
            )
        return in_err

    def backward_weights(self, out_error: np.ndarray, inputs: np.ndarray) -> np.ndarray:
        """Eq. 4 via frequency-domain correlation of inputs with errors."""
        self._check_batch_out_error(out_error)
        self._check_batch_inputs(inputs)
        spec = self.spec
        gy, gx = self.grid
        dw = np.zeros(spec.weight_shape, dtype=out_error.dtype)
        span_y = (spec.out_ny - 1) * spec.sy + 1
        span_x = (spec.out_nx - 1) * spec.sx + 1
        for err, image in zip(out_error, inputs):
            dense = np.zeros((spec.nf, spec.padded_ny, spec.padded_nx),
                             dtype=err.dtype)
            dense[:, :span_y : spec.sy, :span_x : spec.sx] = err
            i_freq = np.fft.rfft2(image, s=(gy, gx))
            e_freq = np.conj(np.fft.rfft2(dense, s=(gy, gx)))
            prod = np.einsum("fyx,cyx->fcyx", e_freq, i_freq, optimize=True)
            full = np.fft.irfft2(prod, s=(gy, gx))
            # Correlation of I with EO evaluated at kernel offsets; the
            # conjugate flips the lag sign, so read the first Fy x Fx lags.
            dw += full[:, :, : spec.fy, : spec.fx].astype(dw.dtype, copy=False)
        return dw
