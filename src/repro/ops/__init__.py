"""Convolution execution engines and shared tensor operations."""

from repro.ops.engine import ConvEngine, engine_names, make_engine

__all__ = ["ConvEngine", "engine_names", "make_engine"]
