"""Convolution execution engines: the common interface and registry.

An *engine* is a functional implementation of the three convolution
computations of CNN training -- forward (Eq. 2), backward-data (Eq. 3) and
backward-weights (Eq. 4) -- over a *batch* of images.  Engines correspond
to the paper's execution techniques:

* ``"parallel-gemm"``   -- Unfold + one Parallel-GEMM per image (baseline)
* ``"gemm-in-parallel"`` -- Unfold + single-threaded GEMMs, one image per
  core (Sec. 4.1)
* ``"stencil"``          -- generated direct-convolution kernels (Sec. 4.3)
* ``"sparse"``           -- generated CT-CSR sparse BP kernels (Sec. 4.2)

All engines produce bit-identical layer semantics (verified against
:mod:`repro.ops.reference`); they differ in how the work is organized,
which the machine model (:mod:`repro.machine`) prices.  Batches are
``[B, C, Y, X]`` arrays; engines receive pre-padded inputs and pad=0 specs
(the conv layer handles padding).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable

import numpy as np

from repro.core.convspec import ConvSpec
from repro.errors import PlanError, ShapeError


class ConvEngine(ABC):
    """Batched convolution FP/BP executor."""

    #: Registry key; subclasses override.
    name = "abstract"

    def __init__(self, spec: ConvSpec):
        if spec.pad != 0:
            raise ShapeError(
                f"engines expect pre-padded specs (pad=0), got pad={spec.pad}; "
                "padding is applied by the conv layer"
            )
        self.spec = spec

    # -- forward -------------------------------------------------------

    @abstractmethod
    def forward(self, inputs: np.ndarray, weights: np.ndarray) -> np.ndarray:
        """Compute output activations for a ``[B, Nc, Ny, Nx]`` batch."""

    # -- backward ------------------------------------------------------

    @abstractmethod
    def backward_data(self, out_error: np.ndarray, weights: np.ndarray) -> np.ndarray:
        """Compute input-error activations EI (Eq. 3) for a batch."""

    @abstractmethod
    def backward_weights(self, out_error: np.ndarray, inputs: np.ndarray) -> np.ndarray:
        """Compute the summed weight gradient dW (Eq. 4) over the batch."""

    # -- shared helpers --------------------------------------------------

    def _check_batch_inputs(self, inputs: np.ndarray) -> None:
        if inputs.ndim != 4 or inputs.shape[1:] != self.spec.input_shape:
            raise ShapeError(
                f"batch input shape {inputs.shape} != (B, *{self.spec.input_shape})"
            )

    def _check_batch_out_error(self, out_error: np.ndarray) -> None:
        if out_error.ndim != 4 or out_error.shape[1:] != self.spec.output_shape:
            raise ShapeError(
                f"batch output-error shape {out_error.shape} != "
                f"(B, *{self.spec.output_shape})"
            )

    def _check_weights(self, weights: np.ndarray) -> None:
        if weights.shape != self.spec.weight_shape:
            raise ShapeError(
                f"weight shape {weights.shape} != spec {self.spec.weight_shape}"
            )


_ENGINE_FACTORIES: dict[str, Callable[..., ConvEngine]] = {}


def register_engine(name: str) -> Callable[[type], type]:
    """Class decorator registering an engine under ``name``."""

    def decorator(cls: type) -> type:
        cls.name = name
        _ENGINE_FACTORIES[name] = cls
        return cls

    return decorator


def engine_names() -> tuple[str, ...]:
    """All registered engine names, sorted."""
    return tuple(sorted(_ENGINE_FACTORIES))


def make_engine(name: str, spec: ConvSpec, **kwargs) -> ConvEngine:
    """Instantiate the engine registered under ``name`` for ``spec``."""
    try:
        factory = _ENGINE_FACTORIES[name]
    except KeyError:
        raise PlanError(f"unknown engine {name!r}; known: {engine_names()}") from None
    return factory(spec, **kwargs)
