"""Unfolding (im2col) and folding (col2im) of convolution inputs.

This is step (1) of the paper's Unfold+Parallel-GEMM execution strategy
(Sec. 2.3, Fig. 2b): for every input channel, the inputs to each kernel
application are flattened into a row vector; rows are concatenated over
output positions, and channels are stacked left to right.  The resulting
matrix ``U`` has shape ``[out_Ny*out_Nx, Nc*Fy*Fx]``, so that the forward
convolution becomes the matrix multiply ``O = W_mat . U^T`` (Fig. 2c) with
``W_mat`` of shape ``[Nf, Nc*Fy*Fx]``.

``fold`` is the exact adjoint (transpose) of ``unfold`` -- each unfolded
element is scattered back (accumulating) to the input position it came
from -- which is what back-propagation through the unfolding requires.
"""

from __future__ import annotations

import numpy as np

from repro.core.convspec import ConvSpec
from repro.errors import ShapeError


def unfold(spec: ConvSpec, inputs: np.ndarray,
           out: np.ndarray | None = None) -> np.ndarray:
    """Unfold a ``[Nc, Ny, Nx]`` image to ``[out_Ny*out_Nx, Nc*Fy*Fx]``.

    The column ordering matches Fig. 2b: channels are the slowest-varying
    column group, then ``ky``, then ``kx``.  When ``out`` is given (a
    C-contiguous array of the result shape) the patches are gathered
    straight into it and it is returned -- the engines pass a reusable
    workspace buffer here to avoid re-allocating ``U`` per image.
    """
    if spec.pad != 0:
        raise ShapeError("unfold expects pre-padded inputs (spec.pad must be 0)")
    if inputs.shape != spec.input_shape:
        raise ShapeError(f"input shape {inputs.shape} != spec {spec.input_shape}")
    cs, ys, xs = inputs.strides
    shape = (spec.out_ny, spec.out_nx, spec.nc, spec.fy, spec.fx)
    strides = (ys * spec.sy, xs * spec.sx, cs, ys, xs)
    patches = np.lib.stride_tricks.as_strided(inputs, shape=shape, strides=strides)
    result_shape = (spec.out_ny * spec.out_nx, spec.nc * spec.fy * spec.fx)
    if out is None:
        return patches.reshape(result_shape).copy()
    if out.shape != result_shape:
        raise ShapeError(f"out shape {out.shape} != expected {result_shape}")
    if not out.flags.c_contiguous:
        # reshape on a non-contiguous target would silently copy.
        raise ShapeError("unfold out buffer must be C-contiguous")
    np.copyto(out.reshape(shape), patches)
    return out


def fold(spec: ConvSpec, unfolded: np.ndarray,
         out: np.ndarray | None = None) -> np.ndarray:
    """Adjoint of :func:`unfold`: accumulate columns back into an image.

    Elements of ``unfolded`` that originated from the same input position
    are summed, making ``fold(unfold(x)) == multiplicity * x`` where the
    multiplicity counts how many kernel applications cover each position.
    When ``out`` is given it is zero-filled and accumulated into in place
    (letting engines fold straight into a slice of the batch output).
    """
    expected = (spec.out_ny * spec.out_nx, spec.nc * spec.fy * spec.fx)
    if unfolded.shape != expected:
        raise ShapeError(f"unfolded shape {unfolded.shape} != expected {expected}")
    if out is None:
        image = np.zeros(spec.input_shape, dtype=unfolded.dtype)
    else:
        if out.shape != spec.input_shape:
            raise ShapeError(
                f"out shape {out.shape} != spec {spec.input_shape}"
            )
        image = out
        image.fill(0)
    patches = unfolded.reshape(spec.out_ny, spec.out_nx, spec.nc, spec.fy, spec.fx)
    span_y = (spec.out_ny - 1) * spec.sy + 1
    span_x = (spec.out_nx - 1) * spec.sx + 1
    for ky in range(spec.fy):
        for kx in range(spec.fx):
            target = image[:, ky : ky + span_y : spec.sy, kx : kx + span_x : spec.sx]
            target += np.moveaxis(patches[:, :, :, ky, kx], 2, 0)
    return image


def weights_matrix(spec: ConvSpec, weights: np.ndarray) -> np.ndarray:
    """Flatten ``[Nf, Nc, Fy, Fx]`` weights into the GEMM operand ``[Nf, K]``."""
    if weights.shape != spec.weight_shape:
        raise ShapeError(f"weight shape {weights.shape} != spec {spec.weight_shape}")
    return weights.reshape(spec.nf, spec.nc * spec.fy * spec.fx)


def output_matrix_to_image(spec: ConvSpec, out_mat: np.ndarray) -> np.ndarray:
    """Reshape the GEMM result ``[Nf, out_Ny*out_Nx]`` to ``[Nf, out_Ny, out_Nx]``."""
    expected = (spec.nf, spec.out_ny * spec.out_nx)
    if out_mat.shape != expected:
        raise ShapeError(f"output matrix shape {out_mat.shape} != expected {expected}")
    return out_mat.reshape(spec.output_shape)


def output_image_to_matrix(spec: ConvSpec, out_img: np.ndarray) -> np.ndarray:
    """Inverse of :func:`output_matrix_to_image`."""
    if out_img.shape != spec.output_shape:
        raise ShapeError(f"output shape {out_img.shape} != spec {spec.output_shape}")
    return out_img.reshape(spec.nf, spec.out_ny * spec.out_nx)
