"""Reference engine wrapping :mod:`repro.ops.reference` as a ConvEngine.

Used as the oracle in engine-equivalence tests and as a safe fallback in
the autotuner's candidate set.
"""

from __future__ import annotations

import numpy as np

from repro.ops import reference
from repro.ops.engine import ConvEngine, register_engine


@register_engine("reference")
class ReferenceEngine(ConvEngine):
    """Vectorized reference convolution over a batch."""

    def forward(self, inputs: np.ndarray, weights: np.ndarray) -> np.ndarray:
        self._check_batch_inputs(inputs)
        self._check_weights(weights)
        return np.stack([reference.forward(self.spec, img, weights) for img in inputs])

    def backward_data(self, out_error: np.ndarray, weights: np.ndarray) -> np.ndarray:
        self._check_batch_out_error(out_error)
        self._check_weights(weights)
        return np.stack(
            [reference.backward_data(self.spec, err, weights) for err in out_error]
        )

    def backward_weights(self, out_error: np.ndarray, inputs: np.ndarray) -> np.ndarray:
        self._check_batch_out_error(out_error)
        self._check_batch_inputs(inputs)
        dw = np.zeros(self.spec.weight_shape, dtype=out_error.dtype)
        for err, img in zip(out_error, inputs):
            dw += reference.backward_weights(self.spec, err, img)
        return dw
