"""Reference convolution implementations used as the correctness oracle.

Two oracles are provided for each of the three training computations
(forward, Eq. 2; backward data, Eq. 3; backward weights, Eq. 4):

* ``*_loops`` -- direct transcriptions of the paper's equations as Python
  loops.  Unbearably slow for anything but tiny shapes, but trivially
  auditable against the paper.
* ``forward`` / ``backward_data`` / ``backward_weights`` -- vectorized
  (einsum-based) equivalents fast enough to serve as the oracle in
  integration tests and as the functional backend of higher-level engines.

All functions operate on single images: inputs ``[Nc, Ny, Nx]``, weights
``[Nf, Nc, Fy, Fx]``, outputs ``[Nf, out_Ny, out_Nx]``.  Padding is applied
by the caller (see :func:`repro.ops.layout.pad_input`); specs passed here
must describe the already-padded input (``pad == 0``).
"""

from __future__ import annotations

import numpy as np

from repro.core.convspec import ConvSpec
from repro.errors import ShapeError


def _check_input(spec: ConvSpec, inputs: np.ndarray) -> None:
    if spec.pad != 0:
        raise ShapeError(
            "reference kernels expect pre-padded inputs; apply "
            "repro.ops.layout.pad_input and use a pad=0 spec"
        )
    if inputs.shape != spec.input_shape:
        raise ShapeError(f"input shape {inputs.shape} != spec {spec.input_shape}")


def _check_weights(spec: ConvSpec, weights: np.ndarray) -> None:
    if weights.shape != spec.weight_shape:
        raise ShapeError(f"weight shape {weights.shape} != spec {spec.weight_shape}")


def _check_output(spec: ConvSpec, out: np.ndarray) -> None:
    if out.shape != spec.output_shape:
        raise ShapeError(f"output-error shape {out.shape} != spec {spec.output_shape}")


def _patch_view(spec: ConvSpec, inputs: np.ndarray) -> np.ndarray:
    """Zero-copy sliding-window view ``[Nc, out_Ny, out_Nx, Fy, Fx]``."""
    nc = spec.nc
    sy, sx = spec.sy, spec.sx
    cs, ys, xs = inputs.strides
    shape = (nc, spec.out_ny, spec.out_nx, spec.fy, spec.fx)
    strides = (cs, ys * sy, xs * sx, ys, xs)
    return np.lib.stride_tricks.as_strided(inputs, shape=shape, strides=strides)


# ----------------------------------------------------------------------
# Forward propagation (Eq. 2)
# ----------------------------------------------------------------------


def forward_loops(spec: ConvSpec, inputs: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Direct loop transcription of Eq. 2.  For tiny shapes only."""
    _check_input(spec, inputs)
    _check_weights(spec, weights)
    out = np.zeros(spec.output_shape, dtype=inputs.dtype)
    for f in range(spec.nf):
        for y in range(spec.out_ny):
            for x in range(spec.out_nx):
                acc = 0.0
                for c in range(spec.nc):
                    for ky in range(spec.fy):
                        for kx in range(spec.fx):
                            acc += (
                                inputs[c, y * spec.sy + ky, x * spec.sx + kx]
                                * weights[f, c, ky, kx]
                            )
                out[f, y, x] = acc
    return out


def forward(spec: ConvSpec, inputs: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Vectorized Eq. 2 via a sliding-window view and einsum."""
    _check_input(spec, inputs)
    _check_weights(spec, weights)
    patches = _patch_view(spec, inputs)
    return np.einsum("cyxab,fcab->fyx", patches, weights, optimize=True).astype(
        inputs.dtype, copy=False
    )


# ----------------------------------------------------------------------
# Backward propagation of the error to the inputs (Eq. 3)
# ----------------------------------------------------------------------


def backward_data_loops(
    spec: ConvSpec, out_error: np.ndarray, weights: np.ndarray
) -> np.ndarray:
    """Direct loop transcription of Eq. 3.  For tiny shapes only."""
    _check_output(spec, out_error)
    _check_weights(spec, weights)
    in_error = np.zeros(spec.input_shape, dtype=out_error.dtype)
    for c in range(spec.nc):
        for y in range(spec.padded_ny):
            for x in range(spec.padded_nx):
                acc = 0.0
                for f in range(spec.nf):
                    for ky in range(spec.fy):
                        for kx in range(spec.fx):
                            oy, rem_y = divmod(y - ky, spec.sy)
                            ox, rem_x = divmod(x - kx, spec.sx)
                            if rem_y or rem_x:
                                continue
                            if 0 <= oy < spec.out_ny and 0 <= ox < spec.out_nx:
                                acc += out_error[f, oy, ox] * weights[f, c, ky, kx]
                in_error[c, y, x] = acc
    return in_error


def backward_data(spec: ConvSpec, out_error: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Vectorized Eq. 3: scatter each output error into the input window.

    Implemented as the exact adjoint of :func:`forward`: for every kernel
    offset ``(ky, kx)``, the contribution ``EO . W[:, :, ky, kx]`` lands on
    the strided input slice starting at ``(ky, kx)``.
    """
    _check_output(spec, out_error)
    _check_weights(spec, weights)
    in_error = np.zeros(spec.input_shape, dtype=out_error.dtype)
    span_y = (spec.out_ny - 1) * spec.sy + 1
    span_x = (spec.out_nx - 1) * spec.sx + 1
    for ky in range(spec.fy):
        for kx in range(spec.fx):
            contrib = np.einsum(
                "fyx,fc->cyx", out_error, weights[:, :, ky, kx], optimize=True
            )
            target = in_error[:, ky : ky + span_y : spec.sy, kx : kx + span_x : spec.sx]
            target += contrib
    return in_error


# ----------------------------------------------------------------------
# Backward propagation to the weights (Eq. 4)
# ----------------------------------------------------------------------


def backward_weights_loops(
    spec: ConvSpec, out_error: np.ndarray, inputs: np.ndarray
) -> np.ndarray:
    """Direct loop transcription of Eq. 4.  For tiny shapes only."""
    _check_output(spec, out_error)
    _check_input(spec, inputs)
    dw = np.zeros(spec.weight_shape, dtype=out_error.dtype)
    for f in range(spec.nf):
        for c in range(spec.nc):
            for ky in range(spec.fy):
                for kx in range(spec.fx):
                    acc = 0.0
                    for y in range(spec.out_ny):
                        for x in range(spec.out_nx):
                            acc += (
                                out_error[f, y, x]
                                * inputs[c, y * spec.sy + ky, x * spec.sx + kx]
                            )
                    dw[f, c, ky, kx] = acc
    return dw


def backward_weights(spec: ConvSpec, out_error: np.ndarray, inputs: np.ndarray) -> np.ndarray:
    """Vectorized Eq. 4 via the same sliding-window view as :func:`forward`."""
    _check_output(spec, out_error)
    _check_input(spec, inputs)
    patches = _patch_view(spec, inputs)
    return np.einsum("fyx,cyxab->fcab", out_error, patches, optimize=True).astype(
        out_error.dtype, copy=False
    )
