"""Reusable per-engine scratch buffers keyed by role, shape and dtype.

The unfold/fold/GEMM pipeline and the sparse BP kernels allocate the
same intermediate arrays for every image of every batch: the unfolded
matrix ``U``, the GEMM output panel, the HWC error scratch, the sparse
``dW`` layout.  Allocating them per call dominates small-layer runtime
and fragments the allocator under the process backend's long-lived
workers.  A :class:`Workspace` keeps one buffer per ``tag`` and hands
it back as long as the requested geometry matches, reallocating only
when a shape or dtype changes (e.g. the engine is pointed at a new
batch size).

Two access modes:

* :meth:`scratch` -- contents undefined; for buffers the caller fully
  overwrites (unfold targets, pack buffers).
* :meth:`zeros` -- zero-filled on every call; for accumulation targets
  (GEMM ``out=`` panels, fold images, sparse layouts).

Buffers are plain process-local ndarrays.  The shared-memory analogue
used by the process execution backend is
:class:`repro.runtime.shm.ShmArena`, which has the same ensure-by-role
contract over named segments.
"""

from __future__ import annotations

import numpy as np


class Workspace:
    """A pool of reusable ndarray buffers, one per tag."""

    def __init__(self):
        self._buffers: dict[str, np.ndarray] = {}
        #: Buffer requests served without allocating (for tests/metrics).
        self.reuse_hits = 0
        #: Buffer (re)allocations performed (for tests/metrics).
        self.allocations = 0

    def _ensure(self, tag: str, shape: tuple[int, ...],
                dtype: np.dtype | str) -> np.ndarray:
        shape = tuple(int(s) for s in shape)
        dtype = np.dtype(dtype)
        buf = self._buffers.get(tag)
        if buf is not None and buf.shape == shape and buf.dtype == dtype:
            self.reuse_hits += 1
            return buf
        buf = np.empty(shape, dtype=dtype)
        self._buffers[tag] = buf
        self.allocations += 1
        return buf

    def scratch(self, tag: str, shape: tuple[int, ...],
                dtype: np.dtype | str) -> np.ndarray:
        """The buffer for ``tag``; contents are undefined."""
        return self._ensure(tag, shape, dtype)

    def zeros(self, tag: str, shape: tuple[int, ...],
              dtype: np.dtype | str) -> np.ndarray:
        """The buffer for ``tag``, zero-filled for accumulation."""
        buf = self._ensure(tag, shape, dtype)
        buf.fill(0)
        return buf

    def release(self) -> None:
        """Drop every buffer (the next request reallocates)."""
        self._buffers.clear()

    @property
    def nbytes(self) -> int:
        """Total bytes currently held across all buffers."""
        return sum(buf.nbytes for buf in self._buffers.values())

    def __len__(self) -> int:
        return len(self._buffers)
