"""Unfold+GEMM convolution engines (paper Secs. 2.3 and 4.1).

Forward propagation unfolds each image (Fig. 2b) and computes
``O = W_mat . U^T`` (Fig. 2c).  Backward-data computes the unfolded error
``U_err^T = W_mat^T . EO_mat`` and folds it back onto the input; backward-
weights computes ``dW_mat = EO_mat . U``.

Two engines share this math and differ only in scheduling, which is what
the machine model prices:

* :class:`ParallelGemmEngine` -- the baseline: images processed one after
  another, each GEMM partitioned across all cores (row-partitioned, every
  core streaming the full unfolded matrix).
* :class:`GemmInParallelEngine` -- the paper's Sec. 4.1 technique: the
  batch is partitioned across cores and each core runs single-threaded
  blocked GEMMs on whole images, preserving per-core AIT.

Memory behavior: each engine owns a :class:`repro.ops.workspace.Workspace`
and reuses its unfolded matrix, GEMM output panels and fold scratch
across images and calls while the geometry is stable; batch outputs are
written image-by-image into one pre-allocated array (no ``np.stack``).
"""

from __future__ import annotations

import numpy as np

from repro.blas.gemm import BlockingParams, gemm, parallel_gemm, partition_rows
from repro.core.convspec import ConvSpec
from repro.ops import unfold as uf
from repro.ops.engine import ConvEngine, register_engine
from repro.ops.workspace import Workspace


def _batch_probe(inputs: np.ndarray) -> tuple:
    """A cheap content probe for a batch: geometry plus strided samples.

    Content hashing the whole batch would cost as much as re-unfolding,
    so the probe samples 64 elements evenly strided across the *entire*
    buffer.  Leading bytes alone would be degenerate: convolution layers
    zero-pad their batches, so the head is identically zero for every
    batch and zero-leading data (MNIST-style images) collides the same
    way.  The interior samples catch an in-place refill of the same
    buffer with new values.
    """
    flat = inputs.reshape(-1)
    if flat.size <= 64:
        sample = flat.tobytes()
    else:
        offsets = np.linspace(0, flat.size - 1, num=64, dtype=np.int64)
        sample = flat[offsets].tobytes()
    return (inputs.shape, inputs.dtype.str, sample)


class _UnfoldGemmBase(ConvEngine):
    """Shared unfold/fold + GEMM math of both schedules.

    With ``cache_unfold=True`` the unfolded matrices computed during the
    forward pass are kept and reused by the following ``backward_weights``
    call on the same batch, halving the unfolding work of one training
    step (the paper's ``2|U|`` accounting assumes the re-read; the cache
    trades memory for it).  The cache pins the batch object it was
    filled from and records a strided content probe of it, silently
    invalidating itself when any other batch (or the same buffer with
    new contents) arrives, so stale unfolds can never leak into a
    gradient.
    """

    def __init__(self, spec: ConvSpec, num_cores: int = 1,
                 blocking: BlockingParams | None = None,
                 cache_unfold: bool = False):
        super().__init__(spec)
        if num_cores <= 0:
            raise ValueError(f"num_cores must be positive, got {num_cores}")
        self.num_cores = num_cores
        self.blocking = blocking or BlockingParams()
        self.cache_unfold = cache_unfold
        self._unfold_cache: dict[int, np.ndarray] = {}
        # The exact batch object the cache was filled from, held as a
        # strong reference: while it is alive no new array can reuse its
        # address, so the ``is`` check below can never falsely match a
        # different batch (plain ``id()`` comparison could, because
        # CPython reuses freed addresses).
        self._unfold_cache_batch: np.ndarray | None = None
        self._unfold_cache_probe: tuple | None = None
        #: Unfold computations avoided via the cache (for tests/metrics).
        self.unfold_cache_hits = 0
        #: Reusable scratch buffers (unfolded matrix, GEMM panels, fold).
        self.workspace = Workspace()

    @property
    def _unfold_shape(self) -> tuple[int, int]:
        s = self.spec
        return (s.out_ny * s.out_nx, s.nc * s.fy * s.fx)

    def _sync_unfold_cache(self, inputs: np.ndarray) -> None:
        """Invalidate the cache unless it was filled from this batch.

        Reuse requires the *same array object* (identity is sound here
        because the engine holds the cached batch alive) with unchanged
        contents at the probed offsets (catching in-place refills).
        """
        if not self.cache_unfold:
            return
        probe = _batch_probe(inputs)
        if (inputs is not self._unfold_cache_batch
                or probe != self._unfold_cache_probe):
            self._unfold_cache.clear()
            self._unfold_cache_batch = inputs
            self._unfold_cache_probe = probe

    def _unfold_image(self, index: int, image: np.ndarray) -> np.ndarray:
        if not self.cache_unfold:
            out = self.workspace.scratch(
                "unfold", self._unfold_shape, image.dtype
            )
            return uf.unfold(self.spec, image, out=out)
        cached = self._unfold_cache.get(index)
        if cached is not None:
            self.unfold_cache_hits += 1
            return cached
        # Cached entries must own their storage; the workspace buffer
        # would be overwritten by the next image.
        unfolded = uf.unfold(self.spec, image)
        self._unfold_cache[index] = unfolded
        return unfolded

    def clear_unfold_cache(self) -> None:
        """Drop cached unfolded matrices (call between batches)."""
        self._unfold_cache.clear()
        self._unfold_cache_batch = None
        self._unfold_cache_probe = None

    def release_workspace(self) -> None:
        """Drop the reusable scratch buffers and the unfold cache."""
        self.workspace.release()
        self.clear_unfold_cache()

    # Subclasses choose how a single GEMM is executed.  ``out`` is a
    # zeroed workspace panel the product is accumulated into.
    def _gemm(self, a: np.ndarray, b: np.ndarray,
              out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _gemm_panel(self, tag: str, a: np.ndarray,
                    b: np.ndarray) -> np.ndarray:
        out = self.workspace.zeros(
            tag, (a.shape[0], b.shape[1]), np.result_type(a, b)
        )
        return self._gemm(a, b, out)

    def _forward_image(self, index: int, image: np.ndarray,
                       w_mat: np.ndarray) -> np.ndarray:
        unfolded = self._unfold_image(index, image)
        out_mat = self._gemm_panel("fp/out_mat", w_mat, unfolded.T)
        return uf.output_matrix_to_image(self.spec, out_mat)

    def _backward_data_image(self, err: np.ndarray, w_mat: np.ndarray,
                             out: np.ndarray | None = None) -> np.ndarray:
        err_mat = uf.output_image_to_matrix(self.spec, err)
        unfolded_err = self._gemm_panel("bd/unfolded_err", w_mat.T, err_mat)
        return uf.fold(self.spec, unfolded_err.T, out=out)

    def _backward_weights_image(self, index: int, err: np.ndarray,
                                image: np.ndarray) -> np.ndarray:
        unfolded = self._unfold_image(index, image)
        err_mat = uf.output_image_to_matrix(self.spec, err)
        dw_mat = self._gemm_panel("bw/dw_mat", err_mat, unfolded)
        return dw_mat.reshape(self.spec.weight_shape)

    def forward(self, inputs: np.ndarray, weights: np.ndarray) -> np.ndarray:
        self._check_batch_inputs(inputs)
        self._check_weights(weights)
        self._sync_unfold_cache(inputs)
        w_mat = uf.weights_matrix(self.spec, weights)
        out = np.empty(
            (inputs.shape[0],) + self.spec.output_shape,
            dtype=np.result_type(inputs, weights),
        )
        for i, img in enumerate(inputs):
            out[i] = self._forward_image(i, img, w_mat)
        return out

    def backward_data(self, out_error: np.ndarray, weights: np.ndarray) -> np.ndarray:
        self._check_batch_out_error(out_error)
        self._check_weights(weights)
        w_mat = uf.weights_matrix(self.spec, weights)
        out = np.empty(
            (out_error.shape[0],) + self.spec.input_shape,
            dtype=np.result_type(out_error, weights),
        )
        for i, err in enumerate(out_error):
            self._backward_data_image(err, w_mat, out=out[i])
        return out

    def backward_weights(self, out_error: np.ndarray, inputs: np.ndarray) -> np.ndarray:
        self._check_batch_out_error(out_error)
        self._check_batch_inputs(inputs)
        self._sync_unfold_cache(inputs)
        dw = np.zeros(self.spec.weight_shape, dtype=out_error.dtype)
        for i, (err, img) in enumerate(zip(out_error, inputs)):
            dw += self._backward_weights_image(i, err, img)
        return dw


@register_engine("parallel-gemm")
class ParallelGemmEngine(_UnfoldGemmBase):
    """Baseline Unfold+Parallel-GEMM: each image's GEMM spans all cores."""

    def _gemm(self, a: np.ndarray, b: np.ndarray,
              out: np.ndarray) -> np.ndarray:
        return parallel_gemm(a, b, num_cores=self.num_cores,
                             blocking=self.blocking, out=out)


@register_engine("gemm-in-parallel")
class GemmInParallelEngine(_UnfoldGemmBase):
    """GEMM-in-Parallel (Sec. 4.1): whole images assigned to cores.

    Functionally each image's GEMM runs single-threaded; the batch is
    partitioned across cores.  :meth:`core_assignment` exposes the
    image->core mapping so the simulated executor can compute the makespan.
    """

    def _gemm(self, a: np.ndarray, b: np.ndarray,
              out: np.ndarray) -> np.ndarray:
        return gemm(a, b, out=out, blocking=self.blocking)

    def core_assignment(self, batch_size: int) -> list[tuple[int, int]]:
        """Contiguous ``[lo, hi)`` image ranges per core."""
        return partition_rows(batch_size, self.num_cores)
