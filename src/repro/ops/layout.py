"""Data-layout transformations used by the generated kernels.

Three families of transformations appear in the paper:

* channel-major ``[C, Y, X]`` <-> channel-last ``[Y, X, C]`` transforms:
  the sparse BP kernel vectorizes along channels, so weights and input
  errors are transformed so that ``c`` is the fastest-varying dimension,
  while the output error keeps ``f`` fastest (Sec. 4.2).
* zero padding of the spatial dimensions (Table 2 layer-0 note).
* the strided-convolution layout transform of Eq. 21,
  ``I[f, y, x] -> I[f, y, s, x']`` with ``s = x mod sx`` and
  ``x' = x / sx``, which converts the unaligned vector loads of a strided
  stencil into aligned unit-stride loads (Sec. 4.3).
"""

from __future__ import annotations

import numpy as np

from repro.core.convspec import ConvSpec
from repro.errors import ShapeError


def pad_input(spec: ConvSpec, inputs: np.ndarray) -> np.ndarray:
    """Zero-pad ``[C, Y, X]`` inputs by ``spec.pad`` on both spatial sides."""
    if inputs.shape != spec.input_shape:
        raise ShapeError(f"input shape {inputs.shape} != spec {spec.input_shape}")
    if spec.pad == 0:
        return inputs
    width = ((0, 0), (spec.pad, spec.pad), (spec.pad, spec.pad))
    return np.pad(inputs, width)


def unpad_input(spec: ConvSpec, padded: np.ndarray) -> np.ndarray:
    """Strip the padding added by :func:`pad_input` (e.g. from EI in BP)."""
    if padded.shape != spec.padded_input_shape:
        raise ShapeError(f"padded shape {padded.shape} != spec {spec.padded_input_shape}")
    if spec.pad == 0:
        return padded
    p = spec.pad
    return padded[:, p:-p, p:-p]


def chw_to_hwc(array: np.ndarray) -> np.ndarray:
    """Transform ``[C, Y, X]`` to contiguous ``[Y, X, C]`` (c fastest)."""
    if array.ndim != 3:
        raise ShapeError(f"expected a 3-d [C, Y, X] array, got shape {array.shape}")
    return np.ascontiguousarray(np.moveaxis(array, 0, 2))


def hwc_to_chw(array: np.ndarray) -> np.ndarray:
    """Transform ``[Y, X, C]`` back to contiguous ``[C, Y, X]``."""
    if array.ndim != 3:
        raise ShapeError(f"expected a 3-d [Y, X, C] array, got shape {array.shape}")
    return np.ascontiguousarray(np.moveaxis(array, 2, 0))


def weights_to_sparse_layout(spec: ConvSpec, weights: np.ndarray) -> np.ndarray:
    """Transform weights ``[F, C, Ky, Kx]`` to ``[Ky, Kx, F, C]``.

    The sparse BP kernel multiplies each non-zero output error ``EO[f]``
    by the weight vector ``W[f, *]`` across channels (Fig. 5b), so ``c``
    must be fastest-varying and the kernel offsets slowest (they index the
    series of small dense MMs of Fig. 6).
    """
    if weights.shape != spec.weight_shape:
        raise ShapeError(f"weight shape {weights.shape} != spec {spec.weight_shape}")
    return np.ascontiguousarray(np.transpose(weights, (2, 3, 0, 1)))


def strided_x_layout(array: np.ndarray, sx: int) -> np.ndarray:
    """Eq. 21's layout transform along x: ``[.., X] -> [.., sx, X/sx]``.

    Elements with equal ``x mod sx`` become contiguous, so a strided
    stencil can issue unit-stride (aligned) vector loads.  The x dimension
    is zero-padded up to a multiple of ``sx`` when necessary.
    """
    if sx <= 0:
        raise ShapeError(f"stride must be positive, got {sx}")
    if sx == 1:
        return array
    nx = array.shape[-1]
    rem = (-nx) % sx
    if rem:
        pad_width = [(0, 0)] * (array.ndim - 1) + [(0, rem)]
        array = np.pad(array, pad_width)
        nx += rem
    shape = array.shape[:-1] + (nx // sx, sx)
    # [.., x', s] -> [.., s, x'] so that each phase s is a contiguous row.
    return np.ascontiguousarray(np.swapaxes(array.reshape(shape), -1, -2))


def unstrided_x_layout(array: np.ndarray, sx: int, nx: int) -> np.ndarray:
    """Inverse of :func:`strided_x_layout`, trimming back to width ``nx``."""
    if sx == 1:
        return array
    merged = np.swapaxes(array, -1, -2).reshape(array.shape[:-2] + (-1,))
    return np.ascontiguousarray(merged[..., :nx])


def transform_cost_elems(*arrays: np.ndarray) -> int:
    """Element traffic of layout transforms: each array read once, written once."""
    return int(sum(2 * a.size for a in arrays))
