"""Compressed Sparse Row matrices and sparse-dense multiplication.

This is the plain CSR building block that the paper's CT-CSR format
(:mod:`repro.sparse.ctcsr`) tiles along columns.  It also provides the
sparse-dense GEMM used by the pointer-shifting sparse convolution kernels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError


@dataclass(frozen=True)
class CSRMatrix:
    """A read-only CSR sparse matrix.

    * ``values`` -- non-zero values, row-major order.
    * ``col_indices`` -- column index of each value.
    * ``row_ptr`` -- ``row_ptr[i]:row_ptr[i+1]`` spans row ``i``'s values.
    * ``shape`` -- dense ``(rows, cols)`` shape.
    """

    values: np.ndarray
    col_indices: np.ndarray
    row_ptr: np.ndarray
    shape: tuple[int, int]

    def __post_init__(self) -> None:
        rows, cols = self.shape
        if rows < 0 or cols < 0:
            raise ShapeError(f"invalid shape {self.shape}")
        if len(self.row_ptr) != rows + 1:
            raise ShapeError(f"row_ptr length {len(self.row_ptr)} != rows+1 ({rows + 1})")
        if len(self.values) != len(self.col_indices):
            raise ShapeError("values and col_indices lengths disagree")
        if len(self.values) != self.row_ptr[-1]:
            raise ShapeError("row_ptr[-1] does not match number of stored values")
        if len(self.col_indices) and (
            self.col_indices.min() < 0 or self.col_indices.max() >= cols
        ):
            raise ShapeError("column index out of range")

    @property
    def nnz(self) -> int:
        """Number of stored non-zero values."""
        return int(len(self.values))

    @property
    def sparsity(self) -> float:
        """Fraction of zero elements in the dense view."""
        rows, cols = self.shape
        total = rows * cols
        if total == 0:
            return 0.0
        return 1.0 - self.nnz / total

    def row(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """(column indices, values) of row ``i``."""
        lo, hi = self.row_ptr[i], self.row_ptr[i + 1]
        return self.col_indices[lo:hi], self.values[lo:hi]

    def to_dense(self) -> np.ndarray:
        """Materialize the dense ``[rows, cols]`` array."""
        rows, cols = self.shape
        dense = np.zeros((rows, cols), dtype=self.values.dtype)
        for i in range(rows):
            cols_i, vals_i = self.row(i)
            dense[i, cols_i] = vals_i
        return dense


def csr_from_dense(dense: np.ndarray) -> CSRMatrix:
    """Compress a dense 2-d array into CSR, dropping exact zeros."""
    if dense.ndim != 2:
        raise ShapeError(f"expected a 2-d array, got shape {dense.shape}")
    mask = dense != 0
    counts = mask.sum(axis=1)
    row_ptr = np.zeros(dense.shape[0] + 1, dtype=np.int64)
    np.cumsum(counts, out=row_ptr[1:])
    rows_idx, cols_idx = np.nonzero(mask)
    return CSRMatrix(
        values=dense[rows_idx, cols_idx].copy(),
        col_indices=cols_idx.astype(np.int64),
        row_ptr=row_ptr,
        shape=dense.shape,
    )


def csr_matmul_dense(sparse: CSRMatrix, dense: np.ndarray) -> np.ndarray:
    """Sparse-dense product ``S . D`` with CSR ``S`` and dense ``D``.

    Vectorized along the dense matrix's columns, mirroring the paper's
    channel-vectorized sparse MM (Fig. 5b): every stored non-zero
    ``S[i, j]`` contributes ``S[i, j] * D[j, :]`` to output row ``i``.
    """
    rows, cols = sparse.shape
    if dense.ndim != 2 or dense.shape[0] != cols:
        raise ShapeError(f"dense shape {dense.shape} incompatible with sparse {sparse.shape}")
    out = np.zeros((rows, dense.shape[1]), dtype=np.result_type(sparse.values, dense))
    if sparse.nnz == 0:
        return out
    # Gather the dense rows selected by each non-zero, scale, and segment-sum.
    contributions = dense[sparse.col_indices] * sparse.values[:, None]
    row_of_value = np.repeat(
        np.arange(rows), np.diff(sparse.row_ptr).astype(np.int64)
    )
    np.add.at(out, row_of_value, contributions)
    return out


def csr_nnz_flops(sparse: CSRMatrix, dense_cols: int) -> int:
    """Useful flops of ``csr_matmul_dense``: 2 per non-zero per dense column."""
    return 2 * sparse.nnz * dense_cols
