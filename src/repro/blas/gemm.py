"""A small GEMM library: the repo's stand-in for OpenBLAS/MKL.

Provides a cache-blocked single-threaded GEMM (the building block of
GEMM-in-Parallel) and a partitioned Parallel-GEMM that mirrors how BLAS
libraries split one multiplication across cores.  Functionally the results
are identical; the *partitioning* matters because it determines per-core
arithmetic intensity, which the machine model uses to reproduce the
paper's scalability results (Sec. 3.2).

Blocking follows the classic Goto/van de Geijn structure: the K dimension
is split into panels sized for cache residency, M into panels per block of
A, and the inner macro-kernel multiplies an A-panel by a B-panel.  The
macro-kernel itself delegates to ``numpy.dot`` (this is a reproduction of
the *algorithm structure*; raw flop rates come from the machine model).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError

#: Default blocking parameters, sized so an A-panel (MC x KC floats) fits a
#: 256 KiB L2 cache with room for B streaming -- the Xeon E5-2650 geometry.
DEFAULT_MC = 128
DEFAULT_KC = 256
DEFAULT_NC = 1024


@dataclass(frozen=True)
class BlockingParams:
    """Cache-blocking parameters of the single-threaded GEMM."""

    mc: int = DEFAULT_MC
    kc: int = DEFAULT_KC
    nc: int = DEFAULT_NC

    def __post_init__(self) -> None:
        if min(self.mc, self.kc, self.nc) <= 0:
            raise ValueError(f"blocking parameters must be positive: {self}")


def _check_operands(a: np.ndarray, b: np.ndarray) -> tuple[int, int, int]:
    if a.ndim != 2 or b.ndim != 2:
        raise ShapeError(f"gemm operands must be 2-d, got {a.shape} and {b.shape}")
    m, k = a.shape
    k2, n = b.shape
    if k != k2:
        raise ShapeError(f"inner dimensions disagree: {a.shape} . {b.shape}")
    return m, k, n


def gemm(
    a: np.ndarray,
    b: np.ndarray,
    out: np.ndarray | None = None,
    blocking: BlockingParams | None = None,
) -> np.ndarray:
    """Single-threaded cache-blocked ``C (+)= A . B``.

    When ``out`` is given the product is accumulated into it; otherwise a
    fresh zero-initialized result is returned.
    """
    m, k, n = _check_operands(a, b)
    params = blocking or BlockingParams()
    if out is None:
        out = np.zeros((m, n), dtype=np.result_type(a, b))
    elif out.shape != (m, n):
        raise ShapeError(f"out shape {out.shape} != ({m}, {n})")
    for j0 in range(0, n, params.nc):
        j1 = min(j0 + params.nc, n)
        for k0 in range(0, k, params.kc):
            k1 = min(k0 + params.kc, k)
            b_panel = b[k0:k1, j0:j1]
            for i0 in range(0, m, params.mc):
                i1 = min(i0 + params.mc, m)
                # Macro-kernel: A-panel resident, B-panel streamed.
                out[i0:i1, j0:j1] += a[i0:i1, k0:k1] @ b_panel
    return out


def partition_rows(m: int, parts: int) -> list[tuple[int, int]]:
    """Split ``m`` rows into ``parts`` contiguous, balanced half-open ranges.

    Ranges can be empty when ``parts > m``; callers skip empty slices.
    """
    if parts <= 0:
        raise ValueError(f"parts must be positive, got {parts}")
    base, extra = divmod(m, parts)
    bounds = [0]
    for i in range(parts):
        bounds.append(bounds[-1] + base + (1 if i < extra else 0))
    return [(bounds[i], bounds[i + 1]) for i in range(parts)]


def parallel_gemm(
    a: np.ndarray,
    b: np.ndarray,
    num_cores: int,
    blocking: BlockingParams | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Parallel-GEMM: one multiplication partitioned across ``num_cores``.

    Mirrors the paper's model of BLAS parallelization: the rows of C (and
    of A) are divided among cores while *every core streams all of B*
    through its private cache -- the source of the per-core AIT reduction
    of Sec. 3.2.  Execution here is sequential over the partitions (the
    functional result is identical); concurrency is accounted for by the
    machine model.  When ``out`` is given the product is accumulated into
    it, as with :func:`gemm`.
    """
    m, _, n = _check_operands(a, b)
    if num_cores <= 0:
        raise ValueError(f"num_cores must be positive, got {num_cores}")
    if out is None:
        out = np.zeros((m, n), dtype=np.result_type(a, b))
    elif out.shape != (m, n):
        raise ShapeError(f"out shape {out.shape} != ({m}, {n})")
    for lo, hi in partition_rows(m, num_cores):
        if lo == hi:
            continue
        gemm(a[lo:hi], b, out=out[lo:hi], blocking=blocking)
    return out


def gemm_flops(m: int, k: int, n: int) -> int:
    """Flop count of an ``m x k . k x n`` multiplication (fused as 2 flops)."""
    return 2 * m * k * n


def gemm_elems(m: int, k: int, n: int) -> int:
    """Minimum element accesses of a GEMM: read A and B, write C."""
    return m * k + k * n + m * n


def parallel_gemm_percore_elems(m: int, k: int, n: int, num_cores: int) -> float:
    """Per-core element accesses under row-partitioned Parallel-GEMM.

    Each core reads its A slice (``MK/p``), writes its C slice (``MN/p``)
    and streams *all* of B (``KN``) -- the paper's Sec. 3.2 accounting.
    """
    if num_cores <= 0:
        raise ValueError(f"num_cores must be positive, got {num_cores}")
    p = num_cores
    return m * k / p + k * n + m * n / p


def parallel_gemm_percore_ait(m: int, k: int, n: int, num_cores: int) -> float:
    """Per-core AIT (flops per element) of row-partitioned Parallel-GEMM."""
    flops_per_core = gemm_flops(m, k, n) / num_cores
    return flops_per_core / parallel_gemm_percore_elems(m, k, n, num_cores)
