"""A small BLAS: blocked GEMM, Parallel-GEMM and CSR sparse routines."""

from repro.blas.gemm import BlockingParams, gemm, parallel_gemm
from repro.blas.sparse import CSRMatrix, csr_from_dense, csr_matmul_dense

__all__ = [
    "BlockingParams",
    "gemm",
    "parallel_gemm",
    "CSRMatrix",
    "csr_from_dense",
    "csr_matmul_dense",
]
