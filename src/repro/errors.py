"""Exception hierarchy for the repro package.

Every error raised by this package derives from :class:`ReproError` so
callers can catch the whole family with one handler.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ShapeError(ReproError, ValueError):
    """A tensor or convolution shape is inconsistent or unsupported."""


class CodegenError(ReproError):
    """A code generator could not produce a kernel for the request."""


class CheckError(ReproError):
    """Static verification found errors or an analyzer could not run.

    Raised by :mod:`repro.check` when a generated kernel, network graph or
    runtime construct fails verification; the message names the offending
    ConvSpec, instruction or slice so the failure is actionable.
    """


class PlanError(ReproError):
    """An execution plan is invalid or refers to unknown engines."""


class ResilienceError(ReproError):
    """The resilient runtime exhausted its retry/timeout budget."""


class TaskTimeoutError(ResilienceError):
    """A worker-pool task exceeded its deadline with no straggler budget left."""


class InjectedFault(ReproError):
    """A fault raised on purpose by :mod:`repro.resilience.faults`.

    Carries the injection site and invocation index so retry handlers and
    tests can tell deliberate chaos from organic failures.
    """

    def __init__(self, site: str, invocation: int, message: str = ""):
        self.site = site
        self.invocation = invocation
        text = message or f"injected fault at {site!r} (invocation {invocation})"
        super().__init__(text)


class MachineModelError(ReproError):
    """The machine model was asked to time an impossible work item."""
