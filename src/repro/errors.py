"""Exception hierarchy for the repro package.

Every error raised by this package derives from :class:`ReproError` so
callers can catch the whole family with one handler.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ShapeError(ReproError, ValueError):
    """A tensor or convolution shape is inconsistent or unsupported."""


class CodegenError(ReproError):
    """A code generator could not produce a kernel for the request."""


class CheckError(ReproError):
    """Static verification found errors or an analyzer could not run.

    Raised by :mod:`repro.check` when a generated kernel, network graph or
    runtime construct fails verification; the message names the offending
    ConvSpec, instruction or slice so the failure is actionable.
    """


class PlanError(ReproError):
    """An execution plan is invalid or refers to unknown engines."""


class MachineModelError(ReproError):
    """The machine model was asked to time an impossible work item."""
