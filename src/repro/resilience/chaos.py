"""The chaos harness: train a small real network under a fault plan.

``run_chaos`` drives a short MNIST-scale training job with a named
:class:`~repro.resilience.faults.FaultPlan` active and the resilient
execution policy applied, then reports whether the job *survived*
(completed all epochs), whether its loss still *improved*, and which
faults actually fired.  With ``check_resume`` it additionally replays
the same job killed after ``epochs - 1`` epochs and resumes it from the
checkpoint, asserting the resumed run's parameters are bit-identical to
the uninterrupted run's.

The resume comparison relies on two properties of the stack:

* retries and straggler reassignment are numerics-neutral (tasks are
  pure and idempotent), so a faulted epoch still produces the exact
  bytes a fault-free scheduler ordering would; and
* the named plans fire all their ``at`` faults early (first epoch of
  the default geometry), so the epoch trained *after* the resume point
  is fault-free in both the uninterrupted and the resumed run --
  invocation counters reset on resume, which would otherwise replay
  first-epoch faults into the final epoch.

This module imports the training stack, so it lives outside
``repro.resilience.__init__`` to keep the resilience primitives
importable from low-level runtime modules without cycles.
"""

from __future__ import annotations

import json
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro import telemetry
from repro.nn.training_loop import TrainingHistory, TrainingLoop
from repro.obs.monitor import TrainingMonitor
from repro.resilience import faults
from repro.resilience.policy import RetryPolicy, apply_policy
from repro.resilience.quarantine import default_registry

#: Counters the report surfaces (when present in the collected run).
REPORT_COUNTERS = (
    "faults.injected",
    "pool.retries",
    "pool.stragglers",
    "pool.timeouts",
    "pool.task_failures",
    "engine.fallbacks",
    "quarantine.engines",
    "sgd.skipped_batches",
    "ps.pushes.dropped",
    "ps.pushes.rejected",
    "train.checkpoints",
)


@dataclass
class ChaosReport:
    """Outcome of one chaos run."""

    plan: str
    seed: int
    epochs: int
    survived: bool
    improved: bool
    final_loss: float
    skipped_batches: int
    injections: list[str] = field(default_factory=list)
    counters: dict[str, float] = field(default_factory=dict)
    error: str = ""
    resume_checked: bool = False
    resume_identical: bool = False
    #: The attached :class:`~repro.obs.monitor.TrainingMonitor` report
    #: of the main run (per-layer time, goodput, drift, retunes).
    monitor_report: dict[str, Any] | None = None

    @property
    def ok(self) -> bool:
        """The CI gate: survived, still learning, resume held (if run)."""
        if not (self.survived and self.improved):
            return False
        return self.resume_identical if self.resume_checked else True

    def lines(self) -> list[str]:
        """A human-readable summary, one line per fact."""
        out = [
            f"chaos plan: {self.plan} (seed {self.seed}, "
            f"{self.epochs} epochs)",
            f"survived:  {self.survived}"
            + (f" ({self.error})" if self.error else ""),
            f"improved:  {self.improved} "
            f"(final train loss {self.final_loss:.4f})",
            f"skipped batches: {self.skipped_batches}",
        ]
        for name in REPORT_COUNTERS:
            if name in self.counters:
                out.append(f"  {name}: {int(self.counters[name])}")
        if self.injections:
            out.append("faults fired:")
            out.extend(f"  {line}" for line in self.injections)
        else:
            out.append("faults fired: none")
        if self.resume_checked:
            out.append(f"kill/resume bit-identical: {self.resume_identical}")
        return out

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly snapshot (the chaos CLI's ``--out`` artifact)."""
        return {
            "plan": self.plan,
            "seed": self.seed,
            "epochs": self.epochs,
            "ok": self.ok,
            "survived": self.survived,
            "improved": self.improved,
            "final_loss": self.final_loss,
            "skipped_batches": self.skipped_batches,
            "injections": list(self.injections),
            "counters": dict(self.counters),
            "error": self.error,
            "resume_checked": self.resume_checked,
            "resume_identical": self.resume_identical,
            "monitor": self.monitor_report,
        }

    def write_json(self, path: str | Path) -> Path:
        """Write the report as JSON; returns the path written."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path


def _params_bytes(network) -> bytes:
    """All parameters concatenated -- the bit-identity fingerprint."""
    return b"".join(
        np.ascontiguousarray(param).tobytes()
        for _, param, _ in network.parameters()
    )


def _build_job(seed: int, samples: int, threads: int, batch: int,
               checkpoint_dir: str | Path | None,
               backend: str = "thread",
               scheduler: str = "barrier") -> TrainingLoop:
    """A fresh, deterministic training job (network + data + loop)."""
    from repro.data.synthetic import mnist_like
    from repro.nn.zoo import mnist_net

    network = mnist_net(
        scale=0.25,
        rng=np.random.default_rng(seed),
        threads=threads if threads and threads > 1 else None,
        backend=backend,
    )
    data = mnist_like(samples, seed=seed)
    return TrainingLoop(
        network,
        data,
        batch_size=batch,
        shuffle_seed=seed,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=1,
        scheduler=scheduler,
    )


def _close(loop: TrainingLoop) -> None:
    for layer in loop.network.conv_layers():
        layer.close()


def _run_ps_segment(seed: int) -> None:
    """A short async parameter-server job (visits the ``ps.push`` site).

    The single-process training loop never pushes to a parameter
    server, so plans targeting ``ps.push`` additionally run this
    data-parallel segment under the same injector; drops and delays
    must not stop it from completing.
    """
    from repro.data.synthetic import mnist_like
    from repro.distributed.trainer import DistributedTrainer
    from repro.nn.zoo import mnist_net

    trainer = DistributedTrainer(
        mnist_net(scale=0.25, rng=np.random.default_rng(seed)),
        mnist_like(32, seed=seed),
        num_workers=2,
        mode="async",
        sync_interval=2,
        max_staleness=2,
        staleness_policy="refresh",
    )
    trainer.run(6)


def _run_segment(loop: TrainingLoop, epochs: int,
                 plan: faults.FaultPlan | None,
                 policy: RetryPolicy) -> TrainingHistory:
    """Run ``loop`` to ``epochs`` total epochs under plan + policy."""
    default_registry().clear()
    if plan is None:
        with apply_policy(policy):
            return loop.run(epochs)
    with faults.inject(plan), apply_policy(policy):
        return loop.run(epochs)


def default_policy() -> RetryPolicy:
    """The retry/timeout policy the chaos CLI trains under."""
    return RetryPolicy(max_retries=2, backoff_base=0.01, timeout=0.25,
                       max_stragglers=1)


def run_chaos(
    plan_name: str = "smoke",
    seed: int = 0,
    epochs: int = 3,
    batch: int = 8,
    samples: int = 48,
    threads: int = 2,
    backend: str = "thread",
    scheduler: str = "barrier",
    check_resume: bool = False,
    checkpoint_dir: str | Path | None = None,
    policy: RetryPolicy | None = None,
) -> ChaosReport:
    """Train under a named fault plan and report survival.

    The job itself is fixed (quarter-scale MNIST net, synthetic data)
    so a plan + seed is fully reproducible; ``check_resume`` replays it
    killed after ``epochs - 1`` epochs and resumes from the checkpoint,
    comparing final parameter bytes against the uninterrupted run.
    """
    plan = faults.get_plan(plan_name, seed)
    policy = policy or default_policy()
    report = ChaosReport(plan=plan_name, seed=seed, epochs=epochs,
                         survived=False, improved=False,
                         final_loss=float("nan"), skipped_batches=0)

    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        tmp_dir = Path(tmp)
        ckpt_a = Path(checkpoint_dir) if checkpoint_dir else tmp_dir / "a"
        loop = _build_job(seed, samples, threads, batch, ckpt_a, backend,
                          scheduler)
        injector = faults.FaultInjector(plan)
        # The monitor shares the chaos collector: its hooks watch the
        # main run, and its final report rides along on the ChaosReport.
        monitor = TrainingMonitor()
        monitor.attach(loop)
        try:
            with telemetry.collect(monitor.collector) as collector:
                with faults.inject(injector), apply_policy(policy):
                    default_registry().clear()
                    history = loop.run(epochs)
                    if plan.for_site("ps.push"):
                        _run_ps_segment(seed)
        except Exception as exc:  # noqa: BLE001 - survival is the result
            report.error = f"{type(exc).__name__}: {exc}"
            _close(loop)
            return report
        finally:
            report.counters = {
                name: value
                for name, value in collector.counters.items()
                if name in REPORT_COUNTERS
            }
            report.injections = [
                f"{inj.site} {inj.kind} @ invocation {inj.invocation}"
                for inj in injector.fired()
            ]
            report.monitor_report = monitor.report().to_dict()
        _close(loop)
        report.survived = True
        report.improved = history.improved()
        report.final_loss = history.final.train_loss
        report.skipped_batches = sum(e.skipped_batches for e in history.epochs)
        final_bytes = _params_bytes(loop.network)
        final_losses = history.loss_curve()

        if check_resume and epochs >= 2:
            report.resume_checked = True
            # The "killed" run: same job, same faults, stopped one epoch
            # short of the full run.
            killed = _build_job(seed, samples, threads, batch, tmp_dir / "b",
                                backend, scheduler)
            _run_segment(killed, epochs - 1, plan, policy)
            _close(killed)
            ckpt = TrainingLoop.latest_checkpoint(tmp_dir / "b")
            # The resumed run: a fresh process would rebuild the job from
            # scratch, so we do too -- then restore and finish.  No fault
            # plan: the named plans are spent before the resume point,
            # and re-activating one would replay first-epoch faults.
            resumed = _build_job(seed, samples, threads, batch, None, backend,
                                 scheduler)
            resumed.restore(ckpt)
            resumed_history = _run_segment(resumed, epochs, None, policy)
            _close(resumed)
            report.resume_identical = (
                _params_bytes(resumed.network) == final_bytes
                and resumed_history.loss_curve() == final_losses
            )
    return report
