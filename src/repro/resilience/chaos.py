"""The chaos harness: train a small real network under a fault plan.

``run_chaos`` drives a short MNIST-scale training job with a named
:class:`~repro.resilience.faults.FaultPlan` active and the resilient
execution policy applied, then reports whether the job *survived*
(completed all epochs), whether its loss still *improved*, and which
faults actually fired.  With ``check_resume`` it additionally replays
the same job killed after ``epochs - 1`` epochs and resumes it from the
checkpoint, asserting the resumed run's parameters are bit-identical to
the uninterrupted run's.

The resume comparison relies on two properties of the stack:

* retries and straggler reassignment are numerics-neutral (tasks are
  pure and idempotent), so a faulted epoch still produces the exact
  bytes a fault-free scheduler ordering would; and
* the named plans fire all their ``at`` faults early (first epoch of
  the default geometry), so the epoch trained *after* the resume point
  is fault-free in both the uninterrupted and the resumed run --
  invocation counters reset on resume, which would otherwise replay
  first-epoch faults into the final epoch.

Besides the injection plans, two **real-kill** plans
(:data:`repro.resilience.faults.REAL_KILL_PLANS`) strike live worker
processes with actual signals mid-step -- ``kill9`` sends SIGKILL,
``hang`` sends SIGSTOP and relies on the supervisor's heartbeat deadline
to escalate -- then assert the run survived, its final weights are
bit-identical to an unfaulted serial run, and no ``/dev/shm`` segment
leaked.  Their resume leg goes further: a child process trains with a
batch journal armed and is SIGKILL'd *mid-epoch*; the parent reaps the
orphaned segments with the shm janitor and resumes from the journal,
asserting bit-identity again.

This module imports the training stack, so it lives outside
``repro.resilience.__init__`` to keep the resilience primitives
importable from low-level runtime modules without cycles.
"""

from __future__ import annotations

import json
import os
import signal
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro import telemetry
from repro.nn.serialize import journal_position
from repro.nn.training_loop import TrainingHistory, TrainingLoop
from repro.obs.monitor import TrainingMonitor
from repro.resilience import faults
from repro.resilience.policy import RetryPolicy, apply_policy
from repro.resilience.quarantine import default_registry
from repro.runtime import shm
from repro.runtime.backends import ProcessBackend

#: Counters the report surfaces (when present in the collected run).
REPORT_COUNTERS = (
    "faults.injected",
    "pool.retries",
    "pool.stragglers",
    "pool.timeouts",
    "pool.task_failures",
    "pool.worker_crashes",
    "supervisor.hung_workers",
    "supervisor.respawns",
    "supervisor.redispatches",
    "shm.reaped_segments",
    "engine.fallbacks",
    "quarantine.engines",
    "sgd.skipped_batches",
    "ps.pushes.dropped",
    "ps.pushes.rejected",
    "train.checkpoints",
    "train.journal_writes",
)

#: Re-exported for the CLI: chaos accepts these on top of plan_names().
REAL_KILL_PLANS = faults.REAL_KILL_PLANS


@dataclass
class ChaosReport:
    """Outcome of one chaos run."""

    plan: str
    seed: int
    epochs: int
    survived: bool
    improved: bool
    final_loss: float
    skipped_batches: int
    injections: list[str] = field(default_factory=list)
    counters: dict[str, float] = field(default_factory=dict)
    error: str = ""
    resume_checked: bool = False
    resume_identical: bool = False
    #: Real-kill plans only: final weights vs the unfaulted serial run
    #: (None when the plan does not check bit-identity).
    bit_identical: bool | None = None
    #: Real-kill plans only: our /dev/shm segments that survived the run.
    leaked_segments: list[str] = field(default_factory=list)
    #: The attached :class:`~repro.obs.monitor.TrainingMonitor` report
    #: of the main run (per-layer time, goodput, drift, retunes).
    monitor_report: dict[str, Any] | None = None

    @property
    def ok(self) -> bool:
        """The CI gate: survived, still learning, resume held (if run)."""
        if not (self.survived and self.improved):
            return False
        if self.bit_identical is False or self.leaked_segments:
            return False
        return self.resume_identical if self.resume_checked else True

    def lines(self) -> list[str]:
        """A human-readable summary, one line per fact."""
        out = [
            f"chaos plan: {self.plan} (seed {self.seed}, "
            f"{self.epochs} epochs)",
            f"survived:  {self.survived}"
            + (f" ({self.error})" if self.error else ""),
            f"improved:  {self.improved} "
            f"(final train loss {self.final_loss:.4f})",
            f"skipped batches: {self.skipped_batches}",
        ]
        for name in REPORT_COUNTERS:
            if name in self.counters:
                out.append(f"  {name}: {int(self.counters[name])}")
        if self.injections:
            out.append("faults fired:")
            out.extend(f"  {line}" for line in self.injections)
        else:
            out.append("faults fired: none")
        if self.bit_identical is not None:
            out.append(f"weights bit-identical to serial: "
                       f"{self.bit_identical}")
        if self.leaked_segments:
            out.append(f"leaked shm segments: {self.leaked_segments}")
        if self.resume_checked:
            out.append(f"kill/resume bit-identical: {self.resume_identical}")
        return out

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly snapshot (the chaos CLI's ``--out`` artifact)."""
        return {
            "plan": self.plan,
            "seed": self.seed,
            "epochs": self.epochs,
            "ok": self.ok,
            "survived": self.survived,
            "improved": self.improved,
            "final_loss": self.final_loss,
            "skipped_batches": self.skipped_batches,
            "injections": list(self.injections),
            "counters": dict(self.counters),
            "error": self.error,
            "resume_checked": self.resume_checked,
            "resume_identical": self.resume_identical,
            "bit_identical": self.bit_identical,
            "leaked_segments": list(self.leaked_segments),
            "monitor": self.monitor_report,
        }

    def write_json(self, path: str | Path) -> Path:
        """Write the report as JSON; returns the path written."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path


def _params_bytes(network) -> bytes:
    """All parameters concatenated -- the bit-identity fingerprint."""
    return b"".join(
        np.ascontiguousarray(param).tobytes()
        for _, param, _ in network.parameters()
    )


def _build_job(seed: int, samples: int, threads: int, batch: int,
               checkpoint_dir: str | Path | None,
               backend: str = "thread",
               scheduler: str = "barrier") -> TrainingLoop:
    """A fresh, deterministic training job (network + data + loop)."""
    from repro.data.synthetic import mnist_like
    from repro.nn.zoo import mnist_net

    network = mnist_net(
        scale=0.25,
        rng=np.random.default_rng(seed),
        threads=threads if threads and threads > 1 else None,
        backend=backend,
    )
    data = mnist_like(samples, seed=seed)
    return TrainingLoop(
        network,
        data,
        batch_size=batch,
        shuffle_seed=seed,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=1,
        scheduler=scheduler,
    )


def _close(loop: TrainingLoop) -> None:
    for layer in loop.network.conv_layers():
        layer.close()


def _run_ps_segment(seed: int) -> None:
    """A short async parameter-server job (visits the ``ps.push`` site).

    The single-process training loop never pushes to a parameter
    server, so plans targeting ``ps.push`` additionally run this
    data-parallel segment under the same injector; drops and delays
    must not stop it from completing.
    """
    from repro.data.synthetic import mnist_like
    from repro.distributed.trainer import DistributedTrainer
    from repro.nn.zoo import mnist_net

    trainer = DistributedTrainer(
        mnist_net(scale=0.25, rng=np.random.default_rng(seed)),
        mnist_like(32, seed=seed),
        num_workers=2,
        mode="async",
        sync_interval=2,
        max_staleness=2,
        staleness_policy="refresh",
    )
    trainer.run(6)


def _run_segment(loop: TrainingLoop, epochs: int,
                 plan: faults.FaultPlan | None,
                 policy: RetryPolicy) -> TrainingHistory:
    """Run ``loop`` to ``epochs`` total epochs under plan + policy."""
    default_registry().clear()
    if plan is None:
        with apply_policy(policy):
            return loop.run(epochs)
    with faults.inject(plan), apply_policy(policy):
        return loop.run(epochs)


def default_policy() -> RetryPolicy:
    """The retry/timeout policy the chaos CLI trains under."""
    return RetryPolicy(max_retries=2, backoff_base=0.01, timeout=0.25,
                       max_stragglers=1)


def kill_chaos_policy() -> RetryPolicy:
    """The policy for the real-kill plans.

    No per-attempt deadline: hang recovery belongs to the supervisor's
    heartbeat deadline (a Python-side timeout would race it and double
    the work on a loaded host), while crash recovery gets generous retry
    and redispatch budgets.
    """
    return RetryPolicy(max_retries=3, backoff_base=0.01, timeout=None,
                       max_redispatches=2)


# -- real-kill plans (kill9 / hang) ------------------------------------------


def _process_backends(network) -> list[ProcessBackend]:
    """The live :class:`ProcessBackend` of every conv layer's pool."""
    backends: list[ProcessBackend] = []
    for layer in network.conv_layers():
        pool = getattr(layer, "_pool", None)
        backend = pool.backend if pool is not None else None
        if isinstance(backend, ProcessBackend):
            backends.append(backend)
    return backends


#: Heartbeat deadline pinned by the ``hang`` plan: short enough that a
#: SIGSTOP'd worker is escalated within the test budget, long enough
#: that a healthy small-batch task never trips it.
HANG_PLAN_DEADLINE = 1.5

#: Delay before the mid-step strike fired from a timer thread.
_MIDSTEP_DELAY = 0.05


def run_journal_job(seed: int, samples: int, threads: int, batch: int,
                    checkpoint_dir: str, epochs: int,
                    backend: str = "process",
                    scheduler: str = "barrier") -> None:
    """Child-process entry of the journal kill/resume leg.

    Runs the standard chaos job with a batch journal written after
    *every* batch; the parent SIGKILLs this process mid-epoch and then
    resumes from the journal it left behind.
    """
    loop = _build_job(seed, samples, threads, batch, checkpoint_dir,
                      backend, scheduler)
    loop.journal_every = 1
    try:
        loop.run(epochs)
    finally:
        _close(loop)


def _check_journal_resume(seed: int, samples: int, threads: int, batch: int,
                          epochs: int, scheduler: str, ref_bytes: bytes,
                          policy: RetryPolicy) -> bool:
    """SIGKILL a journaling child mid-epoch; resume; compare weights.

    The child is a whole training process (process backend), so the kill
    also orphans its ``/dev/shm`` segments -- the janitor must reclaim
    them before the resumed run is considered clean.
    """
    import multiprocessing as mp

    ctx = mp.get_context("spawn")
    with tempfile.TemporaryDirectory(prefix="repro-chaos-journal-") as tmp:
        child = ctx.Process(
            target=run_journal_job,
            args=(seed, samples, threads, batch, tmp, epochs,
                  "process", scheduler),
        )
        child.start()
        journal = Path(tmp) / "journal.npz"
        # Strike as soon as the journal shows the final epoch underway:
        # the kill then lands mid-epoch with batches still remaining.
        deadline = time.monotonic() + 300.0
        while child.is_alive() and time.monotonic() < deadline:
            position = journal_position(journal)
            if position is not None and position[0] >= epochs:
                break
            time.sleep(0.02)
        if child.is_alive() and child.pid is not None:
            os.kill(child.pid, signal.SIGKILL)
        child.join(timeout=30.0)
        # The child's workers exit on their own (request pipe EOF);
        # give them a moment, then reap the orphaned segments the
        # SIGKILL'd owner could never unlink.
        time.sleep(0.5)
        shm.reap_orphans()
        # Resume in this process from whatever the journal pinned.
        # The serial backend is bit-identical to the process backend,
        # and much cheaper for the replay.
        resumed = _build_job(seed, samples, threads, batch, tmp,
                             "serial", "barrier")
        with apply_policy(policy):
            resumed.resume_latest()
            resumed.run(epochs)
        _close(resumed)
        return _params_bytes(resumed.network) == ref_bytes


def _run_real_kill(report: ChaosReport, plan_name: str, seed: int,
                   epochs: int, batch: int, samples: int, threads: int,
                   scheduler: str, check_resume: bool,
                   policy: RetryPolicy) -> ChaosReport:
    """Drive the ``kill9`` / ``hang`` plan and fill in ``report``."""
    sig = signal.SIGKILL if plan_name == "kill9" else signal.SIGSTOP

    # Unfaulted serial reference: same worker count, so the partition
    # geometry (and hence the fixed dW reduction order) is identical.
    reference = _build_job(seed, samples, threads, batch, None,
                           "serial", "barrier")
    ref_history = reference.run(epochs)
    ref_bytes = _params_bytes(reference.network)
    _close(reference)

    pre_existing = set(shm.host_segments())
    loop = _build_job(seed, samples, threads, batch, None,
                      "process", scheduler)
    monitor = TrainingMonitor()
    monitor.attach(loop)
    strikes: list[str] = []
    struck_pids: list[int] = []
    timers: list[threading.Timer] = []

    def _signal_worker(backend: ProcessBackend, when: str,
                       epoch: int, index: int) -> None:
        pids = backend.worker_pids()
        if not pids:  # pragma: no cover - all workers already down
            return
        try:
            os.kill(pids[0], sig)
        except OSError:  # pragma: no cover - worker exited under us
            return
        struck_pids.append(pids[0])
        strikes.append(
            f"{plan_name} SIG{'KILL' if sig == signal.SIGKILL else 'STOP'} "
            f"pid {pids[0]} {when} @ epoch {epoch} batch {index}"
        )

    def strike(epoch: int, index: int, result) -> None:
        # Two strikes: between steps early in epoch 1, and mid-step at
        # the top of epoch 2 (a timer fires while the next batch's
        # tasks are in flight).
        if (epoch, index) not in ((1, 1), (2, 0)):
            return
        backends = _process_backends(loop.network)
        if not backends:  # pragma: no cover - layers not on process yet
            return
        if plan_name == "hang":
            # SIGSTOP leaves the worker "alive"; only the heartbeat
            # deadline unblocks it.  Pin a short one (and a short kill
            # grace) so escalation happens inside the test budget.
            for backend in backends:
                backend.set_task_deadline(HANG_PLAN_DEADLINE)
                backend.escalate_grace = 0.5
        target = backends[index % len(backends)]
        if (epoch, index) == (1, 1):
            _signal_worker(target, "between-steps", epoch, index)
        else:
            timer = threading.Timer(
                _MIDSTEP_DELAY, _signal_worker,
                args=(target, "mid-step", epoch, index),
            )
            timer.start()
            timers.append(timer)

    loop.add_batch_hook(strike)
    try:
        with telemetry.collect(monitor.collector) as collector:
            with apply_policy(policy):
                default_registry().clear()
                history = loop.run(epochs)
                # The mid-step strike can land in the run's final
                # moments: the victim may not be reaped (and the crash
                # counted) until after loop.run returns.  Join the
                # strike timers and sweep until every SIGKILL'd pid is
                # gone, so the counter snapshot below is deterministic.
                for timer in timers:
                    timer.join(timeout=5.0)
                if sig == signal.SIGKILL and struck_pids:
                    deadline = time.monotonic() + 10.0
                    while time.monotonic() < deadline:
                        backends = _process_backends(loop.network)
                        for backend in backends:
                            backend.sweep_workers()
                        live = {pid for b in backends
                                for pid in b.worker_pids()}
                        if not live.intersection(struck_pids):
                            break
                        time.sleep(0.02)  # pragma: no cover - SIGKILL lag
    except Exception as exc:  # noqa: BLE001 - survival is the result
        report.error = f"{type(exc).__name__}: {exc}"
        _close(loop)
        shm.reap_orphans()
        return report
    finally:
        for timer in timers:
            timer.join(timeout=5.0)
        report.counters = {
            name: value
            for name, value in collector.counters.items()
            if name in REPORT_COUNTERS
        }
        report.injections = list(strikes)
        report.monitor_report = monitor.report().to_dict()
    _close(loop)
    report.survived = True
    report.improved = history.improved()
    report.final_loss = history.final.train_loss
    report.skipped_batches = sum(e.skipped_batches for e in history.epochs)
    report.bit_identical = (
        _params_bytes(loop.network) == ref_bytes
        and history.loss_curve() == ref_history.loss_curve()
    )
    leaked = list(shm.owned_segments())
    leaked += sorted(set(shm.host_segments()) - pre_existing)
    report.leaked_segments = sorted(set(leaked))

    if check_resume and epochs >= 2:
        report.resume_checked = True
        report.resume_identical = _check_journal_resume(
            seed, samples, threads, batch, epochs, scheduler,
            ref_bytes, policy,
        )
    return report


def run_chaos(
    plan_name: str = "smoke",
    seed: int = 0,
    epochs: int = 3,
    batch: int = 8,
    samples: int = 48,
    threads: int = 2,
    backend: str = "thread",
    scheduler: str = "barrier",
    check_resume: bool = False,
    checkpoint_dir: str | Path | None = None,
    policy: RetryPolicy | None = None,
) -> ChaosReport:
    """Train under a named fault plan and report survival.

    The job itself is fixed (quarter-scale MNIST net, synthetic data)
    so a plan + seed is fully reproducible; ``check_resume`` replays it
    killed after ``epochs - 1`` epochs and resumes from the checkpoint,
    comparing final parameter bytes against the uninterrupted run.

    The real-kill plans (``kill9``, ``hang``) ignore ``backend`` (they
    require the process backend -- real signals need real processes) and
    route ``check_resume`` through the mid-epoch batch journal instead
    of the epoch checkpoint.
    """
    if plan_name in REAL_KILL_PLANS:
        report = ChaosReport(plan=plan_name, seed=seed, epochs=epochs,
                             survived=False, improved=False,
                             final_loss=float("nan"), skipped_batches=0)
        return _run_real_kill(report, plan_name, seed, epochs, batch,
                              samples, threads, scheduler, check_resume,
                              policy or kill_chaos_policy())

    plan = faults.get_plan(plan_name, seed)
    policy = policy or default_policy()
    report = ChaosReport(plan=plan_name, seed=seed, epochs=epochs,
                         survived=False, improved=False,
                         final_loss=float("nan"), skipped_batches=0)

    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        tmp_dir = Path(tmp)
        ckpt_a = Path(checkpoint_dir) if checkpoint_dir else tmp_dir / "a"
        loop = _build_job(seed, samples, threads, batch, ckpt_a, backend,
                          scheduler)
        injector = faults.FaultInjector(plan)
        # The monitor shares the chaos collector: its hooks watch the
        # main run, and its final report rides along on the ChaosReport.
        monitor = TrainingMonitor()
        monitor.attach(loop)
        try:
            with telemetry.collect(monitor.collector) as collector:
                with faults.inject(injector), apply_policy(policy):
                    default_registry().clear()
                    history = loop.run(epochs)
                    if plan.for_site("ps.push"):
                        _run_ps_segment(seed)
        except Exception as exc:  # noqa: BLE001 - survival is the result
            report.error = f"{type(exc).__name__}: {exc}"
            _close(loop)
            return report
        finally:
            report.counters = {
                name: value
                for name, value in collector.counters.items()
                if name in REPORT_COUNTERS
            }
            report.injections = [
                f"{inj.site} {inj.kind} @ invocation {inj.invocation}"
                for inj in injector.fired()
            ]
            report.monitor_report = monitor.report().to_dict()
        _close(loop)
        report.survived = True
        report.improved = history.improved()
        report.final_loss = history.final.train_loss
        report.skipped_batches = sum(e.skipped_batches for e in history.epochs)
        final_bytes = _params_bytes(loop.network)
        final_losses = history.loss_curve()

        if check_resume and epochs >= 2:
            report.resume_checked = True
            # The "killed" run: same job, same faults, stopped one epoch
            # short of the full run.
            killed = _build_job(seed, samples, threads, batch, tmp_dir / "b",
                                backend, scheduler)
            _run_segment(killed, epochs - 1, plan, policy)
            _close(killed)
            ckpt = TrainingLoop.latest_checkpoint(tmp_dir / "b")
            # The resumed run: a fresh process would rebuild the job from
            # scratch, so we do too -- then restore and finish.  No fault
            # plan: the named plans are spent before the resume point,
            # and re-activating one would replay first-epoch faults.
            resumed = _build_job(seed, samples, threads, batch, None, backend,
                                 scheduler)
            resumed.restore(ckpt)
            resumed_history = _run_segment(resumed, epochs, None, policy)
            _close(resumed)
            report.resume_identical = (
                _params_bytes(resumed.network) == final_bytes
                and resumed_history.loss_curve() == final_losses
            )
    return report
