"""Deterministic, seeded fault injection.

A :class:`FaultPlan` is a named set of :class:`FaultSpec` entries, each
bound to an injection *site* -- a string naming an instrumented point in
the runtime.  Instrumented code calls the module-level helpers
(:func:`perturb`, :func:`corrupt_array`, :func:`should_drop`), which are
no-ops unless a plan has been activated with :func:`inject`; the active
injector counts invocations per site and fires each spec at its
configured invocation indices (and/or at a seeded random rate), so a
given plan + seed reproduces the same faults run after run.

Instrumented sites:

========================  ====================================================
site                      instrumented at
========================  ====================================================
``pool.task``             every worker-pool task invocation (raise / hang)
``pool.result``           every array-returning pool task result (corrupt)
``engine.fp``             every non-fallback conv-engine FP call (raise/hang)
``engine.bp``             every non-fallback conv-engine BP call (raise/hang)
``sgd.gradient``          the loss gradient of every SGD step (corrupt)
``ps.push``               every parameter-server push (drop / hang)
========================  ====================================================

Fault kinds: ``"raise"`` (throw :class:`~repro.errors.InjectedFault`),
``"hang"`` (sleep ``delay`` seconds -- a straggler), ``"corrupt"``
(write ``value``, NaN by default, into a seeded fraction of an array),
``"drop"`` (report True from :func:`should_drop`).

Invocation counters are process-local and reset with every
:func:`inject` activation: a resumed run starts counting from zero.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

import numpy as np

from repro import telemetry
from repro.errors import InjectedFault, ReproError

FAULT_KINDS = ("raise", "hang", "corrupt", "drop")


@dataclass(frozen=True)
class FaultSpec:
    """One fault: what to do, where, and when to trigger."""

    site: str
    kind: str
    #: 1-based invocation indices of the site at which to trigger.
    at: tuple[int, ...] = ()
    #: Additional seeded random trigger probability per invocation.
    rate: float = 0.0
    #: Seconds to sleep for ``"hang"`` faults (a bounded straggler).
    delay: float = 0.05
    #: Value written by ``"corrupt"`` faults (NaN by default).
    value: float = float("nan")
    #: Fraction of array elements a ``"corrupt"`` fault overwrites.
    fraction: float = 0.05

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ReproError(
                f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if not self.site:
            raise ReproError("fault site must be a non-empty string")
        if any(n <= 0 for n in self.at):
            raise ReproError(f"invocation indices are 1-based: {self.at}")
        if not 0.0 <= self.rate <= 1.0:
            raise ReproError(f"rate must be in [0, 1], got {self.rate}")
        if self.delay < 0:
            raise ReproError(f"delay must be non-negative, got {self.delay}")
        if not 0.0 < self.fraction <= 1.0:
            raise ReproError(
                f"fraction must be in (0, 1], got {self.fraction}"
            )


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded collection of faults."""

    name: str
    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0

    def for_site(self, site: str) -> tuple[FaultSpec, ...]:
        """The specs bound to one injection site."""
        return tuple(s for s in self.specs if s.site == site)

    def with_seed(self, seed: int) -> "FaultPlan":
        """The same plan reseeded (used by ``repro chaos --seed``)."""
        return FaultPlan(name=self.name, specs=self.specs, seed=seed)


@dataclass(frozen=True)
class Injection:
    """Record of one fired fault (for reports and assertions)."""

    site: str
    kind: str
    invocation: int
    attrs: dict[str, Any] = field(default_factory=dict)


class FaultInjector:
    """Counts site invocations and fires the plan's faults on cue.

    Thread-safe: worker-pool threads share one injector, and the
    per-site invocation counters and the trigger RNG are guarded by a
    lock so a plan's ``at`` indices fire exactly once each.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {}
        self._rng = np.random.default_rng(plan.seed)
        self.injections: list[Injection] = []

    # -- bookkeeping ------------------------------------------------------

    def _tick(self, site: str) -> int:
        """Next 1-based invocation index of ``site``."""
        with self._lock:
            count = self._counts.get(site, 0) + 1
            self._counts[site] = count
            return count

    def _triggers(self, spec: FaultSpec, invocation: int) -> bool:
        if invocation in spec.at:
            return True
        if spec.rate > 0.0:
            with self._lock:
                return bool(self._rng.random() < spec.rate)
        return False

    def _record(self, spec: FaultSpec, invocation: int,
                attrs: dict[str, Any]) -> None:
        fired = Injection(site=spec.site, kind=spec.kind,
                          invocation=invocation, attrs=dict(attrs))
        with self._lock:
            self.injections.append(fired)
        telemetry.add("faults.injected", 1)
        telemetry.add(f"faults.{spec.kind}", 1)
        telemetry.event("fault", site=spec.site, kind=spec.kind,
                        invocation=invocation, **attrs)

    def invocations(self, site: str) -> int:
        """How many times ``site`` has been visited so far."""
        with self._lock:
            return self._counts.get(site, 0)

    def fired(self, site: str | None = None,
              kind: str | None = None) -> list[Injection]:
        """The injections fired so far, optionally filtered."""
        with self._lock:
            fired = list(self.injections)
        return [
            f for f in fired
            if (site is None or f.site == site)
            and (kind is None or f.kind == kind)
        ]

    # -- injection points -------------------------------------------------

    def perturb(self, site: str, **attrs: Any) -> None:
        """Visit a raise/hang site: may sleep, may raise InjectedFault."""
        specs = self.plan.for_site(site)
        if not specs:
            return
        invocation = self._tick(site)
        for spec in specs:
            if spec.kind not in ("raise", "hang"):
                continue
            if not self._triggers(spec, invocation):
                continue
            self._record(spec, invocation, attrs)
            if spec.kind == "hang":
                time.sleep(spec.delay)
            else:
                raise InjectedFault(site, invocation)

    def corrupt_array(self, site: str, array: np.ndarray) -> np.ndarray:
        """Visit a corrupt site: returns the array, possibly poisoned.

        Non-ndarray values pass through untouched, so array sites can sit
        on generic code paths.
        """
        specs = [s for s in self.plan.for_site(site) if s.kind == "corrupt"]
        if not specs or not isinstance(array, np.ndarray) or array.size == 0:
            return array
        invocation = self._tick(site)
        out = array
        for spec in specs:
            if not self._triggers(spec, invocation):
                continue
            self._record(spec, invocation, {"shape": list(array.shape)})
            if out is array:
                out = array.copy()
            count = max(1, int(round(out.size * spec.fraction)))
            with self._lock:
                flat_idx = self._rng.choice(out.size, size=count,
                                            replace=False)
            out.reshape(-1)[flat_idx] = spec.value
        return out

    def should_drop(self, site: str, **attrs: Any) -> bool:
        """Visit a drop site: True when the operation should be dropped."""
        specs = [s for s in self.plan.for_site(site) if s.kind == "drop"]
        if not specs:
            return False
        invocation = self._tick(site)
        for spec in specs:
            if self._triggers(spec, invocation):
                self._record(spec, invocation, attrs)
                return True
        return False


# -- the active injector stack ---------------------------------------------
#
# Global (not thread-local) on purpose, mirroring the telemetry collector
# stack: faults must fire in worker-pool threads even though the plan was
# activated on the main thread.

_ACTIVE: list[FaultInjector] = []
_ACTIVE_LOCK = threading.Lock()


def active_injector() -> FaultInjector | None:
    """The innermost active injector, or None outside any inject()."""
    with _ACTIVE_LOCK:
        return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def inject(plan: FaultPlan | FaultInjector) -> Iterator[FaultInjector]:
    """Activate a fault plan for the duration of the ``with`` block."""
    injector = plan if isinstance(plan, FaultInjector) else FaultInjector(plan)
    with _ACTIVE_LOCK:
        _ACTIVE.append(injector)
    try:
        yield injector
    finally:
        with _ACTIVE_LOCK:
            for i in range(len(_ACTIVE) - 1, -1, -1):
                if _ACTIVE[i] is injector:
                    del _ACTIVE[i]
                    break


def perturb(site: str, **attrs: Any) -> None:
    """Raise/hang site hook; no-op when no injector is active."""
    injector = active_injector()
    if injector is not None:
        injector.perturb(site, **attrs)


def corrupt_array(site: str, array):
    """Corrupt site hook; returns the input unchanged when inactive."""
    injector = active_injector()
    if injector is None:
        return array
    return injector.corrupt_array(site, array)


def should_drop(site: str, **attrs: Any) -> bool:
    """Drop site hook; always False when no injector is active."""
    injector = active_injector()
    if injector is None:
        return False
    return injector.should_drop(site, **attrs)


# -- named plans -----------------------------------------------------------


def _none_plan() -> FaultPlan:
    """No faults at all (baseline for A/B chaos comparisons)."""
    return FaultPlan(name="none")


def _smoke_plan() -> FaultPlan:
    """The CI smoke plan: two worker crashes, one straggler, one NaN batch.

    The ``at`` indices land inside the first epoch of the chaos CLI's
    default job (mnist, batch 8, threads 2), so a 3-epoch run exercises
    retry, straggler reassignment and the NaN-batch guard, then finishes
    clean.
    """
    return FaultPlan(name="smoke", specs=(
        FaultSpec(site="pool.task", kind="raise", at=(3, 11)),
        FaultSpec(site="pool.task", kind="hang", at=(17,), delay=0.6),
        FaultSpec(site="sgd.gradient", kind="corrupt", at=(4,)),
    ))


def _workers_plan() -> FaultPlan:
    """Heavier worker chaos: repeated crashes and stragglers."""
    return FaultPlan(name="workers", specs=(
        FaultSpec(site="pool.task", kind="raise", at=(2, 7, 19, 31)),
        FaultSpec(site="pool.task", kind="hang", at=(12, 40), delay=0.6),
        FaultSpec(site="pool.task", kind="raise", rate=0.01),
    ))


def _numeric_plan() -> FaultPlan:
    """Numeric chaos: NaN gradients plus a mis-behaving engine call."""
    return FaultPlan(name="numeric", specs=(
        FaultSpec(site="sgd.gradient", kind="corrupt", at=(2, 9)),
        FaultSpec(site="engine.fp", kind="raise", at=(5,)),
        FaultSpec(site="engine.bp", kind="raise", at=(6,)),
    ))


def _ps_plan() -> FaultPlan:
    """Parameter-server chaos: dropped and delayed pushes.

    Every push visits the ``ps.push`` site twice (the perturb hook,
    then the drop hook), so odd invocations are hang/raise ticks and
    even invocations are drop ticks: push *n* hangs at ``2n - 1`` and
    drops at ``2n``.
    """
    return FaultPlan(name="ps", specs=(
        FaultSpec(site="ps.push", kind="drop", at=(4, 8)),
        FaultSpec(site="ps.push", kind="hang", at=(5,), delay=0.05),
    ))


_PLAN_BUILDERS = {
    "none": _none_plan,
    "smoke": _smoke_plan,
    "workers": _workers_plan,
    "numeric": _numeric_plan,
    "ps": _ps_plan,
}

#: Plans the chaos harness realizes with *real signals* against live
#: worker processes -- ``kill9`` SIGKILLs and ``hang`` SIGSTOPs a worker
#: mid-step -- instead of Python-level fault specs.  They have no
#: :class:`FaultPlan` (there is nothing to inject at a call site) and
#: are handled by :func:`repro.resilience.chaos.run_chaos` directly.
REAL_KILL_PLANS = ("hang", "kill9")


def plan_names() -> tuple[str, ...]:
    """The registered injection-based plans, sorted.

    The real-kill plans (:data:`REAL_KILL_PLANS`) are deliberately not
    listed here: they are chaos-harness modes, not injectable plans.
    """
    return tuple(sorted(_PLAN_BUILDERS))


def get_plan(name: str, seed: int = 0) -> FaultPlan:
    """Build a named plan with the given trigger seed."""
    if name in REAL_KILL_PLANS:
        raise ReproError(
            f"plan {name!r} uses real process signals and has no "
            f"injectable FaultPlan; run it through "
            f"repro.resilience.chaos.run_chaos"
        )
    try:
        builder = _PLAN_BUILDERS[name]
    except KeyError:
        raise ReproError(
            f"unknown fault plan {name!r}; known: {plan_names()}"
        ) from None
    return builder().with_seed(seed)
