"""The engine quarantine registry: bench kernels that misbehave.

When a generated stencil/sparse kernel raises, returns the wrong shape
or produces non-finite values from finite inputs, the conv layer falls
back to the reference dense path and records the failure here, keyed by
``(layer, phase, engine)``.  The autotuner consults the same registry so
its next planning round never re-deploys a benched engine onto the layer
it failed on -- the failure is contained to one (layer, phase) pair
without giving up the technique elsewhere.

A process-wide default registry serves the common case; tests and
multi-tenant callers can pass their own instance around instead.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro import telemetry
from repro.errors import ReproError

_PHASES = ("fp", "bp")


@dataclass(frozen=True)
class QuarantineRecord:
    """One benched engine and why it was benched."""

    layer: str
    phase: str
    engine: str
    reason: str = ""


class QuarantineRegistry:
    """Thread-safe set of benched ``(layer, phase, engine)`` triples."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: dict[tuple[str, str, str], QuarantineRecord] = {}

    # A registry is process-wide infrastructure, not per-network state:
    # replicating a network (copy.deepcopy in the distributed trainer)
    # must share the original registry, not clone its lock.
    def __copy__(self) -> "QuarantineRegistry":
        return self

    def __deepcopy__(self, memo) -> "QuarantineRegistry":
        return self

    def quarantine(self, layer: str, phase: str, engine: str,
                   reason: str = "") -> QuarantineRecord:
        """Bench an engine for one layer/phase; idempotent."""
        if phase not in _PHASES:
            raise ReproError(f"phase must be one of {_PHASES}, got {phase!r}")
        record = QuarantineRecord(layer=layer, phase=phase, engine=engine,
                                  reason=reason)
        key = (layer, phase, engine)
        with self._lock:
            fresh = key not in self._records
            self._records[key] = record
        if fresh:
            telemetry.add("quarantine.engines", 1)
            telemetry.event("quarantine", layer=layer, phase=phase,
                            engine=engine, reason=reason)
        return record

    def is_quarantined(self, layer: str, phase: str, engine: str) -> bool:
        """True when the engine is benched for this layer/phase."""
        with self._lock:
            return (layer, phase, engine) in self._records

    def filter(self, candidates: tuple[str, ...], layer: str,
               phase: str) -> tuple[str, ...]:
        """The candidates not benched for this layer/phase, in order."""
        with self._lock:
            benched = {
                engine for (rec_layer, rec_phase, engine) in self._records
                if rec_layer == layer and rec_phase == phase
            }
        return tuple(c for c in candidates if c not in benched)

    def records(self) -> tuple[QuarantineRecord, ...]:
        """All quarantine records, in insertion order."""
        with self._lock:
            return tuple(self._records.values())

    def clear(self) -> None:
        """Forget every quarantine (new process, new chances)."""
        with self._lock:
            self._records.clear()


_DEFAULT = QuarantineRegistry()


def default_registry() -> QuarantineRegistry:
    """The process-wide registry the layer and autotuner share."""
    return _DEFAULT
