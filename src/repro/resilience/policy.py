"""The resilient execution policy: retries, timeouts, stragglers.

:class:`RetryPolicy` bounds how hard the runtime fights a failing or
hanging task; :func:`run_supervised` is the supervision loop the worker
pool delegates to when a policy is in force.  The loop mirrors the
backup-task technique of synchronous distributed SGD ("Distributed Deep
Learning Using Synchronous SGD"): a task that misses its deadline is
*reassigned* -- a duplicate attempt is submitted and whichever attempt
finishes first wins -- so one straggler does not stall its siblings.
Tasks must therefore be idempotent, which the pool's image-range tasks
are (pure functions of their input slice).

Counters flow through :mod:`repro.telemetry`:

* ``pool.retries`` -- failed attempts re-executed;
* ``pool.stragglers`` -- backup attempts submitted after a deadline miss;
* ``pool.timeouts`` -- tasks abandoned with the straggler budget spent;
* ``pool.task_failures`` -- tasks that exhausted their retry budget.

A policy can be installed explicitly on a :class:`~repro.runtime.pool.
WorkerPool`, or ambiently for a whole region of code with
:func:`apply_policy` (mirroring ``telemetry.collect``), which is how the
chaos harness arms every pool a training job creates without plumbing a
parameter through every constructor.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import FIRST_COMPLETED, Executor, Future, wait
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator, TypeVar

from repro import telemetry
from repro.errors import ReproError, TaskTimeoutError

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounds on how the runtime handles failing and hanging tasks."""

    #: Re-executions allowed after a task's first failed attempt.
    max_retries: int = 2
    #: First backoff sleep in seconds; attempt ``n`` sleeps
    #: ``backoff_base * 2**(n-1)``, capped at :attr:`backoff_cap`.
    backoff_base: float = 0.01
    backoff_cap: float = 0.5
    #: Seconds one attempt may run before it counts as a straggler;
    #: ``None`` disables deadlines (and straggler reassignment).
    timeout: float | None = None
    #: Backup attempts submitted per task after deadline misses; once
    #: spent, the next miss abandons the task with TaskTimeoutError.
    max_stragglers: int = 1
    #: Process-backend crash budget: how many times one in-flight job
    #: may be re-dispatched to a surviving worker after its worker died,
    #: before it fails with WorkerCrashedError.  The pool mirrors this
    #: onto :attr:`repro.runtime.backends.ProcessBackend.max_redispatch`
    #: so the policy is the single fault-budget knob.
    max_redispatches: int = 2

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ReproError(
                f"max_retries must be non-negative, got {self.max_retries}"
            )
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ReproError(
                f"backoff must be non-negative: base={self.backoff_base}, "
                f"cap={self.backoff_cap}"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ReproError(f"timeout must be positive, got {self.timeout}")
        if self.max_stragglers < 0:
            raise ReproError(
                f"max_stragglers must be non-negative, got {self.max_stragglers}"
            )
        if self.max_redispatches < 0:
            raise ReproError(
                f"max_redispatches must be non-negative, "
                f"got {self.max_redispatches}"
            )

    def backoff(self, retry_number: int) -> float:
        """Sleep before the ``retry_number``-th retry (1-based)."""
        if self.backoff_base <= 0:
            return 0.0
        return min(self.backoff_base * 2 ** (retry_number - 1),
                   self.backoff_cap)


# -- the ambient policy stack ----------------------------------------------

_ACTIVE: list[RetryPolicy] = []
_ACTIVE_LOCK = threading.Lock()


def active_policy() -> RetryPolicy | None:
    """The innermost ambient policy, or None when none is installed."""
    with _ACTIVE_LOCK:
        return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def apply_policy(policy: RetryPolicy) -> Iterator[RetryPolicy]:
    """Install an ambient policy for the duration of the ``with`` block.

    Every :class:`~repro.runtime.pool.WorkerPool` without an explicit
    policy of its own picks it up at ``map_batches`` time.
    """
    with _ACTIVE_LOCK:
        _ACTIVE.append(policy)
    try:
        yield policy
    finally:
        with _ACTIVE_LOCK:
            for i in range(len(_ACTIVE) - 1, -1, -1):
                if _ACTIVE[i] is policy:
                    del _ACTIVE[i]
                    break


class _Supervised:
    """Per-task supervision state inside :func:`run_supervised`."""

    __slots__ = ("index", "thunk", "done", "result", "error",
                 "retries", "stragglers", "deadline")

    def __init__(self, index: int, thunk: Callable[[], T]):
        self.index = index
        self.thunk = thunk
        self.done = False
        self.result: T | None = None
        self.error: BaseException | None = None
        self.retries = 0
        self.stragglers = 0
        self.deadline: float | None = None


def run_supervised(executor: Executor, thunks: list[Callable[[], T]],
                   policy: RetryPolicy) -> list[T]:
    """Run idempotent thunks under retry/timeout/straggler supervision.

    Every thunk is submitted to ``executor``; attempts that raise are
    retried (with backoff) up to ``policy.max_retries`` times, attempts
    that outlive ``policy.timeout`` get up to ``policy.max_stragglers``
    backup submissions (first finisher wins), and a task whose budgets
    are both spent fails the whole call.  Like the pool's plain path,
    errors propagate only after every task has been resolved, and the
    first failure in task order wins.

    Abandoned straggler attempts are left running (Python threads cannot
    be killed); their results are discarded when they eventually finish.
    """
    states = [_Supervised(i, thunk) for i, thunk in enumerate(thunks)]
    owner: dict[Future, _Supervised] = {}

    def launch(state: _Supervised, backoff: float = 0.0) -> None:
        def attempt():
            if backoff > 0.0:
                time.sleep(backoff)
            return state.thunk()

        future = executor.submit(attempt)
        owner[future] = state
        if policy.timeout is not None:
            state.deadline = time.monotonic() + backoff + policy.timeout

    for state in states:
        launch(state)

    while not all(state.done for state in states):
        live = [f for f, state in owner.items() if not state.done]
        wait_timeout = None
        if policy.timeout is not None:
            now = time.monotonic()
            deadlines = [s.deadline for s in states
                         if not s.done and s.deadline is not None]
            if deadlines:
                wait_timeout = max(0.0, min(deadlines) - now)
        finished, _ = wait(live, timeout=wait_timeout,
                           return_when=FIRST_COMPLETED)
        for future in finished:
            state = owner.pop(future)
            if state.done:
                continue  # a late attempt of an already-resolved task
            error = future.exception()
            if error is None:
                state.result = future.result()
                state.done = True
            elif state.retries < policy.max_retries:
                state.retries += 1
                telemetry.add("pool.retries", 1)
                telemetry.event("pool.retry", task=state.index,
                                attempt=state.retries,
                                error=type(error).__name__)
                launch(state, backoff=policy.backoff(state.retries))
            else:
                state.error = error
                state.done = True
                telemetry.add("pool.task_failures", 1)
        if policy.timeout is None:
            continue
        now = time.monotonic()
        for state in states:
            if state.done or state.deadline is None or now < state.deadline:
                continue
            if state.stragglers < policy.max_stragglers:
                state.stragglers += 1
                telemetry.add("pool.stragglers", 1)
                telemetry.event("pool.straggler", task=state.index,
                                backup=state.stragglers)
                launch(state)  # backup attempt; first finisher wins
            else:
                state.error = TaskTimeoutError(
                    f"task {state.index} missed its {policy.timeout}s "
                    f"deadline with no straggler budget left"
                )
                state.done = True
                telemetry.add("pool.timeouts", 1)

    for state in states:
        if state.error is not None:
            raise state.error
    return [state.result for state in states]
