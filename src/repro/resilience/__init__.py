"""``repro.resilience``: fault injection, retry policy and quarantine.

The paper positions spg-CNN as the per-worker engine inside long-running
distributed platforms (Sec. 6), where a single worker exception, NaN
batch or process death must not lose the run.  This package provides the
three fault-handling substrates the rest of the stack builds on:

* :mod:`repro.resilience.faults` -- a deterministic, seeded fault
  injector.  Instrumented sites (worker-pool tasks, gradients, parameter
  pushes, engine calls) consult the active :class:`FaultPlan` and raise,
  hang, corrupt or drop on cue; no-ops when no plan is active.
* :mod:`repro.resilience.policy` -- the resilient execution policy:
  :class:`RetryPolicy` (bounded retries with exponential backoff,
  per-attempt timeouts, straggler reassignment) and the supervised
  executor loop :func:`run_supervised` the worker pool delegates to.
* :mod:`repro.resilience.quarantine` -- the engine quarantine registry:
  a generated kernel that raises or fails a numeric guard is benched for
  that layer/phase, and both the conv layer and the autotuner route
  around it.

The chaos harness (:mod:`repro.resilience.chaos`, ``python -m repro
chaos``) is imported lazily by the CLI to keep this package free of
heavyweight nn imports.
"""

from repro.resilience.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    active_injector,
    corrupt_array,
    get_plan,
    inject,
    perturb,
    plan_names,
    should_drop,
)
from repro.resilience.policy import (
    RetryPolicy,
    active_policy,
    apply_policy,
    run_supervised,
)
from repro.resilience.quarantine import (
    QuarantineRecord,
    QuarantineRegistry,
    default_registry,
)

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "QuarantineRecord",
    "QuarantineRegistry",
    "RetryPolicy",
    "active_injector",
    "active_policy",
    "apply_policy",
    "corrupt_array",
    "default_registry",
    "get_plan",
    "inject",
    "perturb",
    "plan_names",
    "run_supervised",
    "should_drop",
]
