"""Classification metrics beyond plain accuracy."""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError


def top_k_accuracy(logits: np.ndarray, labels: np.ndarray, k: int = 5) -> float:
    """Fraction of examples whose label is among the top-k logits."""
    if logits.ndim != 2:
        raise ShapeError(f"expected [B, classes] logits, got {logits.shape}")
    if labels.shape != (logits.shape[0],):
        raise ShapeError(
            f"labels shape {labels.shape} incompatible with logits {logits.shape}"
        )
    if not 1 <= k <= logits.shape[1]:
        raise ShapeError(f"k must be in [1, {logits.shape[1]}], got {k}")
    if logits.shape[0] == 0:
        return 0.0
    top_k = np.argpartition(logits, -k, axis=1)[:, -k:]
    hits = (top_k == labels[:, None]).any(axis=1)
    return float(hits.mean())


def confusion_matrix(logits: np.ndarray, labels: np.ndarray,
                     num_classes: int) -> np.ndarray:
    """``[num_classes, num_classes]`` counts: rows true, columns predicted."""
    if logits.ndim != 2 or logits.shape[1] != num_classes:
        raise ShapeError(
            f"logits shape {logits.shape} incompatible with {num_classes} classes"
        )
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ShapeError("label index out of range")
    predictions = logits.argmax(axis=1)
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (labels, predictions), 1)
    return matrix


def per_class_accuracy(matrix: np.ndarray) -> np.ndarray:
    """Recall per class from a confusion matrix (NaN for absent classes)."""
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ShapeError(f"expected a square confusion matrix, got {matrix.shape}")
    totals = matrix.sum(axis=1).astype(np.float64)
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(totals > 0, np.diag(matrix) / totals, np.nan)
