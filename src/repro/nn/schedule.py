"""Learning-rate schedules for SGD training.

Schedules map the 1-based epoch number to a learning rate; the trainer's
``set_learning_rate`` hook applies them between epochs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.errors import ReproError


class LRSchedule(ABC):
    """Epoch -> learning-rate mapping."""

    @abstractmethod
    def rate(self, epoch: int) -> float:
        """Learning rate to use *during* the given 1-based epoch."""

    def _check_epoch(self, epoch: int) -> None:
        if epoch <= 0:
            raise ReproError(f"epoch must be positive, got {epoch}")


class ConstantLR(LRSchedule):
    """A fixed learning rate."""

    def __init__(self, value: float):
        if value <= 0:
            raise ReproError(f"learning rate must be positive, got {value}")
        self.value = value

    def rate(self, epoch: int) -> float:
        self._check_epoch(epoch)
        return self.value


class StepDecayLR(LRSchedule):
    """Multiply the rate by ``factor`` every ``step_epochs`` epochs."""

    def __init__(self, initial: float, factor: float = 0.1,
                 step_epochs: int = 10):
        if initial <= 0 or not 0 < factor <= 1 or step_epochs <= 0:
            raise ReproError(
                f"invalid step decay: initial={initial}, factor={factor}, "
                f"step_epochs={step_epochs}"
            )
        self.initial = initial
        self.factor = factor
        self.step_epochs = step_epochs

    def rate(self, epoch: int) -> float:
        self._check_epoch(epoch)
        drops = (epoch - 1) // self.step_epochs
        return self.initial * self.factor**drops


class ExponentialLR(LRSchedule):
    """Multiply the rate by ``gamma`` every epoch."""

    def __init__(self, initial: float, gamma: float = 0.95):
        if initial <= 0 or not 0 < gamma <= 1:
            raise ReproError(
                f"invalid exponential decay: initial={initial}, gamma={gamma}"
            )
        self.initial = initial
        self.gamma = gamma

    def rate(self, epoch: int) -> float:
        self._check_epoch(epoch)
        return self.initial * self.gamma ** (epoch - 1)
