"""Training-time schedules: learning rates and kernel loop schedules.

Two unrelated-but-neighbouring notions of "schedule" live here:

* **Learning-rate schedules** map the 1-based epoch number to a learning
  rate; the trainer's ``set_learning_rate`` hook applies them between
  epochs.
* **Kernel schedule search** (:class:`ScheduleSearch`) upgrades the
  technique-level autotuner (:mod:`repro.core.autotuner`): once a layer
  deploys a generated kernel, the searcher enumerates a bounded,
  deterministic set of candidate pass pipelines over the loop IR
  (:mod:`repro.stencil.passes`), prices each with the multi-level
  roofline via its :class:`~repro.stencil.loopir.WorkEstimate`, gates
  the winner through the ``repro.check`` kernel-IR and generated-source
  verifiers, and caches the choice per ``(spec, family)``.
"""

from __future__ import annotations

import itertools
import random
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.core.convspec import ConvSpec
from repro.errors import ReproError
from repro.machine.spec import MachineSpec, xeon_e5_2650
from repro.stencil.loopir import PoolWindow, stable_fingerprint
from repro.stencil.passes import (
    Fuse,
    Reorder,
    SchedulePass,
    SchedulePipeline,
    Vectorize,
    default_pipeline,
    tiled_pipeline,
)
from repro.stencil.schedule import generate_schedule


class LRSchedule(ABC):
    """Epoch -> learning-rate mapping."""

    @abstractmethod
    def rate(self, epoch: int) -> float:
        """Learning rate to use *during* the given 1-based epoch."""

    def _check_epoch(self, epoch: int) -> None:
        if epoch <= 0:
            raise ReproError(f"epoch must be positive, got {epoch}")


class ConstantLR(LRSchedule):
    """A fixed learning rate."""

    def __init__(self, value: float):
        if value <= 0:
            raise ReproError(f"learning rate must be positive, got {value}")
        self.value = value

    def rate(self, epoch: int) -> float:
        self._check_epoch(epoch)
        return self.value


class StepDecayLR(LRSchedule):
    """Multiply the rate by ``factor`` every ``step_epochs`` epochs."""

    def __init__(self, initial: float, factor: float = 0.1,
                 step_epochs: int = 10):
        if initial <= 0 or not 0 < factor <= 1 or step_epochs <= 0:
            raise ReproError(
                f"invalid step decay: initial={initial}, factor={factor}, "
                f"step_epochs={step_epochs}"
            )
        self.initial = initial
        self.factor = factor
        self.step_epochs = step_epochs

    def rate(self, epoch: int) -> float:
        self._check_epoch(epoch)
        drops = (epoch - 1) // self.step_epochs
        return self.initial * self.factor**drops


class ExponentialLR(LRSchedule):
    """Multiply the rate by ``gamma`` every epoch."""

    def __init__(self, initial: float, gamma: float = 0.95):
        if initial <= 0 or not 0 < gamma <= 1:
            raise ReproError(
                f"invalid exponential decay: initial={initial}, gamma={gamma}"
            )
        self.initial = initial
        self.gamma = gamma

    def rate(self, epoch: int) -> float:
        self._check_epoch(epoch)
        return self.initial * self.gamma ** (epoch - 1)


# -- kernel schedule search (the loop-IR autotuner) ------------------------


#: Register budgets used to diversify vectorize-pass candidates when a
#: spec's output plane is too small to admit enough distinct tilings.
_REGISTER_BUDGETS = (8, 12, 24, 32)


@dataclass(frozen=True)
class ScheduleChoice:
    """The outcome of one schedule search for a (spec, family) pair."""

    family: str
    pipeline: SchedulePipeline
    #: Roofline seconds of the chosen pipeline for the search's batch.
    seconds: float
    #: ``pipeline.describe() -> roofline seconds`` per candidate searched.
    timings: tuple[tuple[str, float], ...]
    #: True when the winner passed the kernel-IR + generated-source gate.
    verified: bool

    @property
    def num_candidates(self) -> int:
        return len(self.timings)

    def speedup_over_default(self) -> float:
        """Predicted speedup of the chosen schedule over the default."""
        default = dict(self.timings).get(
            default_pipeline(self.family,
                             pool_kernel=self.pipeline.pool_kernel,
                             pool_stride=self.pipeline.pool_stride).describe()
        )
        if not default or not self.seconds:
            return 1.0
        return default / self.seconds


class ScheduleSearch:
    """Bounded, deterministic, cached search over schedule pipelines.

    For every kernel family the searcher enumerates at least
    ``min_candidates`` distinct pipelines (default + cache-derived tiling
    + structured tile/reorder/jam variants + seeded-random samples),
    prices each candidate's :class:`~repro.stencil.loopir.WorkEstimate`
    with the machine roofline at the searched batch/core count, and
    walks the candidates cheapest-first until one passes the
    ``repro.check`` verifiers (basic-block IR plus emitted-source AST).

    Determinism: the random samples come from :class:`random.Random`
    seeded by a stable hash of ``(spec, family, seed)``, candidate order
    is generation order, and ties break toward the earlier candidate --
    two searches with the same inputs return the same choice.

    Exception: the sparse EI family admits exactly one legal schedule
    (its taps are ``REDUCE_ORDERED`` and no other pass applies), so its
    candidate set is a singleton rather than ``min_candidates`` wide.
    """

    def __init__(self, machine: MachineSpec | None = None, cores: int = 1,
                 batch: int = 1, seed: int = 0, min_candidates: int = 8,
                 verify: bool = True):
        if cores <= 0 or batch <= 0:
            raise ReproError(
                f"cores and batch must be positive: {cores}, {batch}"
            )
        if min_candidates <= 0:
            raise ReproError("min_candidates must be positive")
        self.machine = machine or xeon_e5_2650()
        self.cores = cores
        self.batch = batch
        self.seed = seed
        self.min_candidates = min_candidates
        self.verify = verify
        self._cache: dict[tuple[ConvSpec, str, int, int], ScheduleChoice] = {}

    # -- candidate enumeration --------------------------------------------

    def _rng(self, spec: ConvSpec, family: str) -> random.Random:
        key = f"{spec.describe()}|{family}|{self.seed}"
        return random.Random(int(stable_fingerprint(key, 16), 16))

    @staticmethod
    def _dedupe(
        pipelines: list[SchedulePipeline],
    ) -> list[SchedulePipeline]:
        seen: set[str] = set()
        out: list[SchedulePipeline] = []
        for pipe in pipelines:
            fp = pipe.fingerprint()
            if fp not in seen:
                seen.add(fp)
                out.append(pipe)
        return out

    def _pad_with_register_budgets(
        self, cands: list[SchedulePipeline], family: str,
        prefix: tuple[SchedulePass, ...] = (),
        pool_kernel: int = 0, pool_stride: int = 0,
    ) -> list[SchedulePipeline]:
        """Vectorize-budget variants fill out tiny candidate spaces."""
        for width, budget in itertools.product((8, 4, 16),
                                               _REGISTER_BUDGETS):
            if len(cands) >= self.min_candidates:
                break
            cands.append(SchedulePipeline(
                family=family,
                passes=prefix + (
                    Vectorize(num_registers=budget, vector_width=width),
                ),
                pool_kernel=pool_kernel,
                pool_stride=pool_stride,
            ))
        return cands

    def _conv_candidates(self, spec: ConvSpec,
                         family: str) -> list[SchedulePipeline]:
        """fp / bp_data: tilings, a tap-preserving reorder, and a jam."""
        oy, ox = spec.out_ny, spec.out_nx
        cands = [default_pipeline(family)]
        cached = generate_schedule(
            spec, cache_bytes=self.machine.l2_bytes,
            tlb_entries=self.machine.tlb_entries,
            page_size=self.machine.page_size,
        ).as_pipeline(family)
        cands.append(cached)
        for ty in (oy // 2, oy // 4):
            if 1 <= ty < oy:
                cands.append(tiled_pipeline(family, tile_y=ty))
        # One tiled spatial dim only: 2-D tiling is outside the
        # bit-exactness envelope (see repro.stencil.passes.Tile).
        if ox > 1:
            cands.append(tiled_pipeline(family, tile_x=ox // 2))
        # Hoist the absorbed parallel dims in front of the taps; legal for
        # gather-style nests (every output element keeps its tap order).
        nest = default_pipeline(family).base_nest(spec)
        names = tuple(li.dim.name for li in nest.stages[0].loops)
        hoisted = tuple(n for n in names if n in ("f", "c")) + tuple(
            n for n in names if n not in ("f", "c")
        )
        if hoisted != names:
            cands.append(SchedulePipeline(
                family=family, passes=(Reorder(hoisted), Vectorize()),
            ))
        if family == "fp" and oy > 1:
            cands.append(
                tiled_pipeline(family, tile_y=max(1, oy // 2), jam=2)
            )
        cands = self._dedupe(cands)
        rng = self._rng(spec, family)
        for _ in range(64):
            if len(cands) >= self.min_candidates:
                break
            # Seeded random 1-D tilings (one spatial dim per pipeline;
            # 2-D tiling is outside the bit-exactness envelope).
            if rng.random() < 0.5 and oy > 1:
                cands.append(tiled_pipeline(family,
                                            tile_y=rng.randrange(1, oy)))
            elif ox > 1:
                cands.append(tiled_pipeline(family,
                                            tile_x=rng.randrange(1, ox)))
            cands = self._dedupe(cands)
        return self._pad_with_register_budgets(cands, family)

    def _tap_reorder_candidates(self, spec: ConvSpec, family: str,
                                tail: tuple[str, ...]) -> list[SchedulePipeline]:
        """bp_weights / sparse dW: tap permutations (disjoint dW slices)."""
        vec: tuple[SchedulePass, ...] = (
            () if family.startswith("sparse") else (Vectorize(),)
        )
        cands = [default_pipeline(family)]
        structured = (
            ("kx", "ky", "f", "c"),
            ("f", "c", "ky", "kx"),
            ("f", "c", "kx", "ky"),
        )
        rng = self._rng(spec, family)
        pool = [p for p in itertools.permutations(("ky", "kx", "f", "c"))
                if p not in structured]
        sampled = rng.sample(pool, k=min(len(pool), self.min_candidates))
        for head in structured + tuple(sampled):
            if len(cands) >= self.min_candidates:
                break
            cands.append(SchedulePipeline(
                family=family, passes=(Reorder(head + tail),) + vec,
            ))
        cands = self._dedupe(cands)
        return self._pad_with_register_budgets(cands, family)

    def _fused_candidates(self, spec: ConvSpec, pool_kernel: int,
                          pool_stride: int) -> list[SchedulePipeline]:
        """fused_fp: pool-row block sizes plus register-budget variants."""
        stride = pool_stride or pool_kernel
        py = PoolWindow(pool_kernel, stride).out_extent(spec.out_ny)

        def fused(block_rows: int,
                  vec: Vectorize = Vectorize()) -> SchedulePipeline:
            return SchedulePipeline(
                family="fused_fp", passes=(Fuse(block_rows), vec),
                pool_kernel=pool_kernel, pool_stride=stride,
            )

        cands = [fused(b) for b in range(1, min(py, 6) + 1)]
        if py > 6:
            cands.append(fused(py))
        rng = self._rng(spec, f"fused_fp[{pool_kernel},{stride}]")
        for _ in range(32):
            if len(cands) >= self.min_candidates:
                break
            cands.append(fused(rng.randrange(1, py + 1)))
            cands = self._dedupe(cands)
        for budget in _REGISTER_BUDGETS:
            for block_rows in range(1, py + 1):
                if len(cands) >= self.min_candidates:
                    break
                cands.append(
                    fused(block_rows, Vectorize(num_registers=budget))
                )
        return self._dedupe(cands)

    def candidates(self, spec: ConvSpec, family: str, pool_kernel: int = 0,
                   pool_stride: int = 0) -> tuple[SchedulePipeline, ...]:
        """The deterministic candidate set for one (spec, family) pair."""
        if family in ("fp", "bp_data"):
            out = self._conv_candidates(spec, family)
        elif family in ("bp_weights", "sparse_bp_weights"):
            tail = ("oy", "ox")
            out = self._tap_reorder_candidates(spec, family, tail)
        elif family == "fused_fp":
            out = self._fused_candidates(spec, pool_kernel, pool_stride)
        elif family == "sparse_bp_data":
            # The EI taps accumulate into overlapping input slices
            # (REDUCE_ORDERED); the only legal schedule is the default.
            out = [default_pipeline(family)]
        else:
            raise ReproError(f"unknown schedule family {family!r}")
        return tuple(self._dedupe(out))

    # -- pricing and verification -----------------------------------------

    def _price(self, spec: ConvSpec, pipeline: SchedulePipeline) -> float:
        """Roofline seconds of one candidate at the searched batch."""
        efficiency = 1.0
        if not pipeline.family.startswith("sparse"):
            from repro.machine.stencil_model import stencil_efficiency

            tile = pipeline.vector_block(spec)
            efficiency = stencil_efficiency(spec, self.machine, tile=tile)
        estimate = pipeline.estimate(spec, cache_bytes=self.machine.l2_bytes)
        return estimate.time(self.machine, self.cores, batch=self.batch,
                             efficiency=efficiency)

    @staticmethod
    def _emit(spec: ConvSpec, pipeline: SchedulePipeline):
        from repro.sparse import codegen as sparse_codegen
        from repro.stencil import emit as stencil_emit

        family = pipeline.family
        if family == "fp":
            return stencil_emit.emit_forward_kernel(spec, pipeline)
        if family == "bp_data":
            return stencil_emit.emit_backward_data_kernel(spec, pipeline)
        if family == "bp_weights":
            return stencil_emit.emit_backward_weights_kernel(spec, pipeline)
        if family == "fused_fp":
            return stencil_emit.emit_fused_forward_kernel(
                spec, pipeline.pool_kernel, pipeline.pool_stride or None,
                pipeline,
            )
        if family == "sparse_bp_data":
            return sparse_codegen.emit_sparse_backward_data(spec, pipeline)
        if family == "sparse_bp_weights":
            return sparse_codegen.emit_sparse_backward_weights(spec, pipeline)
        raise ReproError(f"no emitter for family {family!r}")

    def _passes_verifiers(self, spec: ConvSpec,
                          pipeline: SchedulePipeline) -> bool:
        """Gate a candidate through the ``repro.check`` verifiers."""
        from repro.check.gen_source import contract_for, verify_kernel_source
        from repro.check.kernel_ir import verify_basic_block

        location = f"{spec.name or spec.describe()}/{pipeline.describe()}"
        findings = []
        try:
            if not pipeline.family.startswith("sparse"):
                nest = pipeline.build_nest(spec)
                tile = pipeline.vector_block(spec)
                findings.extend(verify_basic_block(
                    tile.block, num_registers=nest.num_registers,
                    location=location,
                ))
            kernel = self._emit(spec, pipeline)
            findings.extend(verify_kernel_source(
                kernel.source, contract_for(spec, pipeline), location,
            ))
        except Exception:  # noqa: BLE001 - an unemittable schedule loses
            return False
        return not any(f.severity == "error" for f in findings)

    # -- the search itself -------------------------------------------------

    def search(self, spec: ConvSpec, family: str, pool_kernel: int = 0,
               pool_stride: int = 0) -> ScheduleChoice:
        """Pick the cheapest verifier-clean pipeline for (spec, family).

        Results are cached; repeated searches are free and identical.
        """
        key = (spec, family, pool_kernel, pool_stride)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        cands = self.candidates(spec, family, pool_kernel, pool_stride)
        priced = [(self._price(spec, pipe), i, pipe)
                  for i, pipe in enumerate(cands)]
        timings = tuple((pipe.describe(), seconds)
                        for seconds, _, pipe in priced)
        chosen: SchedulePipeline | None = None
        seconds = float("inf")
        verified = False
        for cand_seconds, _, pipe in sorted(priced,
                                            key=lambda t: (t[0], t[1])):
            if not self.verify or self._passes_verifiers(spec, pipe):
                chosen, seconds, verified = pipe, cand_seconds, self.verify
                break
        if chosen is None:  # pragma: no cover - default always verifies
            chosen = default_pipeline(family, pool_kernel=pool_kernel,
                                      pool_stride=pool_stride)
            seconds = dict(timings).get(chosen.describe(), float("inf"))
        choice = ScheduleChoice(family=family, pipeline=chosen,
                                seconds=seconds, timings=timings,
                                verified=verified)
        self._cache[key] = choice
        return choice

    def search_layer(self, spec: ConvSpec, pool_kernel: int = 0,
                     pool_stride: int = 0) -> dict[str, ScheduleChoice]:
        """Search every stencil phase of one conv layer.

        With a pool geometry the forward phase searches the fused
        conv+ReLU+pool family instead of the plain stencil FP family.
        """
        if pool_kernel > 0:
            fp = self.search(spec, "fused_fp", pool_kernel, pool_stride)
        else:
            fp = self.search(spec, "fp")
        return {
            "fp": fp,
            "bp_data": self.search(spec, "bp_data"),
            "bp_weights": self.search(spec, "bp_weights"),
        }
