"""A full training loop tying the stack together.

:class:`TrainingLoop` runs multi-epoch SGD with the pieces a real
training job uses: shuffling, optional augmentation, a learning-rate
schedule, evaluation on held-out data, and an epoch-end hook where
spg-CNN's periodic re-tuning (Sec. 4.4) plugs in.

With a ``checkpoint_dir``, the loop writes a resumable checkpoint every
``checkpoint_every`` epochs, plus always after the final completed
epoch -- weights, momentum buffers, schedule position and shuffle-RNG
state (see :mod:`repro.nn.serialize`) -- and
:meth:`restore` brings a fresh loop back to exactly that point: the
resumed run's weights are bit-identical to those of an uninterrupted run
with the same seed.  Batches the SGD trainer skipped for non-finite
loss/gradients are excluded from epoch metrics (and counted in
``EpochRecord.skipped_batches``); the remaining per-batch metrics are
weighted by batch size, so a short final batch no longer skews the epoch
mean.

With ``journal_every > 0`` the loop additionally writes a *batch
journal* (``journal.npz`` next to the checkpoints) every that many
completed batches: weights, momentum, the epoch's shuffled order, the
completed-batch cursor, the RNG cursor and the partial epoch metrics,
fsync'd atomically.  After a mid-epoch kill, :meth:`resume_latest`
restores whichever of (latest checkpoint, journal) is further along and
:meth:`run` replays exactly the remaining batches -- the recovered run's
weights and epoch records are bit-identical to an uninterrupted run.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable

import numpy as np

from repro import telemetry
from repro.data.synthetic import Dataset
from repro.errors import ReproError
from repro.nn.network import Network
from repro.nn.schedule import ConstantLR, LRSchedule
from repro.nn.serialize import (
    JournalState,
    load_checkpoint,
    load_journal,
    save_checkpoint,
    save_journal,
)
from repro.nn.sgd import SGDTrainer, StepResult


@dataclass
class EpochRecord:
    """Metrics of one training epoch."""

    epoch: int
    train_loss: float
    train_accuracy: float
    eval_loss: float | None
    eval_accuracy: float | None
    learning_rate: float
    mean_error_sparsity: float
    #: Batches dropped by the non-finite guard this epoch.
    skipped_batches: int = 0


@dataclass
class TrainingHistory:
    """All epoch records of one run."""

    epochs: list[EpochRecord] = field(default_factory=list)

    @property
    def final(self) -> EpochRecord:
        if not self.epochs:
            raise ReproError("empty training history")
        return self.epochs[-1]

    def loss_curve(self) -> list[float]:
        return [e.train_loss for e in self.epochs]

    def improved(self) -> bool:
        """True when the final train loss beat the first epoch's."""
        if len(self.epochs) < 2:
            return False
        return self.epochs[-1].train_loss < self.epochs[0].train_loss


class TrainingLoop:
    """Multi-epoch training with schedule, augmentation and hooks."""

    def __init__(
        self,
        network: Network,
        train_data: Dataset,
        eval_data: Dataset | None = None,
        batch_size: int = 16,
        schedule: LRSchedule | None = None,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
        augment: Callable[[np.ndarray, bool], np.ndarray] | None = None,
        epoch_end_hook: Callable[[int, Network], None] | None = None,
        shuffle_seed: int = 0,
        preflight: bool = True,
        checkpoint_dir: str | Path | None = None,
        checkpoint_every: int = 1,
        journal_every: int = 0,
        backend: str | None = None,
        scheduler: str | None = None,
    ):
        if batch_size <= 0:
            raise ReproError(f"batch_size must be positive, got {batch_size}")
        if checkpoint_every <= 0:
            raise ReproError(
                f"checkpoint_every must be positive, got {checkpoint_every}"
            )
        if journal_every < 0:
            raise ReproError(
                f"journal_every must be non-negative, got {journal_every}"
            )
        if journal_every > 0 and checkpoint_dir is None:
            raise ReproError(
                "journal_every needs a checkpoint_dir to write the "
                "journal into"
            )
        self.network = network
        if backend is not None:
            # Config-level execution-backend override: retarget every
            # conv layer (their pools and engines are rebuilt); layers
            # already on the requested backend are untouched.
            for layer in network.layers:
                set_backend = getattr(layer, "set_backend", None)
                if set_backend is not None:
                    set_backend(backend)
        if scheduler is not None:
            # Step-execution strategy ("barrier" | "dag"); set before
            # preflight so the probe exercises the path training uses.
            network.set_scheduler(scheduler)
        if preflight:
            # Fail fast on graph errors (shape/dtype inconsistencies)
            # before the first batch; see repro.check.graph.
            from repro.check.graph import preflight_network

            preflight_network(network)
            if getattr(network, "scheduler", "barrier") == "dag":
                # The task-graph runtime replaces per-layer barriers
                # with declared happens-before edges; prove the compiled
                # FP/BP graphs race-free before trusting them with
                # training state.  See repro.check.effects.
                from repro.check.effects import preflight_dag

                preflight_dag(network, batch_size)
        self.train_data = train_data
        self.eval_data = eval_data
        self.batch_size = batch_size
        self.schedule = schedule or ConstantLR(0.01)
        self.trainer = SGDTrainer(
            network,
            learning_rate=self.schedule.rate(1),
            momentum=momentum,
            weight_decay=weight_decay,
        )
        self.augment = augment
        self.epoch_end_hook = epoch_end_hook
        # Observer hooks (see add_batch_hook / add_epoch_hook): unlike
        # epoch_end_hook they must not mutate the network -- the monitor
        # uses them to watch a run without perturbing it.
        self._batch_hooks: list[Callable[[int, int, "StepResult"], None]] = []
        self._epoch_hooks: list[Callable[[int, EpochRecord], None]] = []
        self._shuffle_rng = np.random.default_rng(shuffle_seed)
        self.checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir else None
        self.checkpoint_every = checkpoint_every
        self.journal_every = journal_every
        self._completed_epochs = 0
        self._history = TrainingHistory()
        # Pending mid-epoch resume state set by restore_journal().
        self._journal_resume: JournalState | None = None

    # -- checkpointing ----------------------------------------------------

    def checkpoint_path(self, epoch: int) -> Path:
        """Where the checkpoint for ``epoch`` lives."""
        if self.checkpoint_dir is None:
            raise ReproError("this loop has no checkpoint_dir configured")
        return self.checkpoint_dir / f"epoch-{epoch:04d}.npz"

    @staticmethod
    def latest_checkpoint(checkpoint_dir: str | Path) -> Path | None:
        """The highest-epoch checkpoint in a directory, or None."""
        paths = sorted(Path(checkpoint_dir).glob("epoch-*.npz"))
        return paths[-1] if paths else None

    def save_checkpoint(self, epoch: int) -> Path:
        """Write the resumable state after ``epoch`` completed epochs."""
        path = self.checkpoint_path(epoch)
        path.parent.mkdir(parents=True, exist_ok=True)
        written = save_checkpoint(
            self.network, path,
            epoch=epoch,
            trainer=self.trainer,
            rng=self._shuffle_rng,
            history=[asdict(record) for record in self._history.epochs],
        )
        telemetry.add("train.checkpoints", 1)
        telemetry.event("checkpoint", epoch=epoch, path=str(written))
        return written

    def restore(self, path: str | Path) -> int:
        """Resume from a checkpoint written by :meth:`save_checkpoint`.

        Restores weights, momentum, shuffle-RNG state and the epoch
        history in place; a following :meth:`run` continues from the next
        epoch bit-identically to a run that was never interrupted.
        Returns the number of epochs the checkpoint had completed.
        """
        state = load_checkpoint(
            self.network, path, trainer=self.trainer, rng=self._shuffle_rng
        )
        self._completed_epochs = state.epoch
        self._history = TrainingHistory(
            epochs=[EpochRecord(**record) for record in state.history]
        )
        telemetry.event("resume", epoch=state.epoch, path=str(path))
        return state.epoch

    @property
    def completed_epochs(self) -> int:
        """Epochs finished so far (restored ones included)."""
        return self._completed_epochs

    # -- batch journal (mid-epoch crash recovery) -------------------------

    @property
    def journal_path(self) -> Path:
        """Where this loop's batch journal lives."""
        if self.checkpoint_dir is None:
            raise ReproError("this loop has no checkpoint_dir configured")
        return self.checkpoint_dir / "journal.npz"

    def _write_journal(self, epoch: int, order: np.ndarray,
                       batches_done: int, losses: list, accuracies: list,
                       sparsities: list, sizes: list, skipped: int) -> None:
        partial = {
            "losses": [float(x) for x in losses],
            "accuracies": [float(x) for x in accuracies],
            "sparsities": [float(x) for x in sparsities],
            "sizes": [int(x) for x in sizes],
            "skipped": int(skipped),
        }
        save_journal(
            self.network, self.journal_path,
            epoch=epoch, batches_done=batches_done, order=order,
            trainer=self.trainer, rng=self._shuffle_rng,
            history=[asdict(record) for record in self._history.epochs],
            partial=partial,
        )
        telemetry.add("train.journal_writes", 1)

    def restore_journal(self, path: str | Path) -> tuple[int, int]:
        """Resume mid-epoch from a batch journal.

        Restores weights, momentum and RNG in place and arms the next
        :meth:`run` to replay exactly the remaining batches of the
        journaled epoch (using the journal's stored permutation -- it is
        never re-drawn).  Returns ``(epoch, batches_done)``.
        """
        state = load_journal(
            self.network, path, trainer=self.trainer, rng=self._shuffle_rng
        )
        self._completed_epochs = state.epoch - 1
        self._history = TrainingHistory(
            epochs=[EpochRecord(**record) for record in state.history]
        )
        self._journal_resume = state
        telemetry.event("resume_journal", epoch=state.epoch,
                        batches_done=state.batches_done, path=str(path))
        return state.epoch, state.batches_done

    def resume_latest(self) -> int:
        """Restore the furthest recovery point in ``checkpoint_dir``.

        Prefers the batch journal when its in-progress epoch is ahead of
        the newest epoch checkpoint (the crash happened mid-epoch after
        the checkpoint); otherwise restores the checkpoint and discards
        the stale journal.  A no-op (returning 0) when the directory has
        neither.  Returns the completed-epoch count restored to.
        """
        if self.checkpoint_dir is None:
            raise ReproError("this loop has no checkpoint_dir configured")
        ckpt = self.latest_checkpoint(self.checkpoint_dir)
        ckpt_epoch = 0
        if ckpt is not None:
            try:
                ckpt_epoch = int(ckpt.stem.split("-")[1])
            except (IndexError, ValueError):  # pragma: no cover - foreign file
                ckpt_epoch = 0
        journal = self.journal_path
        if journal.exists():
            try:
                journal_epoch, _ = self.restore_journal(journal)
                if journal_epoch > ckpt_epoch:
                    return self._completed_epochs
            except Exception:
                # Torn or foreign journal: fall back to the checkpoint.
                pass
            self._journal_resume = None
            journal.unlink(missing_ok=True)
        if ckpt is not None:
            return self.restore(ckpt)
        return self._completed_epochs

    # -- observer hooks ---------------------------------------------------

    def add_batch_hook(
        self, hook: Callable[[int, int, StepResult], None]
    ) -> None:
        """Call ``hook(epoch, batch_index, result)`` after every SGD step.

        Skipped (non-finite) batches are reported too, flagged on the
        :class:`~repro.nn.sgd.StepResult`.  Hooks are observers: they run
        inside the epoch and must not mutate the network.
        """
        self._batch_hooks.append(hook)

    def add_epoch_hook(
        self, hook: Callable[[int, EpochRecord], None]
    ) -> None:
        """Call ``hook(epoch, record)`` after each epoch's record is final.

        Fires after ``epoch_end_hook`` (so re-tuning decisions made there
        are visible) and before the epoch's checkpoint is written.
        """
        self._epoch_hooks.append(hook)

    def _epoch_batches(self, order: np.ndarray | None = None,
                       start_batch: int = 0):
        # Fancy-index one batch at a time: materializing the whole
        # shuffled dataset up front (images[order]) doubles peak memory
        # and copies every image before the first batch even runs.
        # ``start_batch`` skips batches a journal already replayed.
        if order is None:
            order = self._shuffle_rng.permutation(len(self.train_data))
        images = self.train_data.images
        labels = self.train_data.labels
        for lo in range(start_batch * self.batch_size, len(order),
                        self.batch_size):
            idx = order[lo : lo + self.batch_size]
            yield images[idx], labels[idx]

    def run(self, epochs: int) -> TrainingHistory:
        """Train until ``epochs`` total epochs are complete.

        ``epochs`` counts from the start of the run, restored epochs
        included: after ``restore`` of an epoch-2 checkpoint, ``run(3)``
        trains exactly one more epoch.  Returns the full metric history
        (restored epochs included); calling with ``epochs`` already
        completed is a no-op.
        """
        if epochs <= 0:
            raise ReproError(f"epochs must be positive, got {epochs}")
        history = self._history
        for epoch in range(self._completed_epochs + 1, epochs + 1):
            rate = self.schedule.rate(epoch)
            self.trainer.set_learning_rate(rate)
            resume = self._journal_resume
            self._journal_resume = None
            if resume is not None and resume.epoch == epoch:
                # Mid-epoch recovery: replay the journaled permutation
                # from the completed-batch cursor; the partial metrics
                # seed the epoch's accumulators so its final record is
                # identical to the uninterrupted run's.
                order = resume.order
                start_batch = resume.batches_done
                partial = resume.partial
                losses = [float(x) for x in partial.get("losses", [])]
                accuracies = [float(x) for x in partial.get("accuracies", [])]
                sparsities = [float(x) for x in partial.get("sparsities", [])]
                sizes = [int(x) for x in partial.get("sizes", [])]
                skipped = int(partial.get("skipped", 0))
            else:
                order = self._shuffle_rng.permutation(len(self.train_data))
                start_batch = 0
                losses, accuracies, sparsities, sizes = [], [], [], []
                skipped = 0
            batches_done = start_batch
            with telemetry.span("train/epoch", epoch=epoch):
                for batch_x, batch_y in self._epoch_batches(order,
                                                            start_batch):
                    if self.augment is not None:
                        batch_x = self.augment(batch_x, True)
                    result = self.trainer.step(batch_x, batch_y)
                    for hook in self._batch_hooks:
                        hook(epoch, len(sizes) + skipped, result)
                    if result.skipped:
                        skipped += 1
                    else:
                        losses.append(result.loss)
                        accuracies.append(result.accuracy)
                        sizes.append(len(batch_x))
                        if result.error_sparsities:
                            sparsities.append(
                                float(np.mean(
                                    list(result.error_sparsities.values())
                                ))
                            )
                    batches_done += 1
                    if (self.journal_every
                            and batches_done % self.journal_every == 0):
                        self._write_journal(
                            epoch, order, batches_done, losses,
                            accuracies, sparsities, sizes, skipped,
                        )
                eval_loss = eval_acc = None
                if self.eval_data is not None:
                    eval_images = self.eval_data.images
                    if self.augment is not None:
                        eval_images = self.augment(eval_images, False)
                    with telemetry.span("train/eval", epoch=epoch):
                        eval_loss, eval_acc = self.trainer.evaluate(
                            eval_images, self.eval_data.labels
                        )
            # Batch-size-weighted means: a short final batch contributes
            # in proportion to the images it actually held.
            train_loss = (
                float(np.average(losses, weights=sizes))
                if losses else float("nan")
            )
            train_acc = (
                float(np.average(accuracies, weights=sizes))
                if accuracies else float("nan")
            )
            telemetry.add("train.epochs", 1)
            telemetry.gauge("train.loss", train_loss)
            telemetry.gauge(
                "train.error_sparsity",
                float(np.mean(sparsities)) if sparsities else 0.0,
            )
            history.epochs.append(
                EpochRecord(
                    epoch=epoch,
                    train_loss=train_loss,
                    train_accuracy=train_acc,
                    eval_loss=eval_loss,
                    eval_accuracy=eval_acc,
                    learning_rate=rate,
                    mean_error_sparsity=(
                        float(np.mean(sparsities)) if sparsities else 0.0
                    ),
                    skipped_batches=skipped,
                )
            )
            self._completed_epochs = epoch
            if self.epoch_end_hook is not None:
                self.epoch_end_hook(epoch, self.network)
            for hook in self._epoch_hooks:
                hook(epoch, history.epochs[-1])
            if (self.checkpoint_dir is not None
                    and (epoch % self.checkpoint_every == 0
                         or epoch == epochs)):
                # The final completed epoch is always checkpointed, even
                # off-cadence -- otherwise checkpoint_every=2, epochs=5
                # silently loses the epoch-5 state.
                self.save_checkpoint(epoch)
                if self.journal_every:
                    # The epoch checkpoint supersedes any mid-epoch
                    # journal; off-cadence epochs keep theirs as the
                    # best available recovery point.
                    self.journal_path.unlink(missing_ok=True)
        return history
