"""A full training loop tying the stack together.

:class:`TrainingLoop` runs multi-epoch SGD with the pieces a real
training job uses: shuffling, optional augmentation, a learning-rate
schedule, evaluation on held-out data, and an epoch-end hook where
spg-CNN's periodic re-tuning (Sec. 4.4) plugs in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro import telemetry
from repro.data.synthetic import Dataset
from repro.errors import ReproError
from repro.nn.network import Network
from repro.nn.schedule import ConstantLR, LRSchedule
from repro.nn.sgd import SGDTrainer


@dataclass
class EpochRecord:
    """Metrics of one training epoch."""

    epoch: int
    train_loss: float
    train_accuracy: float
    eval_loss: float | None
    eval_accuracy: float | None
    learning_rate: float
    mean_error_sparsity: float


@dataclass
class TrainingHistory:
    """All epoch records of one run."""

    epochs: list[EpochRecord] = field(default_factory=list)

    @property
    def final(self) -> EpochRecord:
        if not self.epochs:
            raise ReproError("empty training history")
        return self.epochs[-1]

    def loss_curve(self) -> list[float]:
        return [e.train_loss for e in self.epochs]

    def improved(self) -> bool:
        """True when the final train loss beat the first epoch's."""
        if len(self.epochs) < 2:
            return False
        return self.epochs[-1].train_loss < self.epochs[0].train_loss


class TrainingLoop:
    """Multi-epoch training with schedule, augmentation and hooks."""

    def __init__(
        self,
        network: Network,
        train_data: Dataset,
        eval_data: Dataset | None = None,
        batch_size: int = 16,
        schedule: LRSchedule | None = None,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
        augment: Callable[[np.ndarray, bool], np.ndarray] | None = None,
        epoch_end_hook: Callable[[int, Network], None] | None = None,
        shuffle_seed: int = 0,
        preflight: bool = True,
    ):
        if batch_size <= 0:
            raise ReproError(f"batch_size must be positive, got {batch_size}")
        self.network = network
        if preflight:
            # Fail fast on graph errors (shape/dtype inconsistencies)
            # before the first batch; see repro.check.graph.
            from repro.check.graph import preflight_network

            preflight_network(network)
        self.train_data = train_data
        self.eval_data = eval_data
        self.batch_size = batch_size
        self.schedule = schedule or ConstantLR(0.01)
        self.trainer = SGDTrainer(
            network,
            learning_rate=self.schedule.rate(1),
            momentum=momentum,
            weight_decay=weight_decay,
        )
        self.augment = augment
        self.epoch_end_hook = epoch_end_hook
        self._shuffle_rng = np.random.default_rng(shuffle_seed)

    def _epoch_batches(self):
        order = self._shuffle_rng.permutation(len(self.train_data))
        images = self.train_data.images[order]
        labels = self.train_data.labels[order]
        for lo in range(0, len(images), self.batch_size):
            yield images[lo : lo + self.batch_size], labels[lo : lo + self.batch_size]

    def run(self, epochs: int) -> TrainingHistory:
        """Train for ``epochs`` epochs; returns the metric history."""
        if epochs <= 0:
            raise ReproError(f"epochs must be positive, got {epochs}")
        history = TrainingHistory()
        for epoch in range(1, epochs + 1):
            rate = self.schedule.rate(epoch)
            self.trainer.set_learning_rate(rate)
            losses, accuracies, sparsities = [], [], []
            with telemetry.span("train/epoch", epoch=epoch):
                for batch_x, batch_y in self._epoch_batches():
                    if self.augment is not None:
                        batch_x = self.augment(batch_x, True)
                    result = self.trainer.step(batch_x, batch_y)
                    losses.append(result.loss)
                    accuracies.append(result.accuracy)
                    if result.error_sparsities:
                        sparsities.append(
                            float(np.mean(list(result.error_sparsities.values())))
                        )
                eval_loss = eval_acc = None
                if self.eval_data is not None:
                    eval_images = self.eval_data.images
                    if self.augment is not None:
                        eval_images = self.augment(eval_images, False)
                    with telemetry.span("train/eval", epoch=epoch):
                        eval_loss, eval_acc = self.trainer.evaluate(
                            eval_images, self.eval_data.labels
                        )
            telemetry.add("train.epochs", 1)
            telemetry.gauge("train.loss", float(np.mean(losses)))
            telemetry.gauge(
                "train.error_sparsity",
                float(np.mean(sparsities)) if sparsities else 0.0,
            )
            history.epochs.append(
                EpochRecord(
                    epoch=epoch,
                    train_loss=float(np.mean(losses)),
                    train_accuracy=float(np.mean(accuracies)),
                    eval_loss=eval_loss,
                    eval_accuracy=eval_acc,
                    learning_rate=rate,
                    mean_error_sparsity=(
                        float(np.mean(sparsities)) if sparsities else 0.0
                    ),
                )
            )
            if self.epoch_end_hook is not None:
                self.epoch_end_hook(epoch, self.network)
        return history
