"""Loss functions for training."""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise numerically stable softmax over ``[B, classes]`` logits."""
    if logits.ndim != 2:
        raise ShapeError(f"expected [B, classes] logits, got {logits.shape}")
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> tuple[float, np.ndarray]:
    """Mean cross-entropy loss and its gradient w.r.t. the logits.

    ``labels`` are integer class indices of shape ``[B]``.  The returned
    gradient is already averaged over the batch, ready to feed the
    network's backward pass.
    """
    if labels.ndim != 1 or labels.shape[0] != logits.shape[0]:
        raise ShapeError(
            f"labels shape {labels.shape} incompatible with logits {logits.shape}"
        )
    if labels.size and (labels.min() < 0 or labels.max() >= logits.shape[1]):
        raise ShapeError("label index out of range")
    batch = logits.shape[0]
    probs = softmax(logits)
    eps = np.finfo(probs.dtype).tiny
    loss = float(-np.log(probs[np.arange(batch), labels] + eps).mean())
    grad = probs.copy()
    grad[np.arange(batch), labels] -= 1.0
    grad /= batch
    return loss, grad.astype(logits.dtype, copy=False)


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 classification accuracy."""
    if labels.shape[0] == 0:
        return 0.0
    return float((logits.argmax(axis=1) == labels).mean())
