"""Stochastic gradient descent training (paper Sec. 2.1).

One step runs FP to compute the network's output, BP to compute the error
gradients, and applies the (momentum-smoothed) delta weights -- the
standard minibatch SGD loop the paper's platforms (ADAM, CAFFE)
implement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import telemetry
from repro.errors import ReproError
from repro.nn.losses import accuracy, softmax_cross_entropy
from repro.nn.network import Network
from repro.resilience import faults


@dataclass
class StepResult:
    """Loss/accuracy of one SGD step, plus per-layer error sparsity."""

    loss: float
    accuracy: float
    error_sparsities: dict[str, float] = field(default_factory=dict)
    #: True when the batch was dropped by the non-finite guard: its loss
    #: or gradient contained NaN/Inf, so no update was applied.
    skipped: bool = False


class SGDTrainer:
    """Minibatch SGD with momentum."""

    def __init__(self, network: Network, learning_rate: float = 0.01,
                 momentum: float = 0.9, weight_decay: float = 0.0):
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        if not 0 <= momentum < 1:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be non-negative, got {weight_decay}")
        self.network = network
        self.learning_rate = learning_rate
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: dict[str, np.ndarray] = {}

    def set_learning_rate(self, value: float) -> None:
        """Update the learning rate (LR-schedule hook)."""
        if value <= 0:
            raise ValueError(f"learning rate must be positive, got {value}")
        self.learning_rate = value

    def step(self, inputs: np.ndarray, labels: np.ndarray) -> StepResult:
        """One FP + BP + update pass over a minibatch.

        A batch whose loss or loss gradient is non-finite (a poisoned
        input, an overflowed activation, an injected NaN) is *skipped*:
        no BP, no parameter update, and the returned result is flagged so
        the caller can exclude it from epoch metrics.  One bad batch must
        not destroy the model.
        """
        net = self.network
        net.zero_grads()
        with telemetry.span("sgd/fp", batch=int(inputs.shape[0])):
            logits = net.forward(inputs, training=True)
        loss, grad = softmax_cross_entropy(logits, labels)
        grad = faults.corrupt_array("sgd.gradient", grad)
        if not (np.isfinite(loss) and np.isfinite(grad).all()):
            telemetry.add("sgd.skipped_batches", 1)
            telemetry.event("sgd.nonfinite_batch", batch=int(inputs.shape[0]),
                            loss=float(loss))
            return StepResult(
                loss=float(loss),
                accuracy=accuracy(logits, labels),
                error_sparsities=net.error_sparsities(),
                skipped=True,
            )
        with telemetry.span("sgd/bp", batch=int(inputs.shape[0])):
            net.backward(grad)
        with telemetry.span("sgd/update"):
            for name, param, g in net.parameters():
                vel = self._velocity.get(name)
                if vel is None:
                    vel = np.zeros_like(param)
                    self._velocity[name] = vel
                update = g
                if self.weight_decay:
                    update = g + self.weight_decay * param
                vel *= self.momentum
                vel -= self.learning_rate * update
                param += vel
        telemetry.add("images.processed", int(inputs.shape[0]))
        telemetry.add("sgd.steps", 1)
        return StepResult(
            loss=loss,
            accuracy=accuracy(logits, labels),
            error_sparsities=net.error_sparsities(),
        )

    # -- optimizer state (checkpointing) ---------------------------------

    def velocity_state(self) -> dict[str, np.ndarray]:
        """Copies of the momentum buffers, keyed by parameter name."""
        return {name: vel.copy() for name, vel in self._velocity.items()}

    def load_velocity_state(self, state: dict[str, np.ndarray]) -> None:
        """Restore momentum buffers saved by :meth:`velocity_state`.

        Buffers must match the shapes of the network's parameters; extra
        names are rejected so a checkpoint cannot silently smuggle in
        state for a different architecture.
        """
        shapes = {name: param.shape for name, param, _ in self.network.parameters()}
        for name, vel in state.items():
            if name not in shapes:
                raise ReproError(f"velocity for unknown parameter {name!r}")
            if vel.shape != shapes[name]:
                raise ReproError(
                    f"velocity shape {vel.shape} != parameter shape "
                    f"{shapes[name]} for {name!r}"
                )
        self._velocity = {name: vel.copy() for name, vel in state.items()}

    def train_epoch(
        self, images: np.ndarray, labels: np.ndarray, batch_size: int
    ) -> list[StepResult]:
        """Train over one pass of the dataset in order; returns step results."""
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        results = []
        for lo in range(0, len(images), batch_size):
            batch_x = images[lo : lo + batch_size]
            batch_y = labels[lo : lo + batch_size]
            if len(batch_x) == 0:
                break
            results.append(self.step(batch_x, batch_y))
        return results

    def evaluate(self, images: np.ndarray, labels: np.ndarray,
                 batch_size: int = 64) -> tuple[float, float]:
        """Mean loss and accuracy without updating parameters."""
        losses, correct, seen = [], 0.0, 0
        for lo in range(0, len(images), batch_size):
            batch_x = images[lo : lo + batch_size]
            batch_y = labels[lo : lo + batch_size]
            logits = self.network.forward(batch_x, training=False)
            loss, _ = softmax_cross_entropy(logits, batch_y)
            losses.append(loss * len(batch_x))
            correct += accuracy(logits, batch_y) * len(batch_x)
            seen += len(batch_x)
        if seen == 0:
            return 0.0, 0.0
        return sum(losses) / seen, correct / seen
