"""Model checkpointing: save and restore network and training state.

Two formats share one ``.npz`` container:

* **Model checkpoints** (:func:`save_network` / :func:`load_network`) --
  just the parameters, keyed by the network's qualified parameter names
  (``<index>.<layer>.<param>``), with a structural fingerprint so a
  checkpoint cannot be silently loaded into a mismatched architecture.
* **Training checkpoints** (:func:`save_checkpoint` /
  :func:`load_checkpoint`) -- everything a killed run needs to resume
  *bit-identically*: the parameters, the optimizer's momentum buffers
  (``__velocity__.<param>`` keys), the completed-epoch count and the
  epoch metric history (``__meta__``, JSON), and the shuffle RNG's
  bit-generator state (``__rng__``, JSON) so the resumed run draws the
  exact permutations the uninterrupted run would have.

Both formats carry the same fingerprint and the same mismatch guarantee:
loading into a structurally different network raises
:class:`~repro.errors.ReproError` instead of corrupting it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.errors import ReproError
from repro.nn.network import Network

_FINGERPRINT_KEY = "__structure__"
_META_KEY = "__meta__"
_RNG_KEY = "__rng__"
_VELOCITY_PREFIX = "__velocity__."

#: Bumped when the training-checkpoint layout changes incompatibly.
CHECKPOINT_FORMAT = 1


def structure_fingerprint(network: Network) -> str:
    """A JSON description of the network's parameter structure."""
    structure = {
        "input_shape": list(network.input_shape),
        "params": {
            name: list(param.shape)
            for name, param, _ in network.parameters()
        },
    }
    return json.dumps(structure, sort_keys=True)


def save_network(network: Network, path: str | Path) -> Path:
    """Write all parameters (and the fingerprint) to ``path`` (.npz)."""
    path = Path(path)
    arrays = {name: param for name, param, _ in network.parameters()}
    if _FINGERPRINT_KEY in arrays:
        raise ReproError(f"parameter name collides with {_FINGERPRINT_KEY}")
    arrays[_FINGERPRINT_KEY] = np.frombuffer(
        structure_fingerprint(network).encode("utf-8"), dtype=np.uint8
    )
    np.savez(path, **arrays)
    # np.savez appends .npz when missing; normalize the returned path.
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_network(network: Network, path: str | Path) -> Network:
    """Restore parameters from ``path`` into ``network`` (in place).

    The checkpoint's structural fingerprint must match the network's;
    otherwise a :class:`ReproError` explains the mismatch.
    """
    with np.load(Path(path)) as archive:
        _verify_fingerprint(archive, network, path)
        for name, param, _ in network.parameters():
            param[...] = archive[name]
    return network


def _verify_fingerprint(archive, network: Network, path) -> None:
    if _FINGERPRINT_KEY not in archive:
        raise ReproError(f"{path} is not a repro checkpoint")
    stored = bytes(archive[_FINGERPRINT_KEY]).decode("utf-8")
    expected = structure_fingerprint(network)
    if stored != expected:
        raise ReproError(
            "checkpoint structure does not match the network:\n"
            f"  checkpoint: {stored}\n  network:    {expected}"
        )


def _json_array(value: Any) -> np.ndarray:
    return np.frombuffer(json.dumps(value).encode("utf-8"), dtype=np.uint8)


def _array_json(array: np.ndarray) -> Any:
    return json.loads(bytes(array).decode("utf-8"))


@dataclass
class CheckpointState:
    """Everything a training checkpoint restores besides the parameters."""

    epoch: int
    history: list[dict[str, Any]] = field(default_factory=list)
    has_velocity: bool = False
    has_rng: bool = False


def save_checkpoint(
    network: Network,
    path: str | Path,
    *,
    epoch: int = 0,
    trainer=None,
    rng: np.random.Generator | None = None,
    history: list[dict[str, Any]] | None = None,
) -> Path:
    """Write a resumable training checkpoint to ``path`` (.npz).

    ``trainer`` (an :class:`~repro.nn.sgd.SGDTrainer`) contributes its
    momentum buffers; ``rng`` its bit-generator state; ``history`` a list
    of JSON-friendly epoch records.  All three are optional -- a
    checkpoint without them restores weights only.
    """
    if epoch < 0:
        raise ReproError(f"epoch must be non-negative, got {epoch}")
    path = Path(path)
    arrays = {name: param for name, param, _ in network.parameters()}
    reserved = (_FINGERPRINT_KEY, _META_KEY, _RNG_KEY)
    for name in arrays:
        if name in reserved or name.startswith(_VELOCITY_PREFIX):
            raise ReproError(f"parameter name collides with {name!r}")
    arrays[_FINGERPRINT_KEY] = np.frombuffer(
        structure_fingerprint(network).encode("utf-8"), dtype=np.uint8
    )
    meta = {
        "format": CHECKPOINT_FORMAT,
        "epoch": int(epoch),
        "history": list(history or []),
    }
    arrays[_META_KEY] = _json_array(meta)
    if rng is not None:
        arrays[_RNG_KEY] = _json_array(rng.bit_generator.state)
    if trainer is not None:
        for name, velocity in trainer.velocity_state().items():
            arrays[_VELOCITY_PREFIX + name] = velocity
    np.savez(path, **arrays)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_checkpoint(
    network: Network,
    path: str | Path,
    *,
    trainer=None,
    rng: np.random.Generator | None = None,
) -> CheckpointState:
    """Restore a training checkpoint into ``network`` (and co) in place.

    The fingerprint must match, exactly as in :func:`load_network`.
    When ``trainer`` / ``rng`` are given, their momentum buffers and
    bit-generator state are restored too; a checkpoint saved without
    that state leaves them untouched.  Returns the bookkeeping the
    caller needs to continue the run.
    """
    with np.load(Path(path)) as archive:
        _verify_fingerprint(archive, network, path)
        if _META_KEY not in archive:
            raise ReproError(
                f"{path} is a model checkpoint, not a training checkpoint; "
                "use load_network()"
            )
        meta = _array_json(archive[_META_KEY])
        if meta.get("format") != CHECKPOINT_FORMAT:
            raise ReproError(
                f"unsupported checkpoint format {meta.get('format')!r}; "
                f"this build reads format {CHECKPOINT_FORMAT}"
            )
        for name, param, _ in network.parameters():
            param[...] = archive[name]
        velocity = {
            key[len(_VELOCITY_PREFIX):]: archive[key]
            for key in archive.files if key.startswith(_VELOCITY_PREFIX)
        }
        if trainer is not None and velocity:
            trainer.load_velocity_state(velocity)
        has_rng = _RNG_KEY in archive
        if rng is not None and has_rng:
            rng.bit_generator.state = _array_json(archive[_RNG_KEY])
    return CheckpointState(
        epoch=int(meta["epoch"]),
        history=list(meta.get("history", [])),
        has_velocity=bool(velocity),
        has_rng=has_rng,
    )
