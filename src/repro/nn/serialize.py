"""Model checkpointing: save and restore network parameters.

Parameters are stored in a single ``.npz`` archive keyed by the
network's qualified parameter names (``<index>.<layer>.<param>``), with a
structural fingerprint so a checkpoint cannot be silently loaded into a
mismatched architecture.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.errors import ReproError
from repro.nn.network import Network

_FINGERPRINT_KEY = "__structure__"


def structure_fingerprint(network: Network) -> str:
    """A JSON description of the network's parameter structure."""
    structure = {
        "input_shape": list(network.input_shape),
        "params": {
            name: list(param.shape)
            for name, param, _ in network.parameters()
        },
    }
    return json.dumps(structure, sort_keys=True)


def save_network(network: Network, path: str | Path) -> Path:
    """Write all parameters (and the fingerprint) to ``path`` (.npz)."""
    path = Path(path)
    arrays = {name: param for name, param, _ in network.parameters()}
    if _FINGERPRINT_KEY in arrays:
        raise ReproError(f"parameter name collides with {_FINGERPRINT_KEY}")
    arrays[_FINGERPRINT_KEY] = np.frombuffer(
        structure_fingerprint(network).encode("utf-8"), dtype=np.uint8
    )
    np.savez(path, **arrays)
    # np.savez appends .npz when missing; normalize the returned path.
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_network(network: Network, path: str | Path) -> Network:
    """Restore parameters from ``path`` into ``network`` (in place).

    The checkpoint's structural fingerprint must match the network's;
    otherwise a :class:`ReproError` explains the mismatch.
    """
    with np.load(Path(path)) as archive:
        if _FINGERPRINT_KEY not in archive:
            raise ReproError(f"{path} is not a repro checkpoint")
        stored = bytes(archive[_FINGERPRINT_KEY]).decode("utf-8")
        expected = structure_fingerprint(network)
        if stored != expected:
            raise ReproError(
                "checkpoint structure does not match the network:\n"
                f"  checkpoint: {stored}\n  network:    {expected}"
            )
        for name, param, _ in network.parameters():
            param[...] = archive[name]
    return network
