"""Model checkpointing: save and restore network and training state.

Two formats share one ``.npz`` container:

* **Model checkpoints** (:func:`save_network` / :func:`load_network`) --
  just the parameters, keyed by the network's qualified parameter names
  (``<index>.<layer>.<param>``), with a structural fingerprint so a
  checkpoint cannot be silently loaded into a mismatched architecture.
* **Training checkpoints** (:func:`save_checkpoint` /
  :func:`load_checkpoint`) -- everything a killed run needs to resume
  *bit-identically*: the parameters, the optimizer's momentum buffers
  (``__velocity__.<param>`` keys), the completed-epoch count and the
  epoch metric history (``__meta__``, JSON), and the shuffle RNG's
  bit-generator state (``__rng__``, JSON) so the resumed run draws the
  exact permutations the uninterrupted run would have.

A third format rides on the training-checkpoint layout:

* **Batch journals** (:func:`save_journal` / :func:`load_journal`) -- a
  *mid-epoch* snapshot for crash-consistent recovery: the training
  checkpoint's payload plus the epoch's shuffled index order
  (``__order__``), the completed-batch index and the partial epoch
  metrics.  Journals are written atomically (tmp file + ``fsync`` +
  ``rename`` + directory ``fsync``) so a kill at any instant leaves
  either the previous journal or the new one, never a torn file.

Both formats carry the same fingerprint and the same mismatch guarantee:
loading into a structurally different network raises
:class:`~repro.errors.ReproError` instead of corrupting it.
"""

from __future__ import annotations

import io
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.errors import ReproError
from repro.nn.network import Network

_FINGERPRINT_KEY = "__structure__"
_META_KEY = "__meta__"
_RNG_KEY = "__rng__"
_VELOCITY_PREFIX = "__velocity__."
_ORDER_KEY = "__order__"

#: Bumped when the training-checkpoint layout changes incompatibly.
CHECKPOINT_FORMAT = 1

#: Bumped when the batch-journal layout changes incompatibly.
JOURNAL_FORMAT = 1


def structure_fingerprint(network: Network) -> str:
    """A JSON description of the network's parameter structure."""
    structure = {
        "input_shape": list(network.input_shape),
        "params": {
            name: list(param.shape)
            for name, param, _ in network.parameters()
        },
    }
    return json.dumps(structure, sort_keys=True)


def save_network(network: Network, path: str | Path) -> Path:
    """Write all parameters (and the fingerprint) to ``path`` (.npz)."""
    path = Path(path)
    arrays = {name: param for name, param, _ in network.parameters()}
    if _FINGERPRINT_KEY in arrays:
        raise ReproError(f"parameter name collides with {_FINGERPRINT_KEY}")
    arrays[_FINGERPRINT_KEY] = np.frombuffer(
        structure_fingerprint(network).encode("utf-8"), dtype=np.uint8
    )
    np.savez(path, **arrays)
    # np.savez appends .npz when missing; normalize the returned path.
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_network(network: Network, path: str | Path) -> Network:
    """Restore parameters from ``path`` into ``network`` (in place).

    The checkpoint's structural fingerprint must match the network's;
    otherwise a :class:`ReproError` explains the mismatch.
    """
    with np.load(Path(path)) as archive:
        _verify_fingerprint(archive, network, path)
        for name, param, _ in network.parameters():
            param[...] = archive[name]
    return network


def _verify_fingerprint(archive, network: Network, path) -> None:
    if _FINGERPRINT_KEY not in archive:
        raise ReproError(f"{path} is not a repro checkpoint")
    stored = bytes(archive[_FINGERPRINT_KEY]).decode("utf-8")
    expected = structure_fingerprint(network)
    if stored != expected:
        raise ReproError(
            "checkpoint structure does not match the network:\n"
            f"  checkpoint: {stored}\n  network:    {expected}"
        )


def _json_array(value: Any) -> np.ndarray:
    return np.frombuffer(json.dumps(value).encode("utf-8"), dtype=np.uint8)


def _array_json(array: np.ndarray) -> Any:
    return json.loads(bytes(array).decode("utf-8"))


@dataclass
class CheckpointState:
    """Everything a training checkpoint restores besides the parameters."""

    epoch: int
    history: list[dict[str, Any]] = field(default_factory=list)
    has_velocity: bool = False
    has_rng: bool = False


def save_checkpoint(
    network: Network,
    path: str | Path,
    *,
    epoch: int = 0,
    trainer=None,
    rng: np.random.Generator | None = None,
    history: list[dict[str, Any]] | None = None,
) -> Path:
    """Write a resumable training checkpoint to ``path`` (.npz).

    ``trainer`` (an :class:`~repro.nn.sgd.SGDTrainer`) contributes its
    momentum buffers; ``rng`` its bit-generator state; ``history`` a list
    of JSON-friendly epoch records.  All three are optional -- a
    checkpoint without them restores weights only.
    """
    if epoch < 0:
        raise ReproError(f"epoch must be non-negative, got {epoch}")
    path = Path(path)
    arrays = {name: param for name, param, _ in network.parameters()}
    reserved = (_FINGERPRINT_KEY, _META_KEY, _RNG_KEY)
    for name in arrays:
        if name in reserved or name.startswith(_VELOCITY_PREFIX):
            raise ReproError(f"parameter name collides with {name!r}")
    arrays[_FINGERPRINT_KEY] = np.frombuffer(
        structure_fingerprint(network).encode("utf-8"), dtype=np.uint8
    )
    meta = {
        "format": CHECKPOINT_FORMAT,
        "epoch": int(epoch),
        "history": list(history or []),
    }
    arrays[_META_KEY] = _json_array(meta)
    if rng is not None:
        arrays[_RNG_KEY] = _json_array(rng.bit_generator.state)
    if trainer is not None:
        for name, velocity in trainer.velocity_state().items():
            arrays[_VELOCITY_PREFIX + name] = velocity
    np.savez(path, **arrays)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_checkpoint(
    network: Network,
    path: str | Path,
    *,
    trainer=None,
    rng: np.random.Generator | None = None,
) -> CheckpointState:
    """Restore a training checkpoint into ``network`` (and co) in place.

    The fingerprint must match, exactly as in :func:`load_network`.
    When ``trainer`` / ``rng`` are given, their momentum buffers and
    bit-generator state are restored too; a checkpoint saved without
    that state leaves them untouched.  Returns the bookkeeping the
    caller needs to continue the run.
    """
    with np.load(Path(path)) as archive:
        _verify_fingerprint(archive, network, path)
        if _META_KEY not in archive:
            raise ReproError(
                f"{path} is a model checkpoint, not a training checkpoint; "
                "use load_network()"
            )
        meta = _array_json(archive[_META_KEY])
        if meta.get("format") != CHECKPOINT_FORMAT:
            raise ReproError(
                f"unsupported checkpoint format {meta.get('format')!r}; "
                f"this build reads format {CHECKPOINT_FORMAT}"
            )
        for name, param, _ in network.parameters():
            param[...] = archive[name]
        velocity = {
            key[len(_VELOCITY_PREFIX):]: archive[key]
            for key in archive.files if key.startswith(_VELOCITY_PREFIX)
        }
        if trainer is not None and velocity:
            trainer.load_velocity_state(velocity)
        has_rng = _RNG_KEY in archive
        if rng is not None and has_rng:
            rng.bit_generator.state = _array_json(archive[_RNG_KEY])
    return CheckpointState(
        epoch=int(meta["epoch"]),
        history=list(meta.get("history", [])),
        has_velocity=bool(velocity),
        has_rng=has_rng,
    )


# -- batch journals (mid-epoch crash recovery) -------------------------------


@dataclass
class JournalState:
    """Everything a batch journal restores besides the parameters.

    ``epoch`` is the *in-progress* epoch (1-based), ``batches_done`` how
    many of its batches had completed when the journal was written, and
    ``order`` the epoch's full shuffled index permutation -- together
    they pin exactly which batches remain.  ``partial`` carries the
    per-batch metric lists accumulated so far, so the resumed epoch's
    record is identical to the uninterrupted one.
    """

    epoch: int
    batches_done: int
    order: np.ndarray
    history: list[dict[str, Any]] = field(default_factory=list)
    partial: dict[str, Any] = field(default_factory=dict)


def save_journal(
    network: Network,
    path: str | Path,
    *,
    epoch: int,
    batches_done: int,
    order: np.ndarray,
    trainer=None,
    rng: np.random.Generator | None = None,
    history: list[dict[str, Any]] | None = None,
    partial: dict[str, Any] | None = None,
) -> Path:
    """Write a crash-consistent mid-epoch journal to ``path`` (.npz).

    The RNG state saved here is the state *after* this epoch's
    permutation draw, and the permutation itself travels in the file --
    a resumed run never re-draws it, so the remaining batches replay
    bit-identically.  The write is atomic and durable: the bytes are
    fsync'd in a temp file, renamed over ``path``, and the directory
    entry fsync'd, so a kill mid-write can never leave a torn journal.
    """
    if epoch <= 0:
        raise ReproError(f"journal epoch must be positive, got {epoch}")
    if batches_done < 0:
        raise ReproError(
            f"batches_done must be non-negative, got {batches_done}"
        )
    path = Path(path)
    arrays = {name: param for name, param, _ in network.parameters()}
    reserved = (_FINGERPRINT_KEY, _META_KEY, _RNG_KEY, _ORDER_KEY)
    for name in arrays:
        if name in reserved or name.startswith(_VELOCITY_PREFIX):
            raise ReproError(f"parameter name collides with {name!r}")
    arrays[_FINGERPRINT_KEY] = np.frombuffer(
        structure_fingerprint(network).encode("utf-8"), dtype=np.uint8
    )
    meta = {
        "format": CHECKPOINT_FORMAT,
        "journal_format": JOURNAL_FORMAT,
        "epoch": int(epoch),
        "batches_done": int(batches_done),
        "history": list(history or []),
        "partial": dict(partial or {}),
    }
    arrays[_META_KEY] = _json_array(meta)
    arrays[_ORDER_KEY] = np.asarray(order, dtype=np.int64)
    if rng is not None:
        arrays[_RNG_KEY] = _json_array(rng.bit_generator.state)
    if trainer is not None:
        for name, velocity in trainer.velocity_state().items():
            arrays[_VELOCITY_PREFIX + name] = velocity
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(buffer.getvalue())
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    dir_fd = os.open(path.parent, os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)
    return path


def journal_position(path: str | Path) -> tuple[int, int] | None:
    """``(epoch, batches_done)`` of a journal, or None if unreadable.

    Reads only the metadata -- no network is needed -- so a watcher
    (e.g. the kill-chaos harness deciding when to strike) can poll a
    journal another process is writing.
    """
    try:
        with np.load(Path(path)) as archive:
            meta = _array_json(archive[_META_KEY])
        if meta.get("journal_format") != JOURNAL_FORMAT:
            return None
        return int(meta["epoch"]), int(meta["batches_done"])
    except Exception:
        return None


def load_journal(
    network: Network,
    path: str | Path,
    *,
    trainer=None,
    rng: np.random.Generator | None = None,
) -> JournalState:
    """Restore a batch journal into ``network`` (and co) in place.

    Mirrors :func:`load_checkpoint`, additionally returning the epoch's
    permutation and completed-batch cursor so the caller can replay
    exactly the remaining batches.
    """
    with np.load(Path(path)) as archive:
        _verify_fingerprint(archive, network, path)
        if _META_KEY not in archive or _ORDER_KEY not in archive:
            raise ReproError(f"{path} is not a repro batch journal")
        meta = _array_json(archive[_META_KEY])
        if meta.get("journal_format") != JOURNAL_FORMAT:
            raise ReproError(
                f"unsupported journal format {meta.get('journal_format')!r}; "
                f"this build reads format {JOURNAL_FORMAT}"
            )
        for name, param, _ in network.parameters():
            param[...] = archive[name]
        velocity = {
            key[len(_VELOCITY_PREFIX):]: archive[key]
            for key in archive.files if key.startswith(_VELOCITY_PREFIX)
        }
        if trainer is not None and velocity:
            trainer.load_velocity_state(velocity)
        if rng is not None and _RNG_KEY in archive:
            rng.bit_generator.state = _array_json(archive[_RNG_KEY])
        order = np.array(archive[_ORDER_KEY], dtype=np.int64)
    return JournalState(
        epoch=int(meta["epoch"]),
        batches_done=int(meta["batches_done"]),
        order=order,
        history=list(meta.get("history", [])),
        partial=dict(meta.get("partial", {})),
    )
