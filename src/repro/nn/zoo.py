"""Model zoo: the paper's four benchmarks plus trainable small variants.

Two families live here:

* ``*_convolutions()`` -- the exact Table 2 convolution specifications,
  used by the Fig. 8 / Fig. 9 benchmarks (these networks are far too
  large to train in pure Python, but their *shapes* are what the
  performance experiments need).
* ``mnist_net()`` / ``cifar10_net()`` / ``imagenet100_net()`` -- small
  trainable networks with the same structural ingredients (conv + ReLU +
  max-pool stacks), used for the end-to-end training tests and for
  reproducing the Fig. 3b sparsity trajectories.  ``scale`` shrinks
  feature counts for fast tests.

Note on Table 2's CIFAR-10 spatial sizes: the listed extents (36, 8)
include the paper's image padding; the trainable variant uses explicit
``pad`` attributes on an unpadded 32x32 input, which yields the same
convolution geometry.
"""

from __future__ import annotations

import numpy as np

from repro.core.convspec import ConvSpec
from repro.data.tables import benchmark_layers
from repro.errors import ShapeError
from repro.nn.netdef import build_network
from repro.nn.network import Network


def benchmark_convolutions(benchmark: str) -> tuple[ConvSpec, ...]:
    """The Table 2 convolution layers of a named benchmark."""
    return benchmark_layers(benchmark)


def _scaled(features: int, scale: float) -> int:
    if scale <= 0:
        raise ShapeError(f"scale must be positive, got {scale}")
    return max(1, int(round(features * scale)))


def mnist_net(num_cores: int = 1, scale: float = 1.0,
              rng: np.random.Generator | None = None,
              threads: int | None = None,
              backend: str = "thread") -> Network:
    """LeNet-style MNIST classifier (Table 2: one 5x5 conv, 20 features)."""
    definition = {
        "name": "mnist",
        "input": [1, 28, 28],
        "layers": [
            {"type": "conv", "features": _scaled(20, scale), "kernel": 5},
            {"type": "relu"},
            {"type": "pool", "kernel": 2, "stride": 2},
            {"type": "flatten"},
            {"type": "dense", "features": _scaled(100, scale)},
            {"type": "relu"},
            {"type": "dense", "features": 10},
        ],
    }
    return build_network(definition, num_cores=num_cores, rng=rng,
                         threads=threads, backend=backend)


def cifar10_net(num_cores: int = 1, scale: float = 1.0,
                rng: np.random.Generator | None = None,
                threads: int | None = None,
                backend: str = "thread") -> Network:
    """CIFAR-10 classifier with the Table 2 conv geometry (5x5, 64 features)."""
    definition = {
        "name": "cifar-10",
        "input": [3, 32, 32],
        "layers": [
            {"type": "conv", "features": _scaled(64, scale), "kernel": 5, "pad": 2},
            {"type": "relu"},
            {"type": "pool", "kernel": 2, "stride": 2},
            {"type": "conv", "features": _scaled(64, scale), "kernel": 5, "pad": 2},
            {"type": "relu"},
            {"type": "pool", "kernel": 2, "stride": 2},
            {"type": "flatten"},
            {"type": "dense", "features": 10},
        ],
    }
    return build_network(definition, num_cores=num_cores, rng=rng,
                         threads=threads, backend=backend)


def imagenet100_net(num_cores: int = 1, scale: float = 1.0,
                    rng: np.random.Generator | None = None,
                    threads: int | None = None,
                    backend: str = "thread") -> Network:
    """A reduced ImageNet-100 classifier (Fig. 3b's third benchmark).

    ImageNet-100 is a 100-class subset of ImageNet; full 256x256 training
    is infeasible in pure Python, so this variant keeps the AlexNet-style
    conv/pool alternation on a smaller canvas.
    """
    definition = {
        "name": "imagenet-100",
        "input": [3, 48, 48],
        "layers": [
            {"type": "conv", "features": _scaled(32, scale), "kernel": 5, "stride": 2},
            {"type": "relu"},
            {"type": "pool", "kernel": 2, "stride": 2},
            {"type": "conv", "features": _scaled(64, scale), "kernel": 3, "pad": 1},
            {"type": "relu"},
            {"type": "pool", "kernel": 2, "stride": 2},
            {"type": "flatten"},
            {"type": "dense", "features": 100},
        ],
    }
    return build_network(definition, num_cores=num_cores, rng=rng,
                         threads=threads, backend=backend)


def alexnet_small(num_cores: int = 1, scale: float = 1.0,
                  rng: np.random.Generator | None = None,
                  threads: int | None = None,
                  backend: str = "thread") -> Network:
    """A trainable AlexNet-style network with LRN and dropout.

    Structurally faithful to the paper's ImageNet-1K benchmark (conv +
    LRN + max-pool stages, dropout before the classifier) on a reduced
    64x64 canvas so it is trainable in pure Python.
    """
    definition = {
        "name": "alexnet-small",
        "input": [3, 64, 64],
        "layers": [
            {"type": "conv", "features": _scaled(24, scale), "kernel": 7,
             "stride": 2},
            {"type": "relu"},
            {"type": "lrn", "size": 5},
            {"type": "pool", "kernel": 2, "stride": 2},
            {"type": "conv", "features": _scaled(48, scale), "kernel": 5,
             "pad": 2},
            {"type": "relu"},
            {"type": "lrn", "size": 5},
            {"type": "pool", "kernel": 2, "stride": 2},
            {"type": "conv", "features": _scaled(64, scale), "kernel": 3,
             "pad": 1},
            {"type": "relu"},
            {"type": "avgpool", "kernel": 2, "stride": 2},
            {"type": "flatten"},
            {"type": "dropout", "rate": 0.5},
            {"type": "dense", "features": _scaled(128, scale)},
            {"type": "relu"},
            {"type": "dense", "features": 100},
        ],
    }
    return build_network(definition, num_cores=num_cores, rng=rng,
                         threads=threads, backend=backend)


#: Builders for the Fig. 3b sparsity experiment, keyed by display name.
SPARSITY_BENCHMARKS = {
    "MNIST": mnist_net,
    "CIFAR": cifar10_net,
    "ImageNet100": imagenet100_net,
}
