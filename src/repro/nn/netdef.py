"""Network descriptions: dict specs and a prototxt-like text format.

The paper specifies CNNs to spg-CNN "using Google Protocol Buffer similar
to how CAFFE describes its inputs" (Sec. 4).  This module provides the
equivalent entry points for this reproduction:

* :func:`build_network` -- construct a :class:`repro.nn.network.Network`
  from a plain dictionary description;
* :func:`parse_netdef` -- parse a small prototxt-like text format into
  that dictionary form.

Text format example::

    name: "cifar10-small"
    input: 3 32 32
    layer { type: conv features: 64 kernel: 5 stride: 1 pad: 2 }
    layer { type: relu }
    layer { type: pool kernel: 2 stride: 2 }
    layer { type: flatten }
    layer { type: dense features: 10 }
"""

from __future__ import annotations

import re

import numpy as np

from repro.core.convspec import ConvSpec
from repro.errors import ShapeError
from repro.nn.layers.activations import FlattenLayer, ReLULayer
from repro.nn.layers.conv import ConvLayer
from repro.nn.layers.dense import DenseLayer
from repro.nn.layers.extras import (
    AvgPoolLayer,
    DropoutLayer,
    LocalResponseNormLayer,
)
from repro.nn.layers.pool import MaxPoolLayer
from repro.nn.network import Network


def _require(layer_def: dict, key: str, layer_type: str):
    if key not in layer_def:
        raise ShapeError(f"{layer_type} layer definition missing {key!r}: {layer_def}")
    return layer_def[key]


def build_network(
    definition: dict,
    num_cores: int = 1,
    rng: np.random.Generator | None = None,
    threads: int | None = None,
    backend: str = "thread",
) -> Network:
    """Build a :class:`Network` from a dictionary description.

    The description carries ``input`` (per-image ``[C, Y, X]`` shape) and a
    ``layers`` list; convolution shapes are inferred from the running
    activation shape so only features/kernel/stride/pad are specified.
    With ``threads > 1`` the convolution layers execute on a real worker
    pool on the chosen execution backend (see
    :class:`repro.nn.layers.conv.ConvLayer`).
    """
    rng = rng or np.random.default_rng(0)
    input_shape = tuple(int(v) for v in _require(definition, "input", "network"))
    if len(input_shape) != 3:
        raise ShapeError(f"network input must be [C, Y, X], got {input_shape}")
    shape: tuple[int, ...] = input_shape
    layers = []
    for i, layer_def in enumerate(definition.get("layers", [])):
        layer_type = _require(layer_def, "type", "unnamed")
        name = layer_def.get("name", f"{layer_type}{i}")
        if layer_type == "conv":
            if len(shape) != 3:
                raise ShapeError(f"conv layer {name} needs [C, Y, X] input, got {shape}")
            kernel = int(_require(layer_def, "kernel", "conv"))
            spec = ConvSpec(
                nc=shape[0],
                ny=shape[1],
                nx=shape[2],
                nf=int(_require(layer_def, "features", "conv")),
                fy=kernel,
                fx=kernel,
                sy=int(layer_def.get("stride", 1)),
                sx=int(layer_def.get("stride", 1)),
                pad=int(layer_def.get("pad", 0)),
                name=name,
            )
            layer = ConvLayer(spec, name=name, num_cores=num_cores,
                              threads=threads, backend=backend, rng=rng)
        elif layer_type == "relu":
            layer = ReLULayer(name=name)
        elif layer_type == "pool":
            layer = MaxPoolLayer(
                kernel=int(_require(layer_def, "kernel", "pool")),
                stride=int(layer_def["stride"]) if "stride" in layer_def else None,
                name=name,
            )
        elif layer_type == "avgpool":
            layer = AvgPoolLayer(
                kernel=int(_require(layer_def, "kernel", "avgpool")),
                stride=int(layer_def["stride"]) if "stride" in layer_def else None,
                name=name,
            )
        elif layer_type == "lrn":
            layer = LocalResponseNormLayer(
                size=int(layer_def.get("size", 5)),
                name=name,
            )
        elif layer_type == "dropout":
            layer = DropoutLayer(rate=float(layer_def.get("rate", 0.5)),
                                 name=name)
        elif layer_type == "flatten":
            layer = FlattenLayer(name=name)
        elif layer_type == "dense":
            if len(shape) != 1:
                raise ShapeError(
                    f"dense layer {name} needs flattened input, got {shape}; "
                    "insert a flatten layer"
                )
            layer = DenseLayer(
                in_features=shape[0],
                out_features=int(_require(layer_def, "features", "dense")),
                name=name,
                rng=rng,
            )
        else:
            raise ShapeError(f"unknown layer type {layer_type!r} in definition")
        shape = layer.output_shape(shape)
        layers.append(layer)
    return Network(layers, input_shape, name=definition.get("name", "network"))


_TOKEN_RE = re.compile(r'"[^"]*"|\{|\}|[^\s{}]+')


def _tokenize(text: str) -> list[str]:
    tokens = []
    for line in text.splitlines():
        line = line.split("#", 1)[0]
        tokens.extend(_TOKEN_RE.findall(line))
    return tokens


def _coerce(token: str):
    if token.startswith('"') and token.endswith('"'):
        return token[1:-1]
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        return token


def parse_netdef(text: str) -> dict:
    """Parse the prototxt-like text format into a dict description."""
    tokens = _tokenize(text)
    definition: dict = {"layers": []}
    i = 0
    while i < len(tokens):
        token = tokens[i]
        if not token.endswith(":"):
            if token == "layer" and i + 1 < len(tokens) and tokens[i + 1] == "{":
                layer_def: dict = {}
                i += 2
                while i < len(tokens) and tokens[i] != "}":
                    key = tokens[i]
                    if not key.endswith(":"):
                        raise ShapeError(f"expected 'key:' inside layer, got {key!r}")
                    if i + 1 >= len(tokens):
                        raise ShapeError(f"missing value for {key!r}")
                    layer_def[key[:-1]] = _coerce(tokens[i + 1])
                    i += 2
                if i >= len(tokens):
                    raise ShapeError("unterminated layer block")
                definition["layers"].append(layer_def)
                i += 1
                continue
            raise ShapeError(f"unexpected token {token!r} in network definition")
        key = token[:-1]
        if key == "input":
            values = []
            while i + 1 < len(tokens) and re.fullmatch(r"-?\d+", tokens[i + 1]):
                values.append(int(tokens[i + 1]))
                i += 1
            if len(values) != 3:
                raise ShapeError(f"input expects 3 integers, got {values}")
            definition["input"] = values
        else:
            if i + 1 >= len(tokens):
                raise ShapeError(f"missing value for {key!r}")
            definition[key] = _coerce(tokens[i + 1])
            i += 1
        i += 1
    if "input" not in definition:
        raise ShapeError("network definition missing 'input:'")
    return definition


def network_from_text(
    text: str, num_cores: int = 1, rng: np.random.Generator | None = None,
    threads: int | None = None,
) -> Network:
    """Parse and build a network from the text format in one call."""
    return build_network(parse_netdef(text), num_cores=num_cores, rng=rng,
                         threads=threads)


def _format_value(value) -> str:
    if isinstance(value, str):
        return f'"{value}"'
    return str(value)


def format_netdef(definition: dict) -> str:
    """Serialize a dict description back to the text format.

    Inverse of :func:`parse_netdef`: ``parse_netdef(format_netdef(d))``
    reproduces ``d`` for any well-formed description.
    """
    if "input" not in definition:
        raise ShapeError("definition missing 'input'")
    lines = []
    for key, value in definition.items():
        if key in ("layers", "input"):
            continue
        lines.append(f"{key}: {_format_value(value)}")
    lines.append("input: " + " ".join(str(int(v)) for v in definition["input"]))
    for layer_def in definition.get("layers", []):
        fields = " ".join(
            f"{k}: {_format_value(v)}" for k, v in layer_def.items()
        )
        lines.append(f"layer {{ {fields} }}")
    return "\n".join(lines) + "\n"
