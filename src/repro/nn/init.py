"""Weight initialization schemes.

Centralizes the initializers the layers use so experiments can vary them;
the defaults follow the fan-in-scaled Gaussian ("He") scheme appropriate
for ReLU networks, which is what keeps the zoo networks trainable.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError


def _fan_in(shape: tuple[int, ...]) -> int:
    if len(shape) < 2:
        raise ShapeError(f"weight shape needs >= 2 dims, got {shape}")
    fan = 1
    for extent in shape[1:]:
        fan *= extent
    return fan


def he_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Gaussian with std ``sqrt(2 / fan_in)`` (ReLU-preserving variance)."""
    scale = np.sqrt(2.0 / _fan_in(shape))
    return (rng.standard_normal(shape) * scale).astype(np.float32)


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Uniform on ``[-limit, limit]`` with ``limit = sqrt(6/(fan_in+fan_out))``."""
    fan_in = _fan_in(shape)
    fan_out = shape[0] * (np.prod(shape[2:]) if len(shape) > 2 else 1)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(np.float32)


def zeros(shape: tuple[int, ...], rng: np.random.Generator | None = None) -> np.ndarray:
    """All-zero initialization (biases)."""
    return np.zeros(shape, dtype=np.float32)


INITIALIZERS = {
    "he": he_normal,
    "xavier": xavier_uniform,
    "zeros": zeros,
}


def initialize(name: str, shape: tuple[int, ...],
               rng: np.random.Generator) -> np.ndarray:
    """Build a weight tensor with the named scheme."""
    try:
        scheme = INITIALIZERS[name]
    except KeyError:
        known = ", ".join(sorted(INITIALIZERS))
        raise ShapeError(f"unknown initializer {name!r}; known: {known}") from None
    return scheme(shape, rng)
