"""Fully connected layer."""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.nn.layers.base import Layer


class DenseLayer(Layer):
    """Affine layer ``y = x . W^T + b`` over flattened activations."""

    kind = "dense"

    def __init__(
        self,
        in_features: int,
        out_features: int,
        name: str = "",
        rng: np.random.Generator | None = None,
    ):
        super().__init__(name)
        if in_features <= 0 or out_features <= 0:
            raise ShapeError(
                f"feature counts must be positive: {in_features}, {out_features}"
            )
        self.in_features = in_features
        self.out_features = out_features
        rng = rng or np.random.default_rng(0)
        scale = np.sqrt(2.0 / in_features)
        self.weights = (
            rng.standard_normal((out_features, in_features)) * scale
        ).astype(np.float32)
        self.bias = np.zeros(out_features, dtype=np.float32)
        self.d_weights = np.zeros_like(self.weights)
        self.d_bias = np.zeros_like(self.bias)
        self._cached_input: np.ndarray | None = None

    def params(self) -> dict[str, np.ndarray]:
        return {"weights": self.weights, "bias": self.bias}

    def grads(self) -> dict[str, np.ndarray]:
        return {"weights": self.d_weights, "bias": self.d_bias}

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        if input_shape != (self.in_features,):
            raise ShapeError(
                f"layer {self.name}: input shape {input_shape} != "
                f"({self.in_features},)"
            )
        return (self.out_features,)

    def forward(self, inputs: np.ndarray, training: bool = True) -> np.ndarray:
        if inputs.ndim != 2 or inputs.shape[1] != self.in_features:
            raise ShapeError(
                f"layer {self.name}: batch input shape {inputs.shape} != "
                f"(B, {self.in_features})"
            )
        if training:
            self._cached_input = inputs
        return inputs @ self.weights.T + self.bias

    def backward(self, out_error: np.ndarray) -> np.ndarray:
        if self._cached_input is None:
            raise ShapeError(f"layer {self.name}: backward before forward")
        if out_error.shape != (self._cached_input.shape[0], self.out_features):
            raise ShapeError(
                f"dense backward shape {out_error.shape} incompatible with "
                f"({self._cached_input.shape[0]}, {self.out_features})"
            )
        self.d_weights += out_error.T @ self._cached_input
        self.d_bias += out_error.sum(axis=0)
        return out_error @ self.weights
