"""The convolution layer, with pluggable execution engines.

This is where spg-CNN attaches: the layer's FP and BP computations are
delegated to :class:`repro.ops.engine.ConvEngine` instances that can be
swapped independently for each phase (``set_fp_engine`` /
``set_bp_engine``), exactly as the paper's framework deploys the fastest
technique per layer and per phase (Sec. 4.4).

The layer also measures the sparsity of the incoming error gradients on
every backward pass, which both reproduces Fig. 3b and drives the
autotuner's periodic BP re-selection.

When constructed with ``threads > 1`` the layer executes its engines
through a :class:`repro.runtime.parallel.ParallelExecutor` backed by one
shared :class:`repro.runtime.pool.WorkerPool`, so FP/BP genuinely run the
paper's image-level parallel schedule on real threads.

Every FP/BP pass emits a telemetry span (``<name>/fp``, ``<name>/bp``)
and the backward pass additionally records total/useful flop counters
and a measured goodput gauge (Eqs. 9-10) -- no-ops unless a collector is
active (see :mod:`repro.telemetry`).
"""

from __future__ import annotations

import time

import numpy as np

from repro import telemetry
from repro.core.convspec import ConvSpec
from repro.core.goodput import measure_sparsity, nonzero_conv_flops
from repro.errors import ShapeError
from repro.nn.layers.base import Layer
from repro.ops.engine import ConvEngine, make_engine
from repro.runtime.parallel import ParallelExecutor
from repro.runtime.pool import WorkerPool

# Engine modules register themselves on import.
import repro.ops.gemm_conv  # noqa: F401
import repro.ops.reference_engine  # noqa: F401
import repro.sparse.engine  # noqa: F401
import repro.stencil.engine  # noqa: F401

DEFAULT_FP_ENGINE = "gemm-in-parallel"
DEFAULT_BP_ENGINE = "gemm-in-parallel"


class ConvLayer(Layer):
    """2-D convolution with bias, padding handled internally."""

    kind = "conv"

    def __init__(
        self,
        spec: ConvSpec,
        name: str = "",
        fp_engine: str = DEFAULT_FP_ENGINE,
        bp_engine: str = DEFAULT_BP_ENGINE,
        num_cores: int = 1,
        threads: int | None = None,
        rng: np.random.Generator | None = None,
    ):
        super().__init__(name or spec.name or self.kind)
        self.spec = spec
        # Engines operate on the padded geometry.
        self.padded_spec = ConvSpec(
            nc=spec.nc,
            ny=spec.padded_ny,
            nx=spec.padded_nx,
            nf=spec.nf,
            fy=spec.fy,
            fx=spec.fx,
            sy=spec.sy,
            sx=spec.sx,
            pad=0,
            name=spec.name,
        )
        self.num_cores = num_cores
        self.threads = threads
        # One pool shared by the FP and BP executors; engines swapped by
        # the autotuner reuse it rather than spawning new threads.
        self._pool = WorkerPool(threads) if threads and threads > 1 else None
        rng = rng or np.random.default_rng(0)
        fan_in = spec.nc * spec.fy * spec.fx
        scale = np.sqrt(2.0 / fan_in)
        self.weights = (rng.standard_normal(spec.weight_shape) * scale).astype(np.float32)
        self.bias = np.zeros(spec.nf, dtype=np.float32)
        self.d_weights = np.zeros_like(self.weights)
        self.d_bias = np.zeros_like(self.bias)
        self._fp_engine = self._build_engine(fp_engine)
        self._bp_engine = self._build_engine(bp_engine)
        self._cached_padded_input: np.ndarray | None = None
        #: Sparsity of the most recent incoming error gradient.
        self.last_error_sparsity: float = 0.0

    # -- engine management ----------------------------------------------

    def _build_engine(self, engine_name: str) -> ConvEngine | ParallelExecutor:
        if self._pool is not None:
            return ParallelExecutor(
                engine_name, self.padded_spec, pool=self._pool,
                num_cores=self.num_cores,
            )
        return make_engine(engine_name, self.padded_spec, num_cores=self.num_cores)

    def close(self) -> None:
        """Shut down the layer's worker pool, if it runs threaded."""
        if self._pool is not None:
            self._pool.shutdown()

    @property
    def fp_engine_name(self) -> str:
        """Name of the engine currently serving forward propagation."""
        return self._fp_engine.name

    @property
    def bp_engine_name(self) -> str:
        """Name of the engine currently serving backward propagation."""
        return self._bp_engine.name

    def set_fp_engine(self, engine_name: str) -> None:
        """Swap the forward-propagation engine (spg-CNN deployment)."""
        self._fp_engine = self._build_engine(engine_name)

    def set_bp_engine(self, engine_name: str) -> None:
        """Swap the backward-propagation engine (spg-CNN deployment)."""
        self._bp_engine = self._build_engine(engine_name)

    # -- Layer interface -------------------------------------------------

    def params(self) -> dict[str, np.ndarray]:
        return {"weights": self.weights, "bias": self.bias}

    def grads(self) -> dict[str, np.ndarray]:
        return {"weights": self.d_weights, "bias": self.d_bias}

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        if tuple(input_shape) != self.spec.input_shape:
            raise ShapeError(
                f"layer {self.name}: input shape {input_shape} != "
                f"spec {self.spec.input_shape}"
            )
        return self.spec.output_shape

    def _pad_batch(self, inputs: np.ndarray) -> np.ndarray:
        if self.spec.pad == 0:
            return inputs
        p = self.spec.pad
        return np.pad(inputs, ((0, 0), (0, 0), (p, p), (p, p)))

    def forward(self, inputs: np.ndarray, training: bool = True) -> np.ndarray:
        if inputs.ndim != 4 or inputs.shape[1:] != self.spec.input_shape:
            raise ShapeError(
                f"layer {self.name}: batch input shape {inputs.shape} != "
                f"(B, *{self.spec.input_shape})"
            )
        padded = self._pad_batch(inputs)
        if training:
            self._cached_padded_input = padded
        with telemetry.span(f"{self.name}/fp", layer=self.name, phase="fp",
                            engine=self.fp_engine_name,
                            batch=int(inputs.shape[0])):
            out = self._fp_engine.forward(padded, self.weights)
            out += self.bias[None, :, None, None]
        return out

    def backward(self, out_error: np.ndarray) -> np.ndarray:
        if self._cached_padded_input is None:
            raise ShapeError(f"layer {self.name}: backward before forward")
        sparsity = measure_sparsity(out_error)
        self.last_error_sparsity = sparsity
        batch = int(out_error.shape[0])
        # EI + dW at the engine-facing (padded) geometry, dense count.
        total_flops = 2.0 * batch * self.padded_spec.flops
        useful_flops = nonzero_conv_flops(total_flops, sparsity)
        start = time.perf_counter()
        with telemetry.span(f"{self.name}/bp", layer=self.name, phase="bp",
                            engine=self.bp_engine_name, batch=batch,
                            sparsity=sparsity):
            self.d_weights += self._bp_engine.backward_weights(
                out_error, self._cached_padded_input
            )
            self.d_bias += out_error.sum(axis=(0, 2, 3))
            in_error_padded = self._bp_engine.backward_data(out_error, self.weights)
        elapsed = max(time.perf_counter() - start, 1e-9)
        telemetry.add("conv.flops.total", total_flops)
        telemetry.add("conv.flops.useful", useful_flops)
        telemetry.gauge(f"goodput.{self.name}", useful_flops / elapsed)
        telemetry.gauge(f"throughput.{self.name}", total_flops / elapsed)
        if self.spec.pad == 0:
            return in_error_padded
        p = self.spec.pad
        return in_error_padded[:, :, p:-p, p:-p]
