"""The convolution layer, with pluggable execution engines.

This is where spg-CNN attaches: the layer's FP and BP computations are
delegated to :class:`repro.ops.engine.ConvEngine` instances that can be
swapped independently for each phase (``set_fp_engine`` /
``set_bp_engine``), exactly as the paper's framework deploys the fastest
technique per layer and per phase (Sec. 4.4).

The layer also measures the sparsity of the incoming error gradients on
every backward pass, which both reproduces Fig. 3b and drives the
autotuner's periodic BP re-selection.

When constructed with ``threads > 1`` the layer executes its engines
through a :class:`repro.runtime.parallel.ParallelExecutor` backed by one
shared :class:`repro.runtime.pool.WorkerPool`, so FP/BP genuinely run the
paper's image-level parallel schedule on real threads.

Every FP/BP pass emits a telemetry span (``<name>/fp``, ``<name>/bp``)
and the backward pass additionally records total/useful flop counters
and a measured goodput gauge (Eqs. 9-10) -- no-ops unless a collector is
active (see :mod:`repro.telemetry`).

Every engine call runs behind a numeric guard: if a generated kernel
raises, returns the wrong shape, or produces non-finite values from
finite inputs, the engine is quarantined for this layer/phase (see
:mod:`repro.resilience.quarantine`), the pass is transparently re-run on
the dense reference path, and an ``engine.fallback`` telemetry event
records the degradation.  The autotuner consults the same quarantine
registry, so a benched kernel is never re-deployed onto the layer it
failed on.
"""

from __future__ import annotations

import time

import numpy as np

from repro import telemetry
from repro.core.convspec import ConvSpec
from repro.core.goodput import measure_sparsity, nonzero_conv_flops
from repro.core.plan import FALLBACK_ENGINE
from repro.errors import ShapeError
from repro.nn.layers.base import Layer
from repro.ops.engine import ConvEngine, make_engine
from repro.resilience import faults
from repro.resilience.quarantine import QuarantineRegistry, default_registry
from repro.runtime.parallel import ParallelExecutor
from repro.runtime.pool import WorkerPool

# Engine modules register themselves on import.
import repro.ops.gemm_conv  # noqa: F401
import repro.ops.reference_engine  # noqa: F401
import repro.sparse.engine  # noqa: F401
import repro.stencil.engine  # noqa: F401

DEFAULT_FP_ENGINE = "gemm-in-parallel"
DEFAULT_BP_ENGINE = "gemm-in-parallel"


class ConvLayer(Layer):
    """2-D convolution with bias, padding handled internally."""

    kind = "conv"

    def __init__(
        self,
        spec: ConvSpec,
        name: str = "",
        fp_engine: str = DEFAULT_FP_ENGINE,
        bp_engine: str = DEFAULT_BP_ENGINE,
        num_cores: int = 1,
        threads: int | None = None,
        backend: str = "thread",
        rng: np.random.Generator | None = None,
        quarantine: QuarantineRegistry | None = None,
    ):
        super().__init__(name or spec.name or self.kind)
        self.spec = spec
        # Engines operate on the padded geometry.
        self.padded_spec = ConvSpec(
            nc=spec.nc,
            ny=spec.padded_ny,
            nx=spec.padded_nx,
            nf=spec.nf,
            fy=spec.fy,
            fx=spec.fx,
            sy=spec.sy,
            sx=spec.sx,
            pad=0,
            name=spec.name,
        )
        self.num_cores = num_cores
        self.threads = threads
        self.backend = backend
        # One pool shared by the FP and BP executors; engines swapped by
        # the autotuner reuse it rather than spawning new workers.
        self._pool = self._build_pool()
        rng = rng or np.random.default_rng(0)
        fan_in = spec.nc * spec.fy * spec.fx
        scale = np.sqrt(2.0 / fan_in)
        self.weights = (rng.standard_normal(spec.weight_shape) * scale).astype(np.float32)
        self.bias = np.zeros(spec.nf, dtype=np.float32)
        self.d_weights = np.zeros_like(self.weights)
        self.d_bias = np.zeros_like(self.bias)
        self._quarantine = quarantine or default_registry()
        self._fp_engine = self._build_engine(fp_engine)
        self._bp_engine = self._build_engine(bp_engine)
        self._cached_padded_input: np.ndarray | None = None
        #: Sparsity of the most recent incoming error gradient.
        self.last_error_sparsity: float = 0.0

    # -- engine management ----------------------------------------------

    def _build_pool(self) -> WorkerPool | None:
        if self.threads and self.threads > 1:
            return WorkerPool(self.threads, backend=self.backend)
        return None

    def _build_engine(self, engine_name: str) -> ConvEngine | ParallelExecutor:
        # The reference fallback takes no tuning knobs.
        kwargs = {} if engine_name == FALLBACK_ENGINE else {"num_cores": self.num_cores}
        if self._pool is not None:
            return ParallelExecutor(
                engine_name, self.padded_spec, pool=self._pool, **kwargs
            )
        return make_engine(engine_name, self.padded_spec, **kwargs)

    @staticmethod
    def _retire_engine(engine: ConvEngine | ParallelExecutor | None) -> None:
        """Free a replaced engine's workspaces (shm segments, scratch)."""
        release = getattr(engine, "release_workspace", None)
        if release is not None:
            release()

    def set_backend(self, backend: str) -> None:
        """Switch the execution backend, rebuilding pool and engines.

        A no-op when the backend already matches.  Only meaningful for
        layers running with ``threads > 1``; single-threaded layers just
        record the choice (their engines run inline either way).
        """
        if backend == self.backend:
            return
        fp_name, bp_name = self.fp_engine_name, self.bp_engine_name
        self._retire_engine(self._fp_engine)
        self._retire_engine(self._bp_engine)
        if self._pool is not None:
            self._pool.shutdown()
        self.backend = backend
        self._pool = self._build_pool()
        self._fp_engine = self._build_engine(fp_name)
        self._bp_engine = self._build_engine(bp_name)

    def close(self) -> None:
        """Release engine workspaces and shut down the worker pool."""
        self._retire_engine(self._fp_engine)
        self._retire_engine(self._bp_engine)
        if self._pool is not None:
            self._pool.shutdown()

    @property
    def fp_engine_name(self) -> str:
        """Name of the engine currently serving forward propagation."""
        return self._fp_engine.name

    @property
    def bp_engine_name(self) -> str:
        """Name of the engine currently serving backward propagation."""
        return self._bp_engine.name

    def _admitted(self, phase: str, engine_name: str) -> str:
        """The engine to actually deploy: benched engines become fallback."""
        if (engine_name != FALLBACK_ENGINE
                and self._quarantine.is_quarantined(self.name, phase,
                                                    engine_name)):
            telemetry.event("engine.deploy_blocked", layer=self.name,
                            phase=phase, engine=engine_name)
            return FALLBACK_ENGINE
        return engine_name

    def set_fp_engine(self, engine_name: str) -> None:
        """Swap the forward-propagation engine (spg-CNN deployment)."""
        self._retire_engine(self._fp_engine)
        self._fp_engine = self._build_engine(self._admitted("fp", engine_name))

    def set_bp_engine(self, engine_name: str) -> None:
        """Swap the backward-propagation engine (spg-CNN deployment)."""
        self._retire_engine(self._bp_engine)
        self._bp_engine = self._build_engine(self._admitted("bp", engine_name))

    # -- guarded execution ------------------------------------------------

    def _expected_shape(self, method: str, batch: int) -> tuple[int, ...]:
        if method == "forward":
            return (batch,) + self.padded_spec.output_shape
        if method == "backward_data":
            return (batch,) + self.padded_spec.input_shape
        return self.padded_spec.weight_shape

    def _numeric_failure(self, method: str, batch: int,
                         out: np.ndarray) -> str | None:
        """Why the output fails the guard, or None when it is sound."""
        expected = self._expected_shape(method, batch)
        if not isinstance(out, np.ndarray) or tuple(out.shape) != expected:
            got = tuple(out.shape) if isinstance(out, np.ndarray) else type(out)
            return f"{method} returned shape {got}, expected {expected}"
        if not np.isfinite(out).all():
            return f"{method} produced non-finite values"
        return None

    def _degrade(self, phase: str, engine_name: str, reason: str) -> None:
        """Quarantine a misbehaving engine and deploy the fallback."""
        self._quarantine.quarantine(self.name, phase, engine_name,
                                    reason=reason)
        telemetry.add("engine.fallbacks", 1)
        telemetry.event("engine.fallback", layer=self.name, phase=phase,
                        engine=engine_name, reason=reason)
        fallback = self._build_engine(FALLBACK_ENGINE)
        if phase == "fp":
            self._retire_engine(self._fp_engine)
            self._fp_engine = fallback
        else:
            self._retire_engine(self._bp_engine)
            self._bp_engine = fallback

    def _run_engine(self, phase: str, method: str, primary: np.ndarray,
                    shared: np.ndarray) -> np.ndarray:
        """One engine call behind the numeric guard and fault site.

        A raising engine, a wrong-shape result, or non-finite output from
        finite inputs quarantines the engine and re-runs the call on the
        reference fallback.  Non-finite *inputs* are passed through -- the
        engine is not at fault for poison it was fed, and upstream guards
        (the SGD NaN-batch skip) own that case.
        """
        engine = self._fp_engine if phase == "fp" else self._bp_engine
        if engine.name == FALLBACK_ENGINE:
            return getattr(engine, method)(primary, shared)
        batch = int(primary.shape[0])
        try:
            faults.perturb(f"engine.{phase}", layer=self.name,
                           engine=engine.name, method=method)
            out = getattr(engine, method)(primary, shared)
            failure = self._numeric_failure(method, batch, out)
            if failure is None:
                return out
            if not (np.isfinite(primary).all() and np.isfinite(shared).all()):
                return out  # poisoned inputs: not the engine's fault
        except Exception as error:  # noqa: BLE001 -- any engine failure degrades
            failure = f"{type(error).__name__}: {error}"
        self._degrade(phase, engine.name, failure)
        fallback = self._fp_engine if phase == "fp" else self._bp_engine
        return getattr(fallback, method)(primary, shared)

    # -- Layer interface -------------------------------------------------

    def params(self) -> dict[str, np.ndarray]:
        return {"weights": self.weights, "bias": self.bias}

    def grads(self) -> dict[str, np.ndarray]:
        return {"weights": self.d_weights, "bias": self.d_bias}

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        if tuple(input_shape) != self.spec.input_shape:
            raise ShapeError(
                f"layer {self.name}: input shape {input_shape} != "
                f"spec {self.spec.input_shape}"
            )
        return self.spec.output_shape

    def _pad_batch(self, inputs: np.ndarray) -> np.ndarray:
        if self.spec.pad == 0:
            return inputs
        p = self.spec.pad
        return np.pad(inputs, ((0, 0), (0, 0), (p, p), (p, p)))

    def forward(self, inputs: np.ndarray, training: bool = True) -> np.ndarray:
        if inputs.ndim != 4 or inputs.shape[1:] != self.spec.input_shape:
            raise ShapeError(
                f"layer {self.name}: batch input shape {inputs.shape} != "
                f"(B, *{self.spec.input_shape})"
            )
        padded = self._pad_batch(inputs)
        if training:
            self._cached_padded_input = padded
        with telemetry.span(f"{self.name}/fp", layer=self.name, phase="fp",
                            engine=self.fp_engine_name,
                            batch=int(inputs.shape[0])):
            out = self._run_engine("fp", "forward", padded, self.weights)
            out += self.bias[None, :, None, None]
        return out

    def backward(self, out_error: np.ndarray) -> np.ndarray:
        if self._cached_padded_input is None:
            raise ShapeError(f"layer {self.name}: backward before forward")
        sparsity = measure_sparsity(out_error)
        self.last_error_sparsity = sparsity
        batch = int(out_error.shape[0])
        # EI + dW at the engine-facing (padded) geometry, dense count.
        total_flops = 2.0 * batch * self.padded_spec.flops
        useful_flops = nonzero_conv_flops(total_flops, sparsity)
        start = time.perf_counter()
        with telemetry.span(f"{self.name}/bp", layer=self.name, phase="bp",
                            engine=self.bp_engine_name, batch=batch,
                            sparsity=sparsity):
            self.d_weights += self._run_engine(
                "bp", "backward_weights", out_error, self._cached_padded_input
            )
            self.d_bias += out_error.sum(axis=(0, 2, 3))
            in_error_padded = self._run_engine(
                "bp", "backward_data", out_error, self.weights
            )
        elapsed = max(time.perf_counter() - start, 1e-9)
        telemetry.add("conv.flops.total", total_flops)
        telemetry.add("conv.flops.useful", useful_flops)
        telemetry.gauge(f"goodput.{self.name}", useful_flops / elapsed)
        telemetry.gauge(f"throughput.{self.name}", total_flops / elapsed)
        if self.spec.pad == 0:
            return in_error_padded
        p = self.spec.pad
        return in_error_padded[:, :, p:-p, p:-p]
