"""Max-pooling layer.

Besides down-sampling, max pooling is one of the two mechanisms (with
ReLU) that make back-propagated error gradients sparse: each pooling
window routes its entire gradient to the single position that won the
max, zeroing the rest -- the effect behind the paper's Fig. 3b sparsity
measurements.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.nn.layers.base import Layer


class MaxPoolLayer(Layer):
    """Non-overlapping-or-strided max pooling over ``[B, C, Y, X]``."""

    kind = "maxpool"

    def __init__(self, kernel: int, stride: int | None = None, name: str = ""):
        super().__init__(name)
        if kernel <= 0:
            raise ShapeError(f"pool kernel must be positive, got {kernel}")
        self.kernel = kernel
        self.stride = stride or kernel
        if self.stride <= 0:
            raise ShapeError(f"pool stride must be positive, got {self.stride}")
        self._cached_input_shape: tuple[int, ...] | None = None
        self._cached_argmax: np.ndarray | None = None

    def _out_extent(self, extent: int) -> int:
        if extent < self.kernel:
            raise ShapeError(
                f"pool kernel {self.kernel} larger than input extent {extent}"
            )
        return (extent - self.kernel) // self.stride + 1

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        c, y, x = input_shape
        return (c, self._out_extent(y), self._out_extent(x))

    def _window_view(self, inputs: np.ndarray) -> np.ndarray:
        b, c, y, x = inputs.shape
        oy, ox = self._out_extent(y), self._out_extent(x)
        bs, cs, ys, xs = inputs.strides
        shape = (b, c, oy, ox, self.kernel, self.kernel)
        strides = (bs, cs, ys * self.stride, xs * self.stride, ys, xs)
        return np.lib.stride_tricks.as_strided(inputs, shape=shape, strides=strides)

    def forward(self, inputs: np.ndarray, training: bool = True) -> np.ndarray:
        if inputs.ndim != 4:
            raise ShapeError(f"expected [B, C, Y, X] input, got {inputs.shape}")
        windows = self._window_view(inputs)
        b, c, oy, ox = windows.shape[:4]
        flat = windows.reshape(b, c, oy, ox, -1)
        argmax = flat.argmax(axis=-1)
        out = np.take_along_axis(flat, argmax[..., None], axis=-1)[..., 0]
        if training:
            self._cached_input_shape = inputs.shape
            self._cached_argmax = argmax
        return out

    def backward(self, out_error: np.ndarray) -> np.ndarray:
        if self._cached_argmax is None or self._cached_input_shape is None:
            raise ShapeError(f"layer {self.name}: backward before forward")
        b, c, y, x = self._cached_input_shape
        argmax = self._cached_argmax
        oy, ox = argmax.shape[2:]
        if out_error.shape != (b, c, oy, ox):
            raise ShapeError(
                f"pool backward shape {out_error.shape} != {(b, c, oy, ox)}"
            )
        in_error = np.zeros(self._cached_input_shape, dtype=out_error.dtype)
        ky, kx = np.divmod(argmax, self.kernel)
        bi, ci, yi, xi = np.indices((b, c, oy, ox), sparse=False)
        np.add.at(
            in_error,
            (bi, ci, yi * self.stride + ky, xi * self.stride + kx),
            out_error,
        )
        return in_error
