"""Additional layers of the AlexNet-era networks the paper benchmarks.

AlexNet (the paper's ImageNet-1K benchmark) interleaves its convolutions
with local response normalization, and the CIFAR-10 reference models use
dropout; average pooling rounds out the pooling family.  These layers
make the zoo's trainable variants structurally faithful to the original
networks.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.nn.layers.base import Layer


class AvgPoolLayer(Layer):
    """Average pooling over ``[B, C, Y, X]``."""

    kind = "avgpool"

    def __init__(self, kernel: int, stride: int | None = None, name: str = ""):
        super().__init__(name)
        if kernel <= 0:
            raise ShapeError(f"pool kernel must be positive, got {kernel}")
        self.kernel = kernel
        self.stride = stride or kernel
        if self.stride <= 0:
            raise ShapeError(f"pool stride must be positive, got {self.stride}")
        self._cached_input_shape: tuple[int, ...] | None = None

    def _out_extent(self, extent: int) -> int:
        if extent < self.kernel:
            raise ShapeError(
                f"pool kernel {self.kernel} larger than input extent {extent}"
            )
        return (extent - self.kernel) // self.stride + 1

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        c, y, x = input_shape
        return (c, self._out_extent(y), self._out_extent(x))

    def forward(self, inputs: np.ndarray, training: bool = True) -> np.ndarray:
        if inputs.ndim != 4:
            raise ShapeError(f"expected [B, C, Y, X] input, got {inputs.shape}")
        b, c, y, x = inputs.shape
        oy, ox = self._out_extent(y), self._out_extent(x)
        bs, cs, ys, xs = inputs.strides
        windows = np.lib.stride_tricks.as_strided(
            inputs,
            shape=(b, c, oy, ox, self.kernel, self.kernel),
            strides=(bs, cs, ys * self.stride, xs * self.stride, ys, xs),
        )
        if training:
            self._cached_input_shape = inputs.shape
        return windows.mean(axis=(4, 5)).astype(inputs.dtype, copy=False)

    def backward(self, out_error: np.ndarray) -> np.ndarray:
        if self._cached_input_shape is None:
            raise ShapeError(f"layer {self.name}: backward before forward")
        b, c, y, x = self._cached_input_shape
        oy, ox = out_error.shape[2:]
        share = out_error / (self.kernel * self.kernel)
        in_error = np.zeros(self._cached_input_shape, dtype=out_error.dtype)
        for ky in range(self.kernel):
            for kx in range(self.kernel):
                ys = slice(ky, ky + (oy - 1) * self.stride + 1, self.stride)
                xs = slice(kx, kx + (ox - 1) * self.stride + 1, self.stride)
                in_error[:, :, ys, xs] += share
        return in_error


class LocalResponseNormLayer(Layer):
    """AlexNet's cross-channel local response normalization.

    ``out[c] = in[c] / (k + alpha/n * sum_{c'} in[c']^2) ** beta`` with the
    sum over a window of ``n`` adjacent channels.
    """

    kind = "lrn"

    def __init__(self, size: int = 5, alpha: float = 1e-4, beta: float = 0.75,
                 k: float = 2.0, name: str = ""):
        super().__init__(name)
        if size <= 0 or size % 2 == 0:
            raise ShapeError(f"LRN size must be a positive odd int, got {size}")
        if alpha <= 0 or beta <= 0 or k <= 0:
            raise ShapeError("LRN alpha, beta and k must be positive")
        self.size = size
        self.alpha = alpha
        self.beta = beta
        self.k = k
        self._cached: tuple[np.ndarray, np.ndarray] | None = None

    def _window_sums(self, squares: np.ndarray) -> np.ndarray:
        half = self.size // 2
        c = squares.shape[1]
        padded = np.pad(squares, ((0, 0), (half, half), (0, 0), (0, 0)))
        cumsum = np.concatenate(
            [np.zeros_like(padded[:, :1]), np.cumsum(padded, axis=1)], axis=1
        )
        return cumsum[:, self.size : self.size + c] - cumsum[:, :c]

    def forward(self, inputs: np.ndarray, training: bool = True) -> np.ndarray:
        if inputs.ndim != 4:
            raise ShapeError(f"expected [B, C, Y, X] input, got {inputs.shape}")
        sums = self._window_sums(inputs.astype(np.float64) ** 2)
        scale = self.k + (self.alpha / self.size) * sums
        out = inputs * (scale ** -self.beta)
        if training:
            self._cached = (inputs, scale)
        return out.astype(inputs.dtype, copy=False)

    def backward(self, out_error: np.ndarray) -> np.ndarray:
        if self._cached is None:
            raise ShapeError(f"layer {self.name}: backward before forward")
        inputs, scale = self._cached
        if out_error.shape != inputs.shape:
            raise ShapeError(
                f"LRN backward shape {out_error.shape} != {inputs.shape}"
            )
        # d out[c]/d in[c'] = scale^-beta * delta(c,c')
        #   - 2*alpha*beta/n * in[c] * in[c'] * scale^-(beta+1)  (c' in window)
        direct = out_error * (scale ** -self.beta)
        weighted = out_error * inputs * (scale ** -(self.beta + 1.0))
        window = self._window_sums(weighted)
        coupling = (2.0 * self.alpha * self.beta / self.size) * inputs * window
        return (direct - coupling).astype(out_error.dtype, copy=False)


class DropoutLayer(Layer):
    """Inverted dropout: active in training, identity at inference."""

    kind = "dropout"

    def __init__(self, rate: float = 0.5, name: str = "", seed: int = 0):
        super().__init__(name)
        if not 0.0 <= rate < 1.0:
            raise ShapeError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = np.random.default_rng(seed)
        self._cached_mask: np.ndarray | None = None

    def forward(self, inputs: np.ndarray, training: bool = True) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._cached_mask = None
            return inputs
        keep = 1.0 - self.rate
        mask = (self._rng.random(inputs.shape) < keep) / keep
        self._cached_mask = mask.astype(inputs.dtype)
        return inputs * self._cached_mask

    def backward(self, out_error: np.ndarray) -> np.ndarray:
        if self._cached_mask is None:
            # Forward ran in inference mode or with rate 0: identity.
            return out_error
        if out_error.shape != self._cached_mask.shape:
            raise ShapeError(
                f"dropout backward shape {out_error.shape} != "
                f"{self._cached_mask.shape}"
            )
        return out_error * self._cached_mask
