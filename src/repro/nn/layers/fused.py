"""The fused conv+ReLU+max-pool layer (schedulable loop IR payoff).

Georganas et al.'s anatomy of SIMD convolutions prescribes operator
fusion as the single biggest memory-traffic win: conv, ReLU and pooling
emitted as *one* kernel mean the full-size activation and pre-pool
tensors never reach memory.  This layer executes exactly that kernel --
the ``fuse`` schedule pass applied to the conv+ReLU+pool nest
(:func:`repro.stencil.loopir.fused_fp_nest`) and emitted by
:func:`repro.stencil.emit.emit_fused_forward_kernel`.

Bit-exactness contract: the fused forward is bitwise identical to the
unfused chain ``ConvLayer(stencil FP) -> ReLULayer -> MaxPoolLayer``,
because the emission accumulates the same taps in the same order over
row blocks (spatial blocking of the accumulating ``np.tensordot`` is
bit-exact) and reduces pool windows with the same strided-view /
``argmax`` / ``take_along_axis`` sequence as ``MaxPoolLayer``.

Training caches shrink accordingly: the unfused chain keeps the padded
input, the ReLU mask (activation-sized) and the pool argmax; the fused
layer keeps only the padded input, the *pooled* output and the argmax --
the ReLU mask at each window's argmax is recoverable as ``out > 0``, so
the backward pass is also bit-identical (masking the pooled error before
the scatter equals masking the scattered error after it).

The backward convolution reuses the standard engine machinery (stencil
kernels by default, behind a :class:`~repro.runtime.parallel.
ParallelExecutor` when the layer runs on a worker pool), so the fused
layer executes on all three backends -- serial, thread, process -- with
the forward batch partitioned over workers via ``map_batches``.
"""

from __future__ import annotations

import functools

import numpy as np

from repro import telemetry
from repro.core.convspec import ConvSpec
from repro.core.goodput import measure_sparsity
from repro.errors import ShapeError
from repro.nn.layers.base import Layer
from repro.nn.layers.conv import ConvLayer
from repro.nn.layers.pool import MaxPoolLayer
from repro.ops.engine import ConvEngine, make_engine
from repro.runtime.parallel import ParallelExecutor
from repro.runtime.pool import WorkerPool
from repro.stencil.emit import emit_fused_forward_kernel
from repro.stencil.loopir import PoolWindow, chain_estimate, estimate_nest
from repro.stencil.passes import SchedulePipeline, default_pipeline

# Engine modules register themselves on import.
import repro.ops.reference_engine  # noqa: F401
import repro.stencil.engine  # noqa: F401

DEFAULT_BP_ENGINE = "stencil"


def _fused_forward_range(
    spec: ConvSpec,
    pool_kernel: int,
    pool_stride: int,
    pipeline: SchedulePipeline | None,
    inputs: np.ndarray,
    weights: np.ndarray,
    bias: np.ndarray,
    lo: int,
    hi: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Run the fused kernel over images ``[lo, hi)`` (picklable for spawn).

    The emitter's lru cache makes the per-worker kernel lookup free after
    the first call, and codegen determinism guarantees every process
    worker compiles the identical kernel.
    """
    kernel = emit_fused_forward_kernel(spec, pool_kernel, pool_stride, pipeline)
    pool = PoolWindow(pool_kernel, pool_stride)
    py = pool.out_extent(spec.out_ny)
    px = pool.out_extent(spec.out_nx)
    out = np.zeros((hi - lo, spec.nf, py, px), dtype=inputs.dtype)
    argmax = np.zeros((hi - lo, spec.nf, py, px), dtype=np.int64)
    for i in range(lo, hi):
        kernel(inputs[i], weights, bias, out[i - lo], argmax[i - lo])
    return out, argmax


class FusedConvReluPool(Layer):
    """Conv + ReLU + max-pool executed as one generated kernel."""

    kind = "fused-conv-relu-pool"

    def __init__(
        self,
        spec: ConvSpec,
        pool_kernel: int,
        pool_stride: int | None = None,
        name: str = "",
        bp_engine: str = DEFAULT_BP_ENGINE,
        num_cores: int = 1,
        threads: int | None = None,
        backend: str = "thread",
        rng: np.random.Generator | None = None,
        pipeline: SchedulePipeline | None = None,
    ):
        super().__init__(name or spec.name or self.kind)
        self.spec = spec
        self.padded_spec = ConvSpec(
            nc=spec.nc,
            ny=spec.padded_ny,
            nx=spec.padded_nx,
            nf=spec.nf,
            fy=spec.fy,
            fx=spec.fx,
            sy=spec.sy,
            sx=spec.sx,
            pad=0,
            name=spec.name,
        )
        self.pool = PoolWindow(pool_kernel, pool_stride or pool_kernel)
        self.pool_ny = self.pool.out_extent(self.padded_spec.out_ny)
        self.pool_nx = self.pool.out_extent(self.padded_spec.out_nx)
        self.num_cores = num_cores
        self.threads = threads
        self.backend = backend
        self.pipeline = pipeline or default_pipeline(
            "fused_fp",
            pool_kernel=self.pool.kernel,
            pool_stride=self.pool.stride,
        )
        # Emit eagerly: a schedule outside the fusion envelope fails at
        # construction, not mid-epoch.
        emit_fused_forward_kernel(
            self.padded_spec, self.pool.kernel, self.pool.stride, self.pipeline
        )
        self._pool_workers: WorkerPool | None = None
        if threads and threads > 1:
            self._pool_workers = WorkerPool(threads, backend=backend)
        rng = rng or np.random.default_rng(0)
        fan_in = spec.nc * spec.fy * spec.fx
        scale = np.sqrt(2.0 / fan_in)
        self.weights = (rng.standard_normal(spec.weight_shape) * scale).astype(
            np.float32
        )
        self.bias = np.zeros(spec.nf, dtype=np.float32)
        self.d_weights = np.zeros_like(self.weights)
        self.d_bias = np.zeros_like(self.bias)
        self._bp_engine = self._build_bp_engine(bp_engine)
        self._cached_padded_input: np.ndarray | None = None
        self._cached_out: np.ndarray | None = None
        self._cached_argmax: np.ndarray | None = None
        self.last_error_sparsity: float = 0.0

    # -- engine management ----------------------------------------------

    def _build_bp_engine(self, engine_name: str) -> ConvEngine | ParallelExecutor:
        kwargs = {"num_cores": self.num_cores}
        if engine_name == "reference":
            kwargs = {}
        if self._pool_workers is not None:
            return ParallelExecutor(
                engine_name, self.padded_spec, pool=self._pool_workers, **kwargs
            )
        return make_engine(engine_name, self.padded_spec, **kwargs)

    @property
    def bp_engine_name(self) -> str:
        """Name of the engine serving the backward convolution."""
        return self._bp_engine.name

    def close(self) -> None:
        """Release engine workspaces and shut down the worker pool."""
        release = getattr(self._bp_engine, "release_workspace", None)
        if release is not None:
            release()
        if self._pool_workers is not None:
            self._pool_workers.shutdown()

    # -- traffic accounting ----------------------------------------------

    def work_estimates(self) -> dict[str, object]:
        """Fused vs unfused-chain work estimates (per image).

        The fused estimate must show strictly lower private+shared
        traffic than the chain -- that is the machine-model payoff the
        autotuner prices when it considers the fused schedule.
        """
        fused = estimate_nest(self.pipeline.build_nest(self.padded_spec))
        chain = chain_estimate(
            self.padded_spec, self.pool.kernel, self.pool.stride
        )
        return {"fused": fused, "chain": chain}

    # -- Layer interface --------------------------------------------------

    def params(self) -> dict[str, np.ndarray]:
        return {"weights": self.weights, "bias": self.bias}

    def grads(self) -> dict[str, np.ndarray]:
        return {"weights": self.d_weights, "bias": self.d_bias}

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        if tuple(input_shape) != self.spec.input_shape:
            raise ShapeError(
                f"layer {self.name}: input shape {input_shape} != "
                f"spec {self.spec.input_shape}"
            )
        return (self.spec.nf, self.pool_ny, self.pool_nx)

    def _pad_batch(self, inputs: np.ndarray) -> np.ndarray:
        if self.spec.pad == 0:
            return inputs
        p = self.spec.pad
        return np.pad(inputs, ((0, 0), (0, 0), (p, p), (p, p)))

    def _run_fused(self, padded: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        batch = padded.shape[0]
        task = functools.partial(
            _fused_forward_range,
            self.padded_spec,
            self.pool.kernel,
            self.pool.stride,
            self.pipeline,
            padded,
            self.weights,
            self.bias,
        )
        if self._pool_workers is None:
            return task(0, batch)
        chunks = self._pool_workers.map_batches(task, batch)
        out = np.concatenate([c[0] for c in chunks], axis=0)
        argmax = np.concatenate([c[1] for c in chunks], axis=0)
        return out, argmax

    def forward(self, inputs: np.ndarray, training: bool = True) -> np.ndarray:
        if inputs.ndim != 4 or inputs.shape[1:] != self.spec.input_shape:
            raise ShapeError(
                f"layer {self.name}: batch input shape {inputs.shape} != "
                f"(B, *{self.spec.input_shape})"
            )
        padded = self._pad_batch(inputs)
        with telemetry.span(f"{self.name}/fp", layer=self.name, phase="fp",
                            engine="fused-stencil",
                            batch=int(inputs.shape[0])):
            out, argmax = self._run_fused(padded)
        if training:
            self._cached_padded_input = padded
            self._cached_out = out
            self._cached_argmax = argmax
        return out

    def backward(self, out_error: np.ndarray) -> np.ndarray:
        if (self._cached_padded_input is None or self._cached_out is None
                or self._cached_argmax is None):
            raise ShapeError(f"layer {self.name}: backward before forward")
        expected = self._cached_out.shape
        if out_error.shape != expected:
            raise ShapeError(
                f"layer {self.name}: backward shape {out_error.shape} != "
                f"{expected}"
            )
        self.last_error_sparsity = measure_sparsity(out_error)
        batch = int(out_error.shape[0])
        with telemetry.span(f"{self.name}/bp", layer=self.name, phase="bp",
                            engine=self.bp_engine_name, batch=batch):
            # ReLU mask at each window's argmax == pooled output > 0, so
            # premasking the pooled error before the argmax scatter is
            # bit-identical to the chain's scatter-then-mask.
            masked = np.where(self._cached_out > 0, out_error, 0).astype(
                out_error.dtype, copy=False
            )
            conv_error = np.zeros(
                (batch,) + self.padded_spec.output_shape, dtype=out_error.dtype
            )
            ky, kx = np.divmod(self._cached_argmax, self.pool.kernel)
            bi, ci, yi, xi = np.indices(masked.shape, sparse=False)
            np.add.at(
                conv_error,
                (bi, ci, yi * self.pool.stride + ky,
                 xi * self.pool.stride + kx),
                masked,
            )
            self.d_weights += self._bp_engine.backward_weights(
                conv_error, self._cached_padded_input
            )
            self.d_bias += conv_error.sum(axis=(0, 2, 3))
            in_error_padded = self._bp_engine.backward_data(
                conv_error, self.weights
            )
        if self.spec.pad == 0:
            return in_error_padded
        p = self.spec.pad
        return in_error_padded[:, :, p:-p, p:-p]


def fuse_conv_relu_pool(
    conv: ConvLayer,
    pool: MaxPoolLayer,
    name: str = "",
    pipeline: SchedulePipeline | None = None,
) -> FusedConvReluPool:
    """Build the fused layer equivalent to ``conv -> ReLU -> pool``.

    Copies the conv layer's parameters (weights, bias) so the fused
    layer's forward is bitwise comparable against the unfused chain.
    The conv layer's pool geometry (threads/backend) is carried over.
    """
    fused = FusedConvReluPool(
        conv.spec,
        pool_kernel=pool.kernel,
        pool_stride=pool.stride,
        name=name or f"{conv.name}+relu+pool",
        num_cores=conv.num_cores,
        threads=conv.threads,
        backend=conv.backend,
        pipeline=pipeline,
    )
    fused.weights = conv.weights.copy()
    fused.bias = conv.bias.copy()
    fused.d_weights = np.zeros_like(fused.weights)
    fused.d_bias = np.zeros_like(fused.bias)
    return fused
