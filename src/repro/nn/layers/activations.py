"""Activation layers.

ReLU is the second source of error-gradient sparsity (with max pooling):
the gradient is zeroed wherever the forward activation was clamped, so as
training progresses and activations polarize, back-propagated errors grow
sparser -- the dynamic the paper measures in Fig. 3b and exploits with
the sparse kernels.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.nn.layers.base import Layer


class ReLULayer(Layer):
    """Elementwise ``max(0, x)``."""

    kind = "relu"

    def __init__(self, name: str = ""):
        super().__init__(name)
        self._cached_mask: np.ndarray | None = None

    def forward(self, inputs: np.ndarray, training: bool = True) -> np.ndarray:
        mask = inputs > 0
        if training:
            self._cached_mask = mask
        return np.where(mask, inputs, 0).astype(inputs.dtype, copy=False)

    def backward(self, out_error: np.ndarray) -> np.ndarray:
        if self._cached_mask is None:
            raise ShapeError(f"layer {self.name}: backward before forward")
        if out_error.shape != self._cached_mask.shape:
            raise ShapeError(
                f"relu backward shape {out_error.shape} != "
                f"{self._cached_mask.shape}"
            )
        return np.where(self._cached_mask, out_error, 0).astype(
            out_error.dtype, copy=False
        )


class FlattenLayer(Layer):
    """Flatten per-image activations to vectors for fully connected layers."""

    kind = "flatten"

    def __init__(self, name: str = ""):
        super().__init__(name)
        self._cached_shape: tuple[int, ...] | None = None

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        size = 1
        for extent in input_shape:
            size *= extent
        return (size,)

    def forward(self, inputs: np.ndarray, training: bool = True) -> np.ndarray:
        if training:
            self._cached_shape = inputs.shape
        return inputs.reshape(inputs.shape[0], -1)

    def backward(self, out_error: np.ndarray) -> np.ndarray:
        if self._cached_shape is None:
            raise ShapeError(f"layer {self.name}: backward before forward")
        return out_error.reshape(self._cached_shape)
