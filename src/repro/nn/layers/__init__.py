"""Layer implementations."""

from repro.nn.layers.activations import FlattenLayer, ReLULayer
from repro.nn.layers.base import Layer
from repro.nn.layers.conv import ConvLayer
from repro.nn.layers.dense import DenseLayer
from repro.nn.layers.fused import FusedConvReluPool, fuse_conv_relu_pool
from repro.nn.layers.pool import MaxPoolLayer

__all__ = [
    "Layer",
    "ConvLayer",
    "MaxPoolLayer",
    "ReLULayer",
    "FlattenLayer",
    "DenseLayer",
    "FusedConvReluPool",
    "fuse_conv_relu_pool",
]
