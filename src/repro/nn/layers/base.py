"""Layer base class of the training framework.

Layers consume and produce batched activations (leading batch dimension)
and cache whatever forward state their backward pass needs.  Parameters
and gradients are exposed as name->array dictionaries so the SGD trainer
can update any layer uniformly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


class Layer(ABC):
    """One stage of the network's forward/backward computation."""

    #: Human-readable layer-type name; subclasses override.
    kind = "layer"

    def __init__(self, name: str = ""):
        self.name = name or self.kind

    @abstractmethod
    def forward(self, inputs: np.ndarray, training: bool = True) -> np.ndarray:
        """Compute the layer's output activations for a batch."""

    @abstractmethod
    def backward(self, out_error: np.ndarray) -> np.ndarray:
        """Back-propagate the output error; accumulate parameter gradients.

        Must be called after :meth:`forward` with ``training=True`` so the
        cached activations are available.
        """

    def params(self) -> dict[str, np.ndarray]:
        """Trainable parameter arrays, by name.  Default: none."""
        return {}

    def grads(self) -> dict[str, np.ndarray]:
        """Gradient arrays matching :meth:`params` keys.  Default: none."""
        return {}

    def zero_grads(self) -> None:
        """Reset accumulated gradients to zero before a new batch."""
        for g in self.grads().values():
            g[...] = 0.0

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        """Per-image output shape given the per-image input shape.

        Shape-preserving layers inherit this default.
        """
        return input_shape

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
