"""The CNN training stack: layers, networks, SGD and the model zoo."""

from repro.nn.netdef import build_network, network_from_text, parse_netdef
from repro.nn.network import Network
from repro.nn.sgd import SGDTrainer

__all__ = [
    "Network",
    "SGDTrainer",
    "build_network",
    "network_from_text",
    "parse_netdef",
]
