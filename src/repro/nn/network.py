"""The network container: a stack of layers trained with SGD."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import ShapeError
from repro.nn.layers.base import Layer
from repro.nn.layers.conv import ConvLayer


class Network:
    """An ordered stack of layers with a classification head."""

    def __init__(self, layers: list[Layer], input_shape: tuple[int, ...],
                 name: str = "network"):
        if not layers:
            raise ShapeError("a network needs at least one layer")
        self.layers = list(layers)
        self.input_shape = tuple(input_shape)
        self.name = name
        #: Step-execution strategy: ``"barrier"`` fork/joins per layer
        #: and phase; ``"dag"`` compiles each pass into a task graph
        #: (see :mod:`repro.runtime.dag`).  Both are bit-identical.
        self.scheduler = "barrier"
        self._dag_runner = None
        # Validate the shape chain eagerly so misconfigured nets fail fast.
        self.layer_shapes = [self.input_shape]
        shape = self.input_shape
        for layer in self.layers:
            shape = layer.output_shape(shape)
            self.layer_shapes.append(tuple(shape))

    @property
    def output_shape(self) -> tuple[int, ...]:
        """Per-image shape of the final layer's output."""
        return self.layer_shapes[-1]

    def conv_layers(self) -> list[ConvLayer]:
        """The convolution layers, in order (spg-CNN's optimization targets)."""
        return [layer for layer in self.layers if isinstance(layer, ConvLayer)]

    def set_scheduler(self, scheduler: str) -> None:
        """Select the step-execution strategy (``"barrier"`` or ``"dag"``)."""
        from repro.runtime.dag import validate_scheduler

        self.scheduler = validate_scheduler(scheduler)

    def _dag(self):
        """The cached DAG runner, rebuilt when the pool width changed."""
        from repro.runtime.dag import NetworkDagRunner, dag_worker_count

        runner = self._dag_runner
        want = dag_worker_count(self)
        if runner is None or runner.scheduler.num_workers != want:
            runner = NetworkDagRunner(self, num_workers=want)
            self._dag_runner = runner
        return runner

    def forward(self, inputs: np.ndarray, training: bool = True) -> np.ndarray:
        """Run FP through every layer."""
        if self.scheduler == "dag":
            return self._dag().forward(inputs, training=training)
        if inputs.shape[1:] != self.input_shape:
            raise ShapeError(
                f"batch input shape {inputs.shape} != (B, *{self.input_shape})"
            )
        activations = inputs
        for layer in self.layers:
            activations = layer.forward(activations, training=training)
        return activations

    def backward(self, out_error: np.ndarray) -> np.ndarray:
        """Run BP through every layer in reverse; returns the input error."""
        if self.scheduler == "dag":
            return self._dag().backward(out_error)
        error = out_error
        for layer in reversed(self.layers):
            error = layer.backward(error)
        return error

    def zero_grads(self) -> None:
        """Clear accumulated gradients on every layer."""
        for layer in self.layers:
            layer.zero_grads()

    def parameters(self) -> Iterator[tuple[str, np.ndarray, np.ndarray]]:
        """Yield ``(qualified_name, param, grad)`` triples for the trainer."""
        for i, layer in enumerate(self.layers):
            params = layer.params()
            grads = layer.grads()
            for key, value in params.items():
                yield f"{i}.{layer.name}.{key}", value, grads[key]

    def num_parameters(self) -> int:
        """Total trainable scalar parameters."""
        return sum(p.size for _, p, _ in self.parameters())

    def error_sparsities(self) -> dict[str, float]:
        """Last measured error-gradient sparsity of each conv layer."""
        return {layer.name: layer.last_error_sparsity for layer in self.conv_layers()}

    def describe(self) -> str:
        """Multi-line structural summary."""
        lines = [f"{self.name}: input {self.input_shape}"]
        for layer, shape in zip(self.layers, self.layer_shapes[1:]):
            lines.append(f"  {layer.kind:<8s} {layer.name:<20s} -> {shape}")
        lines.append(f"  parameters: {self.num_parameters():,}")
        return "\n".join(lines)
