"""Cross-process telemetry: per-worker shared-memory rings + merge.

The process backend (:mod:`repro.runtime.backends`) runs the hot FP/BP
kernels inside persistent spawned worker processes.  The parent-side
collector (:mod:`repro.telemetry.collector`) cannot see into them: a
collector object pickled into a spawned worker is a dead copy, and the
goodput attribution the paper's Sec. 5 argues from -- where *worker*
time actually goes -- needs exactly those in-worker measurements.

This module is the bridge:

* :class:`TelemetryRing` -- one lock-free single-producer /
  single-consumer ring of fixed-size records over a flat byte buffer.
  The worker (producer) publishes each record by writing its body, then
  its ``seq`` validation field, then bumping ``head`` -- in that order
  -- so the parent (consumer) never observes a half-written record and
  a SIGKILL mid-write leaves the ring drainable (the torn final record
  is simply never published).  A full ring **drops** the record and
  bumps the ``dropped`` counter; the hot path never blocks.
* :class:`RingBoard` -- ``num_workers`` rings packed into one
  :class:`repro.runtime.shm.SharedArray` segment, created by the parent
  and attached by every worker (each worker only writes its own slot).
* clock calibration -- workers stamp records with ``time.monotonic``
  (``CLOCK_MONOTONIC``); the parent's collector timeline runs on
  ``time.perf_counter``.  :func:`calibrate` folds an NTP-style
  handshake (parent stamps ``hello_parent`` before spawn, the worker
  stamps ``hello_worker`` on install, the parent reads both at first
  drain) into a :class:`ClockCalibration` mapping worker stamps onto
  the parent timeline.  On Linux both clocks are the shared
  ``CLOCK_MONOTONIC``, so the estimated skew is clamped to zero when it
  is smaller than the handshake's own uncertainty -- the skew path only
  activates for genuinely divergent clocks.
* :func:`merge_records` -- drained records land in the ordinary
  parent-side :class:`~repro.telemetry.collector.TelemetryCollector`\\ s
  as spans/counters/gauges/events carrying ``process_pid`` /
  ``worker_slot`` / ``job`` attributes, which is what gives Chrome
  traces real per-worker-process tracks and flow-event linkage.

Worker-side code must emit through :func:`worker_span` /
:func:`record_counter` / :func:`record_event` here -- never through the
parent-only ``telemetry.*`` helpers (the CHK-TEL-WORKER lint enforces
this for functions named in a module's ``__worker_side__`` tuple).
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator

import numpy as np

from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.shm import SharedArray, ShmDescriptor
    from repro.telemetry.collector import TelemetryCollector

#: Record kinds (the ``kind`` field of every ring record).
KIND_SPAN = 1
KIND_COUNTER = 2
KIND_EVENT = 3
KIND_GAUGE = 4

#: Fixed byte budgets for the two string fields of a record.
NAME_BYTES = 56
META_BYTES = 112

#: Per-ring header: producer/consumer cursors, loss counters, the
#: parent-set ``enabled`` gate, and the clock-handshake stamps.
HEADER_DTYPE = np.dtype([
    ("head", np.int64),          # records published (worker writes)
    ("tail", np.int64),          # records consumed (parent writes)
    ("dropped", np.int64),       # records lost to a full ring (worker)
    ("torn", np.int64),          # seq-mismatched records skipped (parent)
    ("enabled", np.int64),       # parent-set gate the worker polls
    ("pid", np.int64),           # producer's os.getpid() (worker writes)
    ("hello_parent", np.float64),   # parent monotonic, pre-spawn
    ("hello_worker", np.float64),   # worker monotonic, at install
])

#: One telemetry record.  ``seq`` is written *last* (publication);
#: ``start``/``end`` are producer-side ``time.monotonic`` stamps.
RECORD_DTYPE = np.dtype([
    ("seq", np.int64),
    ("kind", np.int32),
    ("slot", np.int32),
    ("job", np.int64),
    ("start", np.float64),
    ("end", np.float64),
    ("value", np.float64),
    ("name", f"S{NAME_BYTES}"),
    ("meta", f"S{META_BYTES}"),
])

#: Records per worker ring.  At one span per dispatched job this covers
#: thousands of jobs between drains; the parent drains after every
#: awaited job, so overflow means telemetry loss (counted), never a
#: stall.
DEFAULT_CAPACITY = 2048


def ring_bytes(capacity: int) -> int:
    """Byte size of one ring region holding ``capacity`` records."""
    if capacity <= 0:
        raise ReproError(f"ring capacity must be positive, got {capacity}")
    return HEADER_DTYPE.itemsize + capacity * RECORD_DTYPE.itemsize


def encode_attrs(attrs: dict[str, Any]) -> bytes:
    """Pack attrs as ``k=v;k=v`` bytes, truncated to the meta budget.

    Separator characters inside values are replaced; a pair that would
    not fit whole is dropped (records are fixed-size on purpose).
    """
    out = b""
    for key, value in attrs.items():
        text = str(value).replace(";", ",").replace("=", ":")
        pair = f"{key}={text}".encode("utf-8", "replace")
        grown = pair if not out else out + b";" + pair
        if len(grown) > META_BYTES:
            continue
        out = grown
    return out


def decode_attrs(meta: bytes) -> dict[str, Any]:
    """Inverse of :func:`encode_attrs`; values parse as int/float/str."""
    attrs: dict[str, Any] = {}
    if not meta:
        return attrs
    for pair in meta.decode("utf-8", "replace").split(";"):
        key, sep, text = pair.partition("=")
        if not sep:
            continue
        value: Any = text
        try:
            value = int(text)
        except ValueError:
            try:
                value = float(text)
            except ValueError:
                pass
        attrs[key] = value
    return attrs


@dataclass(frozen=True)
class RemoteRecord:
    """One record drained from a worker ring (timestamps still worker-side)."""

    kind: int
    slot: int
    job: int
    start: float
    end: float
    value: float
    name: str
    attrs: dict[str, Any] = field(default_factory=dict)


class TelemetryRing:
    """SPSC ring of :data:`RECORD_DTYPE` records over a flat uint8 buffer.

    The producer (worker) owns ``head``/``dropped``/``pid``/
    ``hello_worker``; the consumer (parent) owns ``tail``/``torn``/
    ``enabled``/``hello_parent``.  No field is written by both sides, so
    no lock exists to die holding.  Publication relies on store ordering
    (body, then ``seq``, then ``head``) -- x86's TSO keeps plain stores
    ordered, and the GIL serializes each side's own stores anyway.
    """

    __slots__ = ("capacity", "_hdr", "_records")

    def __init__(self, region: np.ndarray) -> None:
        if region.dtype != np.uint8 or region.ndim != 1:
            raise ReproError("telemetry ring region must be a flat uint8 array")
        header_bytes = HEADER_DTYPE.itemsize
        capacity = (region.size - header_bytes) // RECORD_DTYPE.itemsize
        if capacity <= 0:
            raise ReproError(
                f"ring region of {region.size} bytes holds no records"
            )
        self.capacity = int(capacity)
        self._hdr = region[:header_bytes].view(HEADER_DTYPE)
        body = region[header_bytes:header_bytes
                      + self.capacity * RECORD_DTYPE.itemsize]
        self._records = body.view(RECORD_DTYPE)

    @classmethod
    def local(cls, capacity: int = DEFAULT_CAPACITY) -> "TelemetryRing":
        """A private in-process ring (tests, no shared memory)."""
        return cls(np.zeros(ring_bytes(capacity), dtype=np.uint8))

    # -- header access -----------------------------------------------------

    def _geti(self, name: str) -> int:
        return int(self._hdr[name][0])

    @property
    def written(self) -> int:
        return self._geti("head")

    @property
    def pending(self) -> int:
        return self._geti("head") - self._geti("tail")

    @property
    def dropped(self) -> int:
        return self._geti("dropped")

    @property
    def torn(self) -> int:
        return self._geti("torn")

    @property
    def pid(self) -> int:
        return self._geti("pid")

    @property
    def enabled(self) -> bool:
        return bool(self._geti("enabled"))

    def set_enabled(self, enabled: bool) -> None:
        """Parent-side gate: workers skip all writes while disabled."""
        self._hdr["enabled"][0] = 1 if enabled else 0

    @property
    def hello_parent(self) -> float:
        return float(self._hdr["hello_parent"][0])

    @property
    def hello_worker(self) -> float:
        return float(self._hdr["hello_worker"][0])

    def stamp_hello_parent(self) -> None:
        """Parent side, immediately before spawning this slot's worker.

        Also clears the previous occupant's identity stamps so a drain
        never calibrates a fresh worker against a dead one's handshake.
        """
        self._hdr["pid"][0] = 0
        self._hdr["hello_worker"][0] = 0.0
        self._hdr["hello_parent"][0] = time.monotonic()

    def stamp_hello_worker(self) -> None:
        """Worker side, at ring install (its half of the handshake)."""
        self._hdr["pid"][0] = os.getpid()
        self._hdr["hello_worker"][0] = time.monotonic()

    # -- producer ----------------------------------------------------------

    def try_record(self, kind: int, name: str, *, start: float = 0.0,
                   end: float = 0.0, value: float = 0.0, job: int = 0,
                   slot: int = 0,
                   attrs: dict[str, Any] | None = None) -> bool:
        """Publish one record; False (and ``dropped`` bumped) when full.

        Never blocks and never raises for a full ring -- this runs on
        the worker's kernel hot path.
        """
        hdr = self._hdr
        head = int(hdr["head"][0])
        if head - int(hdr["tail"][0]) >= self.capacity:
            hdr["dropped"][0] += 1
            return False
        rec = self._records[head % self.capacity]
        rec["seq"] = 0
        rec["kind"] = kind
        rec["slot"] = slot
        rec["job"] = job
        rec["start"] = start
        rec["end"] = end
        rec["value"] = value
        rec["name"] = name.encode("utf-8", "replace")[:NAME_BYTES]
        rec["meta"] = encode_attrs(attrs) if attrs else b""
        # Publication order: body above, seq validates, head publishes.
        rec["seq"] = head + 1
        hdr["head"][0] = head + 1
        return True

    # -- consumer ----------------------------------------------------------

    def drain(self) -> list[RemoteRecord]:
        """Consume every published record (parent side).

        ``head`` is snapshotted first, so a record the worker is writing
        *right now* is never read.  A record below the snapshot whose
        ``seq`` does not validate (a torn write from a killed producer)
        is skipped and counted in ``torn`` -- the ring stays drainable
        past it.
        """
        hdr = self._hdr
        head = int(hdr["head"][0])
        tail = int(hdr["tail"][0])
        out: list[RemoteRecord] = []
        for i in range(tail, head):
            rec = self._records[i % self.capacity]
            if int(rec["seq"]) != i + 1:
                hdr["torn"][0] += 1
                continue
            out.append(RemoteRecord(
                kind=int(rec["kind"]),
                slot=int(rec["slot"]),
                job=int(rec["job"]),
                start=float(rec["start"]),
                end=float(rec["end"]),
                value=float(rec["value"]),
                name=bytes(rec["name"]).decode("utf-8", "replace"),
                attrs=decode_attrs(bytes(rec["meta"])),
            ))
        hdr["tail"][0] = head
        return out


class RingBoard:
    """All workers' rings packed into one shared-memory segment.

    The parent creates the board (owner side) and drains every slot; a
    worker attaches and writes only its own slot's ring.  Slot regions
    are rows of a 2-D uint8 array, so they never share cache lines
    beyond the row boundary and never alias.
    """

    def __init__(self, segment: "SharedArray") -> None:
        shape = segment.ndarray.shape
        if len(shape) != 2:
            raise ReproError("ring board segment must be 2-D (slots, bytes)")
        self._segment = segment
        self.slots = int(shape[0])
        self._rings: dict[int, TelemetryRing] = {}

    @classmethod
    def create(cls, slots: int,
               capacity: int = DEFAULT_CAPACITY) -> "RingBoard":
        """Allocate the owner-side board (parent, at backend start)."""
        from repro.runtime.shm import SharedArray

        if slots <= 0:
            raise ReproError(f"ring board needs >= 1 slot, got {slots}")
        segment = SharedArray.create((slots, ring_bytes(capacity)),
                                     dtype=np.uint8, role="telemetry-rings")
        segment.ndarray[...] = 0
        return cls(segment)

    @classmethod
    def attach(cls, descriptor: "ShmDescriptor") -> "RingBoard":
        """Map an existing board (worker side; never unlinks)."""
        from repro.runtime.shm import SharedArray

        return cls(SharedArray.attach(descriptor))

    @property
    def descriptor(self) -> "ShmDescriptor":
        return self._segment.descriptor

    def ring(self, slot: int) -> TelemetryRing:
        if not 0 <= slot < self.slots:
            raise ReproError(
                f"ring slot {slot} out of range [0, {self.slots})"
            )
        ring = self._rings.get(slot)
        if ring is None:
            ring = self._rings[slot] = TelemetryRing(
                self._segment.ndarray[slot]
            )
        return ring

    def set_enabled(self, enabled: bool) -> None:
        for slot in range(self.slots):
            self.ring(slot).set_enabled(enabled)

    def close(self) -> None:
        self._rings.clear()
        self._segment.close()

    def unlink(self) -> None:
        self._rings.clear()
        self._segment.unlink()


# -- clock calibration -------------------------------------------------------


def parent_perf_minus_mono(samples: int = 5) -> float:
    """The parent's ``perf_counter - monotonic`` constant.

    Both clocks are read back-to-back; the tightest of ``samples``
    bracketed reads wins, bounding the estimate's error by the smallest
    observed bracket width.
    """
    best_width = float("inf")
    best = 0.0
    for _ in range(max(1, samples)):
        m0 = time.monotonic()
        perf = time.perf_counter()
        m1 = time.monotonic()
        width = m1 - m0
        if width < best_width:
            best_width = width
            best = perf - 0.5 * (m0 + m1)
    return best


def estimate_skew(parent_send: float, worker_hello: float,
                  parent_recv: float, *, clamp: bool = True) -> float:
    """Worker-minus-parent monotonic offset from one handshake.

    NTP's one-exchange estimate: the worker's hello stamp against the
    midpoint of the parent's send/receive bracket.  The estimate's
    uncertainty is half the bracket width; with ``clamp`` (the default)
    an estimate inside its own uncertainty is treated as zero, which on
    Linux -- where every process shares ``CLOCK_MONOTONIC`` -- is the
    exact answer rather than handshake noise.
    """
    if parent_recv < parent_send:
        raise ReproError(
            f"handshake receive time {parent_recv} precedes send time "
            f"{parent_send}"
        )
    if worker_hello == 0.0:
        return 0.0  # worker never stamped; assume the shared clock
    estimate = worker_hello - 0.5 * (parent_send + parent_recv)
    if clamp and abs(estimate) <= 0.5 * (parent_recv - parent_send):
        return 0.0
    return estimate


@dataclass(frozen=True)
class ClockCalibration:
    """Maps one worker's monotonic stamps onto the parent's perf timeline."""

    skew: float
    perf_minus_mono: float

    def to_parent(self, worker_monotonic: float) -> float:
        """A worker ``time.monotonic`` stamp as parent ``perf_counter``."""
        return worker_monotonic - self.skew + self.perf_minus_mono


def calibrate(parent_send: float, worker_hello: float, parent_recv: float,
              perf_minus_mono: float, *,
              clamp: bool = True) -> ClockCalibration:
    """Build one worker's :class:`ClockCalibration` from its handshake."""
    return ClockCalibration(
        skew=estimate_skew(parent_send, worker_hello, parent_recv,
                           clamp=clamp),
        perf_minus_mono=perf_minus_mono,
    )


# -- worker-side emission API ------------------------------------------------
#
# One process-global writer per worker process, installed by the worker
# entry point.  Worker processes run their task loop single-threaded,
# so no thread-local machinery is needed.


class _WorkerState:
    __slots__ = ("board", "ring", "slot", "job")

    def __init__(self) -> None:
        self.board: RingBoard | None = None
        self.ring: TelemetryRing | None = None
        self.slot = 0
        self.job = 0


_WORKER = _WorkerState()


def install_worker_ring(descriptor: "ShmDescriptor", slot: int) -> None:
    """Attach the board and adopt ``slot`` (worker side, at startup)."""
    board = RingBoard.attach(descriptor)
    ring = board.ring(slot)
    ring.stamp_hello_worker()
    _WORKER.board = board
    _WORKER.ring = ring
    _WORKER.slot = slot
    _WORKER.job = 0


def uninstall_worker_ring() -> None:
    """Drop the worker-side attachment (tests; process exit also works)."""
    board = _WORKER.board
    _WORKER.board = None
    _WORKER.ring = None
    _WORKER.job = 0
    if board is not None:
        board.close()


def worker_ring() -> TelemetryRing | None:
    """This process's installed ring, if any."""
    return _WORKER.ring


def set_current_job(job_id: int) -> None:
    """Tag subsequent records with the dispatched job's id."""
    _WORKER.job = job_id


def worker_ring_stats() -> dict[str, int]:
    """Producer-side ring counters (shipped back by diagnostics)."""
    ring = _WORKER.ring
    if ring is None:
        return {"installed": 0, "written": 0, "dropped": 0}
    return {"installed": 1, "written": ring.written, "dropped": ring.dropped}


@contextmanager
def worker_span(name: str, **attrs: Any) -> Iterator[None]:
    """Time a worker-side region into the ring (no-op when disabled).

    The record is written on exit -- after the timed work -- so the span
    is already in the ring before the worker posts its result, and the
    parent's drain-after-await deterministically sees it.
    """
    ring = _WORKER.ring
    if ring is None or not ring.enabled:
        yield
        return
    start = time.monotonic()
    try:
        yield
    finally:
        ring.try_record(KIND_SPAN, name, start=start, end=time.monotonic(),
                        job=_WORKER.job, slot=_WORKER.slot, attrs=attrs)


def record_counter(name: str, value: float = 1.0) -> None:
    """Increment a parent-side counter from worker code (ring-buffered)."""
    ring = _WORKER.ring
    if ring is None or not ring.enabled:
        return
    ring.try_record(KIND_COUNTER, name, value=value, job=_WORKER.job,
                    slot=_WORKER.slot)


def record_gauge(name: str, value: float) -> None:
    """Set a parent-side gauge from worker code (stamped worker-side)."""
    ring = _WORKER.ring
    if ring is None or not ring.enabled:
        return
    now = time.monotonic()
    ring.try_record(KIND_GAUGE, name, start=now, end=now, value=value,
                    job=_WORKER.job, slot=_WORKER.slot)


def record_event(name: str, **attrs: Any) -> None:
    """Record a point event from worker code (stamped worker-side)."""
    ring = _WORKER.ring
    if ring is None or not ring.enabled:
        return
    now = time.monotonic()
    ring.try_record(KIND_EVENT, name, start=now, end=now, job=_WORKER.job,
                    slot=_WORKER.slot, attrs=attrs)


# -- parent-side merge -------------------------------------------------------


def merge_records(records: list[RemoteRecord],
                  calibration: ClockCalibration,
                  collectors: "tuple[TelemetryCollector, ...]",
                  *, pid: int) -> int:
    """Fold drained records into the active collectors; returns count.

    Span/gauge/event timestamps are mapped through ``calibration`` onto
    the parent's ``perf_counter`` timeline.  Spans land with
    ``thread_id = pid`` plus ``process_pid`` / ``worker_slot`` (and
    ``job``, when tagged) attributes -- the keys the Chrome-trace
    exporter uses to build per-worker-process tracks and flow events.
    """
    merged = 0
    for record in records:
        if record.kind == KIND_SPAN:
            attrs = dict(record.attrs)
            attrs["process_pid"] = pid
            attrs["worker_slot"] = record.slot
            if record.job:
                attrs.setdefault("job", record.job)
            start = calibration.to_parent(record.start)
            end = calibration.to_parent(record.end)
            for collector in collectors:
                collector.record_span(record.name, start, end,
                                      thread_id=pid, attrs=attrs)
        elif record.kind == KIND_COUNTER:
            for collector in collectors:
                collector.add(record.name, record.value)
        elif record.kind == KIND_GAUGE:
            when = calibration.to_parent(record.start)
            for collector in collectors:
                collector.gauge_at(record.name, record.value, when)
        elif record.kind == KIND_EVENT:
            attrs = dict(record.attrs)
            attrs["process_pid"] = pid
            attrs["worker_slot"] = record.slot
            when = calibration.to_parent(record.start)
            for collector in collectors:
                collector.record_event_at(record.name, when, attrs=attrs)
        else:
            continue  # unknown kind from a future format: skip, not raise
        merged += 1
    return merged
