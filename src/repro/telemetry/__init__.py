"""``repro.telemetry``: unified tracing, counters and goodput metrics.

Usage, from measuring code::

    from repro import telemetry

    with telemetry.collect() as tel:
        run_training()                      # instrumented code records here
    print(telemetry.spans_table(tel))
    print(telemetry.histograms_table(tel))
    telemetry.write_json(tel, "results/trace.json")

and from instrumented code (no-ops unless a collector is active)::

    with telemetry.span("conv1/fp", engine="stencil", batch=16):
        ...
    telemetry.add("images.processed", 16)
    telemetry.gauge("goodput.conv1", flops_per_second)
    telemetry.observe("batch.load_seconds", elapsed)
    telemetry.event("retune", layer="conv1", old="gemm", new="sparse")

Span durations are additionally auto-fed into a streaming histogram per
span name, so p50/p95/p99 latencies come for free with every trace.
"""

from repro.telemetry.collector import (
    Event,
    Span,
    TelemetryCollector,
    active_collectors,
    add,
    collect,
    event,
    gauge,
    observe,
    span,
)
from repro.telemetry.export import (
    aggregate_spans,
    collector_to_dict,
    counters_table,
    events_table,
    histograms_table,
    spans_table,
    write_json,
)
from repro.telemetry.histogram import StreamingHistogram

__all__ = [
    "Event",
    "Span",
    "StreamingHistogram",
    "TelemetryCollector",
    "active_collectors",
    "add",
    "aggregate_spans",
    "collect",
    "collector_to_dict",
    "counters_table",
    "event",
    "events_table",
    "gauge",
    "histograms_table",
    "observe",
    "span",
    "spans_table",
    "write_json",
]
