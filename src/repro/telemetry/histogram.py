"""Streaming histograms: distributions for telemetry values.

Span lists answer "what ran"; regression hunting needs "how is the
duration *distributed*".  :class:`StreamingHistogram` accumulates values
into log-spaced buckets so tail quantiles (p95/p99) stay meaningful over
six orders of magnitude of wall-clock time without storing every sample.

The bucket layout is fixed at construction: ``buckets_per_decade``
geometrically-spaced buckets per factor of ten between ``min_value`` and
``max_value``, plus one underflow and one overflow bucket.  Quantile
queries interpolate inside the winning bucket, so the answer is exact to
within one bucket width (~33% relative error at the default 8 buckets
per decade -- plenty for "did p99 double?").

Instances are thread-safe: worker-pool threads feed the same histogram
concurrently (one lock per histogram, taken per observation).
"""

from __future__ import annotations

import math
import threading
from typing import Any

from repro.errors import ReproError

#: Default bucket geometry: 1e-7 s .. 1e4 s covers a cache hit to a
#: multi-hour epoch.
DEFAULT_MIN_VALUE = 1e-7
DEFAULT_MAX_VALUE = 1e4
DEFAULT_BUCKETS_PER_DECADE = 8


class StreamingHistogram:
    """Thread-safe log-spaced-bucket histogram with quantile queries."""

    __slots__ = ("_lock", "_min_value", "_max_value", "_per_decade",
                 "_num_buckets", "_counts", "count", "total", "min", "max")

    def __init__(
        self,
        min_value: float = DEFAULT_MIN_VALUE,
        max_value: float = DEFAULT_MAX_VALUE,
        buckets_per_decade: int = DEFAULT_BUCKETS_PER_DECADE,
    ) -> None:
        if min_value <= 0 or max_value <= min_value:
            raise ReproError(
                f"need 0 < min_value < max_value, got "
                f"[{min_value}, {max_value}]"
            )
        if buckets_per_decade <= 0:
            raise ReproError(
                f"buckets_per_decade must be positive, got {buckets_per_decade}"
            )
        self._lock = threading.Lock()
        self._min_value = min_value
        self._max_value = max_value
        self._per_decade = buckets_per_decade
        decades = math.log10(max_value / min_value)
        # +2: underflow bucket at index 0, overflow bucket at the end.
        self._num_buckets = int(math.ceil(decades * buckets_per_decade)) + 2
        self._counts = [0] * self._num_buckets
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    # -- recording --------------------------------------------------------

    def _bucket_index(self, value: float) -> int:
        if value < self._min_value:
            return 0
        if value >= self._max_value:
            return self._num_buckets - 1
        offset = math.log10(value / self._min_value) * self._per_decade
        return min(1 + int(offset), self._num_buckets - 2)

    def observe(self, value: float) -> None:
        """Record one sample (negative / non-finite values are rejected)."""
        value = float(value)
        if not math.isfinite(value) or value < 0:
            raise ReproError(
                f"histogram values must be finite and non-negative, "
                f"got {value}"
            )
        index = self._bucket_index(value)
        with self._lock:
            self._counts[index] += 1
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    # -- bucket geometry ---------------------------------------------------

    def _bucket_bounds(self, index: int) -> tuple[float, float]:
        """``[lo, hi)`` value bounds of a bucket index."""
        if index <= 0:
            return 0.0, self._min_value
        if index >= self._num_buckets - 1:
            return self._max_value, math.inf
        lo = self._min_value * 10 ** ((index - 1) / self._per_decade)
        hi = self._min_value * 10 ** (index / self._per_decade)
        return lo, hi

    # -- queries -----------------------------------------------------------

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (NaN when empty)."""
        with self._lock:
            if self.count == 0:
                return math.nan
            return self.total / self.count

    def quantile(self, q: float) -> float:
        """Value at quantile ``q`` in [0, 1] (NaN when empty).

        Linear interpolation inside the winning bucket, clamped to the
        observed min/max so p0/p100 are exact.
        """
        if not 0.0 <= q <= 1.0:
            raise ReproError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if self.count == 0:
                return math.nan
            rank = q * self.count
            seen = 0
            for index, bucket_count in enumerate(self._counts):
                if bucket_count == 0:
                    continue
                if seen + bucket_count >= rank:
                    lo, hi = self._bucket_bounds(index)
                    frac = (rank - seen) / bucket_count
                    if not math.isfinite(hi):
                        value = self.max
                    else:
                        value = lo + frac * (hi - lo)
                    return min(max(value, self.min), self.max)
                seen += bucket_count
            return self.max

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly summary (buckets elided, quantiles precomputed)."""
        with self._lock:
            count, total = self.count, self.total
            observed_min = self.min if count else None
            observed_max = self.max if count else None
        summary: dict[str, Any] = {
            "count": count,
            "total": total,
            "mean": (total / count) if count else None,
            "min": observed_min,
            "max": observed_max,
        }
        for label, q in (("p50", 0.5), ("p95", 0.95), ("p99", 0.99)):
            summary[label] = self.quantile(q) if count else None
        return summary
