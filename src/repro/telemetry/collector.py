"""The in-memory telemetry collector: spans, counters, gauges, events.

The paper's framework is measurement-driven -- the autotuner selects
techniques from observed costs and re-checks its BP choice as sparsity
drifts (Sec. 4.4) -- so the runtime needs a uniform way to record what it
actually did.  This module provides that substrate:

* :class:`Span` -- one timed region (a layer's FP pass, a worker's image
  range) with wall-clock bounds, thread id and parent linkage;
* :class:`Event` -- a point-in-time occurrence (a retune decision);
* :class:`TelemetryCollector` -- a thread-safe sink accumulating spans,
  monotonic counters, gauges and events.

Instrumented code never talks to a collector directly: it calls the
module-level :func:`span` / :func:`add` / :func:`gauge` / :func:`event`
helpers, which fan out to every *active* collector (see :func:`collect`).
When no collector is active the helpers are no-ops, so the instrumented
hot paths cost one tuple lookup when nobody is measuring.

Collectors may be nested (``collect`` inside ``collect``): emission goes
to all of them, which is what lets two :class:`NetworkProfiler`\\ s wrap
the same network without corrupting each other.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.errors import ReproError
from repro.telemetry.histogram import StreamingHistogram


@dataclass
class Span:
    """One timed region of execution."""

    name: str
    span_id: int
    thread_id: int
    start: float
    end: float | None = None
    parent_id: int | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        """Wall-clock duration; raises if the span was never finished."""
        if self.end is None:
            raise ReproError(f"span {self.name!r} (id {self.span_id}) not finished")
        return self.end - self.start

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly representation."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "thread_id": self.thread_id,
            "start": self.start,
            "end": self.end,
            "seconds": self.end - self.start if self.end is not None else None,
            "attrs": dict(self.attrs),
        }


@dataclass(frozen=True)
class Event:
    """A point-in-time occurrence (e.g. one retune decision)."""

    name: str
    time: float
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "time": self.time, "attrs": dict(self.attrs)}


class TelemetryCollector:
    """Thread-safe in-memory sink for spans, counters, gauges and events.

    Finished spans, counters, gauges and events are appended under a lock;
    the per-thread span stack used for parent linkage lives in
    thread-local storage, so concurrent worker threads nest independently.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self.spans: list[Span] = []
        self.events: list[Event] = []
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        #: Full history of every gauge: ``name -> [(time, value), ...]``.
        #: ``gauges`` keeps only the latest value; the series feeds the
        #: Chrome-trace counter tracks (see :mod:`repro.obs.chrome_trace`).
        self.gauge_series: dict[str, list[tuple[float, float]]] = {}
        #: Value distributions: explicit :meth:`observe` calls plus one
        #: histogram of durations per span name, auto-fed on span finish.
        self.histograms: dict[str, StreamingHistogram] = {}
        self._local = threading.local()

    # -- span lifecycle ---------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def start_span(self, name: str, attrs: dict[str, Any] | None = None) -> Span:
        """Open a span; its parent is the innermost open span on this thread."""
        stack = self._stack()
        parent_id = stack[-1].span_id if stack else None
        with self._lock:
            span_id = next(self._ids)
        opened = Span(
            name=name,
            span_id=span_id,
            thread_id=threading.get_ident(),
            start=time.perf_counter(),
            parent_id=parent_id,
            attrs=dict(attrs or {}),
        )
        stack.append(opened)
        return opened

    def finish_span(self, opened: Span) -> Span:
        """Close a span returned by :meth:`start_span` and record it."""
        opened.end = time.perf_counter()
        stack = self._stack()
        if opened in stack:
            # Tolerate mismatched closes: drop the span and everything
            # opened after it on this thread.
            del stack[stack.index(opened):]
        with self._lock:
            self.spans.append(opened)
        self.observe(opened.name, opened.end - opened.start)
        return opened

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Context manager recording one span into this collector."""
        opened = self.start_span(name, attrs)
        try:
            yield opened
        finally:
            self.finish_span(opened)

    # -- counters / gauges / events ---------------------------------------

    def add(self, name: str, value: float = 1.0) -> None:
        """Increment a monotonic counter (negative increments are rejected)."""
        if value < 0:
            raise ReproError(
                f"counter {name!r} is monotonic; cannot add {value}"
            )
        with self._lock:
            self.counters[name] = self.counters.get(name, 0.0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set a gauge to its latest observed value (history retained)."""
        value = float(value)
        with self._lock:
            self.gauges[name] = value
            self.gauge_series.setdefault(name, []).append(
                (time.perf_counter(), value)
            )

    def observe(self, name: str, value: float) -> None:
        """Feed one sample into the named streaming histogram."""
        with self._lock:
            histogram = self.histograms.get(name)
            if histogram is None:
                histogram = self.histograms[name] = StreamingHistogram()
        histogram.observe(value)

    def event(self, name: str, **attrs: Any) -> Event:
        """Record a point-in-time event."""
        recorded = Event(name=name, time=time.perf_counter(), attrs=dict(attrs))
        with self._lock:
            self.events.append(recorded)
        return recorded

    # -- merge API (externally measured records) ---------------------------
    #
    # The remote-telemetry drainer (:mod:`repro.telemetry.remote`) folds
    # worker-process measurements into the parent's collectors.  Those
    # records arrive already timed -- on the parent's ``perf_counter``
    # timeline after clock calibration -- so they bypass the span stack
    # and the collector's own clock reads.

    def record_span(self, name: str, start: float, end: float, *,
                    thread_id: int | None = None,
                    parent_id: int | None = None,
                    attrs: dict[str, Any] | None = None) -> Span:
        """Record an already-measured span (the remote-merge path).

        ``start``/``end`` must be on this collector's ``perf_counter``
        timeline.  The span never touches the per-thread stack, so it
        cannot corrupt live parent-linkage of open spans.
        """
        if end < start:
            raise ReproError(
                f"span {name!r}: end {end} precedes start {start}"
            )
        with self._lock:
            span_id = next(self._ids)
        recorded = Span(
            name=name,
            span_id=span_id,
            thread_id=(thread_id if thread_id is not None
                       else threading.get_ident()),
            start=start,
            end=end,
            parent_id=parent_id,
            attrs=dict(attrs or {}),
        )
        with self._lock:
            self.spans.append(recorded)
        self.observe(name, end - start)
        return recorded

    def record_event_at(self, name: str, when: float,
                        attrs: dict[str, Any] | None = None) -> Event:
        """Record a point event with an externally supplied timestamp."""
        recorded = Event(name=name, time=when, attrs=dict(attrs or {}))
        with self._lock:
            self.events.append(recorded)
        return recorded

    def gauge_at(self, name: str, value: float, when: float) -> None:
        """Set a gauge with an externally supplied series timestamp."""
        value = float(value)
        with self._lock:
            self.gauges[name] = value
            self.gauge_series.setdefault(name, []).append((when, value))

    # -- queries ----------------------------------------------------------

    def find_spans(
        self,
        name: str | None = None,
        predicate: Callable[[Span], bool] | None = None,
        **attr_filters: Any,
    ) -> list[Span]:
        """Finished spans matching a name, attribute values and predicate."""
        with self._lock:
            spans = list(self.spans)
        out = []
        for s in spans:
            if name is not None and s.name != name:
                continue
            if any(s.attrs.get(k) != v for k, v in attr_filters.items()):
                continue
            if predicate is not None and not predicate(s):
                continue
            out.append(s)
        return out

    def total_seconds(self, name: str) -> float:
        """Summed duration of every finished span with the given name."""
        return sum(s.seconds for s in self.find_spans(name))

    def span_names(self) -> tuple[str, ...]:
        """Distinct recorded span names, sorted."""
        with self._lock:
            return tuple(sorted({s.name for s in self.spans}))


# -- the active-collector stack -------------------------------------------
#
# The stack is global (not thread-local) on purpose: spans emitted from
# worker-pool threads must land in the collector the main thread activated.

_ACTIVE: list[TelemetryCollector] = []
_ACTIVE_LOCK = threading.Lock()


def active_collectors() -> tuple[TelemetryCollector, ...]:
    """The currently active collectors, outermost first.

    The unlocked emptiness probe keeps disabled instrumentation cheap:
    the helpers below run on every batch, layer pass and pool task, and
    reading the list's truthiness is atomic under the GIL.  A caller
    racing an activation may miss the very first records -- the same
    outcome as calling a moment earlier -- never a torn read.
    """
    if not _ACTIVE:
        return ()
    with _ACTIVE_LOCK:
        return tuple(_ACTIVE)


@contextmanager
def collect(
    collector: TelemetryCollector | None = None,
) -> Iterator[TelemetryCollector]:
    """Activate a collector for the duration of the ``with`` block.

    Every :func:`span` / :func:`add` / :func:`gauge` / :func:`event` call
    made while the block runs -- from any thread -- is recorded into it
    (and into any other active collector).
    """
    collector = collector or TelemetryCollector()
    with _ACTIVE_LOCK:
        _ACTIVE.append(collector)
    try:
        yield collector
    finally:
        with _ACTIVE_LOCK:
            # Remove the topmost occurrence (collectors may repeat).
            for i in range(len(_ACTIVE) - 1, -1, -1):
                if _ACTIVE[i] is collector:
                    del _ACTIVE[i]
                    break


class _MultiSpan:
    """Context manager opening one span per active collector."""

    __slots__ = ("_entries",)

    def __init__(self, name: str, attrs: dict[str, Any],
                 collectors: tuple[TelemetryCollector, ...]):
        self._entries = [(c, c.start_span(name, attrs)) for c in collectors]

    def __enter__(self) -> "_MultiSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        for collector, opened in reversed(self._entries):
            collector.finish_span(opened)


class _NullSpan:
    """No-op stand-in when no collector is active."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_SPAN = _NullSpan()


def span(name: str, **attrs: Any):
    """Record a span into every active collector (no-op when none)."""
    collectors = active_collectors()
    if not collectors:
        return _NULL_SPAN
    return _MultiSpan(name, attrs, collectors)


def add(name: str, value: float = 1.0) -> None:
    """Increment a counter in every active collector (no-op when none)."""
    for collector in active_collectors():
        collector.add(name, value)


def observe(name: str, value: float) -> None:
    """Feed a histogram sample into every active collector (no-op when none)."""
    for collector in active_collectors():
        collector.observe(name, value)


def gauge(name: str, value: float) -> None:
    """Set a gauge in every active collector (no-op when none)."""
    for collector in active_collectors():
        collector.gauge(name, value)


def event(name: str, **attrs: Any) -> None:
    """Record an event in every active collector (no-op when none)."""
    for collector in active_collectors():
        collector.event(name, **attrs)
